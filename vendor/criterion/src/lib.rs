//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build container has no registry access, so the workspace vendors
//! the slice of criterion its benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical
//! machinery, each benchmark is warmed up once and then timed over a
//! fixed number of iterations, reporting the mean wall-clock time per
//! iteration — enough to compare hot paths release-to-release without
//! any external dependencies.

use std::fmt::Display;
use std::time::Instant;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{parameter}", name.into()) }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives timed iterations of one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `f` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters, mean_ns: 0.0 };
    f(&mut b);
    let (value, unit) = if b.mean_ns >= 1e9 {
        (b.mean_ns / 1e9, "s")
    } else if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "us")
    } else {
        (b.mean_ns, "ns")
    };
    println!("{label:<48} {value:>10.3} {unit}/iter ({iters} iters)");
}

/// Top-level benchmark runner.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_runs_with_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut hits = 0u64;
        g.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &n| {
            b.iter(|| hits += n as u64)
        });
        g.finish();
        assert!(hits >= 3 * 7);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("perm", 32).to_string(), "perm/32");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
