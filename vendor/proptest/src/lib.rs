//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build container has no registry access, so the workspace vendors
//! the slice of proptest its test suites use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_shuffle`, range and tuple
//! strategies, [`collection::vec`], [`option::of`], [`bool::ANY`],
//! [`Just`], `any::<T>()`, and the [`proptest!`] /
//! [`prop_assert!`]-family macros.
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases`
//! iterations with values drawn from a deterministic per-test RNG
//! (seeded from the test's module path and case index), and assertion
//! failures panic like normal `assert!`s. There is no shrinking — a
//! failing case prints the panic message from the raw inputs; rerunning
//! reproduces it exactly because the stream is deterministic.

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for one case of one named test: the stream is a pure function
    /// of `(name, case)`, so failures replay exactly.
    #[must_use]
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Randomly permutes a generated `Vec`.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { inner: self }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    inner: S,
}

impl<T, S: Strategy<Value = Vec<T>>> Strategy for Shuffle<S> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.inner.generate(rng);
        for i in (1..v.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
        v
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize, i64);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical "anything" strategy (subset of proptest's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type AnyStrategy: Strategy<Value = Self>;
    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::AnyStrategy;
}

/// Full-domain strategy for an `Arbitrary` scalar.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyScalar<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyScalar<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type AnyStrategy = AnyScalar<$t>;
            fn arbitrary() -> Self::AnyStrategy {
                AnyScalar(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Strategy for AnyScalar<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type AnyStrategy = AnyScalar<bool>;
    fn arbitrary() -> Self::AnyStrategy {
        AnyScalar(std::marker::PhantomData)
    }
}

/// The full-domain strategy for `T`: `any::<u64>()` etc.
#[must_use]
pub fn any<T: Arbitrary>() -> T::AnyStrategy {
    T::arbitrary()
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact size or a half-open
    /// range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` 25% of the time and `Some(inner)`
    /// otherwise (proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod bool {
    //! `bool` strategies.

    /// The uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `true` / `false`.
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prop {
    //! `prop::*` aliases matching proptest's prelude module.
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    //! Everything a proptest suite conventionally imports.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// item becomes a normal `#[test]` running `cases` random iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let __strategy = ($($strat,)+);
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ($($pat,)+) = $crate::Strategy::generate(&__strategy, &mut __rng);
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a name the proptest bodies expect.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// `assert_eq!` under a name the proptest bodies expect.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// `assert_ne!` under a name the proptest bodies expect.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case("shim::bounds", 0);
        let strat = (1usize..12, 0u8..=10, 0.0f64..0.5, any::<u64>());
        for _ in 0..200 {
            let (a, b, c, _d) = strat.generate(&mut rng);
            assert!((1..12).contains(&a));
            assert!(b <= 10);
            assert!((0.0..0.5).contains(&c));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::TestRng::for_case("shim::combinators", 3);
        let strat = (1u32..=5)
            .prop_map(|e| 1usize << e)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(crate::option::of(0usize..n), n)));
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert!(n.is_power_of_two() && (2..=32).contains(&n));
            assert_eq!(v.len(), n);
            assert!(v.iter().flatten().all(|&x| x < n));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = crate::TestRng::for_case("shim::shuffle", 1);
        let strat = Just((0..16).collect::<Vec<usize>>()).prop_shuffle();
        let v = strat.generate(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn streams_are_deterministic_per_case() {
        let a: Vec<u64> =
            (0..4).map(|c| crate::TestRng::for_case("shim::det", c).next_u64()).collect();
        let b: Vec<u64> =
            (0..4).map(|c| crate::TestRng::for_case("shim::det", c).next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_with_patterns((n, flag) in (1usize..8, crate::bool::ANY), x in 0u8..=3) {
            prop_assert!(n < 8);
            prop_assert!(x <= 3);
            prop_assume!(flag || n < 8);
            prop_assert_eq!(n, n);
            prop_assert_ne!(n + 1, n);
        }
    }
}
