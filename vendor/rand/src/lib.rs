//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build container has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: a seedable RNG
//! ([`rngs::StdRng`]), uniform range/bool sampling ([`Rng`]), and
//! Fisher–Yates shuffling ([`seq::SliceRandom`]). The generator is
//! xoshiro256** seeded through SplitMix64 — statistically solid for
//! simulation workloads and, crucially, deterministic per seed. Streams
//! differ from upstream `rand`'s ChaCha-based `StdRng`; nothing in the
//! workspace depends on upstream's exact values, only on determinism.

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly (subset of `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = unit_f64(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Uniform in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform in `[0, n)` by widening multiply (Lemire); `n > 0`.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (`p` clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete RNG implementations.
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&x));
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
            let b = rng.gen_range(0u8..=3);
            assert!(b <= 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / 10_000.0;
        assert!((p - 0.3).abs() < 0.02, "observed {p}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
