//! # sigma — a reproduction of the SIGMA sparse/irregular GEMM accelerator
//!
//! Facade crate re-exporting the whole workspace:
//!
//! * [`matrix`] — dense/sparse matrices, bitmap compression, formats.
//! * [`interconnect`] — Benes distribution and FAN/ART/linear reduction.
//! * [`energy`] — 28 nm area/power/energy models.
//! * [`arch`] — the Flex-DPE/Flex-DPU SIGMA simulator itself.
//! * [`baselines`] — TPU-style systolic arrays, sparse accelerators, GPU.
//! * [`workloads`] — DL-training GEMM suites and sparsity profiles.
//!
//! See `README.md` for a guided tour and `examples/` for runnable demos.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    warn(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]

pub use sigma_baselines as baselines;
pub use sigma_core as arch;
pub use sigma_energy as energy;
pub use sigma_interconnect as interconnect;
pub use sigma_matrix as matrix;
pub use sigma_workloads as workloads;
