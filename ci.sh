#!/usr/bin/env sh
# Local mirror of the CI pipeline: formatting, lints, build, tests.
# Run from the repo root: ./ci.sh
set -eux

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace -q
cargo run -q -p sigma-bench --bin fault_campaign -- --smoke --quiet
# Perf regression gate: compare simulated-cycles-per-second against the
# committed BENCH_sim.json baseline (release build; the check self-skips
# in debug builds where timings are incomparable).
cargo run -q --release -p sigma-bench --bin perf_bench -- --check --smoke
