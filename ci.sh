#!/usr/bin/env sh
# Local mirror of the CI pipeline: formatting, lints, build, tests.
# Run from the repo root: ./ci.sh
set -eux

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
# Static analysis gate: sigma-lint scans the workspace (including the
# event-scheduler module crates/core/src/sched.rs — the D-rules are what
# keep the epoch queue deterministic) for nondeterminism sources,
# panicking library code, truncating counter casts, unsafe outside the
# allowlist, unvalidated Engine impls, and — via the workspace-wide
# scope/lock-graph phase — lock-order inversions (D7), blocking I/O
# under a live guard (D8), and unbalanced flight-recorder spans (D9).
# --check-waivers also fails on stale lint.toml waivers and on a waiver
# list past the budget of five; the JSON and SARIF reports are kept as
# CI artifacts (the SARIF one feeds GitHub's inline PR annotations).
cargo run -q -p sigma-lint -- --check-waivers
cargo run -q -p sigma-lint -- --json > /tmp/sigma_lint_report.json
cargo run -q -p sigma-lint -- --sarif > /tmp/sigma_lint.sarif
# Lint-fixtures leg: the analyzer's own corpus (known-good and
# known-bad lock orders, blocking-under-guard, unbalanced spans, the
# waiver budget) must keep producing its exact finding lists.
cargo test -q -p sigma-lint
cargo build --workspace --release
cargo test --workspace -q
cargo run -q -p sigma-bench --bin fault_campaign -- --smoke --quiet
# Crash-safety gate: SIGKILL a journaled child sweep at seeded cell
# counts, resume from the surviving journal, and demand the final
# CSV/JSON renderings be byte-identical to an uninterrupted run.
cargo run -q --release -p sigma-bench --bin chaos_resume -- --smoke
# Perf regression gate: compare simulated-cycles-per-second against the
# committed BENCH_sim.json baseline (release build; the check self-skips
# in debug builds where timings are incomparable).
cargo run -q --release -p sigma-bench --bin perf_bench -- --check --smoke
# Scheduler equivalence gate: the event-driven core must reproduce the
# lockstep tick oracle bit-for-bit (stats and result f32 bits) on the
# 128/512-PE smoke cases.
cargo run -q --release -p sigma-bench --bin perf_bench -- --lockstep-check --quiet
# Telemetry smoke leg: the trace subcommand must emit a Chrome trace that
# passes its own validator, and a telemetry sweep must surface the new
# profiling columns and drop a telemetry_summary.json.
cargo run -q --release -p sigma-bench --bin sigma_cli -- trace \
    --out /tmp/sigma_ci.trace.json --m 24 --n 24 --k 24 \
    --input-sparsity 0.5 --weight-sparsity 0.5
grep -q '"traceEvents"' /tmp/sigma_ci.trace.json
cargo run -q --release -p sigma-bench --bin sigma_cli -- --sweep --telemetry \
    --workload 16:16:16:0.5:0.5 --output csv \
    --out /tmp/sigma_ci_telemetry_summary.json > /tmp/sigma_ci_sweep.csv
grep -q 'route_cache_hits' /tmp/sigma_ci_sweep.csv
grep -q 'wall_ms' /tmp/sigma_ci_sweep.csv
grep -q '"route_cache"' /tmp/sigma_ci_telemetry_summary.json
# Run-cache parity gate: the same sweep cold (empty store), warm (reused
# store), and cache-disabled must render byte-identical CSV and JSON —
# a cache hit may only ever serve the bytes the engine would produce.
rm -f /tmp/sigma_ci_cache.store
cargo run -q --release -p sigma-bench --bin sigma_cli -- --sweep \
    --workload 16:16:16:0.5:0.5 --cache /tmp/sigma_ci_cache.store \
    --cache-stats --output csv > /tmp/sigma_ci_cache_cold.csv
cargo run -q --release -p sigma-bench --bin sigma_cli -- --sweep \
    --workload 16:16:16:0.5:0.5 --cache /tmp/sigma_ci_cache.store \
    --cache-stats --output csv > /tmp/sigma_ci_cache_warm.csv
cargo run -q --release -p sigma-bench --bin sigma_cli -- --sweep \
    --workload 16:16:16:0.5:0.5 --output csv > /tmp/sigma_ci_cache_off.csv
cargo run -q --release -p sigma-bench --bin sigma_cli -- --sweep \
    --workload 16:16:16:0.5:0.5 --cache /tmp/sigma_ci_cache.store \
    --output json > /tmp/sigma_ci_cache_warm.json
cargo run -q --release -p sigma-bench --bin sigma_cli -- --sweep \
    --workload 16:16:16:0.5:0.5 --output json > /tmp/sigma_ci_cache_off.json
cmp /tmp/sigma_ci_cache_cold.csv /tmp/sigma_ci_cache_warm.csv
cmp /tmp/sigma_ci_cache_cold.csv /tmp/sigma_ci_cache_off.csv
cmp /tmp/sigma_ci_cache_warm.json /tmp/sigma_ci_cache_off.json
rm -f /tmp/sigma_ci_cache.store
# Run-cache bench leg: warm-sweep throughput must be >= 50x cold, with
# exactly-once execution for in-flight duplicate cells (the gate
# self-skips the speedup ratio in debug builds, like --check).
cargo run -q --release -p sigma-bench --bin perf_bench -- --dse-warm --smoke --quiet
# Flight-recorder smoke leg: a recorded sweep must drop an event log
# whose rendered Perfetto trace passes validate_chrome_trace with
# non-zero per-stage totals (the report only prints `stage X: count=`
# lines for stages that recorded spans), and the same sweep with the
# recorder off must stay byte-identical to the plain run above.
cargo run -q --release -p sigma-bench --bin sigma_cli -- --sweep \
    --workload 16:16:16:0.5:0.5 --flight-recorder /tmp/sigma_ci_flight.jsonl \
    --output csv > /tmp/sigma_ci_flight_on.csv
cargo run -q --release -p sigma-bench --bin sigma_cli -- report \
    --from /tmp/sigma_ci_flight.jsonl \
    --out /tmp/sigma_ci_flight.trace.json > /tmp/sigma_ci_flight_report.txt
grep -q '"traceEvents"' /tmp/sigma_ci_flight.trace.json
grep -q 'stage engine_run: count=' /tmp/sigma_ci_flight_report.txt
grep -q 'stage queue_wait: count=' /tmp/sigma_ci_flight_report.txt
cmp /tmp/sigma_ci_flight_on.csv /tmp/sigma_ci_cache_off.csv
# Recorder overhead gate: no recorder, a disabled handle, and an enabled
# recorder must render byte-identical sweep records/CSV/JSON, and the
# enabled leg's engine-run spans must reconcile with the grid's attempts.
cargo run -q --release -p sigma-bench --bin perf_bench -- --recorder-check --smoke --quiet
