#!/usr/bin/env sh
# Local mirror of the CI pipeline: formatting, lints, build, tests.
# Run from the repo root: ./ci.sh
set -eux

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace -q
cargo run -q -p sigma-bench --bin fault_campaign -- --smoke --quiet
