//! Regression guard for the u32→u64 counter widening on the energy
//! side: joules computed from >2^32-cycle runs must stay finite and
//! scale linearly (2^40 is still exactly representable in f64).

use sigma_core::CycleStats;
use sigma_energy::{sigma_report, EnergyBreakdown};

#[test]
fn energy_from_huge_cycle_counts_is_finite_and_monotone() {
    let report = sigma_report(128, 128);
    let small = report.energy_j(1 << 20);
    let huge = report.energy_j(1 << 40);
    assert!(small.is_finite() && small > 0.0);
    assert!(huge.is_finite() && huge > small);
    let ratio = huge / small;
    assert!((ratio - f64::from(1 << 20)).abs() < 1e-3, "ratio {ratio}");
}

#[test]
fn breakdown_from_huge_stats_is_finite() {
    let stats = CycleStats {
        loading_cycles: 1 << 40,
        streaming_cycles: 1 << 41,
        add_cycles: 1 << 33,
        folds: 1 << 34,
        useful_macs: 1 << 70,
        issued_macs: 1 << 70,
        mapped_nonzeros: 1 << 36,
        occupied_slots: 1 << 36,
        pes: 16_384,
        sram_reads: 1 << 42,
        ..CycleStats::default()
    };
    let b = EnergyBreakdown::from_stats(&stats, 128);
    assert!(b.total_j().is_finite() && b.total_j() > 0.0);
    for (label, joules) in b.rows() {
        assert!(joules.is_finite() && joules >= 0.0, "{label}: {joules}");
    }
}
