//! Activity-based energy breakdown: instead of `power x time`, charge
//! each event the simulator counted — multiplies, FAN adds, Benes word
//! traversals, SRAM reads — its per-event energy, plus leakage for the
//! run duration. This decomposes Fig. 13's energy advantage into its
//! causes (fewer issued MACs, fewer folds, multicast reuse of reads).

use crate::catalog::{ComponentCatalog, CLOCK_HZ};
use sigma_core::CycleStats;
use sigma_interconnect::log2_ceil;

/// Per-cause energy of one run, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// FP32 multiplies (issued, useful or not — a mapped zero still
    /// toggles the multiplier).
    pub multiply_j: f64,
    /// FP32 additions in the reduction network.
    pub reduce_j: f64,
    /// Word-traversals of the distribution network.
    pub distribute_j: f64,
    /// SRAM read accesses.
    pub sram_j: f64,
    /// Leakage/idle over the run duration.
    pub static_j: f64,
}

impl EnergyBreakdown {
    /// Builds the breakdown from a run's [`CycleStats`] on a SIGMA
    /// instance with `dpe_size`-wide Flex-DPEs.
    ///
    /// Per-event energies derive from the calibrated component powers at
    /// the modeled clock (a component busy for one cycle consumes
    /// `power / f` joules). Distribution charges each SRAM word the
    /// Benes stage depth it traverses; reduction charges one add per
    /// useful accumulation (issued − outputs is a good proxy: every
    /// issued product eventually merges except one per output, but the
    /// simulator's `issued_macs` is the faithful upper count so we use
    /// it directly).
    #[must_use]
    pub fn from_stats(stats: &CycleStats, dpe_size: usize) -> Self {
        let c = ComponentCatalog::cal28nm();
        let per_cycle = |power: f64| power / CLOCK_HZ;
        let mult_e = per_cycle(c.fp32_mult_power);
        let add_e = per_cycle(c.fp32_add_power * (1.0 + c.fan_power_overhead_frac));
        let switch_e = per_cycle(c.benes_switch_power);
        let sram_word_e = per_cycle(c.pe_regs_power) * 2.0; // array read + reg write

        let stages = if dpe_size >= 2 { 2 * log2_ceil(dpe_size) as u64 - 1 } else { 1 };
        // Static power: everything not explained by events (controller,
        // clock tree, idle PEs), about a third of the calibrated total.
        let static_power =
            0.33 * (stats.pes as f64 * (c.fp32_mult_power + c.fp32_add_power + c.pe_regs_power));

        EnergyBreakdown {
            multiply_j: stats.issued_macs as f64 * mult_e,
            reduce_j: stats.issued_macs as f64 * add_e,
            distribute_j: stats.sram_reads as f64 * stages as f64 * switch_e,
            sram_j: stats.sram_reads as f64 * sram_word_e,
            static_j: static_power * stats.total_cycles() as f64 / CLOCK_HZ,
        }
    }

    /// Total energy.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.multiply_j + self.reduce_j + self.distribute_j + self.sram_j + self.static_j
    }

    /// `(label, joules)` rows for display, largest first.
    #[must_use]
    pub fn rows(&self) -> Vec<(&'static str, f64)> {
        let mut v = vec![
            ("multiply", self.multiply_j),
            ("reduce", self.reduce_j),
            ("distribute", self.distribute_j),
            ("sram", self.sram_j),
            ("static", self.static_j),
        ];
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_core::model::{estimate_best, GemmProblem};
    use sigma_core::SigmaConfig;
    use sigma_matrix::GemmShape;

    fn stats(da: f64, db: f64) -> CycleStats {
        let p = GemmProblem::sparse(GemmShape::new(1024, 1024, 1024), da, db);
        estimate_best(&SigmaConfig::paper(), &p).1
    }

    #[test]
    fn breakdown_components_positive_and_sum() {
        let b = EnergyBreakdown::from_stats(&stats(0.5, 0.2), 128);
        assert!(b.multiply_j > 0.0);
        assert!(b.reduce_j > 0.0);
        assert!(b.distribute_j > 0.0);
        assert!(b.sram_j > 0.0);
        assert!(b.static_j > 0.0);
        let sum: f64 = b.rows().iter().map(|r| r.1).sum();
        assert!((sum - b.total_j()).abs() < 1e-12);
    }

    #[test]
    fn sparser_runs_use_less_energy() {
        let dense = EnergyBreakdown::from_stats(&stats(1.0, 1.0), 128).total_j();
        let sparse = EnergyBreakdown::from_stats(&stats(0.5, 0.2), 128).total_j();
        assert!(sparse < 0.4 * dense, "sparse {sparse} vs dense {dense}");
    }

    #[test]
    fn activity_total_is_same_order_as_power_model() {
        // The activity-based total should land within ~3x of the
        // coarse power x time estimate — they model the same machine.
        let s = stats(0.5, 0.2);
        let act = EnergyBreakdown::from_stats(&s, 128).total_j();
        let coarse = crate::sigma_report(128, 128).energy_j(s.total_cycles());
        let ratio = act / coarse;
        assert!((0.3..=3.0).contains(&ratio), "activity/coarse ratio {ratio}");
    }

    #[test]
    fn rows_sorted_descending() {
        let b = EnergyBreakdown::from_stats(&stats(0.5, 0.5), 128);
        let rows = b.rows();
        for w in rows.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
