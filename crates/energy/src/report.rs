//! Design-level area/power aggregation and energy-delay accounting.

use crate::catalog::{ComponentCatalog, CLOCK_HZ};
use sigma_interconnect::{log2_ceil, ReductionKind, ReductionNetwork};

/// Aggregated area and power of one hardware design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignReport {
    /// Human-readable design name.
    pub name: &'static str,
    /// Total compute-array area in mm² (SRAMs excluded, as in Fig. 8).
    pub area_mm2: f64,
    /// Total compute-array power in W.
    pub power_w: f64,
    /// Number of multipliers (PEs) in the design.
    pub pes: usize,
}

impl DesignReport {
    /// Peak dense throughput in TFLOPS: 2 FLOPs per PE per cycle.
    #[must_use]
    pub fn peak_tflops(&self) -> f64 {
        2.0 * self.pes as f64 * CLOCK_HZ / 1e12
    }

    /// Effective TFLOPS at the given average overall efficiency (Fig. 8's
    /// "Effective TFLOPs" row).
    #[must_use]
    pub fn effective_tflops(&self, avg_efficiency: f64) -> f64 {
        self.peak_tflops() * avg_efficiency
    }

    /// Effective TFLOPS per watt.
    #[must_use]
    pub fn effective_tflops_per_watt(&self, avg_efficiency: f64) -> f64 {
        self.effective_tflops(avg_efficiency) / self.power_w
    }

    /// Energy in joules for running `cycles` at the modeled clock.
    #[must_use]
    pub fn energy_j(&self, cycles: u64) -> f64 {
        self.power_w * cycles as f64 / CLOCK_HZ
    }

    /// Performance per area for a run: (1 / seconds) / mm².
    #[must_use]
    pub fn perf_per_area(&self, cycles: u64) -> f64 {
        let seconds = cycles as f64 / CLOCK_HZ;
        1.0 / (seconds * self.area_mm2)
    }
}

/// Area/power of an `rows x cols` weight-stationary systolic array
/// (TPU-like): each PE is an FP32 MAC plus operand/weight registers.
#[must_use]
pub fn systolic_report(rows: usize, cols: usize) -> DesignReport {
    let c = ComponentCatalog::cal28nm();
    let pes = rows * cols;
    let per_pe_area = c.fp32_mult_area + c.fp32_add_area + c.pe_regs_area;
    let per_pe_power = c.fp32_mult_power + c.fp32_add_power + c.pe_regs_power;
    DesignReport {
        name: "Systolic (TPU-like)",
        area_mm2: pes as f64 * per_pe_area,
        power_w: pes as f64 * per_pe_power,
        pes,
    }
}

/// Area/power of SIGMA with `num_dpes` Flex-DPEs of `dpe_size` multipliers
/// each: multipliers + stationary buffers, a FAN per DPE, a Benes per DPE,
/// the global sparsity controller and the inter-DPE NoC.
#[must_use]
pub fn sigma_report(num_dpes: usize, dpe_size: usize) -> DesignReport {
    let c = ComponentCatalog::cal28nm();
    let pes = num_dpes * dpe_size;
    let fan_adders = num_dpes * dpe_size.saturating_sub(1);
    // Benes of size k: (2*log2(k) - 1) stages of k/2 switches.
    let benes_switches = if dpe_size >= 2 {
        num_dpes * (2 * log2_ceil(dpe_size) as usize - 1) * dpe_size / 2
    } else {
        0
    };

    // Controller scales with the instance (Sec. V gate inventory).
    let controller = ControllerCost::for_instance(num_dpes, dpe_size);
    let controller_area = controller.area_mm2();
    let controller_power = c.controller_power * controller_area / c.controller_area;

    let area = pes as f64 * (c.fp32_mult_area + c.pe_regs_area)
        + fan_adders as f64 * c.fp32_add_area * (1.0 + c.fan_area_overhead_frac)
        + benes_switches as f64 * c.benes_switch_area
        + controller_area
        + num_dpes as f64 * c.noc_switch_area;
    let power = pes as f64 * (c.fp32_mult_power + c.pe_regs_power)
        + fan_adders as f64 * c.fp32_add_power * (1.0 + c.fan_power_overhead_frac)
        + benes_switches as f64 * c.benes_switch_power
        + controller_power
        + num_dpes as f64 * c.noc_switch_power;

    DesignReport { name: "SIGMA", area_mm2: area, power_w: power, pes }
}

/// Area/power of just a reduction network over `size` producer lanes
/// (the Fig. 6b comparison is network-only).
#[must_use]
pub fn reduction_report(kind: ReductionKind, size: usize) -> DesignReport {
    let c = ComponentCatalog::cal28nm();
    let (name, area, power) = match kind {
        ReductionKind::Linear => (
            "Linear reduction",
            size as f64 * (c.fp32_add_area + c.accum_reg_area),
            size as f64 * (c.fp32_add_power + c.accum_reg_power),
        ),
        ReductionKind::Fan => {
            let adders = size.saturating_sub(1) as f64;
            (
                "FAN",
                adders * c.fp32_add_area * (1.0 + c.fan_area_overhead_frac),
                adders * c.fp32_add_power * (1.0 + c.fan_power_overhead_frac),
            )
        }
        ReductionKind::Art => {
            let adders = size.saturating_sub(1) as f64;
            (
                "ART",
                adders * c.fp32_add_area * c.three_in_add_area_factor,
                adders * c.fp32_add_power * c.three_in_add_power_factor,
            )
        }
    };
    DesignReport { name, area_mm2: area, power_w: power, pes: size }
}

/// Gate-level inventory of SIGMA's global sparsity controller,
/// reproducing the paper's Sec. V estimate ("1024 AND gates, 1024 OR
/// gates, 1024 counters, and 128 SRC-DEST tables ≈ 1.4 mm²") and scaling
/// it to other instance sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerCost {
    /// Bitmap AND gates (stationary′ computation, Fig. 5 Step ii).
    pub and_gates: usize,
    /// Bitmap OR gates (REGOR computation).
    pub or_gates: usize,
    /// Counter units (Step v counter assignment).
    pub counters: usize,
    /// SRC–DEST tables (one per Flex-DPE).
    pub src_dest_tables: usize,
}

impl ControllerCost {
    /// The paper's reference instance (128 Flex-DPE-128).
    #[must_use]
    pub fn paper() -> Self {
        Self { and_gates: 1024, or_gates: 1024, counters: 1024, src_dest_tables: 128 }
    }

    /// Scales the gate inventory to an instance with `num_dpes` Flex-DPEs
    /// of `dpe_size` multipliers: bitmap gate/counter lanes scale with the
    /// total PE count (1024 lanes per 16384 PEs), tables with the DPE
    /// count.
    #[must_use]
    pub fn for_instance(num_dpes: usize, dpe_size: usize) -> Self {
        let pes = num_dpes * dpe_size;
        let lanes = (pes / 16).max(1);
        Self { and_gates: lanes, or_gates: lanes, counters: lanes, src_dest_tables: num_dpes }
    }

    /// Estimated area, anchored to the paper's 1.4 mm² for the reference
    /// inventory and scaled by gate/table counts.
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        let reference = ControllerCost::paper();
        let gate_frac = (self.and_gates + self.or_gates + self.counters) as f64
            / (reference.and_gates + reference.or_gates + reference.counters) as f64;
        let table_frac = self.src_dest_tables as f64 / reference.src_dest_tables as f64;
        // Tables dominate the reference area (counters and tables hold
        // state; gates are tiny): 75% tables, 25% gates+counters.
        1.4 * (0.25 * gate_frac + 0.75 * table_frac)
    }
}

/// Energy and delay of one experiment run on one design, for EDP
/// comparisons (Fig. 6b-iv).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyDelay {
    /// Run time in seconds.
    pub seconds: f64,
    /// Energy in joules.
    pub joules: f64,
}

impl EnergyDelay {
    /// Runs the Fig. 6b fold experiment (`folds` stationary folds, each
    /// streaming `stream` waves, then draining the reduction) on a
    /// `size`-PE array whose reduction network is `kind`. Power accounts
    /// for the whole PE array (multipliers + registers) plus the reduction
    /// network, since EDP is a whole-design metric.
    #[must_use]
    pub fn of_fold_experiment(kind: ReductionKind, size: usize, folds: u64, stream: u64) -> Self {
        let c = ComponentCatalog::cal28nm();
        let cycles = ReductionNetwork::new(kind, size).fold_experiment_cycles(folds, stream);
        let pe_power = size as f64 * (c.fp32_mult_power + c.pe_regs_power);
        let power = pe_power + reduction_report(kind, size).power_w;
        let seconds = cycles as f64 / CLOCK_HZ;
        Self { seconds, joules: power * seconds }
    }

    /// Same experiment, but counting only the reduction network's power —
    /// the network-vs-network comparison of Fig. 6b-iv (used for the
    /// FAN-vs-ART claim, where delays are identical and only network power
    /// differs).
    #[must_use]
    pub fn of_fold_experiment_network_only(
        kind: ReductionKind,
        size: usize,
        folds: u64,
        stream: u64,
    ) -> Self {
        let cycles = ReductionNetwork::new(kind, size).fold_experiment_cycles(folds, stream);
        let power = reduction_report(kind, size).power_w;
        let seconds = cycles as f64 / CLOCK_HZ;
        Self { seconds, joules: power * seconds }
    }

    /// Energy-delay product in joule-seconds.
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.joules * self.seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn systolic_totals_by_construction() {
        let r = systolic_report(128, 128);
        assert_eq!(r.pes, 16384);
        assert!((r.area_mm2 - 47.28).abs() < 0.5, "area {}", r.area_mm2);
        assert!((r.power_w - 11.17).abs() < 0.2, "power {}", r.power_w);
    }

    #[test]
    fn peak_tflops_formula() {
        let r = systolic_report(128, 128);
        assert!((r.peak_tflops() - 16.384).abs() < 1e-9);
        assert!((r.effective_tflops(0.5) - 8.192).abs() < 1e-9);
    }

    #[test]
    fn effective_tflops_per_watt_advantage() {
        // Paper Sec. V: SIGMA's speedups yield ~3.2x effective TFLOPS/W
        // despite ~2x power. Using the paper's average efficiencies for
        // sparse GEMMs (SIGMA ~40%, TPU <10%):
        let tpu = systolic_report(128, 128);
        let sig = sigma_report(128, 128);
        let ratio = sig.effective_tflops_per_watt(0.40) / tpu.effective_tflops_per_watt(0.08);
        assert!((2.0..=3.5).contains(&ratio), "TFLOPS/W ratio {ratio}");
    }

    #[test]
    fn energy_scales_with_cycles() {
        let r = systolic_report(16, 16);
        assert!(r.energy_j(2000) > r.energy_j(1000));
        assert!((r.energy_j(1000) - r.power_w * 1000.0 / CLOCK_HZ).abs() < 1e-18);
    }

    #[test]
    fn sigma_dse_shapes() {
        // With 16384 total PEs, bigger DPEs cost more area (Benes grows
        // O(k log k)) — the area side of the Fig. 9 trade-off.
        let a64 = sigma_report(256, 64).area_mm2;
        let a128 = sigma_report(128, 128).area_mm2;
        let a512 = sigma_report(32, 512).area_mm2;
        assert!(a64 < a128 && a128 < a512);
    }

    #[test]
    fn reduction_reports_have_sane_names() {
        assert_eq!(reduction_report(ReductionKind::Fan, 8).name, "FAN");
        assert_eq!(reduction_report(ReductionKind::Art, 8).name, "ART");
        assert_eq!(reduction_report(ReductionKind::Linear, 8).name, "Linear reduction");
    }

    #[test]
    fn controller_cost_anchored_to_paper() {
        let paper = ControllerCost::paper();
        assert!((paper.area_mm2() - 1.4).abs() < 1e-9);
        assert_eq!(ControllerCost::for_instance(128, 128), paper);
        // Smaller instances shrink the controller.
        let small = ControllerCost::for_instance(4, 64);
        assert!(small.area_mm2() < paper.area_mm2());
        assert_eq!(small.src_dest_tables, 4);
        assert_eq!(small.and_gates, 16);
    }

    #[test]
    fn perf_per_area_prefers_fast_and_small() {
        let r = systolic_report(16, 16);
        assert!(r.perf_per_area(1000) > r.perf_per_area(2000));
    }
}
