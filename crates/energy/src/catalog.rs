//! Component-level 28 nm area/power constants.
//!
//! Values are per-instance at the modeled clock; they were calibrated so
//! that the aggregated designs reproduce the paper's published totals (see
//! the crate-level documentation and the tests in `lib.rs`).

/// Modeled clock frequency in Hz. Only relative timing matters for the
/// reproduction; 500 MHz is in the right neighborhood for a 28 nm FP32
/// datapath with single-cycle stages.
pub const CLOCK_HZ: f64 = 500.0e6;

/// Per-component area (mm²) and power (W) constants at 28 nm.
///
/// ```
/// use sigma_energy::ComponentCatalog;
/// let c = ComponentCatalog::cal28nm();
/// assert!(c.fp32_mult_area > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentCatalog {
    /// FP32 multiplier area (mm²).
    pub fp32_mult_area: f64,
    /// FP32 multiplier power (W).
    pub fp32_mult_power: f64,
    /// FP32 two-input adder area (mm²).
    pub fp32_add_area: f64,
    /// FP32 two-input adder power (W).
    pub fp32_add_power: f64,
    /// FP32 three-input adder (ART) area multiplier over a two-input adder.
    pub three_in_add_area_factor: f64,
    /// FP32 three-input adder power multiplier over a two-input adder.
    pub three_in_add_power_factor: f64,
    /// Per-PE operand/stationary registers + local control area (mm²).
    pub pe_regs_area: f64,
    /// Per-PE operand/stationary registers + local control power (W).
    pub pe_regs_power: f64,
    /// One 32-bit 2x2 Benes switch area (mm²).
    pub benes_switch_area: f64,
    /// One 32-bit 2x2 Benes switch power (W).
    pub benes_switch_power: f64,
    /// FAN per-adder overhead (mux + comparator + forwarding wiring) as a
    /// fraction of the two-input adder area.
    pub fan_area_overhead_frac: f64,
    /// FAN per-adder overhead as a fraction of the two-input adder power.
    pub fan_power_overhead_frac: f64,
    /// Linear reduction per-lane accumulator-register area (mm²).
    pub accum_reg_area: f64,
    /// Linear reduction per-lane accumulator-register power (W).
    pub accum_reg_power: f64,
    /// SIGMA global controller area (mm²) — the paper estimates ≈1.4 mm²
    /// for 1024 AND/OR gates, 1024 counters and 128 SRC-DEST tables.
    pub controller_area: f64,
    /// SIGMA global controller power (W).
    pub controller_power: f64,
    /// Per-Flex-DPE share of the inter-DPE NoC switch area (mm²).
    pub noc_switch_area: f64,
    /// Per-Flex-DPE share of the inter-DPE NoC switch power (W).
    pub noc_switch_power: f64,
}

impl ComponentCatalog {
    /// The calibrated 28 nm catalog used throughout the reproduction.
    #[must_use]
    pub fn cal28nm() -> Self {
        Self {
            fp32_mult_area: 1.20e-3,
            fp32_mult_power: 3.00e-4,
            fp32_add_area: 8.00e-4,
            fp32_add_power: 2.00e-4,
            three_in_add_area_factor: 2.12,
            three_in_add_power_factor: 2.00,
            pe_regs_area: 8.86e-4,
            pe_regs_power: 1.82e-4,
            benes_switch_area: 1.20e-4,
            benes_switch_power: 8.00e-5,
            fan_area_overhead_frac: 0.2124,
            fan_power_overhead_frac: 0.411,
            accum_reg_area: 8.0e-5,
            accum_reg_power: 1.5e-5,
            controller_area: 1.4,
            controller_power: 0.30,
            noc_switch_area: 0.008,
            noc_switch_power: 0.010,
        }
    }
}

impl Default for ComponentCatalog {
    fn default() -> Self {
        Self::cal28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_positive() {
        let c = ComponentCatalog::cal28nm();
        for v in [
            c.fp32_mult_area,
            c.fp32_mult_power,
            c.fp32_add_area,
            c.fp32_add_power,
            c.pe_regs_area,
            c.benes_switch_area,
            c.controller_area,
        ] {
            assert!(v > 0.0);
        }
        assert_eq!(ComponentCatalog::default(), ComponentCatalog::cal28nm());
    }

    #[test]
    fn multiplier_larger_than_adder() {
        let c = ComponentCatalog::cal28nm();
        assert!(c.fp32_mult_area > c.fp32_add_area);
        assert!(c.fp32_mult_power > c.fp32_add_power);
    }

    #[test]
    fn three_input_adder_costs_more() {
        let c = ComponentCatalog::cal28nm();
        assert!(c.three_in_add_area_factor > 1.5);
        assert!(c.three_in_add_power_factor > 1.5);
    }
}
