//! 28 nm area / power / energy models for the SIGMA reproduction.
//!
//! The paper's Sec. V reports post-place-and-route numbers for a 128×128
//! TPU-style systolic array and for SIGMA with 128 Flex-DPE-128 units
//! (Fig. 8), plus a component comparison of reduction networks (Fig. 6b).
//! We cannot re-run their 28 nm flow, so this crate provides a
//! component-level analytic model whose constants are **calibrated to the
//! paper's published totals**:
//!
//! * SIGMA: 65.10 mm², 22.33 W (abstract / Fig. 8);
//! * SIGMA's flexible networks cost ≈ 37.7% area over the systolic array
//!   and ≈ 2× power (Sec. V);
//! * at 512 PEs, FAN costs ≈ 10% area / ≈ 31% power over a linear
//!   reduction, while MAERI's ART costs ≈ 92% / ≈ 86% (Sec. IV-A-2).
//!
//! Relative shapes (who is bigger, by what factor, where EDP crosses) are
//! what the reproduction needs; absolute mm²/W are anchored but obviously
//! not signoff-quality.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    warn(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod breakdown;
pub mod catalog;
pub mod report;

pub use breakdown::EnergyBreakdown;
pub use catalog::{ComponentCatalog, CLOCK_HZ};
pub use report::{
    reduction_report, sigma_report, systolic_report, ControllerCost, DesignReport, EnergyDelay,
};

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_interconnect::ReductionKind;

    #[test]
    fn sigma_matches_published_totals() {
        let s = sigma_report(128, 128);
        assert!(
            (s.area_mm2 - 65.10).abs() / 65.10 < 0.05,
            "SIGMA area {} vs published 65.10 mm2",
            s.area_mm2
        );
        assert!(
            (s.power_w - 22.33).abs() / 22.33 < 0.05,
            "SIGMA power {} vs published 22.33 W",
            s.power_w
        );
    }

    #[test]
    fn sigma_overheads_over_systolic() {
        let tpu = systolic_report(128, 128);
        let s = sigma_report(128, 128);
        let area_overhead = s.area_mm2 / tpu.area_mm2 - 1.0;
        assert!(
            (area_overhead - 0.377).abs() < 0.07,
            "area overhead {area_overhead} vs paper 37.7%"
        );
        let power_ratio = s.power_w / tpu.power_w;
        assert!((1.6..=2.4).contains(&power_ratio), "power ratio {power_ratio} vs paper ~2x");
    }

    #[test]
    fn fan_and_art_overheads_at_512() {
        let lin = reduction_report(ReductionKind::Linear, 512);
        let fan = reduction_report(ReductionKind::Fan, 512);
        let art = reduction_report(ReductionKind::Art, 512);
        let fan_area = fan.area_mm2 / lin.area_mm2 - 1.0;
        let fan_power = fan.power_w / lin.power_w - 1.0;
        let art_area = art.area_mm2 / lin.area_mm2 - 1.0;
        let art_power = art.power_w / lin.power_w - 1.0;
        assert!((fan_area - 0.10).abs() < 0.03, "FAN area overhead {fan_area} vs 10%");
        assert!((fan_power - 0.31).abs() < 0.05, "FAN power overhead {fan_power} vs 31%");
        assert!((art_area - 0.92).abs() < 0.10, "ART area overhead {art_area} vs 92%");
        assert!((art_power - 0.86).abs() < 0.10, "ART power overhead {art_power} vs 86%");
    }

    #[test]
    fn fan_edp_wins_from_128_pes() {
        // Paper: "FAN also provides EDP benefits over linear starting from
        // 128-PE. At 512-PE, FAN's EDP is 45% and 34% lower than linear and
        // ART respectively."
        let folds = 100;
        let stream = 1000;
        for n in [128usize, 256, 512] {
            let lin = EnergyDelay::of_fold_experiment(ReductionKind::Linear, n, folds, stream);
            let fan = EnergyDelay::of_fold_experiment(ReductionKind::Fan, n, folds, stream);
            assert!(fan.edp() < lin.edp(), "FAN EDP should win at {n} PEs");
        }
        let lin = EnergyDelay::of_fold_experiment(ReductionKind::Linear, 512, folds, stream);
        let fan = EnergyDelay::of_fold_experiment(ReductionKind::Fan, 512, folds, stream);
        let vs_lin = 1.0 - fan.edp() / lin.edp();
        assert!((0.3..=0.55).contains(&vs_lin), "FAN EDP vs linear: {vs_lin} (paper 45%)");
        // FAN vs ART have identical delay, so Fig. 6b-iv's gap is the
        // network power gap: compare network-only.
        let fan_n =
            EnergyDelay::of_fold_experiment_network_only(ReductionKind::Fan, 512, folds, stream);
        let art_n =
            EnergyDelay::of_fold_experiment_network_only(ReductionKind::Art, 512, folds, stream);
        let vs_art = 1.0 - fan_n.edp() / art_n.edp();
        assert!((0.2..=0.45).contains(&vs_art), "FAN EDP vs ART: {vs_art} (paper 34%)");
    }

    #[test]
    fn small_pe_counts_favor_linear_edp() {
        // Below the crossover the drain saving cannot pay for FAN's power.
        let lin = EnergyDelay::of_fold_experiment(ReductionKind::Linear, 16, 100, 1000);
        let fan = EnergyDelay::of_fold_experiment(ReductionKind::Fan, 16, 100, 1000);
        assert!(fan.edp() > lin.edp(), "at 16 PEs linear should win EDP");
    }
}
