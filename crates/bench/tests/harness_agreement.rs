//! Integration tests for the shared experiment harness: every registered
//! engine must agree with the reference GEMM on a shared problem set, and
//! a sweep must be bit-for-bit deterministic regardless of thread count.

use sigma_bench::harness::{
    default_registry, demo_suite, records_table, records_to_json, Sweep, WorkloadSpec,
};
use sigma_core::model::GemmProblem;
use sigma_matrix::GemmShape;
use sigma_workloads::materialize;

fn suite() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::new("dense-24", GemmProblem::dense(GemmShape::new(24, 24, 24))),
        WorkloadSpec::new("sparse-40", GemmProblem::sparse(GemmShape::new(40, 40, 40), 0.5, 0.2)),
        WorkloadSpec::new("irregular", GemmProblem::sparse(GemmShape::new(17, 33, 9), 0.7, 0.6)),
    ]
}

/// Every engine in the registry, on every workload, reproduces the
/// reference GEMM within the sweep's tolerance. This is the cross-engine
/// agreement contract the whole figure pipeline rests on.
#[test]
fn every_registered_engine_agrees_with_the_reference() {
    let records = Sweep::new(suite()).with_seed(42).run(&default_registry());
    assert_eq!(records.len(), default_registry().len() * suite().len());
    for r in &records {
        assert!(r.error.is_none(), "{} on {}: {:?}", r.engine, r.workload, r.error);
        assert!(
            r.verified,
            "{} on {} diverged from the reference (max abs err {})",
            r.engine, r.workload, r.max_abs_err
        );
    }
}

/// The sweep's per-workload seeding is reproducible: materializing the
/// same workload with the recorded seed yields operands whose useful-MAC
/// count matches what the engines saw.
#[test]
fn recorded_seeds_reproduce_the_operands() {
    let records = Sweep::new(suite()).with_seed(7).run(&default_registry());
    for r in records.iter().take(suite().len()) {
        let spec = suite().into_iter().find(|w| w.name == r.workload).unwrap();
        let (a, b) = materialize(&spec.problem, r.seed);
        let macs = sigma_baselines::useful_macs(&a, &b);
        assert_eq!(macs, r.useful_macs, "{}: operands do not reproduce", r.workload);
    }
}

/// Two sweeps with the same seed emit byte-identical CSV and JSON, and a
/// parallel run (>= 4 threads) matches a serial one record-for-record —
/// thread scheduling must never leak into results or their order.
#[test]
fn same_seed_sweeps_are_byte_identical_across_thread_counts() {
    let registry = default_registry;
    let serial = Sweep::new(demo_suite()).with_seed(99).with_threads(1).run(&registry());
    let parallel = Sweep::new(demo_suite()).with_seed(99).with_threads(4).run(&registry());
    let again = Sweep::new(demo_suite()).with_seed(99).with_threads(4).run(&registry());

    let csv = |rs: &[_]| records_table("determinism", rs).to_csv();
    assert_eq!(csv(&serial), csv(&parallel), "parallel CSV differs from serial");
    assert_eq!(csv(&parallel), csv(&again), "same-seed CSV not reproducible");
    assert_eq!(
        records_to_json(&parallel),
        records_to_json(&again),
        "same-seed JSON not reproducible"
    );
    assert_eq!(records_to_json(&serial), records_to_json(&parallel));
}

/// Changing the sweep seed changes the sampled operands (and therefore
/// the recorded per-workload seeds), so runs are not accidentally pinned.
#[test]
fn different_seeds_sample_different_operands() {
    let a = Sweep::new(suite()).with_seed(1).run(&default_registry());
    let b = Sweep::new(suite()).with_seed(2).run(&default_registry());
    assert!(a.iter().zip(&b).any(|(x, y)| x.seed != y.seed));
}
