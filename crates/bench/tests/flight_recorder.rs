//! End-to-end contract for the flight recorder (ISSUE 9 acceptance):
//! a ≥ 32-cell sweep recorded with an enabled recorder must round-trip
//! through the JSONL event log into a Perfetto trace that passes
//! `validate_chrome_trace`, its per-stage histogram counts must
//! reconcile with the sweep's own cell/attempt/cache counters, and a
//! disabled recorder must leave the sweep's outputs byte-identical.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sigma_bench::harness::{
    build_report, default_registry, demo_suite, read_event_log, records_table, records_to_json,
    write_event_log, RunCache, Sweep,
};
use sigma_telemetry::{FlightRecorder, Gauge, Stage, Telemetry};

/// A deterministic injected clock: strictly increasing, no wall time.
fn tick_clock() -> impl Fn() -> u64 + Send + Sync + 'static {
    let tick = Arc::new(AtomicU64::new(0));
    move || tick.fetch_add(13, Ordering::Relaxed)
}

#[test]
fn recorded_sweep_round_trips_into_a_validated_trace() {
    let workloads = demo_suite();
    let engines = default_registry();
    let cells = (engines.len() * workloads.len()) as u64;
    assert!(cells >= 32, "acceptance demands a >= 32-cell grid, got {cells}");

    let recorder = FlightRecorder::with_clock(65_536, tick_clock());
    let telemetry = Telemetry::enabled();
    let records = Sweep::new(workloads)
        .with_seed(7)
        .with_threads(2)
        .with_flight_recorder(recorder.clone())
        .with_telemetry_registry(telemetry.clone())
        .run(&engines);
    assert_eq!(records.len() as u64, cells);

    let dir = std::env::temp_dir().join("sigma_flight_it");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sweep.flight.jsonl");
    let flight = recorder.snapshot();
    write_event_log(&path, "flight integration", &flight, &telemetry.snapshot()).unwrap();

    let log = read_event_log(&path).unwrap();
    assert!(log.warnings.is_empty(), "clean log must parse warning-free: {:?}", log.warnings);
    assert_eq!(log.dropped_spans, 0, "65k-span capacity must hold a demo grid");

    // Per-stage counts reconcile with the sweep's own counters.
    let attempts: u64 = records.iter().map(|r| u64::from(r.attempts)).sum();
    let count = |s: Stage| log.stage(s).map_or(0, |h| h.count);
    assert_eq!(count(Stage::QueueWait), cells, "one queue-wait span per cell");
    assert_eq!(count(Stage::EngineRun), attempts, "one engine-run span per attempt");
    assert_eq!(count(Stage::RetryBackoff), 0, "healthy engines never retry");
    assert_eq!(count(Stage::WatchdogCancel), 0, "healthy engines never time out");
    assert_eq!(count(Stage::CacheProbe), 0, "no cache attached, no probes");

    // Gauges landed at the final grid state.
    assert_eq!(log.gauges.iter().find(|(n, _)| n == "cells_total").map(|(_, v)| *v), Some(cells));
    assert_eq!(
        log.gauges.iter().find(|(n, _)| n == "cells_completed").map(|(_, v)| *v),
        Some(cells)
    );
    assert!(!log.snaps.is_empty(), "execute() emits periodic gauge snapshots");

    // The rendered trace self-validates in build_report; spot-check shape.
    let report = build_report(&log).expect("trace must pass validate_chrome_trace");
    assert!(report.summary.span_count > 0);
    assert!(report.summary.counter_count as usize >= Gauge::ALL.len());
    let rendered = report.table.render();
    assert!(rendered.contains("engine_run"), "stage table lists every stage:\n{rendered}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cached_sweep_probes_reconcile_with_cache_stats() {
    let workloads = demo_suite();
    let engines = default_registry();

    let dir = std::env::temp_dir().join("sigma_flight_cache_it");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let recorder = FlightRecorder::with_clock(65_536, tick_clock());
    let cache = Arc::new(
        RunCache::open(&dir.join("cache.jsonl"), 256)
            .unwrap()
            .with_flight_recorder(recorder.clone()),
    );
    let sweep = Sweep::new(workloads)
        .with_seed(7)
        .with_flight_recorder(recorder.clone())
        .with_cache(Arc::clone(&cache));
    let cold = sweep.run(&engines);
    let warm = sweep.run(&engines);
    assert_eq!(records_to_json(&cold), records_to_json(&warm));

    let stats = cache.stats();
    let snap = recorder.snapshot();
    let count = |s: Stage| snap.stage(s.name()).map_or(0, |h| h.count);
    assert_eq!(
        count(Stage::CacheProbe),
        stats.hits + stats.misses + stats.coalesced,
        "every lookup outcome times exactly one probe span"
    );
    assert_eq!(count(Stage::CacheInsert), stats.insertions);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disabled_recorder_leaves_outputs_byte_identical() {
    let workloads: Vec<_> = demo_suite().into_iter().take(2).collect();
    let engines = default_registry();
    let plain = Sweep::new(workloads.clone()).with_seed(7).run(&engines);
    let off = Sweep::new(workloads)
        .with_seed(7)
        .with_flight_recorder(FlightRecorder::off())
        .run(&engines);
    assert_eq!(plain, off);
    assert_eq!(records_to_json(&plain), records_to_json(&off));
    assert_eq!(
        records_table("flight parity", &plain).to_csv(),
        records_table("flight parity", &off).to_csv()
    );
}
