//! Property tests tying traces, stats, and the Perfetto exporter
//! together across the whole engine fleet.
//!
//! Two contracts:
//!
//! 1. Any engine that returns a [`Trace`](sigma_core::Trace) must return
//!    one whose per-phase totals reconcile with its
//!    [`CycleStats`](sigma_core::CycleStats) — the trace is the
//!    authoritative decomposition of the Table-II totals, not decoration.
//! 2. The Chrome trace-event rendering of any such trace must pass the
//!    scanner validator, and its per-phase track durations must sum back
//!    to the stats' phase totals (and overall total) exactly.

use proptest::prelude::*;
use sigma_core::model::GemmProblem;
use sigma_core::{validate_chrome_trace, Dataflow, SigmaConfig, SigmaSim};
use sigma_matrix::GemmShape;
use sigma_workloads::materialize;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contract 1 over the full registry: every produced trace is
    /// consistent with its run's stats, across random shapes and
    /// sparsities.
    #[test]
    fn every_engine_trace_reconciles_with_its_stats(
        m in 1usize..20, n in 1usize..20, k in 1usize..16,
        da in 0u8..=10, db in 0u8..=10, seed in any::<u64>()
    ) {
        let p = GemmProblem::sparse(
            GemmShape::new(m, n, k),
            f64::from(da) / 10.0,
            f64::from(db) / 10.0,
        );
        let (a, b) = materialize(&p, seed);
        for entry in sigma_bench::harness::default_registry() {
            // An engine may refuse a shape (config limits); only produced
            // traces are under test here.
            if let Ok(run) = entry.engine.run(&a, &b) {
                if let Some(trace) = &run.trace {
                    prop_assert!(
                        trace.consistent_with(&run.stats),
                        "engine {} returned an inconsistent trace \
                         (load {} stream {} drain {} vs stats {})",
                        entry.slug,
                        trace.phase_cycles(sigma_core::Phase::Load),
                        trace.phase_cycles(sigma_core::Phase::Stream),
                        trace.phase_cycles(sigma_core::Phase::Drain),
                        run.stats.total_cycles()
                    );
                }
            }
        }
    }

    /// Contract 2: the Perfetto export of a SIGMA trace survives
    /// validation and its track durations sum to the stats totals, for
    /// every dataflow and random geometry.
    #[test]
    fn chrome_trace_tracks_sum_to_cycle_stats(
        m in 1usize..24, n in 1usize..24, k in 1usize..20,
        da in 0u8..=10, db in 0u8..=10,
        dpes in 1usize..4, log_size in 2u32..5,
        seed in any::<u64>()
    ) {
        let dataflow = match seed % 3 {
            0 => Dataflow::WeightStationary,
            1 => Dataflow::InputStationary,
            _ => Dataflow::NoLocalReuse,
        };
        let p = GemmProblem::sparse(
            GemmShape::new(m, n, k),
            f64::from(da) / 10.0,
            f64::from(db) / 10.0,
        );
        let (a, b) = materialize(&p, seed);
        let cfg = SigmaConfig::new(dpes, 1 << log_size, 1 << log_size, dataflow).unwrap();
        let sim = SigmaSim::new(cfg).unwrap();
        let (run, trace) = sim.run_gemm_traced(&a, &b).unwrap();

        let json = trace.to_chrome_trace("proptest").to_json();
        let summary = validate_chrome_trace(&json);
        prop_assert!(summary.is_ok(), "invalid chrome trace: {:?}", summary.err());
        let summary = summary.unwrap();

        prop_assert_eq!(
            summary.track("phase: load").unwrap_or(0),
            run.stats.loading_cycles
        );
        prop_assert_eq!(
            summary.track("phase: stream").unwrap_or(0),
            run.stats.streaming_cycles
        );
        prop_assert_eq!(
            summary.track("phase: drain").unwrap_or(0),
            run.stats.add_cycles
        );
        prop_assert_eq!(summary.total_duration, run.stats.total_cycles());
        prop_assert_eq!(summary.span_count, trace.events().len());
    }
}
