//! Golden-structure test: every regenerated figure keeps its identity —
//! title, column count and a sane row count — so a refactor cannot
//! silently drop an experiment from `all_figures` / `EXPERIMENTS.md`.

use sigma_bench::figs;

#[test]
fn all_figures_present_with_expected_structure() {
    let tables = figs::all_tables();
    // (title fragment, columns, minimum rows)
    let expected: Vec<(&str, usize, usize)> = vec![
        ("Table I", 3, 4),
        ("Fig. 1b", 6, 12),
        ("Fig. 2", 4, 12),
        ("Fig. 3a", 3, 10),
        ("Fig. 3b", 4, 10),
        ("Fig. 4", 5, 6),
        ("Fig. 6b", 6, 18),
        ("Fig. 7", 8, 9),
        ("Fig. 8", 7, 2),
        ("Fig. 9", 6, 7),
        ("Fig. 10", 8, 12),
        ("Fig. 11", 4, 7),
        ("Fig. 12a", 6, 7),
        ("Fig. 12b", 5, 7),
        ("Fig. 13", 3, 8),
        ("Fig. 13 companion", 7, 7),
        ("Fig. 14", 7, 7),
        ("Table III", 4, 7),
        ("Ablation — distribution", 5, 5),
        ("Ablation — reduction", 4, 3),
        ("Ablation — SRAM", 3, 5),
        ("Ablation — front-end", 4, 4),
        ("Ablation — fold packing", 5, 2),
        ("Functional engines", 5, 11),
    ];
    assert_eq!(tables.len(), expected.len(), "figure count changed");
    for ((fragment, cols, min_rows), table) in expected.into_iter().zip(&tables) {
        assert!(
            table.title.contains(fragment),
            "expected a table titled with {fragment:?}, got {:?}",
            table.title
        );
        assert_eq!(table.headers.len(), cols, "{fragment}: column count");
        assert!(
            table.rows.len() >= min_rows,
            "{fragment}: only {} rows (expected >= {min_rows})",
            table.rows.len()
        );
        for row in &table.rows {
            assert!(row.iter().all(|c| !c.is_empty()), "{fragment}: empty cell");
        }
    }
}

#[test]
fn csv_rendering_is_parseable() {
    for table in figs::all_tables() {
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), table.rows.len() + 1);
        let header_cols = lines[0].split(',').count();
        assert!(header_cols >= table.headers.len() - 1, "{}", table.title);
        assert!(!table.slug().is_empty());
    }
}
