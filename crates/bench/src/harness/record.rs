//! The structured result row every sweep produces, and its CSV/JSON
//! renderings.

use crate::util::{json_string, Table};
use sigma_core::model::GemmProblem;
use sigma_core::EngineRun;

/// Revision of the [`RunRecord`] layout itself (fields, column order,
/// rendering). Content keys fold it in, so bumping it when a field is
/// added or re-rendered invalidates every persisted cell instead of
/// replaying records whose layout no longer matches this code.
pub const RECORD_SCHEMA: u32 = 1;

/// How an (engine, workload) cell terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The engine returned a result.
    Ok,
    /// The engine refused the problem with an [`EngineError`]
    /// (dimension mismatch, config limit, non-finite operand, ...).
    ///
    /// [`EngineError`]: sigma_core::EngineError
    Error,
    /// The engine panicked; the sweep caught it and carried on.
    Panic,
    /// The engine exceeded the watchdog budget and was abandoned.
    Timeout,
    /// The engine exhausted its budget repeatedly and the sweep fell
    /// back to the analytic model: the record carries the fallback's
    /// numbers, not the original engine's.
    Degraded,
}

impl RunStatus {
    /// Parses the CSV/JSON rendering back into a status (journal replay).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ok" => Some(RunStatus::Ok),
            "error" => Some(RunStatus::Error),
            "panic" => Some(RunStatus::Panic),
            "timeout" => Some(RunStatus::Timeout),
            "degraded" => Some(RunStatus::Degraded),
            _ => None,
        }
    }
}

impl std::fmt::Display for RunStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RunStatus::Ok => "ok",
            RunStatus::Error => "error",
            RunStatus::Panic => "panic",
            RunStatus::Timeout => "timeout",
            RunStatus::Degraded => "degraded",
        })
    }
}

/// Harness-level profiling of one sweep cell: wall time, retry count,
/// and an operand-footprint proxy for peak memory.
///
/// The default profile is all-zero with one attempt, which is what every
/// cell reports when sweep telemetry is off — keeping the CSV/JSON output
/// byte-identical to a telemetry-free harness (`wall_ms` renders as
/// `0.000` deterministically).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellProfile {
    /// Wall-clock time of the cell in milliseconds (0.0 when sweep
    /// telemetry is off, so records stay deterministic).
    pub wall_ms: f64,
    /// Executions the cell took: 1 plus any watchdog/panic retries.
    pub attempts: u32,
    /// Deterministic operand-footprint proxy in bytes (nnz of both
    /// operands times the element + index cost).
    pub mem_est_bytes: u64,
}

impl Default for CellProfile {
    fn default() -> Self {
        Self { wall_ms: 0.0, attempts: 1, mem_est_bytes: 0 }
    }
}

/// One (engine, workload) execution, flattened for CSV/JSON emission.
///
/// Field order here is the column order of [`records_table`] and the key
/// order of [`records_to_json`]; both are fixed so two identical sweeps
/// render byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Registry slug of the engine.
    pub engine_slug: String,
    /// Human-readable engine name.
    pub engine: String,
    /// Workload name.
    pub workload: String,
    /// GEMM rows.
    pub m: usize,
    /// GEMM columns.
    pub n: usize,
    /// Contraction length.
    pub k: usize,
    /// Density of the MK operand.
    pub density_a: f64,
    /// Density of the KN operand.
    pub density_b: f64,
    /// Seed the operands were materialized from.
    pub seed: u64,
    /// PEs in the engine.
    pub pes: usize,
    /// Table-II loading cycles.
    pub loading_cycles: u64,
    /// Table-II streaming cycles.
    pub streaming_cycles: u64,
    /// Table-II add cycles.
    pub add_cycles: u64,
    /// Total cycles.
    pub total_cycles: u64,
    /// Stationary folds executed.
    pub folds: u64,
    /// Useful (both-non-zero) MACs.
    pub useful_macs: u128,
    /// Issued MACs.
    pub issued_macs: u128,
    /// Stationary utilization in [0, 1].
    pub stationary_utilization: f64,
    /// Compute efficiency in [0, 1].
    pub compute_efficiency: f64,
    /// Overall efficiency in [0, 1].
    pub overall_efficiency: f64,
    /// Max absolute element error vs the reference GEMM.
    pub max_abs_err: f64,
    /// Whether the result matched the reference within tolerance.
    pub verified: bool,
    /// How the cell terminated (`ok | error | panic | timeout`).
    pub status: RunStatus,
    /// Fault events that fired during the run (fault campaigns only).
    pub faults_injected: u64,
    /// Fault effects detected by the ABFT checksums.
    pub faults_detected: u64,
    /// Fault effects remediated with the result verified correct.
    pub faults_corrected: u64,
    /// Fault effects that left the final result wrong.
    pub faults_escaped: u64,
    /// Benes route-cache hits across the run.
    pub route_cache_hits: u64,
    /// Benes route-cache misses (cold routings) across the run.
    pub route_cache_misses: u64,
    /// Dead streaming cycles (no non-zero operand) the event scheduler
    /// fast-forwarded; still included in `streaming_cycles`/`total_cycles`.
    pub idle_cycles_skipped: u64,
    /// Wall-clock milliseconds the cell took (0.0 unless sweep telemetry
    /// was on).
    pub wall_ms: f64,
    /// Executions the cell took (1 + retries).
    pub attempts: u32,
    /// Deterministic operand-memory proxy in bytes.
    pub mem_est_bytes: u64,
    /// Engine error / panic / timeout message, when the cell failed.
    pub error: Option<String>,
}

impl RunRecord {
    /// Column headers, in field order.
    pub const HEADERS: [&'static str; 34] = [
        "engine_slug",
        "engine",
        "workload",
        "m",
        "n",
        "k",
        "density_a",
        "density_b",
        "seed",
        "pes",
        "loading_cycles",
        "streaming_cycles",
        "add_cycles",
        "total_cycles",
        "folds",
        "useful_macs",
        "issued_macs",
        "stationary_utilization",
        "compute_efficiency",
        "overall_efficiency",
        "max_abs_err",
        "verified",
        "status",
        "faults_injected",
        "faults_detected",
        "faults_corrected",
        "faults_escaped",
        "route_cache_hits",
        "route_cache_misses",
        "idle_cycles_skipped",
        "wall_ms",
        "attempts",
        "mem_est_bytes",
        "error",
    ];

    /// Builds a record from a successful engine run.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn from_run(
        slug: &str,
        engine_name: &str,
        pes: usize,
        workload: &str,
        problem: &GemmProblem,
        seed: u64,
        run: &EngineRun,
        max_abs_err: f64,
        verified: bool,
        profile: CellProfile,
    ) -> Self {
        let s = &run.stats;
        Self {
            engine_slug: slug.to_string(),
            engine: engine_name.to_string(),
            workload: workload.to_string(),
            m: problem.shape.m,
            n: problem.shape.n,
            k: problem.shape.k,
            density_a: problem.density_a,
            density_b: problem.density_b,
            seed,
            pes,
            loading_cycles: s.loading_cycles,
            streaming_cycles: s.streaming_cycles,
            add_cycles: s.add_cycles,
            total_cycles: s.total_cycles(),
            folds: s.folds,
            useful_macs: s.useful_macs,
            issued_macs: s.issued_macs,
            stationary_utilization: s.stationary_utilization(),
            compute_efficiency: s.compute_efficiency(),
            overall_efficiency: s.overall_efficiency(),
            max_abs_err,
            verified,
            status: RunStatus::Ok,
            faults_injected: s.faults_injected,
            faults_detected: s.faults_detected,
            faults_corrected: s.faults_corrected,
            faults_escaped: s.faults_escaped,
            route_cache_hits: s.route_cache_hits,
            route_cache_misses: s.route_cache_misses,
            idle_cycles_skipped: s.idle_cycles_skipped,
            wall_ms: profile.wall_ms,
            attempts: profile.attempts,
            mem_est_bytes: profile.mem_est_bytes,
            error: None,
        }
    }

    /// Builds a record for an engine that refused the problem.
    #[must_use]
    pub fn from_error(
        slug: &str,
        engine_name: &str,
        pes: usize,
        workload: &str,
        problem: &GemmProblem,
        seed: u64,
        error: String,
    ) -> Self {
        Self::from_failure(
            slug,
            engine_name,
            pes,
            workload,
            problem,
            seed,
            RunStatus::Error,
            error,
            CellProfile::default(),
        )
    }

    /// Builds a record for a cell that did not produce a result: an
    /// engine error, a caught panic, or a watchdog timeout.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn from_failure(
        slug: &str,
        engine_name: &str,
        pes: usize,
        workload: &str,
        problem: &GemmProblem,
        seed: u64,
        status: RunStatus,
        error: String,
        profile: CellProfile,
    ) -> Self {
        Self {
            engine_slug: slug.to_string(),
            engine: engine_name.to_string(),
            workload: workload.to_string(),
            m: problem.shape.m,
            n: problem.shape.n,
            k: problem.shape.k,
            density_a: problem.density_a,
            density_b: problem.density_b,
            seed,
            pes,
            loading_cycles: 0,
            streaming_cycles: 0,
            add_cycles: 0,
            total_cycles: 0,
            folds: 0,
            useful_macs: 0,
            issued_macs: 0,
            stationary_utilization: 0.0,
            compute_efficiency: 0.0,
            overall_efficiency: 0.0,
            max_abs_err: f64::INFINITY,
            verified: false,
            status,
            faults_injected: 0,
            faults_detected: 0,
            faults_corrected: 0,
            faults_escaped: 0,
            route_cache_hits: 0,
            route_cache_misses: 0,
            idle_cycles_skipped: 0,
            wall_ms: profile.wall_ms,
            attempts: profile.attempts,
            mem_est_bytes: profile.mem_est_bytes,
            error: Some(error),
        }
    }

    /// The record as one table row, in [`Self::HEADERS`] order.
    #[must_use]
    pub fn row(&self) -> Vec<String> {
        vec![
            self.engine_slug.clone(),
            self.engine.clone(),
            self.workload.clone(),
            self.m.to_string(),
            self.n.to_string(),
            self.k.to_string(),
            format!("{:?}", self.density_a),
            format!("{:?}", self.density_b),
            self.seed.to_string(),
            self.pes.to_string(),
            self.loading_cycles.to_string(),
            self.streaming_cycles.to_string(),
            self.add_cycles.to_string(),
            self.total_cycles.to_string(),
            self.folds.to_string(),
            self.useful_macs.to_string(),
            self.issued_macs.to_string(),
            format!("{:.6}", self.stationary_utilization),
            format!("{:.6}", self.compute_efficiency),
            format!("{:.6}", self.overall_efficiency),
            format!("{:e}", self.max_abs_err),
            self.verified.to_string(),
            self.status.to_string(),
            self.faults_injected.to_string(),
            self.faults_detected.to_string(),
            self.faults_corrected.to_string(),
            self.faults_escaped.to_string(),
            self.route_cache_hits.to_string(),
            self.route_cache_misses.to_string(),
            self.idle_cycles_skipped.to_string(),
            format!("{:.3}", self.wall_ms),
            self.attempts.to_string(),
            self.mem_est_bytes.to_string(),
            self.error.clone().unwrap_or_default(),
        ]
    }

    /// The record as one JSON object (stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let kv: Vec<(&str, String)> = vec![
            ("engine_slug", json_string(&self.engine_slug)),
            ("engine", json_string(&self.engine)),
            ("workload", json_string(&self.workload)),
            ("m", self.m.to_string()),
            ("n", self.n.to_string()),
            ("k", self.k.to_string()),
            ("density_a", format!("{:?}", self.density_a)),
            ("density_b", format!("{:?}", self.density_b)),
            ("seed", self.seed.to_string()),
            ("pes", self.pes.to_string()),
            ("loading_cycles", self.loading_cycles.to_string()),
            ("streaming_cycles", self.streaming_cycles.to_string()),
            ("add_cycles", self.add_cycles.to_string()),
            ("total_cycles", self.total_cycles.to_string()),
            ("folds", self.folds.to_string()),
            ("useful_macs", self.useful_macs.to_string()),
            ("issued_macs", self.issued_macs.to_string()),
            ("stationary_utilization", format!("{:?}", self.stationary_utilization)),
            ("compute_efficiency", format!("{:?}", self.compute_efficiency)),
            ("overall_efficiency", format!("{:?}", self.overall_efficiency)),
            (
                "max_abs_err",
                if self.max_abs_err.is_finite() {
                    format!("{:?}", self.max_abs_err)
                } else {
                    "null".to_string()
                },
            ),
            ("verified", self.verified.to_string()),
            ("status", json_string(&self.status.to_string())),
            ("faults_injected", self.faults_injected.to_string()),
            ("faults_detected", self.faults_detected.to_string()),
            ("faults_corrected", self.faults_corrected.to_string()),
            ("faults_escaped", self.faults_escaped.to_string()),
            ("route_cache_hits", self.route_cache_hits.to_string()),
            ("route_cache_misses", self.route_cache_misses.to_string()),
            ("idle_cycles_skipped", self.idle_cycles_skipped.to_string()),
            ("wall_ms", format!("{:.3}", self.wall_ms)),
            ("attempts", self.attempts.to_string()),
            ("mem_est_bytes", self.mem_est_bytes.to_string()),
            ("error", self.error.as_deref().map_or_else(|| "null".to_string(), json_string)),
        ];
        let body: Vec<String> =
            kv.into_iter().map(|(k, v)| format!("{}: {v}", json_string(k))).collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Renders records as a [`Table`] (text and CSV come for free).
#[must_use]
pub fn records_table(title: impl Into<String>, records: &[RunRecord]) -> Table {
    let mut t = Table::new(title, &RunRecord::HEADERS);
    for r in records {
        t.push(r.row());
    }
    t
}

/// Renders records as a JSON array, one object per record, stable key
/// order — byte-identical for identical sweeps.
#[must_use]
pub fn records_to_json(records: &[RunRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&r.to_json());
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_core::CycleStats;
    use sigma_matrix::{GemmShape, Matrix};

    fn sample() -> RunRecord {
        let p = GemmProblem::sparse(GemmShape::new(4, 5, 6), 0.5, 0.25);
        let run = EngineRun::new(
            Matrix::zeros(4, 5),
            CycleStats { streaming_cycles: 10, pes: 8, ..CycleStats::default() },
        );
        RunRecord::from_run(
            "eng",
            "Engine",
            8,
            "wl",
            &p,
            7,
            &run,
            1e-6,
            true,
            CellProfile::default(),
        )
    }

    #[test]
    fn row_width_matches_headers() {
        assert_eq!(sample().row().len(), RunRecord::HEADERS.len());
        let p = GemmProblem::dense(GemmShape::new(2, 2, 2));
        let err = RunRecord::from_error("e", "E", 1, "w", &p, 0, "boom".into());
        assert_eq!(err.row().len(), RunRecord::HEADERS.len());
        assert!(!err.verified);
        assert_eq!(err.status, RunStatus::Error);
    }

    #[test]
    fn status_column_reflects_failure_kind() {
        let p = GemmProblem::dense(GemmShape::new(2, 2, 2));
        let profile = CellProfile::default();
        let panic = RunRecord::from_failure(
            "e",
            "E",
            1,
            "w",
            &p,
            0,
            RunStatus::Panic,
            "kaboom".into(),
            profile,
        );
        let timeout = RunRecord::from_failure(
            "e",
            "E",
            1,
            "w",
            &p,
            0,
            RunStatus::Timeout,
            "wedged".into(),
            profile,
        );
        let status_col = RunRecord::HEADERS.iter().position(|h| *h == "status").unwrap();
        assert_eq!(panic.row()[status_col], "panic");
        assert_eq!(timeout.row()[status_col], "timeout");
        assert_eq!(sample().row()[status_col], "ok");
        assert!(panic.to_json().contains("\"status\": \"panic\""));
        assert!(timeout.to_json().contains("\"status\": \"timeout\""));
    }

    #[test]
    fn json_is_stable_and_escapes() {
        let r = sample();
        assert_eq!(r.to_json(), r.clone().to_json());
        let j = records_to_json(&[r.clone(), r]);
        assert!(j.starts_with("[\n"));
        assert!(j.ends_with("]\n"));
        assert!(j.contains("\"engine_slug\": \"eng\""));
        assert!(j.contains("\"error\": null"));
        assert_eq!(j.matches("\"total_cycles\"").count(), 2);
    }

    #[test]
    fn profile_and_route_cache_columns_render() {
        let mut r = sample();
        assert!(r.to_json().contains("\"wall_ms\": 0.000"), "default profile is deterministic");
        assert!(r.to_json().contains("\"attempts\": 1"));
        r.wall_ms = 12.3456;
        r.attempts = 3;
        r.mem_est_bytes = 4096;
        r.route_cache_hits = 9;
        r.route_cache_misses = 2;
        r.idle_cycles_skipped = 17;
        let row = r.row();
        let col = |name: &str| RunRecord::HEADERS.iter().position(|h| *h == name).unwrap();
        assert_eq!(row[col("wall_ms")], "12.346");
        assert_eq!(row[col("attempts")], "3");
        assert_eq!(row[col("mem_est_bytes")], "4096");
        assert_eq!(row[col("route_cache_hits")], "9");
        assert_eq!(row[col("route_cache_misses")], "2");
        assert_eq!(row[col("idle_cycles_skipped")], "17");
        assert!(r.to_json().contains("\"route_cache_hits\": 9"));
        assert!(r.to_json().contains("\"idle_cycles_skipped\": 17"));
    }

    #[test]
    fn table_rendering_round_trips() {
        let t = records_table("sweep", &[sample()]);
        assert_eq!(t.headers.len(), RunRecord::HEADERS.len());
        assert_eq!(t.rows.len(), 1);
        assert!(t.to_csv().lines().count() == 2);
    }
}
