//! The write-ahead run journal: crash-safe memoization of sweep cells.
//!
//! A killed or OOM'd sweep process used to lose every completed cell.
//! The journal closes that gap: each finished cell's [`RunRecord`] is
//! appended (and fsynced) as **one canonical JSON line** keyed by its
//! [`CellKey`] — digest plus the full canonical cell identity — so
//! [`Sweep::resume`](crate::harness::Sweep::resume) can replay the
//! file, skip completed cells, and produce final CSV/JSON output
//! byte-identical to an uninterrupted run. The same line format and
//! writer back the persistent [`RunCache`](crate::harness::RunCache).
//!
//! # Crash model
//!
//! * **Appends** go straight to the journal file followed by
//!   `sync_data`, so a SIGKILL can lose at most the line being written —
//!   which then survives as a *truncated final line*. Replay tolerates
//!   it (skip-and-warn); every earlier line is durable.
//! * **Rotation/compaction** rewrites the whole journal through a
//!   sibling temp file, fsyncs it, and atomically renames it over the
//!   journal — a crash mid-compaction leaves either the old or the new
//!   file, never a torn one. This is the only non-append write path, and
//!   the sigma-lint D6 rule holds the harness to it.
//! * **Corruption** (garbage bytes, duplicate keys, stale schema
//!   versions, keys from a different suite) is skipped line-by-line with
//!   a warning; one bad line never poisons the rest of the journal.
//!
//! # Key canonicalization
//!
//! Cells are addressed by [`CellKey`] (see
//! [`cache`](crate::harness::cache)): a canonical string over the full
//! cell identity — key layout revision, record schema, engine slug and
//! fingerprint, fault plan, workload name + shape + operand density
//! *bit patterns* (exact, not formatted), and the materialized seed —
//! digested to 128 bits by two independently-salted hand-rolled FNV-1a
//! 64 halves (no external hash crates, and deliberately *not*
//! `std::collections`' `RandomState`, which the D1 determinism lints
//! ban). Every line stores the canonical string alongside the digest
//! and lookups compare the *string*, so a digest collision degrades to
//! a rerun, never a silently aliased record.

use crate::harness::cache::CellKey;
use crate::harness::record::{RunRecord, RunStatus};
use crate::util::json_string;
use sigma_telemetry::{FlightRecorder, Stage};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Version stamped into every journal line; replay skips other versions.
///
/// v2 (the cache PR) widened the key to 128 bits and added the stored
/// `"cell"` canonical identity; v1 lines replay as stale-schema warnings
/// and their cells rerun — the v1 key omitted the record schema and
/// engine fingerprint, so replaying them as hits would be exactly the
/// staleness bug the widened key exists to prevent.
pub const JOURNAL_SCHEMA: u32 = 2;

/// FNV-1a 64-bit over `bytes` — deterministic across platforms and runs.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Atomically replaces the file at `path` with `bytes`: write a
/// `.tmp`-suffixed sibling, fsync it, rename it over `path`, then
/// best-effort fsync the parent directory so the rename itself is
/// durable. A crash at any point leaves either the old file or the new
/// one, never a torn mix — this is the one non-append write primitive
/// the sigma-lint D6 rule holds harness persistence code to, shared by
/// journal compaction, figure CSV/JSON emission, and the flight
/// recorder's event log.
///
/// # Errors
///
/// Propagates the I/O error when the temp write or rename fails.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    {
        let mut tmp_file = File::create(&tmp)?;
        tmp_file.write_all(bytes)?;
        tmp_file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Renders one journal/cache line: schema, digest, canonical identity,
/// record.
fn render_line(key: &CellKey, record: &RunRecord) -> String {
    format!(
        "{{\"schema\": {JOURNAL_SCHEMA}, \"key\": \"{}\", \"cell\": {}, \"record\": {}}}\n",
        key.hex(),
        json_string(key.canonical()),
        record.to_json()
    )
}

/// Append-side handle on a journal file.
///
/// Lines are appended with `sync_data` after each write; see the module
/// docs for the crash model.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    file: File,
    appends: u64,
    recorder: FlightRecorder,
}

impl JournalWriter {
    /// Opens (or creates) the journal at `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be opened.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self { path: path.to_path_buf(), file, appends: 0, recorder: FlightRecorder::off() })
    }

    /// Attaches a flight recorder; appends and fsyncs get timed as
    /// [`Stage::JournalAppend`] / [`Stage::JournalFsync`] spans.
    pub fn set_recorder(&mut self, recorder: FlightRecorder) {
        self.recorder = recorder;
    }

    /// Appends one completed cell as a canonical JSON line and fsyncs.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the write or sync fails.
    pub fn append(&mut self, key: &CellKey, record: &RunRecord) -> std::io::Result<()> {
        let line = render_line(key, record);
        // Spans are recorded before either error propagates (sigma-lint
        // D9): a failed write still lands its timing, so the Perfetto
        // timeline never loses the span that explains the failure.
        let t0 = self.recorder.now_us();
        let wrote = self.file.write_all(line.as_bytes());
        self.recorder.span_since(Stage::JournalAppend, &record.workload, t0);
        wrote?;
        let t1 = self.recorder.now_us();
        let synced = self.file.sync_data();
        self.recorder.span_since(Stage::JournalFsync, &record.workload, t1);
        synced?;
        self.appends += 1;
        Ok(())
    }

    /// Lines appended through this writer (not counting replayed ones).
    #[must_use]
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// The journal path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Atomically rewrites the journal to exactly `entries`, in order —
    /// the segment-rotation step: duplicates, skipped garbage, and torn
    /// tails are dropped, and the result lands via write-temp / fsync /
    /// rename so a crash leaves either the old or the new journal intact.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the temp write or rename fails.
    pub fn compact(&mut self, entries: &[(&CellKey, &RunRecord)]) -> std::io::Result<()> {
        let mut content = String::new();
        for (key, record) in entries {
            content.push_str(&render_line(key, record));
        }
        write_atomic(&self.path, content.as_bytes())?;
        // Re-open so later appends land after the rotated content.
        self.file = OpenOptions::new().create(true).append(true).open(&self.path)?;
        Ok(())
    }
}

/// What a journal replay recovered.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// `(key, record)` pairs in journal order, first occurrence of each
    /// key winning.
    pub entries: Vec<(CellKey, RunRecord)>,
    /// One human-readable warning per skipped line.
    pub warnings: Vec<String>,
}

impl JournalReplay {
    /// The replayed record for `key`, if the journal holds one. The
    /// match compares *canonical identity strings*, so a digest
    /// collision on disk can never alias a different cell.
    #[must_use]
    pub fn get(&self, key: &CellKey) -> Option<&RunRecord> {
        self.entries.iter().find(|(k, _)| k.canonical() == key.canonical()).map(|(_, r)| r)
    }
}

/// Replays the journal at `path`, tolerating the corruption classes in
/// the module docs. A missing file replays as empty (fresh sweep).
///
/// # Errors
///
/// Propagates I/O errors other than the file not existing. Corrupt
/// *content* never errors — it is skipped with a warning.
pub fn replay(path: &Path) -> std::io::Result<JournalReplay> {
    let text = match File::open(path) {
        Ok(mut f) => {
            // Invalid UTF-8 (binary garbage) must degrade per-line, not
            // fail the whole replay: read raw and convert lossily.
            let mut raw = Vec::new();
            f.read_to_end(&mut raw)?;
            String::from_utf8_lossy(&raw).into_owned()
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(JournalReplay::default()),
        Err(e) => return Err(e),
    };
    let mut out = JournalReplay::default();
    let ends_with_newline = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        let last = i + 1 == lines.len();
        let torn = last && !ends_with_newline;
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(Parsed::StaleSchema(schema)) => {
                out.warnings.push(format!(
                    "journal line {}: stale schema version {schema} (want {JOURNAL_SCHEMA}); skipped",
                    i + 1
                ));
            }
            Ok(Parsed::Entry(key, record)) => {
                if out.entries.iter().any(|(k, _)| k.canonical() == key.canonical()) {
                    out.warnings.push(format!(
                        "journal line {}: duplicate key {}; keeping the first occurrence",
                        i + 1,
                        key.hex()
                    ));
                    continue;
                }
                out.entries.push((key, *record));
            }
            Err(why) => {
                if torn {
                    out.warnings.push(format!(
                        "journal line {}: truncated final line (crash mid-append); skipped",
                        i + 1
                    ));
                } else {
                    out.warnings.push(format!("journal line {}: {why}; skipped", i + 1));
                }
            }
        }
    }
    Ok(out)
}

/// Outcome of parsing one syntactically valid journal line.
enum Parsed {
    /// A current-schema entry.
    Entry(CellKey, Box<RunRecord>),
    /// A line from a different schema version — its record layout may
    /// not match ours, so it is reported without attempting to parse it.
    StaleSchema(u32),
}

/// Parses one journal line. The key digest is recomputed from the
/// stored canonical identity and checked against the stored hex — a
/// mismatch (bit rot, a hand-edited line) is corruption, not an entry.
fn parse_line(line: &str) -> Result<Parsed, String> {
    let value = parse_json(line)?;
    let obj = value.as_object().ok_or("top level is not an object")?;
    let schema = field(obj, "schema")?
        .as_raw()
        .and_then(|s| s.parse::<u32>().ok())
        .ok_or("schema is not an integer")?;
    if schema != JOURNAL_SCHEMA {
        return Ok(Parsed::StaleSchema(schema));
    }
    let stored_hex = field(obj, "key")?.as_str().ok_or("key is not a string")?;
    let canonical = field(obj, "cell")?.as_str().ok_or("cell is not a string")?;
    let key = CellKey::from_canonical(canonical.to_string());
    if key.hex() != stored_hex {
        return Err(format!(
            "key {stored_hex} does not match the digest of the stored cell identity"
        ));
    }
    let record_obj = field(obj, "record")?.as_object().ok_or("record is not an object")?;
    let record = record_from_obj(record_obj)?;
    Ok(Parsed::Entry(key, Box::new(record)))
}

/// Minimal JSON value for journal and flight-event-log replay. Numbers
/// stay raw strings so the caller parses them at full precision into
/// the right width.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// A string literal, unescaped.
    Str(String),
    /// A number, kept as its raw source text.
    Raw(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
    /// An array, in source order.
    Arr(Vec<Json>),
}

impl Json {
    pub(crate) fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(kv) => Some(kv),
            _ => None,
        }
    }
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    pub(crate) fn as_raw(&self) -> Option<&str> {
        match self {
            Json::Raw(s) => Some(s),
            _ => None,
        }
    }
    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub(crate) fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

pub(crate) fn field<'a>(obj: &'a [(String, Json)], name: &str) -> Result<&'a Json, String> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v).ok_or(format!("missing field {name:?}"))
}

/// Hand-rolled parser for the flat-ish JSON the journal and the flight
/// recorder's event log emit (objects, arrays, strings, numbers,
/// booleans, null). Errors are short human-readable strings — replay
/// turns them into warnings.
pub(crate) fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null").map(|()| Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at offset {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("malformed literal at offset {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("empty number at offset {start}"));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map(|s| Json::Raw(s.to_string()))
        .map_err(|_| format!("non-UTF-8 number at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    // Caller guarantees bytes[*pos] == b'"'.
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("malformed \\u escape")?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("malformed escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences arrive
                // via String::from_utf8_lossy, so boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().ok_or("unterminated string".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    // Caller guarantees bytes[*pos] == b'['.
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    // Caller guarantees bytes[*pos] == b'{'.
    *pos += 1;
    let mut kv = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(kv));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        kv.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(kv));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
        }
    }
}

/// Rebuilds a [`RunRecord`] from its journal JSON object. All numeric
/// fields round-trip exactly (floats are emitted with `{:?}`, the
/// shortest representation that parses back to the same bits), with one
/// documented exception: a non-finite `max_abs_err` is emitted as JSON
/// `null` and replays as `+inf` — the sentinel every failure record uses.
fn record_from_obj(obj: &[(String, Json)]) -> Result<RunRecord, String> {
    fn str_field(obj: &[(String, Json)], name: &str) -> Result<String, String> {
        field(obj, name)?.as_str().map(str::to_string).ok_or(format!("{name} is not a string"))
    }
    fn num<T: std::str::FromStr>(obj: &[(String, Json)], name: &str) -> Result<T, String> {
        field(obj, name)?
            .as_raw()
            .and_then(|s| s.parse::<T>().ok())
            .ok_or(format!("{name} is not a number of the expected width"))
    }
    fn bool_field(obj: &[(String, Json)], name: &str) -> Result<bool, String> {
        field(obj, name)?.as_bool().ok_or(format!("{name} is not a boolean"))
    }
    let status_name = str_field(obj, "status")?;
    let status = RunStatus::parse(&status_name).ok_or(format!("unknown status {status_name:?}"))?;
    let max_abs_err = match field(obj, "max_abs_err")? {
        Json::Null => f64::INFINITY,
        other => {
            other.as_raw().and_then(|s| s.parse().ok()).ok_or("max_abs_err is not a number")?
        }
    };
    let error = match field(obj, "error")? {
        Json::Null => None,
        other => Some(other.as_str().ok_or("error is not a string")?.to_string()),
    };
    Ok(RunRecord {
        engine_slug: str_field(obj, "engine_slug")?,
        engine: str_field(obj, "engine")?,
        workload: str_field(obj, "workload")?,
        m: num(obj, "m")?,
        n: num(obj, "n")?,
        k: num(obj, "k")?,
        density_a: num(obj, "density_a")?,
        density_b: num(obj, "density_b")?,
        seed: num(obj, "seed")?,
        pes: num(obj, "pes")?,
        loading_cycles: num(obj, "loading_cycles")?,
        streaming_cycles: num(obj, "streaming_cycles")?,
        add_cycles: num(obj, "add_cycles")?,
        total_cycles: num(obj, "total_cycles")?,
        folds: num(obj, "folds")?,
        useful_macs: num(obj, "useful_macs")?,
        issued_macs: num(obj, "issued_macs")?,
        stationary_utilization: num(obj, "stationary_utilization")?,
        compute_efficiency: num(obj, "compute_efficiency")?,
        overall_efficiency: num(obj, "overall_efficiency")?,
        max_abs_err,
        verified: bool_field(obj, "verified")?,
        status,
        faults_injected: num(obj, "faults_injected")?,
        faults_detected: num(obj, "faults_detected")?,
        faults_corrected: num(obj, "faults_corrected")?,
        faults_escaped: num(obj, "faults_escaped")?,
        route_cache_hits: num(obj, "route_cache_hits")?,
        route_cache_misses: num(obj, "route_cache_misses")?,
        idle_cycles_skipped: num(obj, "idle_cycles_skipped")?,
        wall_ms: num(obj, "wall_ms")?,
        attempts: num(obj, "attempts")?,
        mem_est_bytes: num(obj, "mem_est_bytes")?,
        error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::record::CellProfile;
    use crate::harness::sweep::WorkloadSpec;
    use sigma_core::model::GemmProblem;
    use sigma_core::{CycleStats, EngineRun};
    use sigma_matrix::{GemmShape, Matrix};

    fn workload() -> WorkloadSpec {
        WorkloadSpec::new("wl", GemmProblem::sparse(GemmShape::new(4, 5, 6), 0.5, 0.25))
    }

    fn k(tag: &str) -> CellKey {
        CellKey::new(tag, "fp", &workload(), 7)
    }

    fn sample(slug: &str) -> RunRecord {
        let p = workload().problem;
        let run = EngineRun::new(
            Matrix::zeros(4, 5),
            CycleStats { streaming_cycles: 10, pes: 8, ..CycleStats::default() },
        );
        RunRecord::from_run(
            slug,
            "Engine",
            8,
            "wl",
            &p,
            7,
            &run,
            1e-6,
            true,
            CellProfile::default(),
        )
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sigma_journal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.journal", std::process::id()))
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn append_then_replay_round_trips_records_exactly() {
        let path = tmp("round_trip");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::open(&path).unwrap();
        let mut degraded = sample("slow");
        degraded.status = RunStatus::Degraded;
        degraded.error = Some("budget exhausted twice; degraded".to_string());
        let records = [("a", sample("a")), ("b", sample("b")), ("slow", degraded)];
        for (tag, r) in &records {
            w.append(&k(tag), r).unwrap();
        }
        assert_eq!(w.appends(), 3);
        let replay = replay(&path).unwrap();
        assert!(replay.warnings.is_empty(), "{:?}", replay.warnings);
        assert_eq!(replay.entries.len(), 3);
        for (tag, r) in &records {
            assert_eq!(replay.get(&k(tag)).unwrap(), r);
            // Byte-identity is the real contract: re-rendered JSON and
            // CSV rows must match the original exactly.
            assert_eq!(replay.get(&k(tag)).unwrap().to_json(), r.to_json());
            assert_eq!(replay.get(&k(tag)).unwrap().row(), r.row());
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Satellite 1 regression: a canonical identity whose stored digest
    /// no longer matches (the on-disk shape of a stale or tampered key)
    /// is corruption — it must warn and rerun, never replay as a hit.
    #[test]
    fn mismatched_key_digest_is_rejected_as_corruption() {
        let path = tmp("digest_mismatch");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::open(&path).unwrap();
        w.append(&k("a"), &sample("a")).unwrap();
        // Flip one digest nibble on disk; the canonical stays intact.
        let text = std::fs::read_to_string(&path).unwrap();
        let good = k("a").hex();
        let flipped = if good.as_bytes()[0] == b'0' { '1' } else { '0' };
        let bad = format!("{flipped}{}", &good[1..]);
        std::fs::write(&path, text.replacen(&good, &bad, 1)).unwrap();
        let replay = replay(&path).unwrap();
        assert!(replay.entries.is_empty(), "tampered line must not replay");
        assert_eq!(replay.warnings.len(), 1);
        assert!(replay.warnings[0].contains("does not match"), "{}", replay.warnings[0]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failure_records_round_trip_including_infinite_max_err() {
        let path = tmp("failure_round_trip");
        let _ = std::fs::remove_file(&path);
        let p = workload().problem;
        let rec = RunRecord::from_failure(
            "e",
            "E \"quoted\"\nname",
            1,
            "w",
            &p,
            0,
            RunStatus::Timeout,
            "engine exceeded the 10 ms watchdog budget".to_string(),
            CellProfile::default(),
        );
        let mut w = JournalWriter::open(&path).unwrap();
        w.append(&k("fail"), &rec).unwrap();
        let got = replay(&path).unwrap();
        assert_eq!(got.get(&k("fail")).unwrap(), &rec);
        assert_eq!(got.get(&k("fail")).unwrap().row(), rec.row());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_final_line_is_skipped_with_a_warning() {
        let path = tmp("torn_tail");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::open(&path).unwrap();
        w.append(&k("a"), &sample("a")).unwrap();
        w.append(&k("b"), &sample("b")).unwrap();
        // Simulate a SIGKILL mid-append: chop the file mid-way through
        // the final line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 25]).unwrap();
        let replay = replay(&path).unwrap();
        assert_eq!(replay.entries.len(), 1);
        assert!(replay.get(&k("a")).is_some());
        assert_eq!(replay.warnings.len(), 1);
        assert!(replay.warnings[0].contains("truncated final line"), "{}", replay.warnings[0]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_duplicates_and_stale_schema_are_skipped_with_warnings() {
        let path = tmp("corruption");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::open(&path).unwrap();
        w.append(&k("a"), &sample("a")).unwrap();
        // Garbage bytes (including invalid UTF-8) in the middle.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"\xff\xfenot json at all\n").unwrap();
            f.write_all(b"{\"schema\": 99, \"key\": \"00000000000000aa\", \"record\": {}}\n")
                .unwrap();
        }
        // Duplicate of the first key with different content, then a
        // fresh key.
        w.append(&k("a"), &sample("dup")).unwrap();
        w.append(&k("b"), &sample("b")).unwrap();
        let replay = replay(&path).unwrap();
        assert_eq!(replay.entries.len(), 2);
        assert_eq!(replay.get(&k("a")).unwrap().engine_slug, "a", "first occurrence wins");
        assert!(replay.get(&k("b")).is_some());
        assert_eq!(replay.warnings.len(), 3, "{:?}", replay.warnings);
        assert!(replay.warnings.iter().any(|w| w.contains("stale schema")));
        assert!(replay.warnings.iter().any(|w| w.contains("duplicate key")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_replays_empty() {
        let path = tmp("never_written");
        let _ = std::fs::remove_file(&path);
        let replay = replay(&path).unwrap();
        assert!(replay.entries.is_empty());
        assert!(replay.warnings.is_empty());
    }

    #[test]
    fn parser_handles_arrays() {
        let v = parse_json("{\"a\": [1, 2, [\"x\"], {\"b\": true}], \"e\": []}").unwrap();
        let obj = v.as_object().unwrap();
        let a = field(obj, "a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].as_raw(), Some("1"));
        assert_eq!(a[2].as_array().unwrap()[0].as_str(), Some("x"));
        assert_eq!(field(a[3].as_object().unwrap(), "b").unwrap().as_bool(), Some(true));
        assert!(field(obj, "e").unwrap().as_array().unwrap().is_empty());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("[1 2]").is_err());
    }

    #[test]
    fn write_atomic_replaces_content_and_cleans_temp() {
        let path = tmp("write_atomic");
        let _ = std::fs::remove_file(&path);
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer content").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer content");
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        assert!(!PathBuf::from(tmp_name).exists(), "temp sibling cleaned up");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recorder_times_appends_and_fsyncs() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let path = tmp("recorder");
        let _ = std::fs::remove_file(&path);
        let ticks = Arc::new(AtomicU64::new(0));
        let rec = FlightRecorder::with_clock(64, move || ticks.fetch_add(5, Ordering::Relaxed));
        let mut w = JournalWriter::open(&path).unwrap();
        w.set_recorder(rec.clone());
        w.append(&k("a"), &sample("a")).unwrap();
        w.append(&k("b"), &sample("b")).unwrap();
        let snap = rec.snapshot();
        assert_eq!(snap.stage("journal_append").unwrap().count, 2);
        assert_eq!(snap.stage("journal_fsync").unwrap().count, 2);
        assert_eq!(snap.spans.len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_rewrites_atomically_and_preserves_appendability() {
        let path = tmp("compaction");
        let _ = std::fs::remove_file(&path);
        let mut w = JournalWriter::open(&path).unwrap();
        w.append(&k("a"), &sample("a")).unwrap();
        w.append(&k("a"), &sample("dup")).unwrap();
        w.append(&k("b"), &sample("b")).unwrap();
        let (ra, rb) = (sample("a"), sample("b"));
        let (ka, kb) = (k("a"), k("b"));
        w.compact(&[(&ka, &ra), (&kb, &rb)]).unwrap();
        let after = replay(&path).unwrap();
        assert_eq!(after.entries.len(), 2);
        assert!(after.warnings.is_empty());
        // The writer keeps working after rotation.
        w.append(&k("c"), &sample("c")).unwrap();
        let appended = replay(&path).unwrap();
        assert_eq!(appended.entries.len(), 3);
        assert!(!path.with_extension("journal.tmp").exists(), "temp file cleaned up");
        let _ = std::fs::remove_file(&path);
    }
}
