//! The content-addressed run cache: cross-sweep memoization of
//! (engine, workload, seed) cells, with in-flight deduplication.
//!
//! The write-ahead journal (PR 7) memoizes cells *within* one resumable
//! sweep; heavy DSE traffic (ROADMAP items 4 and 5) repeats the same
//! cells *across* sweeps and CLI invocations. [`RunCache`] closes that
//! gap: a persistent store shared by any number of sweeps, fronted by an
//! in-memory `BTreeMap` index, that answers a repeated cell in one map
//! lookup instead of a simulation — the Benes `RouteCache` idea lifted
//! to whole-run granularity.
//!
//! # Keying
//!
//! Cells are addressed by [`CellKey`], a versioned canonical string over
//! the *full* cell identity — key-layout revision, [`RECORD_SCHEMA`],
//! engine slug, [`Engine::fingerprint`] (every result-affecting
//! `SigmaConfig` knob), the fault plan, workload name + shape + exact
//! density bit patterns, and the materialized seed — digested to 128
//! bits as two independently-salted FNV-1a 64 halves. The canonical
//! string is stored *alongside* every entry and compared on hit, so an
//! FNV collision degrades to a miss, never a silently aliased record.
//!
//! # Coalescing
//!
//! Concurrent requests for the same key are deduplicated: the first
//! caller's [`Lookup::Miss`] lease makes it the executor, and later
//! callers block on a condvar until the lease is fulfilled (they wake to
//! a hit, counted separately as *coalesced*) or abandoned (one waiter
//! inherits the lease). Identical in-flight cells execute exactly once.
//!
//! # Eviction and crash-safety
//!
//! The index is capped: inserting beyond `capacity` evicts the
//! least-recently-used entry (a generation counter bumped on every hit).
//! Persistence reuses the journal machinery wholesale — fsynced
//! canonical-JSON appends, tolerant replay, and write-temp/fsync/rename
//! compaction (triggered amortized, once per `capacity` appends) — so
//! the crash model and the sigma-lint D6 atomic-write ban carry over
//! unchanged.
//!
//! [`Engine::fingerprint`]: sigma_core::Engine::fingerprint
//! [`RECORD_SCHEMA`]: crate::harness::record::RECORD_SCHEMA

use crate::harness::journal::{fnv1a_64, replay, JournalWriter};
use crate::harness::record::{RunRecord, RECORD_SCHEMA};
use crate::harness::sweep::WorkloadSpec;
use sigma_core::{Engine, FaultPlan};
use sigma_telemetry::{FlightRecorder, Stage};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Revision of the [`CellKey`] canonical layout itself. Bumping it (when
/// a segment is added, removed, or re-rendered) changes every key, so
/// entries written by older layouts can never replay as hits.
pub const CELL_KEY_REVISION: u32 = 1;

/// Salt prefixed to the canonical string for the low digest half, so the
/// two FNV-1a 64 halves of the 128-bit key are independent functions.
const LO_DIGEST_SALT: &str = "sigma-cellkey-lo|";

/// The full content identity of one sweep cell, canonicalized and
/// digested.
///
/// Equality (and journal/cache hits) compare the *canonical string*, not
/// the digest — the digest only indexes. See the module docs for what
/// the canonical string covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellKey {
    hi: u64,
    lo: u64,
    canonical: String,
}

impl CellKey {
    /// Keys one cell: `engine_slug` is the grid coordinate (two slugs
    /// may front identical engines and must still key apart — the
    /// record's `engine_slug` column differs), `fingerprint` is the
    /// engine's [`fingerprint`](sigma_core::Engine::fingerprint), and
    /// `seed` is the workload's *materialized* seed (already derived
    /// from the sweep seed and workload index).
    #[must_use]
    pub fn new(engine_slug: &str, fingerprint: &str, workload: &WorkloadSpec, seed: u64) -> Self {
        Self::with_faults(engine_slug, fingerprint, &FaultPlan::none(), workload, seed)
    }

    /// [`CellKey::new`] with an explicit fault plan folded into the
    /// identity (sweeps inject no faults, so [`CellKey::new`] uses the
    /// empty plan; fault campaigns that memoize must key their plans).
    #[must_use]
    pub fn with_faults(
        engine_slug: &str,
        fingerprint: &str,
        faults: &FaultPlan,
        workload: &WorkloadSpec,
        seed: u64,
    ) -> Self {
        let p = &workload.problem;
        let canonical = format!(
            "k{CELL_KEY_REVISION}|rec{RECORD_SCHEMA}|{engine_slug}|{fingerprint}|{}|{}|{}x{}x{}|da={:016x}|db={:016x}|seed={seed:016x}",
            faults.canonical_key(),
            workload.name,
            p.shape.m,
            p.shape.n,
            p.shape.k,
            p.density_a.to_bits(),
            p.density_b.to_bits(),
        );
        Self::from_canonical(canonical)
    }

    /// Convenience for harness call sites holding an engine: keys the
    /// cell with the engine's own fingerprint and no faults.
    #[must_use]
    pub fn for_engine(
        engine_slug: &str,
        engine: &dyn Engine,
        workload: &WorkloadSpec,
        seed: u64,
    ) -> Self {
        Self::new(engine_slug, &engine.fingerprint(), workload, seed)
    }

    /// Rebuilds a key from a canonical string (journal replay); the
    /// digest is always recomputed, never trusted from disk.
    #[must_use]
    pub fn from_canonical(canonical: String) -> Self {
        let hi = fnv1a_64(canonical.as_bytes());
        let lo = fnv1a_64(format!("{LO_DIGEST_SALT}{canonical}").as_bytes());
        Self { hi, lo, canonical }
    }

    /// The canonical identity string.
    #[must_use]
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The 128-bit digest as an ordered pair (index key).
    #[must_use]
    pub fn digest(&self) -> (u64, u64) {
        (self.hi, self.lo)
    }

    /// The digest as 32 lowercase hex digits (the on-disk `"key"` field).
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Observable cache traffic since the cache was opened (monotonic; the
/// loaded-entry count is a level, not a counter).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the index.
    pub hits: u64,
    /// Lookups that leased execution to the caller.
    pub misses: u64,
    /// Lookups that blocked on an in-flight duplicate and woke to its
    /// result (counted instead of, not in addition to, `hits`).
    pub coalesced: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Completed cells appended to the store by this process.
    pub insertions: u64,
    /// Entries currently resident in the index.
    pub entries: u64,
}

/// One resident cache entry.
#[derive(Debug)]
struct Slot {
    canonical: String,
    record: RunRecord,
    /// Generation stamp of the last hit/insert; smallest evicts first.
    last_used: u64,
}

#[derive(Debug)]
struct CacheState {
    /// Digest-indexed entries; the canonical string inside each slot is
    /// the authoritative identity.
    index: BTreeMap<(u64, u64), Slot>,
    /// Digests currently leased to an executor.
    pending: BTreeMap<(u64, u64), ()>,
    generation: u64,
    stats: CacheStats,
}

/// The durable half of the cache, behind its own mutex (the designated
/// I/O lock, registered in sigma-lint's `D8_IO_LOCK_ALLOWLIST`): the
/// fsynced append and the amortized compaction serialize here, so no
/// disk wait ever happens under the index lock and coalesced waiters
/// wake as soon as the in-memory insert lands.
///
/// Lock order: `store` may take `state` briefly (compaction snapshots
/// the resident index); `state` never takes `store`.
#[derive(Debug)]
struct StoreState {
    writer: JournalWriter,
    appends_since_compaction: u64,
    io_warnings: Vec<String>,
}

/// A persistent, capacity-bounded, coalescing result cache. See the
/// module docs; share one instance across sweeps via `Arc`.
#[derive(Debug)]
pub struct RunCache {
    state: Mutex<CacheState>,
    store: Mutex<StoreState>,
    cond: Condvar,
    capacity: usize,
    path: PathBuf,
    load_warnings: Vec<String>,
    recorder: FlightRecorder,
}

/// What [`RunCache::lookup`] resolved to.
#[derive(Debug)]
pub enum Lookup<'a> {
    /// The cell is cached (or an in-flight duplicate just completed);
    /// here is its record.
    Hit(Box<RunRecord>),
    /// The cell is absent and *this caller* holds the execution lease:
    /// run the cell and [`fulfill`](CellLease::fulfill) the lease (or
    /// drop it to let a waiting duplicate take over).
    Miss(CellLease<'a>),
}

/// An execution lease on one absent cell. Exactly one lease per key
/// exists at a time; concurrent lookups for the same key block until the
/// holder fulfills (they wake to a hit) or drops it (one waiter inherits
/// the lease).
#[derive(Debug)]
pub struct CellLease<'a> {
    cache: &'a RunCache,
    key: CellKey,
    fulfilled: bool,
}

impl CellLease<'_> {
    /// The key this lease is for.
    #[must_use]
    pub fn key(&self) -> &CellKey {
        &self.key
    }

    /// Publishes the executed cell: inserts it into the index, appends
    /// it durably to the store, and wakes every coalesced waiter.
    ///
    /// An I/O failure on the append degrades to a warning (see
    /// [`RunCache::warnings`]): the entry still serves from memory for
    /// this process, it just won't survive a restart.
    pub fn fulfill(mut self, record: &RunRecord) {
        self.fulfilled = true;
        self.cache.insert(&self.key, record);
    }
}

impl Drop for CellLease<'_> {
    fn drop(&mut self) {
        if !self.fulfilled {
            let mut state = self.cache.lock();
            state.pending.remove(&self.key.digest());
            drop(state);
            self.cache.cond.notify_all();
        }
    }
}

impl RunCache {
    /// Opens (or creates) the cache persisted at `path`, holding at most
    /// `capacity` entries (clamped to at least 1). Corrupt store content
    /// never errors: damaged lines are skipped into [`RunCache::warnings`]
    /// and their cells simply miss. When the store holds more than
    /// `capacity` entries, the oldest (earliest-written) are dropped.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors opening the store file (a *missing* file is
    /// a fresh cache, not an error).
    pub fn open(path: &Path, capacity: usize) -> std::io::Result<Self> {
        let capacity = capacity.max(1);
        let replayed = replay(path)?;
        let mut warnings = replayed.warnings;
        let mut index = BTreeMap::new();
        let mut generation = 0u64;
        for (key, record) in replayed.entries {
            generation += 1;
            let slot =
                Slot { canonical: key.canonical().to_string(), record, last_used: generation };
            if index.insert(key.digest(), slot).is_some() {
                // replay() already deduplicates per key; two *distinct*
                // canonicals on one digest are a persisted collision.
                warnings.push(format!(
                    "cache load: digest collision on {}; keeping the later entry",
                    key.hex()
                ));
            }
        }
        while index.len() > capacity {
            if let Some(oldest) = min_generation_digest(&index) {
                index.remove(&oldest);
            }
        }
        let entries = index.len() as u64;
        let writer = JournalWriter::open(path)?;
        Ok(Self {
            state: Mutex::new(CacheState {
                index,
                pending: BTreeMap::new(),
                generation,
                stats: CacheStats { entries, ..CacheStats::default() },
            }),
            store: Mutex::new(StoreState {
                writer,
                appends_since_compaction: 0,
                io_warnings: Vec::new(),
            }),
            cond: Condvar::new(),
            capacity,
            path: path.to_path_buf(),
            load_warnings: warnings,
            recorder: FlightRecorder::off(),
        })
    }

    /// Attaches a flight recorder (builder-style, before sharing the
    /// cache via `Arc`): every [`RunCache::lookup`] lands a
    /// [`Stage::CacheProbe`] span (labelled hit / miss / coalesced, and
    /// covering any in-flight coalescing wait) and every insert a
    /// [`Stage::CacheInsert`] span.
    #[must_use]
    pub fn with_flight_recorder(mut self, recorder: FlightRecorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The store path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The entry capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Warnings accumulated loading the store plus any append/compaction
    /// I/O failures since (each degrades durability, never correctness).
    #[must_use]
    pub fn warnings(&self) -> Vec<String> {
        let store = self.lock_store();
        let mut all = self.load_warnings.clone();
        all.extend(store.io_warnings.iter().cloned());
        all
    }

    /// A snapshot of the traffic counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Resolves `key`: a verified hit returns the record; an absent key
    /// returns the execution lease; an in-flight key blocks until its
    /// executor finishes. See [`Lookup`].
    #[must_use]
    pub fn lookup(&self, key: &CellKey) -> Lookup<'_> {
        let t0 = self.recorder.now_us();
        let digest = key.digest();
        let mut state = self.lock();
        let mut waited = false;
        loop {
            state.generation += 1;
            let generation = state.generation;
            if let Some(slot) = state.index.get_mut(&digest) {
                // The canonical comparison is the hit condition; a digest
                // collision (different canonical) falls through as a miss
                // and can never alias.
                if slot.canonical == key.canonical {
                    slot.last_used = generation;
                    let record = Box::new(slot.record.clone());
                    if waited {
                        state.stats.coalesced += 1;
                    } else {
                        state.stats.hits += 1;
                    }
                    let label = if waited { "coalesced" } else { "hit" };
                    self.recorder.span_since(Stage::CacheProbe, label, t0);
                    return Lookup::Hit(record);
                }
            }
            if state.pending.contains_key(&digest) {
                state = match self.cond.wait(state) {
                    Ok(s) => s,
                    Err(poisoned) => poisoned.into_inner(),
                };
                waited = true;
                continue;
            }
            state.pending.insert(digest, ());
            state.stats.misses += 1;
            self.recorder.span_since(Stage::CacheProbe, "miss", t0);
            return Lookup::Miss(CellLease { cache: self, key: key.clone(), fulfilled: false });
        }
    }

    /// Probes without leasing: a verified hit returns the record (and
    /// refreshes its generation), anything else — absent or in flight —
    /// returns `None` without blocking or counting a miss.
    #[must_use]
    pub fn probe(&self, key: &CellKey) -> Option<Box<RunRecord>> {
        let mut state = self.lock();
        state.generation += 1;
        let generation = state.generation;
        let slot = state.index.get_mut(&key.digest())?;
        (slot.canonical == key.canonical).then(|| {
            slot.last_used = generation;
            Box::new(slot.record.clone())
        })
    }

    /// Inserts a fulfilled cell, evicts beyond capacity, wakes waiters,
    /// then appends to the store and compacts amortized.
    ///
    /// The in-memory publish (index insert + lease release + notify)
    /// completes entirely under the index lock, *before* any disk I/O:
    /// coalesced waiters wake to a hit while the fsync is still in
    /// flight, and a slow disk can never stall a lookup.
    fn insert(&self, key: &CellKey, record: &RunRecord) {
        let t0 = self.recorder.now_us();
        let mut state = self.lock();
        state.pending.remove(&key.digest());
        state.generation += 1;
        let generation = state.generation;
        state.index.insert(
            key.digest(),
            Slot {
                canonical: key.canonical.clone(),
                record: record.clone(),
                last_used: generation,
            },
        );
        while state.index.len() > self.capacity {
            if let Some(oldest) = min_generation_digest(&state.index) {
                state.index.remove(&oldest);
                state.stats.evictions += 1;
            }
        }
        state.stats.insertions += 1;
        state.stats.entries = state.index.len() as u64;
        drop(state);
        self.cond.notify_all();

        // Durable half, serialized by the designated I/O lock only.
        let mut store = self.lock_store();
        if let Err(e) = store.writer.append(key, record) {
            let hex = key.hex();
            store.io_warnings.push(format!("cache append failed for {hex}: {e}"));
        } else {
            store.appends_since_compaction += 1;
        }
        // Amortized store compaction: evicted and superseded lines pile
        // up append-only; once a capacity's worth has landed, rewrite
        // the file to exactly the resident index (atomically). The
        // index is snapshotted under a brief `state` reacquisition —
        // store -> state nesting only, never the reverse.
        if store.appends_since_compaction >= self.capacity as u64 {
            store.appends_since_compaction = 0;
            let entries: Vec<(CellKey, RunRecord)> = {
                let state = self.lock();
                state
                    .index
                    .values()
                    .map(|slot| {
                        (CellKey::from_canonical(slot.canonical.clone()), slot.record.clone())
                    })
                    .collect()
            };
            let borrowed: Vec<(&CellKey, &RunRecord)> =
                entries.iter().map(|(k, r)| (k, r)).collect();
            if let Err(e) = store.writer.compact(&borrowed) {
                store.io_warnings.push(format!("cache compaction failed: {e}"));
            }
        }
        drop(store);
        self.recorder.span_since(Stage::CacheInsert, &record.workload, t0);
    }

    /// Locks the index state, recovering from a poisoned mutex (a
    /// panicking cache user must not wedge every other sweep thread).
    fn lock(&self) -> MutexGuard<'_, CacheState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Locks the durable store half, with the same poison recovery.
    fn lock_store(&self) -> MutexGuard<'_, StoreState> {
        match self.store.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// The digest of the entry with the smallest generation stamp.
fn min_generation_digest(index: &BTreeMap<(u64, u64), Slot>) -> Option<(u64, u64)> {
    index.iter().min_by_key(|(_, slot)| slot.last_used).map(|(digest, _)| *digest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::record::CellProfile;
    use sigma_core::model::GemmProblem;
    use sigma_core::{CycleStats, EngineRun};
    use sigma_matrix::{GemmShape, Matrix};

    fn workload() -> WorkloadSpec {
        WorkloadSpec::new("wl", GemmProblem::sparse(GemmShape::new(4, 5, 6), 0.5, 0.25))
    }

    fn sample(slug: &str) -> RunRecord {
        let p = workload().problem;
        let run = EngineRun::new(
            Matrix::zeros(4, 5),
            CycleStats { streaming_cycles: 10, pes: 8, ..CycleStats::default() },
        );
        RunRecord::from_run(
            slug,
            "Engine",
            8,
            "wl",
            &p,
            7,
            &run,
            1e-6,
            true,
            CellProfile::default(),
        )
    }

    fn key(tag: &str) -> CellKey {
        CellKey::new(tag, "fp", &workload(), 7)
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sigma_cache_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.cache", std::process::id()))
    }

    fn fresh(name: &str, capacity: usize) -> RunCache {
        let path = tmp(name);
        let _ = std::fs::remove_file(&path);
        RunCache::open(&path, capacity).unwrap()
    }

    #[test]
    fn cell_keys_separate_every_identity_dimension() {
        let w = workload();
        let base = CellKey::new("sigma", "fp-a", &w, 7);
        let other_shape =
            WorkloadSpec::new("wl", GemmProblem::sparse(GemmShape::new(4, 5, 7), 0.5, 0.25));
        let other_density =
            WorkloadSpec::new("wl", GemmProblem::sparse(GemmShape::new(4, 5, 6), 0.5, 0.26));
        let faulted = CellKey::with_faults(
            "sigma",
            "fp-a",
            &FaultPlan::single(
                sigma_core::FaultSite::BitmapWord { word: 0 },
                sigma_core::FaultKind::CorruptWord { mask: 1 },
            ),
            &w,
            7,
        );
        let variants = [
            base.clone(),
            CellKey::new("eie", "fp-a", &w, 7),
            CellKey::new("sigma", "fp-b", &w, 7),
            CellKey::new("sigma", "fp-a", &w, 8),
            CellKey::new("sigma", "fp-a", &other_shape, 7),
            CellKey::new("sigma", "fp-a", &other_density, 7),
            faulted,
        ];
        let mut canonicals: Vec<&str> = variants.iter().map(CellKey::canonical).collect();
        canonicals.sort_unstable();
        canonicals.dedup();
        assert_eq!(canonicals.len(), variants.len(), "every dimension perturbs the key");
        let mut digests: Vec<(u64, u64)> = variants.iter().map(CellKey::digest).collect();
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), variants.len());
        assert_eq!(base, CellKey::new("sigma", "fp-a", &w, 7), "keys are deterministic");
        assert_eq!(base.hex().len(), 32);
        assert_eq!(CellKey::from_canonical(base.canonical().to_string()), base);
    }

    /// Satellite 1 regression (staleness bug): the key layout revision
    /// and the record schema are part of the identity, so bumping either
    /// changes every key and stale persisted entries can never replay as
    /// hits. The canonical prefix pins both.
    #[test]
    fn key_canonical_pins_layout_and_record_schema() {
        let k = key("sigma");
        let expected = format!("k{CELL_KEY_REVISION}|rec{RECORD_SCHEMA}|sigma|fp|f1;|wl|");
        assert!(
            k.canonical().starts_with(&expected),
            "canonical {:?} must open with {expected:?}",
            k.canonical()
        );
        // A simulated schema bump (what the canonical would become)
        // yields a different digest — the persisted entry misses.
        let bumped = CellKey::from_canonical(k.canonical().replacen(
            &format!("rec{RECORD_SCHEMA}|"),
            "rec999|",
            1,
        ));
        assert_ne!(bumped.digest(), k.digest());
        // Likewise an engine config revision: same slug, new fingerprint.
        let reconfigured = CellKey::new("sigma", "fp-v2", &workload(), 7);
        assert_ne!(reconfigured.digest(), k.digest());
    }

    #[test]
    fn miss_fulfill_hit_round_trips_the_record() {
        let cache = fresh("round_trip", 8);
        let k = key("a");
        match cache.lookup(&k) {
            Lookup::Hit(_) => panic!("fresh cache cannot hit"),
            Lookup::Miss(lease) => {
                assert_eq!(lease.key(), &k);
                lease.fulfill(&sample("a"));
            }
        }
        match cache.lookup(&k) {
            Lookup::Hit(record) => assert_eq!(*record, sample("a")),
            Lookup::Miss(_) => panic!("fulfilled cell must hit"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert!(cache.warnings().is_empty(), "{:?}", cache.warnings());
        let _ = std::fs::remove_file(cache.path());
    }

    #[test]
    fn cache_persists_across_reopen() {
        let path = tmp("persist");
        let _ = std::fs::remove_file(&path);
        {
            let cache = RunCache::open(&path, 8).unwrap();
            if let Lookup::Miss(lease) = cache.lookup(&key("a")) {
                lease.fulfill(&sample("a"));
            }
            if let Lookup::Miss(lease) = cache.lookup(&key("b")) {
                lease.fulfill(&sample("b"));
            };
        }
        let reopened = RunCache::open(&path, 8).unwrap();
        assert!(reopened.warnings().is_empty(), "{:?}", reopened.warnings());
        assert_eq!(reopened.stats().entries, 2);
        match reopened.lookup(&key("a")) {
            Lookup::Hit(record) => {
                assert_eq!(*record, sample("a"), "records replay bit-exactly");
                assert_eq!(record.to_json(), sample("a").to_json());
            }
            Lookup::Miss(_) => panic!("persisted cell must hit after reopen"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn hit_verifies_the_canonical_string_not_just_the_digest() {
        let cache = fresh("collision", 8);
        let k = key("a");
        if let Lookup::Miss(lease) = cache.lookup(&k) {
            lease.fulfill(&sample("a"));
        }
        // Forge a key with the same digest but a different canonical —
        // exactly what an FNV collision would present.
        let forged =
            CellKey { hi: k.digest().0, lo: k.digest().1, canonical: "someone else".into() };
        match cache.lookup(&forged) {
            Lookup::Hit(_) => panic!("a digest collision must never alias"),
            Lookup::Miss(lease) => drop(lease),
        }
        let _ = std::fs::remove_file(cache.path());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = fresh("eviction", 2);
        for tag in ["a", "b"] {
            if let Lookup::Miss(lease) = cache.lookup(&key(tag)) {
                lease.fulfill(&sample(tag));
            }
        }
        // Touch "a" so "b" is the LRU entry, then insert "c".
        assert!(matches!(cache.lookup(&key("a")), Lookup::Hit(_)));
        if let Lookup::Miss(lease) = cache.lookup(&key("c")) {
            lease.fulfill(&sample("c"));
        }
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
        assert!(matches!(cache.lookup(&key("a")), Lookup::Hit(_)), "recently used survives");
        assert!(matches!(cache.lookup(&key("c")), Lookup::Hit(_)));
        match cache.lookup(&key("b")) {
            Lookup::Miss(lease) => drop(lease),
            Lookup::Hit(_) => panic!("LRU entry must have been evicted"),
        }
        let _ = std::fs::remove_file(cache.path());
    }

    #[test]
    fn store_stays_bounded_via_amortized_compaction() {
        let path = tmp("compaction");
        let _ = std::fs::remove_file(&path);
        let cache = RunCache::open(&path, 4).unwrap();
        // 64 distinct cells through a 4-entry cache: without compaction
        // the store would hold 64 lines.
        for i in 0..64 {
            let k = CellKey::new(&format!("slug{i}"), "fp", &workload(), 7);
            if let Lookup::Miss(lease) = cache.lookup(&k) {
                lease.fulfill(&sample("x"));
            }
        }
        assert!(cache.warnings().is_empty(), "{:?}", cache.warnings());
        let lines = std::fs::read_to_string(&path).unwrap().lines().count();
        assert!(lines <= 8, "store must stay within ~2x capacity, got {lines} lines");
        // And the survivors still replay.
        drop(cache);
        let reopened = RunCache::open(&path, 4).unwrap();
        assert_eq!(reopened.stats().entries, 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_with_smaller_capacity_drops_oldest_entries() {
        let path = tmp("shrink");
        let _ = std::fs::remove_file(&path);
        {
            let cache = RunCache::open(&path, 8).unwrap();
            for tag in ["a", "b", "c"] {
                if let Lookup::Miss(lease) = cache.lookup(&key(tag)) {
                    lease.fulfill(&sample(tag));
                }
            }
        }
        let small = RunCache::open(&path, 1).unwrap();
        assert_eq!(small.stats().entries, 1);
        assert!(matches!(small.lookup(&key("c")), Lookup::Hit(_)), "newest entry survives");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_store_lines_degrade_to_warnings_and_misses() {
        use std::io::Write;
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let cache = RunCache::open(&path, 8).unwrap();
            if let Lookup::Miss(lease) = cache.lookup(&key("a")) {
                lease.fulfill(&sample("a"));
            };
        }
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"\xff\xfegarbage\n").unwrap();
        drop(f);
        let cache = RunCache::open(&path, 8).unwrap();
        assert_eq!(cache.warnings().len(), 1, "{:?}", cache.warnings());
        assert!(matches!(cache.lookup(&key("a")), Lookup::Hit(_)), "intact line still replays");
        let _ = std::fs::remove_file(&path);
    }

    /// Tentpole acceptance (coalescing): N threads looking up the same
    /// absent key produce exactly one lease; the others block and wake
    /// to the executor's record. A barrier proves they overlap.
    #[test]
    fn inflight_duplicates_execute_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;
        let cache = fresh("coalesce", 8);
        let k = key("shared");
        let executions = AtomicUsize::new(0);
        let start = Barrier::new(4);
        let results: Vec<RunRecord> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        start.wait();
                        match cache.lookup(&k) {
                            Lookup::Hit(record) => *record,
                            Lookup::Miss(lease) => {
                                executions.fetch_add(1, Ordering::SeqCst);
                                // Hold the lease long enough that the
                                // other threads demonstrably block.
                                std::thread::sleep(std::time::Duration::from_millis(50));
                                let record = sample("shared");
                                lease.fulfill(&record);
                                record
                            }
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(executions.load(Ordering::SeqCst), 1, "exactly one executor");
        assert!(results.iter().all(|r| r == &sample("shared")));
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.coalesced, 3, "the three duplicates coalesced");
        assert_eq!(stats.insertions, 1);
        let _ = std::fs::remove_file(cache.path());
    }

    /// An executor that dies (drops its lease without fulfilling) must
    /// not wedge the waiters: one of them inherits the lease.
    #[test]
    fn abandoned_lease_hands_over_to_a_waiter() {
        use std::sync::Barrier;
        let cache = fresh("abandon", 8);
        let k = key("fragile");
        let start = Barrier::new(2);
        let outcome: Vec<bool> = std::thread::scope(|s| {
            let abandoner = s.spawn(|| {
                let lookup = cache.lookup(&k);
                start.wait();
                match lookup {
                    // Simulated executor death: drop without fulfilling.
                    Lookup::Miss(lease) => {
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        drop(lease);
                        false
                    }
                    Lookup::Hit(_) => true,
                }
            });
            let waiter = s.spawn(|| {
                start.wait();
                match cache.lookup(&k) {
                    Lookup::Hit(_) => true,
                    Lookup::Miss(lease) => {
                        lease.fulfill(&sample("fragile"));
                        false
                    }
                }
            });
            vec![abandoner.join().unwrap(), waiter.join().unwrap()]
        });
        assert_eq!(outcome, vec![false, false], "waiter inherited the lease after abandonment");
        assert!(matches!(cache.lookup(&k), Lookup::Hit(_)), "the inherited lease was fulfilled");
        let _ = std::fs::remove_file(cache.path());
    }

    #[test]
    fn recorder_times_probes_and_inserts_with_reconciling_counts() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let ticks = Arc::new(AtomicU64::new(0));
        let rec = FlightRecorder::with_clock(64, move || ticks.fetch_add(3, Ordering::Relaxed));
        let cache = fresh("recorder", 8).with_flight_recorder(rec.clone());
        if let Lookup::Miss(lease) = cache.lookup(&key("a")) {
            lease.fulfill(&sample("a"));
        }
        assert!(matches!(cache.lookup(&key("a")), Lookup::Hit(_)));
        let snap = rec.snapshot();
        let stats = cache.stats();
        // Probe spans reconcile with the traffic counters exactly.
        assert_eq!(
            snap.stage("cache_probe").unwrap().count,
            stats.hits + stats.misses + stats.coalesced
        );
        assert_eq!(snap.stage("cache_insert").unwrap().count, stats.insertions);
        assert!(snap.spans.iter().any(|s| s.label == "hit"));
        assert!(snap.spans.iter().any(|s| s.label == "miss"));
        let _ = std::fs::remove_file(cache.path());
    }

    #[test]
    fn probe_reads_without_leasing() {
        let cache = fresh("probe", 8);
        let k = key("a");
        assert!(cache.probe(&k).is_none());
        assert_eq!(cache.stats().misses, 0, "probe never counts a miss");
        if let Lookup::Miss(lease) = cache.lookup(&k) {
            lease.fulfill(&sample("a"));
        }
        assert_eq!(*cache.probe(&k).unwrap(), sample("a"));
        let _ = std::fs::remove_file(cache.path());
    }
}
