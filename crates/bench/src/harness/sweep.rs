//! The parallel sweep driver: a workload suite fanned across a fleet of
//! engines on scoped threads.
//!
//! Determinism contract: operands are materialized up front from seeds
//! derived only from the sweep seed and the workload index, jobs are
//! indexed `engine-major x workload-minor`, and [`par_map`] returns
//! results in job order regardless of thread count — so a parallel sweep
//! is byte-identical to a serial one.

use crate::harness::record::RunRecord;
use crate::harness::registry::EngineEntry;
use sigma_core::model::GemmProblem;
use sigma_matrix::{GemmShape, Matrix, SparseMatrix};
use sigma_workloads::materialize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One named workload of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Display name (goes into the `workload` record column).
    pub name: String,
    /// The GEMM problem (shape + densities) to materialize.
    pub problem: GemmProblem,
}

impl WorkloadSpec {
    /// Creates a workload.
    #[must_use]
    pub fn new(name: impl Into<String>, problem: GemmProblem) -> Self {
        Self { name: name.into(), problem }
    }
}

/// Derives the seed for workload `index` from the sweep seed
/// (SplitMix64), so per-workload operands are independent of engine
/// order and thread count.
#[must_use]
pub fn derive_seed(global: u64, index: u64) -> u64 {
    let mut z = global ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning results in input order (a worker pool over an atomic index
/// counter; results are re-sorted by index, so the order — and anything
/// derived from it — is independent of scheduling).
///
/// # Panics
///
/// Propagates a panic from `f`.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut got = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        got.push((i, f(i, &items[i])));
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sweep worker panicked")).collect()
    });
    let mut all: Vec<(usize, R)> = chunks.into_iter().flatten().collect();
    all.sort_by_key(|(i, _)| *i);
    all.into_iter().map(|(_, r)| r).collect()
}

/// A deterministic (engine x workload) sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    workloads: Vec<WorkloadSpec>,
    seed: u64,
    threads: usize,
}

impl Sweep {
    /// Creates a sweep over `workloads` with the default seed and a
    /// thread count taken from the machine (capped at 8).
    #[must_use]
    pub fn new(workloads: Vec<WorkloadSpec>) -> Self {
        let threads =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(8);
        Self { workloads, seed: 0x0053_4947_4d41, threads }
    }

    /// Overrides the sweep seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the worker-thread count (1 = serial).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The sweep seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The workloads.
    #[must_use]
    pub fn workloads(&self) -> &[WorkloadSpec] {
        &self.workloads
    }

    /// Runs every engine on every workload (engine-major record order),
    /// verifying each result against the reference GEMM.
    #[must_use]
    pub fn run(&self, engines: &[EngineEntry]) -> Vec<RunRecord> {
        self.execute(engines, self.threads)
    }

    /// Serial variant of [`Sweep::run`] — same records, one thread.
    #[must_use]
    pub fn run_serial(&self, engines: &[EngineEntry]) -> Vec<RunRecord> {
        self.execute(engines, 1)
    }

    fn execute(&self, engines: &[EngineEntry], threads: usize) -> Vec<RunRecord> {
        struct Prepared {
            seed: u64,
            a: SparseMatrix,
            b: SparseMatrix,
            reference: Matrix,
            tol: f32,
        }
        let prepared: Vec<Prepared> = self
            .workloads
            .iter()
            .enumerate()
            .map(|(wi, w)| {
                let seed = derive_seed(self.seed, wi as u64);
                let (a, b) = materialize(&w.problem, seed);
                let reference = a.to_dense().matmul(&b.to_dense());
                // Accumulation-order slack grows with the contraction
                // length, like the agreement tests elsewhere.
                let tol = 1e-3 * w.problem.shape.k.max(1) as f32;
                Prepared { seed, a, b, reference, tol }
            })
            .collect();

        let jobs: Vec<(usize, usize)> = (0..engines.len())
            .flat_map(|ei| (0..self.workloads.len()).map(move |wi| (ei, wi)))
            .collect();

        par_map(&jobs, threads, |_, &(ei, wi)| {
            let entry = &engines[ei];
            let w = &self.workloads[wi];
            let input = &prepared[wi];
            match entry.engine.run(&input.a, &input.b) {
                Ok(run) => {
                    let max_abs_err = f64::from(run.result.max_abs_diff(&input.reference));
                    let verified = run.result.approx_eq(&input.reference, input.tol);
                    RunRecord::from_run(
                        &entry.slug,
                        &entry.engine.name(),
                        entry.engine.pes(),
                        &w.name,
                        &w.problem,
                        input.seed,
                        &run,
                        max_abs_err,
                        verified,
                    )
                }
                Err(e) => RunRecord::from_error(
                    &entry.slug,
                    &entry.engine.name(),
                    entry.engine.pes(),
                    &w.name,
                    &w.problem,
                    input.seed,
                    e.to_string(),
                ),
            }
        })
    }
}

/// A small functional-scale suite (dense, paper-sparse, irregular, tall)
/// used by `sigma_cli --sweep` and the harness tests.
#[must_use]
pub fn demo_suite() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::new("dense 32x32x32", GemmProblem::dense(GemmShape::new(32, 32, 32))),
        WorkloadSpec::new(
            "sparse 48x48x48 (50%/80%)",
            GemmProblem::sparse(GemmShape::new(48, 48, 48), 0.5, 0.2),
        ),
        WorkloadSpec::new(
            "irregular 24x64x16 (30%/50%)",
            GemmProblem::sparse(GemmShape::new(24, 64, 16), 0.7, 0.5),
        ),
        WorkloadSpec::new(
            "tall 64x8x40 (70%/70%)",
            GemmProblem::sparse(GemmShape::new(64, 8, 40), 0.3, 0.3),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::registry::default_registry;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..97).collect();
        let doubled = par_map(&items, 7, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(par_map(&items, 1, |_, &x| x), items);
        assert!(par_map(&[] as &[usize], 4, |_, &x| x).is_empty());
    }

    #[test]
    fn derived_seeds_are_spread() {
        let seeds: Vec<u64> = (0..16).map(|i| derive_seed(42, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
    }

    #[test]
    fn par_map_really_runs_jobs_on_concurrent_threads() {
        // Four items, four workers, and a barrier only all four jobs
        // together can pass: the map can only complete if every job is
        // simultaneously in flight on its own thread.
        use std::sync::{Barrier, Mutex};
        let barrier = Barrier::new(4);
        let seen = Mutex::new(Vec::new());
        let items = [0u8; 4];
        par_map(&items, 4, |_, _| {
            seen.lock().unwrap().push(std::thread::current().id());
            barrier.wait();
        });
        let ids: std::collections::HashSet<_> = seen.into_inner().unwrap().into_iter().collect();
        assert_eq!(ids.len(), 4, "expected 4 distinct worker threads");
    }

    #[test]
    fn parallel_sweep_equals_serial_sweep() {
        let engines: Vec<_> =
            default_registry().into_iter().filter(|e| e.slug != "sigma").take(4).collect();
        let sweep =
            Sweep::new(demo_suite().into_iter().take(2).collect()).with_seed(9).with_threads(4);
        assert_eq!(sweep.run(&engines), sweep.run_serial(&engines));
    }

    #[test]
    fn records_are_engine_major_and_verified() {
        let engines: Vec<_> = default_registry()
            .into_iter()
            .filter(|e| e.slug == "eie" || e.slug == "scnn")
            .collect();
        let suite = demo_suite().into_iter().take(2).collect::<Vec<_>>();
        let records = Sweep::new(suite.clone()).with_threads(2).run(&engines);
        assert_eq!(records.len(), engines.len() * suite.len());
        assert_eq!(records[0].engine_slug, "eie");
        assert_eq!(records[1].engine_slug, "eie");
        assert_eq!(records[2].engine_slug, "scnn");
        assert!(records.iter().all(|r| r.verified), "all demo runs verify");
        // Same workload -> same operands -> same seed for every engine.
        assert_eq!(records[0].seed, records[2].seed);
    }
}
