//! The parallel sweep driver: a workload suite fanned across a fleet of
//! engines on scoped threads.
//!
//! Determinism contract: operands are materialized up front from seeds
//! derived only from the sweep seed and the workload index, jobs are
//! indexed `engine-major x workload-minor`, and [`par_map`] returns
//! results in job order regardless of thread count — so a parallel sweep
//! is byte-identical to a serial one.
//!
//! Degradation contract: each (engine, workload) cell runs on its own
//! watchdog thread behind `catch_unwind`, so a panicking engine yields a
//! `status=panic` record, a wedged engine yields `status=timeout` once
//! the budget lapses, and every other cell is unaffected — a sweep never
//! dies because one engine does. On timeout the watchdog first cancels
//! the cell's [`CancelToken`] and waits a bounded grace period:
//! cooperative engines (the SIGMA simulator polls the token at fold
//! boundaries) return promptly and the worker thread is *joined*, so the
//! live-thread count stays bounded no matter how many cells time out.
//! Only a non-cooperative engine (one that never polls, like
//! [`WedgingEngine`]) leaves its thread running detached until it
//! returns on its own — Rust has no safe forced thread cancellation.
//! A cell whose budget lapses *twice* is degraded: the sweep reruns it
//! on the analytic SIGMA model and records `status=degraded` with the
//! fallback's numbers, so a sweep always terminates with a full grid.
//!
//! Crash-safety contract: [`Sweep::resume`] drives the same grid through
//! the write-ahead [`journal`](crate::harness::journal) — completed
//! cells replay from disk, missing cells run and are appended durably —
//! and its final records are byte-identical to an uninterrupted
//! [`Sweep::run`].
//!
//! [`WedgingEngine`]: crate::harness::chaos::WedgingEngine

use crate::harness::analytic::SigmaAnalytic;
use crate::harness::cache::{CacheStats, CellKey, Lookup, RunCache};
use crate::harness::journal::{replay, JournalWriter};
use crate::harness::record::{CellProfile, RunRecord, RunStatus};
use crate::harness::registry::EngineEntry;
use sigma_baselines::AnalyticEngine;
use sigma_core::model::GemmProblem;
use sigma_core::{CancelToken, Engine, EngineError, EngineRun};
use sigma_matrix::{GemmShape, Matrix, SparseMatrix};
use sigma_telemetry::{Counter, FlightRecorder, Gauge, Stage, Telemetry};
use sigma_workloads::materialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, Once, OnceLock};
use std::time::Duration;

/// One named workload of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Display name (goes into the `workload` record column).
    pub name: String,
    /// The GEMM problem (shape + densities) to materialize.
    pub problem: GemmProblem,
}

impl WorkloadSpec {
    /// Creates a workload.
    #[must_use]
    pub fn new(name: impl Into<String>, problem: GemmProblem) -> Self {
        Self { name: name.into(), problem }
    }
}

/// Derives the seed for workload `index` from the sweep seed
/// (SplitMix64), so per-workload operands are independent of engine
/// order and thread count.
#[must_use]
pub fn derive_seed(global: u64, index: u64) -> u64 {
    let mut z = global ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning results in input order (a worker pool over an atomic index
/// counter; results are re-sorted by index, so the order — and anything
/// derived from it — is independent of scheduling).
///
/// # Panics
///
/// Propagates a panic from `f`.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut got = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        got.push((i, f(i, &items[i])));
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // A worker panicking is a harness bug (cells are already
                // panic-contained); propagate the original payload.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut all: Vec<(usize, R)> = chunks.into_iter().flatten().collect();
    all.sort_by_key(|(i, _)| *i);
    all.into_iter().map(|(_, r)| r).collect()
}

/// Name given to per-cell watchdog threads; the quiet panic hook keys
/// off it so deliberate chaos-engine panics don't spam stderr.
const CELL_THREAD_NAME: &str = "sweep-cell";

/// Installs (once per process) a panic hook that suppresses the default
/// backtrace printout for panics on [`CELL_THREAD_NAME`] threads — those
/// panics are caught, recorded as `status=panic`, and surfaced in the
/// record's `error` column instead. All other threads keep the previous
/// hook's behavior.
fn install_quiet_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if std::thread::current().name() != Some(CELL_THREAD_NAME) {
                previous(info);
            }
        }));
    });
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// How one attempt at one (engine, workload) cell ended.
enum CellOutcome {
    /// The engine returned a run.
    Done(Box<EngineRun>),
    /// The cell failed; carry the status and a message for the record.
    Failed(RunStatus, String),
}

/// Cell worker threads currently alive (spawned and not yet exited),
/// across every sweep in the process.
static LIVE_CELL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Decrements the live-thread counters when a cell worker exits, however
/// it exits (normal return, caught panic, cancellation).
struct LiveThreadGuard {
    local: Arc<AtomicUsize>,
}

impl LiveThreadGuard {
    fn enter(local: &Arc<AtomicUsize>) -> Self {
        LIVE_CELL_THREADS.fetch_add(1, Ordering::SeqCst);
        local.fetch_add(1, Ordering::SeqCst);
        Self { local: Arc::clone(local) }
    }
}

impl Drop for LiveThreadGuard {
    fn drop(&mut self) {
        LIVE_CELL_THREADS.fetch_sub(1, Ordering::SeqCst);
        self.local.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Cell worker threads currently alive across the whole process.
///
/// After a sweep over cooperative engines returns, this settles back to
/// its pre-sweep value even when cells timed out — the watchdog cancels
/// and joins them. Only non-cooperative engines (never polling their
/// [`CancelToken`]) can hold it elevated.
#[must_use]
pub fn live_cell_threads() -> usize {
    LIVE_CELL_THREADS.load(Ordering::SeqCst)
}

/// Runs one attempt of `engine` on `(a, b)` on a dedicated watchdog
/// thread, converting panics and budget overruns into [`CellOutcome`]s.
///
/// On a budget overrun the watchdog cancels the cell's [`CancelToken`]
/// and waits up to `grace` for the engine to notice (cooperative engines
/// poll at fold boundaries), joining the thread instead of leaking it.
/// The cell is recorded `timeout` either way — the budget was exceeded —
/// so cancellation changes resource usage, never records.
fn attempt_cell(
    engine: &Arc<dyn Engine>,
    a: &Arc<SparseMatrix>,
    b: &Arc<SparseMatrix>,
    budget: Option<Duration>,
    grace: Duration,
    live: &Arc<AtomicUsize>,
    flight: (&FlightRecorder, &str),
) -> CellOutcome {
    let (recorder, label) = flight;
    install_quiet_panic_hook();
    let engine = Arc::clone(engine);
    let (a, b) = (Arc::clone(a), Arc::clone(b));
    let cancel = CancelToken::new();
    let token = cancel.clone();
    let live = Arc::clone(live);
    let (tx, rx) = mpsc::channel();
    let spawned = std::thread::Builder::new().name(CELL_THREAD_NAME.to_string()).spawn(move || {
        let _guard = LiveThreadGuard::enter(&live);
        let outcome = catch_unwind(AssertUnwindSafe(|| engine.run_cancellable(&a, &b, &token)));
        // The receiver may have given up (timeout); a failed send is fine.
        let _ = tx.send(outcome);
    });
    if spawned.is_err() {
        return CellOutcome::Failed(RunStatus::Error, "could not spawn watchdog thread".into());
    }
    let received = match budget {
        Some(budget) => match rx.recv_timeout(budget) {
            Ok(outcome) => outcome,
            Err(_) => {
                // Budget exceeded: ask the engine to stop at its next
                // fold boundary, then wait a grace period so cooperative
                // engines' threads are reaped rather than leaked. The
                // flight-recorder span covers cancel-to-reap (or grace
                // expiry), i.e. how long the watchdog actually waited.
                let t0 = recorder.now_us();
                cancel.cancel();
                let _ = rx.recv_timeout(grace);
                recorder.span_since(Stage::WatchdogCancel, label, t0);
                let budget_ms = u64::try_from(budget.as_millis()).unwrap_or(u64::MAX);
                let msg = EngineError::Timeout { budget_ms }.to_string();
                return CellOutcome::Failed(RunStatus::Timeout, msg);
            }
        },
        None => match rx.recv() {
            Ok(outcome) => outcome,
            // Only reachable if the cell thread died without sending.
            Err(_) => return CellOutcome::Failed(RunStatus::Panic, "cell thread died".into()),
        },
    };
    match received {
        Ok(Ok(run)) => CellOutcome::Done(Box::new(run)),
        Ok(Err(e)) => CellOutcome::Failed(RunStatus::Error, e.to_string()),
        Err(payload) => CellOutcome::Failed(RunStatus::Panic, panic_message(payload.as_ref())),
    }
}

/// A deterministic (engine x workload) sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    workloads: Vec<WorkloadSpec>,
    seed: u64,
    threads: usize,
    budget: Option<Duration>,
    retries: u32,
    backoff: Duration,
    cancel_grace: Duration,
    telemetry: bool,
    registry: Telemetry,
    recorder: FlightRecorder,
    live: Arc<AtomicUsize>,
    cache: Option<Arc<RunCache>>,
}

impl Sweep {
    /// Creates a sweep over `workloads` with the default seed, a thread
    /// count taken from the machine (capped at 8), a 30 s per-cell
    /// watchdog budget, and no retries.
    #[must_use]
    pub fn new(workloads: Vec<WorkloadSpec>) -> Self {
        let threads =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(8);
        Self {
            workloads,
            seed: 0x0053_4947_4d41,
            threads,
            budget: Some(Duration::from_secs(30)),
            retries: 0,
            backoff: Duration::from_millis(25),
            cancel_grace: Duration::from_millis(250),
            telemetry: false,
            registry: Telemetry::off(),
            recorder: FlightRecorder::off(),
            live: Arc::new(AtomicUsize::new(0)),
            cache: None,
        }
    }

    /// Cell worker threads of *this* sweep (and its clones) currently
    /// alive. After a run over cooperative engines this settles back to
    /// zero even when cells timed out — the watchdog cancels and joins
    /// them; see the free function [`live_cell_threads`] for the
    /// process-wide count.
    #[must_use]
    pub fn live_threads(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// Overrides the sweep seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the worker-thread count (1 = serial).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the per-cell watchdog budget (`None` = wait forever).
    #[must_use]
    pub fn with_budget(mut self, budget: Option<Duration>) -> Self {
        self.budget = budget;
        self
    }

    /// Allows up to `retries` extra attempts for a cell that panicked,
    /// errored, or timed out (the record keeps the *last* outcome).
    ///
    /// Retries are spaced by deterministic seeded exponential backoff
    /// (see [`Sweep::with_backoff`]), and a cell whose budget lapses on
    /// two attempts is degraded to the analytic model instead of burning
    /// further budget (`status=degraded`).
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Overrides the base retry backoff (default 25 ms; `Duration::ZERO`
    /// disables sleeping entirely).
    ///
    /// Attempt `n`'s delay is `backoff * 2^(n-1)` (exponent capped at 5)
    /// plus a jitter in `[0, backoff)` derived deterministically from
    /// the sweep seed and the cell's coordinates — so two runs of the
    /// same sweep back off identically, but a fleet of flaky cells does
    /// not retry in lockstep.
    #[must_use]
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Overrides the post-cancellation grace period (default 250 ms) the
    /// watchdog waits for a timed-out engine to notice its
    /// [`CancelToken`] before detaching the thread.
    #[must_use]
    pub fn with_cancel_grace(mut self, grace: Duration) -> Self {
        self.cancel_grace = grace;
        self
    }

    /// Attaches a [`Telemetry`] registry; [`Sweep::resume`] records its
    /// `journal_appends` / `resume_hits` / `degraded_cells` counters
    /// there. Detached (the default) the calls are no-ops.
    #[must_use]
    pub fn with_telemetry_registry(mut self, registry: Telemetry) -> Self {
        self.registry = registry;
        self
    }

    /// Attaches a [`FlightRecorder`]: watchdogged attempts, retry
    /// backoffs, watchdog cancellations, operand materializations, and
    /// queue waits are recorded as thread-tagged wall-clock spans and
    /// per-stage latency histograms, and the sweep maintains the
    /// `cells_total` / `cells_completed` / `live_cell_threads` gauges
    /// (plus `cache_entries` when a cache is attached) with periodic
    /// snapshots. Detached (the default) every recording call is an
    /// inlined early return, so records — and their rendered CSV/JSON —
    /// stay byte-identical to a recorder-free sweep.
    ///
    /// The recorder's clock is injected by the caller (the `sigma_cli`
    /// harness passes a monotonic epoch), keeping wall-clock reads out
    /// of determinism-critical library crates.
    #[must_use]
    pub fn with_flight_recorder(mut self, recorder: FlightRecorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The attached flight recorder (disabled unless
    /// [`Sweep::with_flight_recorder`] was called).
    #[must_use]
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Attaches a shared content-addressed [`RunCache`]: every cell
    /// probes it before executing (a verified hit replaces the
    /// simulation with one map lookup), executed cells are inserted,
    /// and identical in-flight cells — here or in any concurrent sweep
    /// sharing the cache — coalesce onto one executor. Records are
    /// byte-identical to an uncached run by key construction: the
    /// [`CellKey`] covers every result-affecting knob, so a hit can
    /// only serve the bytes the engine would have produced. (Wall-time
    /// telemetry columns are the one exception — a hit replays the
    /// *original* cell's wall time — so cache parity is stated for the
    /// default telemetry-off records, which render those columns as
    /// constants.)
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<RunCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Detaches any attached run cache (cells always execute).
    #[must_use]
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// The attached run cache, if any.
    #[must_use]
    pub fn cache(&self) -> Option<&Arc<RunCache>> {
        self.cache.as_ref()
    }

    /// Turns harness telemetry on or off (default: off). With telemetry
    /// on, each record carries the cell's wall-clock time and a live
    /// one-line progress counter is written to stderr; with it off, the
    /// timing columns render as constants, so records stay byte-identical
    /// across thread counts and machines.
    #[must_use]
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Whether harness telemetry is on.
    #[must_use]
    pub fn telemetry(&self) -> bool {
        self.telemetry
    }

    /// The sweep seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The workloads.
    #[must_use]
    pub fn workloads(&self) -> &[WorkloadSpec] {
        &self.workloads
    }

    /// Runs every engine on every workload (engine-major record order),
    /// verifying each result against the reference GEMM.
    #[must_use]
    pub fn run(&self, engines: &[EngineEntry]) -> Vec<RunRecord> {
        self.execute(engines, self.threads)
    }

    /// Serial variant of [`Sweep::run`] — same records, one thread.
    #[must_use]
    pub fn run_serial(&self, engines: &[EngineEntry]) -> Vec<RunRecord> {
        self.execute(engines, 1)
    }

    /// Resumes (or starts) a journaled sweep: cells whose key is already
    /// in the journal at `journal_path` replay from disk, missing cells
    /// run and are appended durably as they complete, and the journal is
    /// compacted atomically at the end. The returned records are
    /// byte-identical to an uninterrupted [`Sweep::run`] — a sweep
    /// killed at *any* point loses at most its in-flight cells.
    ///
    /// When a [`Telemetry`] registry is attached (see
    /// [`Sweep::with_telemetry_registry`]), the `journal_appends`,
    /// `resume_hits`, and `degraded_cells` counters are recorded.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors opening or compacting the journal. A
    /// *corrupt* journal never errors — bad lines are skipped with a
    /// warning in the outcome and their cells simply rerun.
    pub fn resume(
        &self,
        engines: &[EngineEntry],
        journal_path: &Path,
    ) -> std::io::Result<ResumeOutcome> {
        let replayed = replay(journal_path)?;
        let prepared = self.prepare();
        let jobs = self.jobs(engines);
        let keys: Vec<CellKey> = jobs
            .iter()
            .map(|&(ei, wi)| {
                CellKey::for_engine(
                    &engines[ei].slug,
                    engines[ei].engine.as_ref(),
                    &self.workloads[wi],
                    prepared[wi].seed,
                )
            })
            .collect();
        let writer = {
            let mut w = JournalWriter::open(journal_path)?;
            w.set_recorder(self.recorder.clone());
            Mutex::new(w)
        };
        let append_warnings = Mutex::new(Vec::new());
        let cache_before = self.cache.as_ref().map(|c| c.stats());
        let results: Vec<(RunRecord, bool)> = par_map(&jobs, self.threads, |ji, &(ei, wi)| {
            let entry = &engines[ei];
            let w = &self.workloads[wi];
            let key = &keys[ji];
            if let Some(done) = replayed.get(key) {
                return (done.clone(), true);
            }
            // The journal (this sweep's own prior progress) misses; try
            // the shared cross-sweep cache before simulating. A cache
            // hit is not journaled here — the final compaction persists
            // the full grid anyway — so `journal_appends` keeps meaning
            // "cells executed by this invocation".
            let mut lease = None;
            if let Some(cache) = &self.cache {
                match cache.lookup(key) {
                    Lookup::Hit(record) => return (*record, false),
                    Lookup::Miss(granted) => lease = Some(granted),
                }
            }
            let record = self.run_cell(entry, ei, wi, w, self.force_timed(&prepared[wi], w));
            if let Some(granted) = lease {
                // Only deterministic successes are worth memoizing: a
                // panic/timeout/error record pins a transient failure.
                // Dropping the lease hands execution to any waiter.
                if record.status == RunStatus::Ok {
                    granted.fulfill(&record);
                }
            }
            // Append (and fsync) before reporting the cell complete:
            // once a record is visible to the caller it must survive a
            // SIGKILL. An append failure downgrades to a warning — the
            // sweep still finishes, it just re-runs the cell next time.
            match writer.lock() {
                Ok(mut wtr) => {
                    if let Err(e) = wtr.append(key, &record) {
                        if let Ok(mut warns) = append_warnings.lock() {
                            warns.push(format!("journal append failed for {}: {e}", key.hex()));
                        }
                    }
                }
                Err(_) => {
                    if let Ok(mut warns) = append_warnings.lock() {
                        warns.push(format!("journal writer poisoned before {}", key.hex()));
                    }
                }
            }
            (record, false)
        });
        self.record_cache_deltas(cache_before);
        // Resume has no live progress line; still leave one final gauge
        // sample so a recorded resume renders counter tracks.
        self.recorder.gauge_set(Gauge::CellsTotal, jobs.len() as u64);
        self.recorder.gauge_set(Gauge::CellsCompleted, jobs.len() as u64);
        self.recorder.snap();
        let resume_hits = results.iter().filter(|(_, hit)| *hit).count() as u64;
        let records: Vec<RunRecord> = results.into_iter().map(|(r, _)| r).collect();
        let degraded_cells =
            records.iter().filter(|r| r.status == RunStatus::Degraded).count() as u64;
        let mut writer = match writer.into_inner() {
            Ok(w) => w,
            Err(poisoned) => poisoned.into_inner(),
        };
        let journal_appends = writer.appends();
        // Rotate the journal to exactly the final grid, in job order:
        // duplicates, skipped garbage, and torn tails are dropped.
        let entries: Vec<(&CellKey, &RunRecord)> = keys.iter().zip(&records).collect();
        writer.compact(&entries)?;
        let mut warnings = replayed.warnings;
        warnings.extend(match append_warnings.into_inner() {
            Ok(w) => w,
            Err(poisoned) => poisoned.into_inner(),
        });
        self.registry.add(Counter::JournalAppends, journal_appends);
        self.registry.add(Counter::ResumeHits, resume_hits);
        self.registry.add(Counter::DegradedCells, degraded_cells);
        Ok(ResumeOutcome { records, journal_appends, resume_hits, degraded_cells, warnings })
    }

    /// One lazily-materialized slot per workload. Seeds are derived
    /// eagerly (they feed cell keys and journal replay), but operands and
    /// the dense reference product wait for the first cell that actually
    /// executes — a fully-warm cached sweep never pays for either.
    fn prepare(&self) -> Vec<LazyPrepared> {
        (0..self.workloads.len())
            .map(|wi| LazyPrepared {
                seed: derive_seed(self.seed, wi as u64),
                cell: OnceLock::new(),
            })
            .collect()
    }

    /// The engine-major job grid.
    fn jobs(&self, engines: &[EngineEntry]) -> Vec<(usize, usize)> {
        (0..engines.len())
            .flat_map(|ei| (0..self.workloads.len()).map(move |wi| (ei, wi)))
            .collect()
    }

    /// Deterministic backoff before retry attempt `attempt` (the second
    /// execution is attempt 2): exponential in the attempt number with
    /// seeded jitter, a pure function of (sweep seed, cell coordinates,
    /// attempt).
    fn backoff_delay(&self, ei: usize, wi: usize, attempt: u32) -> Duration {
        if self.backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = 2u32.saturating_pow(attempt.saturating_sub(2).min(5));
        let base = self.backoff.saturating_mul(exp);
        let cell_seed = self.seed ^ ((ei as u64) << 32) ^ (wi as u64);
        let jitter_span = u64::try_from(self.backoff.as_nanos()).unwrap_or(u64::MAX).max(1);
        let jitter_ns = derive_seed(cell_seed, u64::from(attempt)) % jitter_span;
        base.saturating_add(Duration::from_nanos(jitter_ns))
    }

    /// Runs one (engine, workload) cell to a final record: watchdogged
    /// attempts with deterministic backoff between them, then — if the
    /// budget lapsed on two or more attempts — the graceful-degradation
    /// ladder onto the analytic SIGMA model.
    fn run_cell(
        &self,
        entry: &EngineEntry,
        ei: usize,
        wi: usize,
        w: &WorkloadSpec,
        input: &Prepared,
    ) -> RunRecord {
        let started = self.telemetry.then(std::time::Instant::now);
        // The span label is only built when the recorder is on, so a
        // recorder-free cell allocates nothing extra.
        let owned_label = self.recorder.is_enabled().then(|| format!("{}: {}", entry.slug, w.name));
        let label = owned_label.as_deref().unwrap_or("");
        let mut t0 = self.recorder.now_us();
        let mut outcome = attempt_cell(
            &entry.engine,
            &input.a,
            &input.b,
            self.budget,
            self.cancel_grace,
            &self.live,
            (&self.recorder, label),
        );
        self.recorder.span_since(Stage::EngineRun, label, t0);
        let mut attempts: u32 = 1;
        let mut timeouts = u32::from(matches!(outcome, CellOutcome::Failed(RunStatus::Timeout, _)));
        while attempts <= self.retries && matches!(outcome, CellOutcome::Failed(..)) {
            attempts += 1;
            t0 = self.recorder.now_us();
            std::thread::sleep(self.backoff_delay(ei, wi, attempts));
            self.recorder.span_since(Stage::RetryBackoff, label, t0);
            t0 = self.recorder.now_us();
            outcome = attempt_cell(
                &entry.engine,
                &input.a,
                &input.b,
                self.budget,
                self.cancel_grace,
                &self.live,
                (&self.recorder, label),
            );
            self.recorder.span_since(Stage::EngineRun, label, t0);
            timeouts += u32::from(matches!(outcome, CellOutcome::Failed(RunStatus::Timeout, _)));
        }
        // Graceful degradation: a cell that exhausted its budget twice
        // is not going to finish — rerun it on the analytic model so the
        // sweep still terminates with a full grid. The record keeps the
        // original engine's slug (the grid cell), carries the fallback's
        // name and numbers, and is marked `degraded`.
        let mut degraded_from = None;
        if timeouts >= 2 {
            if let CellOutcome::Failed(RunStatus::Timeout, msg) = &outcome {
                let fallback: Arc<dyn Engine> =
                    Arc::new(AnalyticEngine::new(SigmaAnalytic::paper()));
                let tf = self.recorder.now_us();
                let fb = attempt_cell(
                    &fallback,
                    &input.a,
                    &input.b,
                    self.budget,
                    self.cancel_grace,
                    &self.live,
                    (&self.recorder, label),
                );
                self.recorder.span_since(Stage::EngineRun, label, tf);
                if let CellOutcome::Done(run) = fb {
                    degraded_from =
                        Some((format!("{msg}; degraded to analytic fallback"), fallback));
                    attempts += 1;
                    outcome = CellOutcome::Done(run);
                }
            }
        }
        // The operand footprint is derived from nnz alone, so it is
        // deterministic; wall time is only recorded when telemetry is
        // on, keeping default records byte-identical across machines.
        let profile = CellProfile {
            wall_ms: started.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3),
            attempts,
            mem_est_bytes: operand_footprint_bytes(&input.a, &input.b),
        };
        match outcome {
            CellOutcome::Done(run) => {
                let (name, pes) = match &degraded_from {
                    Some((_, fallback)) => (fallback.name(), fallback.pes()),
                    None => (entry.engine.name(), entry.engine.pes()),
                };
                let max_abs_err = f64::from(run.result.max_abs_diff(&input.reference));
                let verified = run.result.approx_eq(&input.reference, input.tol);
                let mut record = RunRecord::from_run(
                    &entry.slug,
                    &name,
                    pes,
                    &w.name,
                    &w.problem,
                    input.seed,
                    &run,
                    max_abs_err,
                    verified,
                    profile,
                );
                if let Some((why, _)) = degraded_from {
                    record.status = RunStatus::Degraded;
                    record.error = Some(why);
                }
                record
            }
            CellOutcome::Failed(status, msg) => RunRecord::from_failure(
                &entry.slug,
                &entry.engine.name(),
                entry.engine.pes(),
                &w.name,
                &w.problem,
                input.seed,
                status,
                msg,
                profile,
            ),
        }
    }

    fn execute(&self, engines: &[EngineEntry], threads: usize) -> Vec<RunRecord> {
        let prepared = self.prepare();
        let jobs = self.jobs(engines);
        let total = jobs.len();
        let completed = AtomicUsize::new(0);
        let cache_before = self.cache.as_ref().map(|c| c.stats());
        let progress = self.telemetry || self.recorder.is_enabled();
        let started = progress.then(std::time::Instant::now);
        // Queue wait is measured from one shared stamp at dispatch: a
        // cell's wait is how long after the sweep started a worker first
        // picked it up.
        let dispatched_us = self.recorder.now_us();
        self.recorder.gauge_set(Gauge::CellsTotal, total as u64);
        self.recorder.gauge_set(Gauge::CellsCompleted, 0);
        self.recorder.snap();
        let snap_every = (total / 16).max(1);
        let records = par_map(&jobs, threads, |_, &(ei, wi)| {
            let entry = &engines[ei];
            let w = &self.workloads[wi];
            if self.recorder.is_enabled() {
                let label = format!("{}: {}", entry.slug, w.name);
                self.recorder.span_since(Stage::QueueWait, &label, dispatched_us);
            }
            let record = self.run_cell_cached(entry, ei, wi, w, &prepared[wi]);
            if progress {
                let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                self.recorder.gauge_set(Gauge::CellsCompleted, done as u64);
                self.recorder
                    .gauge_set(Gauge::LiveCellThreads, self.live.load(Ordering::SeqCst) as u64);
                if let Some(cache) = &self.cache {
                    if self.recorder.is_enabled() {
                        self.recorder.gauge_set(Gauge::CacheEntries, cache.stats().entries);
                    }
                }
                if done.is_multiple_of(snap_every) || done == total {
                    self.recorder.snap();
                }
                let elapsed = started.map_or(0.0, |t| t.elapsed().as_secs_f64());
                let eta = if done > 0 && done < total {
                    elapsed / done as f64 * (total - done) as f64
                } else {
                    0.0
                };
                eprint!(
                    "\r[sweep] {done}/{total} cells | {elapsed:.1}s elapsed, eta {eta:.1}s ({}: {})",
                    entry.slug, w.name
                );
                if done == total {
                    eprintln!();
                }
            }
            record
        });
        self.record_cache_deltas(cache_before);
        records
    }

    /// Runs one cell through the attached [`RunCache`], if any: probe
    /// first (coalescing with any identical in-flight cell), execute on
    /// a miss, and memoize the result. Only `ok` records are inserted —
    /// a panic/timeout/error record would pin a transient failure, so
    /// those cells re-execute every time (the abandoned lease hands
    /// execution to any coalesced waiter). A hit returns before the
    /// workload's operands are ever materialized.
    fn run_cell_cached(
        &self,
        entry: &EngineEntry,
        ei: usize,
        wi: usize,
        w: &WorkloadSpec,
        lazy: &LazyPrepared,
    ) -> RunRecord {
        let Some(cache) = &self.cache else {
            return self.run_cell(entry, ei, wi, w, self.force_timed(lazy, w));
        };
        let key = CellKey::for_engine(&entry.slug, entry.engine.as_ref(), w, lazy.seed);
        match cache.lookup(&key) {
            Lookup::Hit(record) => *record,
            Lookup::Miss(lease) => {
                let record = self.run_cell(entry, ei, wi, w, self.force_timed(lazy, w));
                if record.status == RunStatus::Ok {
                    lease.fulfill(&record);
                }
                record
            }
        }
    }

    /// [`LazyPrepared::force`] with a [`Stage::Materialize`] span around
    /// the first (materializing) call. Already-materialized slots — and
    /// every call with the recorder off — go straight through, so the
    /// `materialize` histogram counts workloads materialized, not cells
    /// run. (Two racing first callers may both record; the loser's span
    /// measures its block on the winner, which is still time spent
    /// waiting on materialization.)
    fn force_timed<'a>(&self, lazy: &'a LazyPrepared, w: &WorkloadSpec) -> &'a Prepared {
        if !self.recorder.is_enabled() || lazy.cell.get().is_some() {
            return lazy.force(w);
        }
        let t0 = self.recorder.now_us();
        let prepared = lazy.force(w);
        self.recorder.span_since(Stage::Materialize, &w.name, t0);
        prepared
    }

    /// Folds the cache activity attributable to this sweep into the
    /// telemetry registry as before/after stat deltas. When several
    /// sweeps share one cache concurrently the attribution is
    /// approximate (deltas include the neighbours' traffic); the
    /// counters are observational and never feed into records.
    fn record_cache_deltas(&self, before: Option<CacheStats>) {
        let (Some(cache), Some(before)) = (&self.cache, before) else {
            return;
        };
        let after = cache.stats();
        self.registry.add(Counter::CacheHits, after.hits.saturating_sub(before.hits));
        self.registry.add(Counter::CacheMisses, after.misses.saturating_sub(before.misses));
        self.registry
            .add(Counter::InflightCoalesced, after.coalesced.saturating_sub(before.coalesced));
        self.registry
            .add(Counter::CacheEvictions, after.evictions.saturating_sub(before.evictions));
    }
}

/// One workload's materialized inputs: operands, the dense reference
/// product, and the verification tolerance.
struct Prepared {
    seed: u64,
    a: Arc<SparseMatrix>,
    b: Arc<SparseMatrix>,
    reference: Matrix,
    tol: f32,
}

/// A [`Prepared`] slot that materializes on first use (thread-safe; racing
/// cells block on the one materializer). The seed is available without
/// forcing, so cache/journal keys never trigger materialization.
struct LazyPrepared {
    seed: u64,
    cell: OnceLock<Prepared>,
}

impl LazyPrepared {
    /// The materialized inputs, computing them on the first call. Pure in
    /// `(workload, seed)`, so laziness cannot perturb records.
    fn force(&self, w: &WorkloadSpec) -> &Prepared {
        self.cell.get_or_init(|| {
            let (a, b) = materialize(&w.problem, self.seed);
            let reference = a.to_dense().matmul(&b.to_dense());
            // Accumulation-order slack grows with the contraction
            // length, like the agreement tests elsewhere.
            let tol = 1e-3 * w.problem.shape.k.max(1) as f32;
            Prepared { seed: self.seed, a: Arc::new(a), b: Arc::new(b), reference, tol }
        })
    }
}

/// What [`Sweep::resume`] produced, beyond the records themselves.
#[derive(Debug)]
pub struct ResumeOutcome {
    /// The full grid, engine-major — byte-identical to [`Sweep::run`].
    pub records: Vec<RunRecord>,
    /// Cells executed (and durably journaled) by *this* invocation.
    pub journal_appends: u64,
    /// Cells replayed from the journal instead of re-executed.
    pub resume_hits: u64,
    /// Cells (replayed or fresh) that degraded to the analytic model.
    pub degraded_cells: u64,
    /// Replay and append warnings (corrupt lines skipped, ...).
    pub warnings: Vec<String>,
}

/// Deterministic estimate of a cell's operand working set: compressed
/// non-zero values plus the one-bit-per-position bitmaps SIGMA's
/// controller scans (Sec. IV-D). A proxy for resident memory that is a
/// pure function of the operands, so it is identical across machines,
/// thread counts, and telemetry settings.
fn operand_footprint_bytes(a: &SparseMatrix, b: &SparseMatrix) -> u64 {
    let values = 4 * (a.nnz() + b.nnz()) as u64;
    let bitmaps = ((a.rows() * a.cols() + b.rows() * b.cols()) as u64).div_ceil(8);
    values + bitmaps
}

/// A small functional-scale suite (dense, paper-sparse, irregular, tall)
/// used by `sigma_cli --sweep` and the harness tests.
#[must_use]
pub fn demo_suite() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::new("dense 32x32x32", GemmProblem::dense(GemmShape::new(32, 32, 32))),
        WorkloadSpec::new(
            "sparse 48x48x48 (50%/80%)",
            GemmProblem::sparse(GemmShape::new(48, 48, 48), 0.5, 0.2),
        ),
        WorkloadSpec::new(
            "irregular 24x64x16 (30%/50%)",
            GemmProblem::sparse(GemmShape::new(24, 64, 16), 0.7, 0.5),
        ),
        WorkloadSpec::new(
            "tall 64x8x40 (70%/70%)",
            GemmProblem::sparse(GemmShape::new(64, 8, 40), 0.3, 0.3),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::registry::default_registry;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..97).collect();
        let doubled = par_map(&items, 7, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(par_map(&items, 1, |_, &x| x), items);
        assert!(par_map(&[] as &[usize], 4, |_, &x| x).is_empty());
    }

    #[test]
    fn derived_seeds_are_spread() {
        let seeds: Vec<u64> = (0..16).map(|i| derive_seed(42, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
    }

    #[test]
    fn par_map_really_runs_jobs_on_concurrent_threads() {
        // Four items, four workers, and a barrier only all four jobs
        // together can pass: the map can only complete if every job is
        // simultaneously in flight on its own thread.
        use std::sync::{Barrier, Mutex};
        let barrier = Barrier::new(4);
        let seen = Mutex::new(Vec::new());
        let items = [0u8; 4];
        par_map(&items, 4, |_, _| {
            seen.lock().unwrap().push(std::thread::current().id());
            barrier.wait();
        });
        let ids: std::collections::HashSet<_> = seen.into_inner().unwrap().into_iter().collect();
        assert_eq!(ids.len(), 4, "expected 4 distinct worker threads");
    }

    #[test]
    fn parallel_sweep_equals_serial_sweep() {
        let engines: Vec<_> =
            default_registry().into_iter().filter(|e| e.slug != "sigma").take(4).collect();
        let sweep =
            Sweep::new(demo_suite().into_iter().take(2).collect()).with_seed(9).with_threads(4);
        assert_eq!(sweep.run(&engines), sweep.run_serial(&engines));
    }

    /// The acceptance scenario: the full 11-engine registry plus one
    /// deliberately panicking and one deliberately wedged engine. The
    /// sweep completes, those cells (and only those) report
    /// `status=panic` / `status=timeout`, and every healthy cell is
    /// byte-identical to a chaos-free sweep.
    #[test]
    fn chaos_engines_degrade_to_status_rows_without_poisoning_the_sweep() {
        use crate::harness::chaos::{PanickingEngine, WedgingEngine};
        let clean = default_registry();
        let mut fleet = default_registry();
        fleet.push(EngineEntry::new("chaos-panic", Box::new(PanickingEngine)));
        fleet.push(EngineEntry::new(
            "chaos-wedge",
            Box::new(WedgingEngine::new(Duration::from_secs(60))),
        ));
        let suite = demo_suite().into_iter().take(2).collect::<Vec<_>>();
        let workloads = suite.len();
        let sweep = Sweep::new(suite).with_threads(4).with_budget(Some(Duration::from_secs(2)));
        let records = sweep.run(&fleet);
        let baseline = sweep.run(&clean);
        assert_eq!(records.len(), (clean.len() + 2) * workloads);
        for r in &records {
            match r.engine_slug.as_str() {
                "chaos-panic" => {
                    assert_eq!(r.status, RunStatus::Panic, "{}", r.workload);
                    assert!(r.error.as_deref().unwrap().contains("deliberate panic"));
                }
                "chaos-wedge" => {
                    assert_eq!(r.status, RunStatus::Timeout, "{}", r.workload);
                    assert!(r.error.as_deref().unwrap().contains("watchdog"));
                }
                _ => assert_eq!(r.status, RunStatus::Ok, "{}", r.engine_slug),
            }
        }
        // The healthy cells are byte-identical to a chaos-free sweep.
        let ok_rows: Vec<_> =
            records.iter().filter(|r| r.status == RunStatus::Ok).cloned().collect();
        assert_eq!(ok_rows, baseline);
    }

    #[test]
    fn retries_recover_flaky_cells() {
        use crate::harness::chaos::FlakyEngine;
        let suite = vec![demo_suite().remove(0)];
        let flaky_fleet = || vec![EngineEntry::new("chaos-flaky", Box::new(FlakyEngine::new(2)))];
        let no_retry = Sweep::new(suite.clone()).with_threads(1).run(&flaky_fleet());
        assert_eq!(no_retry[0].status, RunStatus::Panic);
        let with_retry = Sweep::new(suite).with_threads(1).with_retries(2).run(&flaky_fleet());
        assert_eq!(with_retry[0].status, RunStatus::Ok);
        assert!(with_retry[0].verified);
    }

    #[test]
    fn backoff_delays_are_deterministic_and_exponential() {
        let sweep = Sweep::new(demo_suite()).with_seed(3);
        let d2 = sweep.backoff_delay(1, 2, 2);
        let d3 = sweep.backoff_delay(1, 2, 3);
        let d4 = sweep.backoff_delay(1, 2, 4);
        // Pure function of (seed, cell, attempt).
        assert_eq!(d2, sweep.backoff_delay(1, 2, 2));
        // Exponential envelope: attempt n's base doubles, jitter < base.
        assert!(d3 > d2, "{d3:?} vs {d2:?}");
        assert!(d4 > d3, "{d4:?} vs {d3:?}");
        assert!(d4 < Duration::from_millis(25 * 4 + 25));
        // Different cells jitter differently (with overwhelming odds).
        let other = Sweep::new(demo_suite()).with_seed(3).backoff_delay(0, 0, 2);
        assert_ne!(d2, other);
        // Zero base disables sleeping entirely.
        let quiet = Sweep::new(demo_suite()).with_backoff(Duration::ZERO);
        assert_eq!(quiet.backoff_delay(1, 2, 2), Duration::ZERO);
    }

    /// Satellite 1 acceptance: N cooperative timeouts leave no lingering
    /// watchdog threads — the cancel + grace join reaps every one.
    #[test]
    fn cooperative_timeouts_leave_a_bounded_thread_count() {
        use crate::harness::chaos::SpinningEngine;
        let fleet = vec![
            EngineEntry::new("chaos-spin-a", Box::new(SpinningEngine::default())),
            EngineEntry::new("chaos-spin-b", Box::new(SpinningEngine::default())),
        ];
        let suite = demo_suite().into_iter().take(3).collect::<Vec<_>>();
        let cells = fleet.len() * suite.len();
        let sweep = Sweep::new(suite)
            .with_threads(2)
            .with_budget(Some(Duration::from_millis(50)))
            .with_cancel_grace(Duration::from_secs(2));
        let records = sweep.run(&fleet);
        assert_eq!(records.len(), cells);
        assert!(records.iter().all(|r| r.status == RunStatus::Timeout));
        // Every worker was joined within its grace period; allow a brief
        // scheduling window for the last guard to drop. (The per-sweep
        // counter is used because concurrently running tests park their
        // own — deliberately non-cooperative — threads in the global one.)
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sweep.live_threads() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(sweep.live_threads(), 0, "timed-out cooperative cells must be reaped");
    }

    /// Tentpole acceptance: a cell that exhausts its budget twice falls
    /// back to the analytic model and is recorded `degraded`, with the
    /// fallback's name and numbers under the original engine's slug.
    #[test]
    fn repeated_timeouts_degrade_to_the_analytic_model() {
        use crate::harness::chaos::SpinningEngine;
        let fleet = vec![EngineEntry::new("chaos-spin", Box::new(SpinningEngine::default()))];
        let suite = vec![demo_suite().remove(0)];
        let records = Sweep::new(suite)
            .with_threads(1)
            .with_budget(Some(Duration::from_millis(40)))
            .with_cancel_grace(Duration::from_secs(2))
            .with_retries(1)
            .with_backoff(Duration::ZERO)
            .run(&fleet);
        let r = &records[0];
        assert_eq!(r.status, RunStatus::Degraded);
        assert_eq!(r.engine_slug, "chaos-spin", "grid cell keeps the original slug");
        assert!(r.engine.contains("[analytic]"), "{}", r.engine);
        assert!(r.error.as_deref().unwrap_or("").contains("degraded to analytic fallback"));
        assert_eq!(r.attempts, 3, "two budgeted attempts plus the fallback");
        assert!(r.verified, "the analytic fallback computes the real product");
        assert!(r.total_cycles > 0, "the record carries the fallback's numbers");
        // Without retries there is a single timeout attempt: no ladder.
        let single = Sweep::new(vec![demo_suite().remove(0)])
            .with_threads(1)
            .with_budget(Some(Duration::from_millis(40)))
            .with_cancel_grace(Duration::from_secs(2))
            .run(&fleet);
        assert_eq!(single[0].status, RunStatus::Timeout);
    }

    fn journal_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sigma_sweep_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.journal", std::process::id()))
    }

    /// Tentpole acceptance: a resumed sweep's records are byte-identical
    /// to an uninterrupted run, whatever prefix of the journal survived.
    #[test]
    fn resume_replays_the_journal_and_matches_an_uninterrupted_run() {
        let engines: Vec<_> = default_registry()
            .into_iter()
            .filter(|e| e.slug == "eie" || e.slug == "scnn" || e.slug == "cambricon-x")
            .collect();
        let suite = demo_suite().into_iter().take(2).collect::<Vec<_>>();
        let sweep = Sweep::new(suite).with_seed(11).with_threads(2);
        let baseline = sweep.run(&engines);

        // Fresh resume: no journal yet, every cell executes + journals.
        let path = journal_path("resume_fresh");
        let _ = std::fs::remove_file(&path);
        let first = sweep.resume(&engines, &path).unwrap();
        assert_eq!(first.records, baseline);
        assert_eq!(first.journal_appends, baseline.len() as u64);
        assert_eq!(first.resume_hits, 0);
        assert!(first.warnings.is_empty(), "{:?}", first.warnings);

        // Second resume: everything replays, nothing re-executes.
        let second = sweep.resume(&engines, &path).unwrap();
        assert_eq!(second.records, baseline);
        assert_eq!(second.journal_appends, 0);
        assert_eq!(second.resume_hits, baseline.len() as u64);

        // Simulated crash: keep only a prefix of the journal (as a
        // SIGKILL mid-sweep would), resume, and demand byte-identity —
        // including the rendered CSV/JSON artifacts.
        let text = std::fs::read_to_string(&path).unwrap();
        let keep: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
        std::fs::write(&path, keep).unwrap();
        let resumed = sweep.resume(&engines, &path).unwrap();
        assert_eq!(resumed.resume_hits, 2);
        assert_eq!(resumed.journal_appends, baseline.len() as u64 - 2);
        assert_eq!(resumed.records, baseline);
        assert_eq!(
            crate::harness::record::records_to_json(&resumed.records),
            crate::harness::record::records_to_json(&baseline)
        );
        assert_eq!(
            crate::harness::record::records_table("sweep", &resumed.records).to_csv(),
            crate::harness::record::records_table("sweep", &baseline).to_csv()
        );
        let _ = std::fs::remove_file(&path);
    }

    /// Satellite 3 acceptance: corruption in every class (torn tail,
    /// garbage bytes, duplicates, stale schema) resumes cleanly — the
    /// damaged cells just rerun.
    #[test]
    fn resume_survives_a_corrupted_journal() {
        use std::io::Write;
        let engines: Vec<_> = default_registry().into_iter().filter(|e| e.slug == "eie").collect();
        let suite = demo_suite().into_iter().take(2).collect::<Vec<_>>();
        let sweep = Sweep::new(suite).with_seed(5).with_threads(1);
        let baseline = sweep.run(&engines);
        let path = journal_path("resume_corrupt");
        let _ = std::fs::remove_file(&path);
        let _ = sweep.resume(&engines, &path).unwrap();
        // Vandalize: garbage line, stale schema, duplicate of line 1,
        // then tear the final line.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"\xfe\xffgarbage\n").unwrap();
        f.write_all(b"{\"schema\": 0, \"key\": \"00\", \"record\": {}}\n").unwrap();
        f.write_all(format!("{}\n", lines[0]).as_bytes()).unwrap();
        f.write_all(&lines[1].as_bytes()[..lines[1].len() / 2]).unwrap();
        drop(f);
        let resumed = sweep.resume(&engines, &path).unwrap();
        assert_eq!(resumed.records, baseline);
        assert_eq!(resumed.resume_hits, 2, "both intact lines still replay");
        assert!(resumed.warnings.len() >= 3, "{:?}", resumed.warnings);
        // Compaction scrubbed the damage: the next resume is all hits.
        let clean = sweep.resume(&engines, &path).unwrap();
        assert_eq!(clean.resume_hits, baseline.len() as u64);
        assert!(clean.warnings.is_empty(), "{:?}", clean.warnings);
        let _ = std::fs::remove_file(&path);
    }

    /// Proptest-style sweep over every possible crash point: truncating
    /// the journal after any byte count still resumes to byte-identical
    /// records.
    #[test]
    fn resume_is_byte_identical_from_any_crash_point() {
        let engines: Vec<_> = default_registry().into_iter().filter(|e| e.slug == "eie").collect();
        let suite = demo_suite().into_iter().take(2).collect::<Vec<_>>();
        let sweep = Sweep::new(suite).with_seed(21).with_threads(1);
        let baseline = sweep.run(&engines);
        let path = journal_path("resume_crashpoints");
        let _ = std::fs::remove_file(&path);
        let _ = sweep.resume(&engines, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        // A deterministic spread of crash offsets, including both ends.
        let offsets: Vec<usize> =
            (0..=8).map(|i| i * full.len() / 8).chain([1, full.len() - 1]).collect();
        for cut in offsets {
            std::fs::write(&path, &full[..cut]).unwrap();
            let resumed = sweep.resume(&engines, &path).unwrap();
            assert_eq!(resumed.records, baseline, "crash at byte {cut}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_records_telemetry_counters() {
        use sigma_telemetry::{Counter, Telemetry};
        let engines: Vec<_> = default_registry().into_iter().filter(|e| e.slug == "eie").collect();
        let suite = demo_suite().into_iter().take(2).collect::<Vec<_>>();
        let registry = Telemetry::enabled();
        let sweep = Sweep::new(suite)
            .with_seed(2)
            .with_threads(1)
            .with_telemetry_registry(registry.clone());
        let path = journal_path("resume_telemetry");
        let _ = std::fs::remove_file(&path);
        let _ = sweep.resume(&engines, &path).unwrap();
        assert_eq!(registry.counter(Counter::JournalAppends), 2);
        assert_eq!(registry.counter(Counter::ResumeHits), 0);
        let _ = sweep.resume(&engines, &path).unwrap();
        assert_eq!(registry.counter(Counter::JournalAppends), 2, "second pass appends nothing");
        assert_eq!(registry.counter(Counter::ResumeHits), 2);
        assert_eq!(registry.counter(Counter::DegradedCells), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn records_are_engine_major_and_verified() {
        let engines: Vec<_> = default_registry()
            .into_iter()
            .filter(|e| e.slug == "eie" || e.slug == "scnn")
            .collect();
        let suite = demo_suite().into_iter().take(2).collect::<Vec<_>>();
        let records = Sweep::new(suite.clone()).with_threads(2).run(&engines);
        assert_eq!(records.len(), engines.len() * suite.len());
        assert_eq!(records[0].engine_slug, "eie");
        assert_eq!(records[1].engine_slug, "eie");
        assert_eq!(records[2].engine_slug, "scnn");
        assert!(records.iter().all(|r| r.verified), "all demo runs verify");
        // Same workload -> same operands -> same seed for every engine.
        assert_eq!(records[0].seed, records[2].seed);
    }

    #[test]
    fn par_map_propagates_a_mid_pool_panic() {
        // One job out of many panics while the pool is saturated; the
        // original payload must surface from par_map, not a join error.
        let items: Vec<usize> = (0..32).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, 4, |_, &x| {
                assert_ne!(x, 17, "deliberate mid-pool panic");
                x
            })
        }));
        let payload = caught.expect_err("the panic must propagate");
        assert!(panic_message(payload.as_ref()).contains("deliberate mid-pool panic"));
    }

    #[test]
    fn par_map_clamps_threads_to_the_item_count() {
        // More workers than items: the clamp means no worker spins on an
        // empty index range, and order/results are unaffected.
        let items = [10usize, 20, 30];
        assert_eq!(par_map(&items, 64, |_, &x| x + 1), vec![11, 21, 31]);
        assert_eq!(par_map(&[42usize], 8, |i, &x| (i, x)), vec![(0, 42)]);
        // Zero requested threads degrades to serial, not a panic.
        assert_eq!(par_map(&items, 0, |_, &x| x), items.to_vec());
    }

    #[test]
    fn par_map_jobs_observe_cancellation_at_cell_boundaries() {
        // Sweep cells poll a CancelToken at fold boundaries; model that
        // contract directly: job 3 trips a shared token, and every job
        // scheduled after the trip skips its work. par_map itself must
        // still return a full, input-ordered result vector.
        let token = CancelToken::new();
        let items: Vec<usize> = (0..24).collect();
        let results = par_map(&items, 2, |_, &x| {
            if x == 3 {
                token.cancel();
            }
            if token.is_cancelled() {
                None
            } else {
                Some(x)
            }
        });
        assert_eq!(results.len(), items.len(), "cancellation skips work, never drops slots");
        assert_eq!(results[3], None, "the cancelling job observes its own trip");
        let after_trip = &results[4..];
        assert!(
            after_trip.iter().filter(|r| r.is_none()).count() >= after_trip.len() - 1,
            "jobs claimed after the trip see the cancelled token (at most one was in flight)"
        );
    }

    fn cache_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sigma_sweep_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.cache", std::process::id()))
    }

    /// Tentpole acceptance: cold-cached, warm-cached, and uncached runs
    /// of the same sweep produce byte-identical records — and rendered
    /// CSV/JSON artifacts — while the warm run executes nothing.
    #[test]
    fn cached_sweep_is_byte_identical_to_uncached() {
        use sigma_telemetry::{Counter, Telemetry};
        let engines: Vec<_> = default_registry()
            .into_iter()
            .filter(|e| e.slug == "eie" || e.slug == "scnn")
            .collect();
        let suite = demo_suite().into_iter().take(2).collect::<Vec<_>>();
        let cells = (engines.len() * suite.len()) as u64;
        let uncached = Sweep::new(suite.clone()).with_seed(13).with_threads(2).run(&engines);

        let path = cache_path("parity");
        let _ = std::fs::remove_file(&path);
        let cache = Arc::new(RunCache::open(&path, 64).unwrap());
        let registry = Telemetry::enabled();
        let sweep = Sweep::new(suite)
            .with_seed(13)
            .with_threads(2)
            .with_telemetry_registry(registry.clone())
            .with_cache(Arc::clone(&cache));

        let cold = sweep.run(&engines);
        assert_eq!(cold, uncached, "a cold cache must not perturb records");
        assert_eq!(registry.counter(Counter::CacheMisses), cells);
        assert_eq!(registry.counter(Counter::CacheHits), 0);

        let warm = sweep.run(&engines);
        assert_eq!(warm, uncached, "a warm cache must replay bit-exactly");
        assert_eq!(registry.counter(Counter::CacheHits), cells, "warm run is all hits");
        assert_eq!(registry.counter(Counter::CacheMisses), cells, "no new misses when warm");
        assert_eq!(
            crate::harness::record::records_to_json(&warm),
            crate::harness::record::records_to_json(&uncached)
        );
        assert_eq!(
            crate::harness::record::records_table("sweep", &warm).to_csv(),
            crate::harness::record::records_table("sweep", &uncached).to_csv()
        );

        // And the persisted store replays across a reopen, too.
        drop(sweep);
        drop(cache);
        let reopened = Arc::new(RunCache::open(&path, 64).unwrap());
        let rewarmed = Sweep::new(demo_suite().into_iter().take(2).collect())
            .with_seed(13)
            .with_threads(2)
            .with_cache(Arc::clone(&reopened))
            .run(&engines);
        assert_eq!(rewarmed, uncached);
        assert_eq!(reopened.stats().hits, cells, "reopened store served every cell");
        let _ = std::fs::remove_file(&path);
    }

    /// Tentpole acceptance: identical cells scheduled concurrently in
    /// one grid execute exactly once — duplicates resolve as hits or
    /// in-flight coalesces, never as recomputation.
    #[test]
    fn duplicate_cells_in_one_sweep_execute_exactly_once() {
        let mut fleet: Vec<_> =
            default_registry().into_iter().filter(|e| e.slug == "eie").collect();
        let twin = Arc::clone(&fleet[0].engine);
        // Same slug + same engine => identical CellKey for every workload.
        fleet.push(EngineEntry { slug: "eie".into(), engine: Arc::clone(&twin) });
        fleet.push(EngineEntry { slug: "eie".into(), engine: twin });
        let suite = demo_suite().into_iter().take(2).collect::<Vec<_>>();
        let unique = suite.len() as u64;
        let total = (fleet.len() * suite.len()) as u64;

        let path = cache_path("dedup");
        let _ = std::fs::remove_file(&path);
        let cache = Arc::new(RunCache::open(&path, 64).unwrap());
        let records = Sweep::new(suite)
            .with_seed(29)
            .with_threads(4)
            .with_cache(Arc::clone(&cache))
            .run(&fleet);
        assert_eq!(records.len(), total as usize);
        let stats = cache.stats();
        assert_eq!(stats.misses, unique, "each unique cell executes exactly once");
        assert_eq!(stats.insertions, unique);
        assert_eq!(
            stats.hits + stats.coalesced,
            total - unique,
            "every duplicate was served from the cache or an in-flight lease"
        );
        // Triplicate rows are bit-identical — they are the same record.
        assert_eq!(records[0], records[2]);
        assert_eq!(records[0], records[4]);
        let _ = std::fs::remove_file(&path);
    }

    /// Flight-recorder acceptance: span/histogram counts reconcile with
    /// the grid (queue waits == cells, engine runs == total attempts,
    /// materializations == workloads), gauges land on their final
    /// values, and an *enabled* recorder does not perturb records.
    #[test]
    fn flight_recorder_spans_reconcile_with_the_grid() {
        use std::sync::atomic::AtomicU64;
        let engines: Vec<_> = default_registry()
            .into_iter()
            .filter(|e| e.slug == "eie" || e.slug == "scnn")
            .collect();
        let suite = demo_suite().into_iter().take(2).collect::<Vec<_>>();
        let cells = (engines.len() * suite.len()) as u64;
        let tick = Arc::new(AtomicU64::new(0));
        let clock = {
            let tick = Arc::clone(&tick);
            move || tick.fetch_add(7, Ordering::Relaxed)
        };
        let recorder = FlightRecorder::with_clock(4096, clock);
        let plain = Sweep::new(suite.clone()).with_seed(13).with_threads(2).run(&engines);
        let recorded = Sweep::new(suite)
            .with_seed(13)
            .with_threads(2)
            .with_flight_recorder(recorder.clone())
            .run(&engines);
        assert_eq!(recorded, plain, "an enabled recorder must not perturb records");
        let snap = recorder.snapshot();
        assert!(snap.enabled);
        assert_eq!(snap.dropped_spans, 0);
        assert_eq!(snap.stage("queue_wait").map_or(0, |h| h.count), cells);
        let attempts: u64 = recorded.iter().map(|r| u64::from(r.attempts)).sum();
        assert_eq!(snap.stage("engine_run").map_or(0, |h| h.count), attempts);
        // One span per workload, plus at most one extra per racing
        // first-caller (the loser times its block on the winner).
        let materialized = snap.stage("materialize").map_or(0, |h| h.count);
        assert!(
            (2..=cells).contains(&materialized),
            "materializations {materialized} outside [2, {cells}]"
        );
        assert_eq!(snap.stage("retry_backoff").map_or(0, |h| h.count), 0, "no retries happened");
        assert_eq!(recorder.gauge(Gauge::CellsTotal), cells);
        assert_eq!(recorder.gauge(Gauge::CellsCompleted), cells);
        assert!(!snap.snaps.is_empty(), "periodic snapshots were taken");
        // Every queue wait and engine run left a span in the buffer.
        assert!(snap.spans.len() as u64 >= cells + attempts);
    }

    /// A *disabled* recorder is the default: `with_flight_recorder(off)`
    /// is indistinguishable — records and rendered artifacts
    /// byte-identical — from never attaching one.
    #[test]
    fn disabled_recorder_is_byte_identical_to_no_recorder() {
        let engines: Vec<_> = default_registry().into_iter().filter(|e| e.slug == "eie").collect();
        let suite = demo_suite().into_iter().take(2).collect::<Vec<_>>();
        let plain = Sweep::new(suite.clone()).with_seed(23).with_threads(2).run(&engines);
        let off = Sweep::new(suite)
            .with_seed(23)
            .with_threads(2)
            .with_flight_recorder(FlightRecorder::off())
            .run(&engines);
        assert_eq!(off, plain);
        assert_eq!(
            crate::harness::record::records_to_json(&off),
            crate::harness::record::records_to_json(&plain)
        );
        assert_eq!(
            crate::harness::record::records_table("sweep", &off).to_csv(),
            crate::harness::record::records_table("sweep", &plain).to_csv()
        );
    }

    /// Resume consults the shared cache after its own journal: a warm
    /// cache means a fresh journal resumes without executing anything,
    /// and the final compaction still persists the full grid.
    #[test]
    fn resume_consults_the_cache_before_executing() {
        let engines: Vec<_> = default_registry().into_iter().filter(|e| e.slug == "eie").collect();
        let suite = demo_suite().into_iter().take(2).collect::<Vec<_>>();
        let baseline = Sweep::new(suite.clone()).with_seed(17).with_threads(1).run(&engines);

        let store = cache_path("resume_warm");
        let _ = std::fs::remove_file(&store);
        let cache = Arc::new(RunCache::open(&store, 64).unwrap());
        let sweep = Sweep::new(suite).with_seed(17).with_threads(1).with_cache(Arc::clone(&cache));
        let _ = sweep.run(&engines); // warm the cache
        let warm_hwm = cache.stats();

        let path = journal_path("resume_cached");
        let _ = std::fs::remove_file(&path);
        let outcome = sweep.resume(&engines, &path).unwrap();
        assert_eq!(outcome.records, baseline);
        assert_eq!(outcome.resume_hits, 0, "the journal was fresh");
        assert_eq!(outcome.journal_appends, 0, "cache hits are not re-executed or appended");
        assert_eq!(
            cache.stats().hits,
            warm_hwm.hits + baseline.len() as u64,
            "every cell resolved as a cache hit"
        );
        // Compaction persisted the grid: the next resume is all journal hits.
        let replayed = sweep.resume(&engines, &path).unwrap();
        assert_eq!(replayed.resume_hits, baseline.len() as u64);
        assert_eq!(replayed.records, baseline);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&store);
    }
}
