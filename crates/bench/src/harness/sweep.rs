//! The parallel sweep driver: a workload suite fanned across a fleet of
//! engines on scoped threads.
//!
//! Determinism contract: operands are materialized up front from seeds
//! derived only from the sweep seed and the workload index, jobs are
//! indexed `engine-major x workload-minor`, and [`par_map`] returns
//! results in job order regardless of thread count — so a parallel sweep
//! is byte-identical to a serial one.
//!
//! Degradation contract: each (engine, workload) cell runs on its own
//! watchdog thread behind `catch_unwind`, so a panicking engine yields a
//! `status=panic` record, a wedged engine yields `status=timeout` once
//! the budget lapses, and every other cell is unaffected — a sweep never
//! dies because one engine does. A cell that times out leaves its worker
//! thread running detached until the engine returns on its own (Rust has
//! no safe thread cancellation); the sweep simply stops waiting for it.

use crate::harness::record::{CellProfile, RunRecord, RunStatus};
use crate::harness::registry::EngineEntry;
use sigma_core::model::GemmProblem;
use sigma_core::{Engine, EngineError, EngineRun};
use sigma_matrix::{GemmShape, Matrix, SparseMatrix};
use sigma_workloads::materialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Once};
use std::time::Duration;

/// One named workload of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Display name (goes into the `workload` record column).
    pub name: String,
    /// The GEMM problem (shape + densities) to materialize.
    pub problem: GemmProblem,
}

impl WorkloadSpec {
    /// Creates a workload.
    #[must_use]
    pub fn new(name: impl Into<String>, problem: GemmProblem) -> Self {
        Self { name: name.into(), problem }
    }
}

/// Derives the seed for workload `index` from the sweep seed
/// (SplitMix64), so per-workload operands are independent of engine
/// order and thread count.
#[must_use]
pub fn derive_seed(global: u64, index: u64) -> u64 {
    let mut z = global ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning results in input order (a worker pool over an atomic index
/// counter; results are re-sorted by index, so the order — and anything
/// derived from it — is independent of scheduling).
///
/// # Panics
///
/// Propagates a panic from `f`.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut got = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        got.push((i, f(i, &items[i])));
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // A worker panicking is a harness bug (cells are already
                // panic-contained); propagate the original payload.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut all: Vec<(usize, R)> = chunks.into_iter().flatten().collect();
    all.sort_by_key(|(i, _)| *i);
    all.into_iter().map(|(_, r)| r).collect()
}

/// Name given to per-cell watchdog threads; the quiet panic hook keys
/// off it so deliberate chaos-engine panics don't spam stderr.
const CELL_THREAD_NAME: &str = "sweep-cell";

/// Installs (once per process) a panic hook that suppresses the default
/// backtrace printout for panics on [`CELL_THREAD_NAME`] threads — those
/// panics are caught, recorded as `status=panic`, and surfaced in the
/// record's `error` column instead. All other threads keep the previous
/// hook's behavior.
fn install_quiet_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if std::thread::current().name() != Some(CELL_THREAD_NAME) {
                previous(info);
            }
        }));
    });
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// How one attempt at one (engine, workload) cell ended.
enum CellOutcome {
    /// The engine returned a run.
    Done(Box<EngineRun>),
    /// The cell failed; carry the status and a message for the record.
    Failed(RunStatus, String),
}

/// Runs one attempt of `engine` on `(a, b)` on a dedicated watchdog
/// thread, converting panics and budget overruns into [`CellOutcome`]s.
fn attempt_cell(
    engine: &Arc<dyn Engine>,
    a: &Arc<SparseMatrix>,
    b: &Arc<SparseMatrix>,
    budget: Option<Duration>,
) -> CellOutcome {
    install_quiet_panic_hook();
    let engine = Arc::clone(engine);
    let (a, b) = (Arc::clone(a), Arc::clone(b));
    let (tx, rx) = mpsc::channel();
    let spawned = std::thread::Builder::new().name(CELL_THREAD_NAME.to_string()).spawn(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| engine.run(&a, &b)));
        // The receiver may have given up (timeout); a failed send is fine.
        let _ = tx.send(outcome);
    });
    if spawned.is_err() {
        return CellOutcome::Failed(RunStatus::Error, "could not spawn watchdog thread".into());
    }
    let received = match budget {
        Some(budget) => match rx.recv_timeout(budget) {
            Ok(outcome) => outcome,
            Err(_) => {
                let budget_ms = u64::try_from(budget.as_millis()).unwrap_or(u64::MAX);
                let msg = EngineError::Timeout { budget_ms }.to_string();
                return CellOutcome::Failed(RunStatus::Timeout, msg);
            }
        },
        None => match rx.recv() {
            Ok(outcome) => outcome,
            // Only reachable if the cell thread died without sending.
            Err(_) => return CellOutcome::Failed(RunStatus::Panic, "cell thread died".into()),
        },
    };
    match received {
        Ok(Ok(run)) => CellOutcome::Done(Box::new(run)),
        Ok(Err(e)) => CellOutcome::Failed(RunStatus::Error, e.to_string()),
        Err(payload) => CellOutcome::Failed(RunStatus::Panic, panic_message(payload.as_ref())),
    }
}

/// A deterministic (engine x workload) sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    workloads: Vec<WorkloadSpec>,
    seed: u64,
    threads: usize,
    budget: Option<Duration>,
    retries: u32,
    telemetry: bool,
}

impl Sweep {
    /// Creates a sweep over `workloads` with the default seed, a thread
    /// count taken from the machine (capped at 8), a 30 s per-cell
    /// watchdog budget, and no retries.
    #[must_use]
    pub fn new(workloads: Vec<WorkloadSpec>) -> Self {
        let threads =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(8);
        Self {
            workloads,
            seed: 0x0053_4947_4d41,
            threads,
            budget: Some(Duration::from_secs(30)),
            retries: 0,
            telemetry: false,
        }
    }

    /// Overrides the sweep seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the worker-thread count (1 = serial).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the per-cell watchdog budget (`None` = wait forever).
    #[must_use]
    pub fn with_budget(mut self, budget: Option<Duration>) -> Self {
        self.budget = budget;
        self
    }

    /// Allows up to `retries` extra attempts for a cell that panicked,
    /// errored, or timed out (the record keeps the *last* outcome).
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Turns harness telemetry on or off (default: off). With telemetry
    /// on, each record carries the cell's wall-clock time and a live
    /// one-line progress counter is written to stderr; with it off, the
    /// timing columns render as constants, so records stay byte-identical
    /// across thread counts and machines.
    #[must_use]
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Whether harness telemetry is on.
    #[must_use]
    pub fn telemetry(&self) -> bool {
        self.telemetry
    }

    /// The sweep seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The workloads.
    #[must_use]
    pub fn workloads(&self) -> &[WorkloadSpec] {
        &self.workloads
    }

    /// Runs every engine on every workload (engine-major record order),
    /// verifying each result against the reference GEMM.
    #[must_use]
    pub fn run(&self, engines: &[EngineEntry]) -> Vec<RunRecord> {
        self.execute(engines, self.threads)
    }

    /// Serial variant of [`Sweep::run`] — same records, one thread.
    #[must_use]
    pub fn run_serial(&self, engines: &[EngineEntry]) -> Vec<RunRecord> {
        self.execute(engines, 1)
    }

    fn execute(&self, engines: &[EngineEntry], threads: usize) -> Vec<RunRecord> {
        struct Prepared {
            seed: u64,
            a: Arc<SparseMatrix>,
            b: Arc<SparseMatrix>,
            reference: Matrix,
            tol: f32,
        }
        let prepared: Vec<Prepared> = self
            .workloads
            .iter()
            .enumerate()
            .map(|(wi, w)| {
                let seed = derive_seed(self.seed, wi as u64);
                let (a, b) = materialize(&w.problem, seed);
                let reference = a.to_dense().matmul(&b.to_dense());
                // Accumulation-order slack grows with the contraction
                // length, like the agreement tests elsewhere.
                let tol = 1e-3 * w.problem.shape.k.max(1) as f32;
                Prepared { seed, a: Arc::new(a), b: Arc::new(b), reference, tol }
            })
            .collect();

        let jobs: Vec<(usize, usize)> = (0..engines.len())
            .flat_map(|ei| (0..self.workloads.len()).map(move |wi| (ei, wi)))
            .collect();

        let total = jobs.len();
        let completed = AtomicUsize::new(0);
        par_map(&jobs, threads, |_, &(ei, wi)| {
            let entry = &engines[ei];
            let w = &self.workloads[wi];
            let input = &prepared[wi];
            let started = self.telemetry.then(std::time::Instant::now);
            let mut outcome = attempt_cell(&entry.engine, &input.a, &input.b, self.budget);
            let mut attempts: u32 = 1;
            while attempts <= self.retries && matches!(outcome, CellOutcome::Failed(..)) {
                attempts += 1;
                outcome = attempt_cell(&entry.engine, &input.a, &input.b, self.budget);
            }
            // The operand footprint is derived from nnz alone, so it is
            // deterministic; wall time is only recorded when telemetry is
            // on, keeping default records byte-identical across machines.
            let profile = CellProfile {
                wall_ms: started.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3),
                attempts,
                mem_est_bytes: operand_footprint_bytes(&input.a, &input.b),
            };
            let record = match outcome {
                CellOutcome::Done(run) => {
                    let max_abs_err = f64::from(run.result.max_abs_diff(&input.reference));
                    let verified = run.result.approx_eq(&input.reference, input.tol);
                    RunRecord::from_run(
                        &entry.slug,
                        &entry.engine.name(),
                        entry.engine.pes(),
                        &w.name,
                        &w.problem,
                        input.seed,
                        &run,
                        max_abs_err,
                        verified,
                        profile,
                    )
                }
                CellOutcome::Failed(status, msg) => RunRecord::from_failure(
                    &entry.slug,
                    &entry.engine.name(),
                    entry.engine.pes(),
                    &w.name,
                    &w.problem,
                    input.seed,
                    status,
                    msg,
                    profile,
                ),
            };
            if self.telemetry {
                let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                eprint!("\r[sweep] {done}/{total} cells ({}: {})", entry.slug, w.name);
                if done == total {
                    eprintln!();
                }
            }
            record
        })
    }
}

/// Deterministic estimate of a cell's operand working set: compressed
/// non-zero values plus the one-bit-per-position bitmaps SIGMA's
/// controller scans (Sec. IV-D). A proxy for resident memory that is a
/// pure function of the operands, so it is identical across machines,
/// thread counts, and telemetry settings.
fn operand_footprint_bytes(a: &SparseMatrix, b: &SparseMatrix) -> u64 {
    let values = 4 * (a.nnz() + b.nnz()) as u64;
    let bitmaps = ((a.rows() * a.cols() + b.rows() * b.cols()) as u64).div_ceil(8);
    values + bitmaps
}

/// A small functional-scale suite (dense, paper-sparse, irregular, tall)
/// used by `sigma_cli --sweep` and the harness tests.
#[must_use]
pub fn demo_suite() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::new("dense 32x32x32", GemmProblem::dense(GemmShape::new(32, 32, 32))),
        WorkloadSpec::new(
            "sparse 48x48x48 (50%/80%)",
            GemmProblem::sparse(GemmShape::new(48, 48, 48), 0.5, 0.2),
        ),
        WorkloadSpec::new(
            "irregular 24x64x16 (30%/50%)",
            GemmProblem::sparse(GemmShape::new(24, 64, 16), 0.7, 0.5),
        ),
        WorkloadSpec::new(
            "tall 64x8x40 (70%/70%)",
            GemmProblem::sparse(GemmShape::new(64, 8, 40), 0.3, 0.3),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::registry::default_registry;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..97).collect();
        let doubled = par_map(&items, 7, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(par_map(&items, 1, |_, &x| x), items);
        assert!(par_map(&[] as &[usize], 4, |_, &x| x).is_empty());
    }

    #[test]
    fn derived_seeds_are_spread() {
        let seeds: Vec<u64> = (0..16).map(|i| derive_seed(42, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
    }

    #[test]
    fn par_map_really_runs_jobs_on_concurrent_threads() {
        // Four items, four workers, and a barrier only all four jobs
        // together can pass: the map can only complete if every job is
        // simultaneously in flight on its own thread.
        use std::sync::{Barrier, Mutex};
        let barrier = Barrier::new(4);
        let seen = Mutex::new(Vec::new());
        let items = [0u8; 4];
        par_map(&items, 4, |_, _| {
            seen.lock().unwrap().push(std::thread::current().id());
            barrier.wait();
        });
        let ids: std::collections::HashSet<_> = seen.into_inner().unwrap().into_iter().collect();
        assert_eq!(ids.len(), 4, "expected 4 distinct worker threads");
    }

    #[test]
    fn parallel_sweep_equals_serial_sweep() {
        let engines: Vec<_> =
            default_registry().into_iter().filter(|e| e.slug != "sigma").take(4).collect();
        let sweep =
            Sweep::new(demo_suite().into_iter().take(2).collect()).with_seed(9).with_threads(4);
        assert_eq!(sweep.run(&engines), sweep.run_serial(&engines));
    }

    /// The acceptance scenario: the full 11-engine registry plus one
    /// deliberately panicking and one deliberately wedged engine. The
    /// sweep completes, those cells (and only those) report
    /// `status=panic` / `status=timeout`, and every healthy cell is
    /// byte-identical to a chaos-free sweep.
    #[test]
    fn chaos_engines_degrade_to_status_rows_without_poisoning_the_sweep() {
        use crate::harness::chaos::{PanickingEngine, WedgingEngine};
        let clean = default_registry();
        let mut fleet = default_registry();
        fleet.push(EngineEntry::new("chaos-panic", Box::new(PanickingEngine)));
        fleet.push(EngineEntry::new(
            "chaos-wedge",
            Box::new(WedgingEngine::new(Duration::from_secs(60))),
        ));
        let suite = demo_suite().into_iter().take(2).collect::<Vec<_>>();
        let workloads = suite.len();
        let sweep = Sweep::new(suite).with_threads(4).with_budget(Some(Duration::from_secs(2)));
        let records = sweep.run(&fleet);
        let baseline = sweep.run(&clean);
        assert_eq!(records.len(), (clean.len() + 2) * workloads);
        for r in &records {
            match r.engine_slug.as_str() {
                "chaos-panic" => {
                    assert_eq!(r.status, RunStatus::Panic, "{}", r.workload);
                    assert!(r.error.as_deref().unwrap().contains("deliberate panic"));
                }
                "chaos-wedge" => {
                    assert_eq!(r.status, RunStatus::Timeout, "{}", r.workload);
                    assert!(r.error.as_deref().unwrap().contains("watchdog"));
                }
                _ => assert_eq!(r.status, RunStatus::Ok, "{}", r.engine_slug),
            }
        }
        // The healthy cells are byte-identical to a chaos-free sweep.
        let ok_rows: Vec<_> =
            records.iter().filter(|r| r.status == RunStatus::Ok).cloned().collect();
        assert_eq!(ok_rows, baseline);
    }

    #[test]
    fn retries_recover_flaky_cells() {
        use crate::harness::chaos::FlakyEngine;
        let suite = vec![demo_suite().remove(0)];
        let flaky_fleet = || vec![EngineEntry::new("chaos-flaky", Box::new(FlakyEngine::new(2)))];
        let no_retry = Sweep::new(suite.clone()).with_threads(1).run(&flaky_fleet());
        assert_eq!(no_retry[0].status, RunStatus::Panic);
        let with_retry = Sweep::new(suite).with_threads(1).with_retries(2).run(&flaky_fleet());
        assert_eq!(with_retry[0].status, RunStatus::Ok);
        assert!(with_retry[0].verified);
    }

    #[test]
    fn records_are_engine_major_and_verified() {
        let engines: Vec<_> = default_registry()
            .into_iter()
            .filter(|e| e.slug == "eie" || e.slug == "scnn")
            .collect();
        let suite = demo_suite().into_iter().take(2).collect::<Vec<_>>();
        let records = Sweep::new(suite.clone()).with_threads(2).run(&engines);
        assert_eq!(records.len(), engines.len() * suite.len());
        assert_eq!(records[0].engine_slug, "eie");
        assert_eq!(records[1].engine_slug, "eie");
        assert_eq!(records[2].engine_slug, "scnn");
        assert!(records.iter().all(|r| r.verified), "all demo runs verify");
        // Same workload -> same operands -> same seed for every engine.
        assert_eq!(records[0].seed, records[2].seed);
    }
}
