//! Flight-recorder event log and report builder.
//!
//! A recorded sweep persists its [`FlightSnapshot`] (spans, stage
//! latency histograms, gauges, periodic snapshots) plus the telemetry
//! registry's counters as one append-friendly JSONL file, written
//! atomically through [`write_atomic`](crate::harness::journal::write_atomic)
//! so a crash can never leave a torn log (the same D6 contract as the
//! run journal). `sigma_cli report --from PATH` reads the log back —
//! tolerantly, like journal replay: damaged lines become warnings, not
//! errors — and converts it into a Chrome trace-event JSON (one track
//! per recorded worker thread; journal, cache, and watchdog activity on
//! fixed named tracks; gauge snapshots as counter series) that is
//! self-validated with [`validate_chrome_trace`] before it is written,
//! plus an aggregate per-stage latency table.
//!
//! Line kinds, one JSON object per line:
//!
//! | kind      | payload                                            |
//! |-----------|----------------------------------------------------|
//! | `meta`    | schema version, process name, dropped-span count   |
//! | `counter` | one telemetry-registry counter                     |
//! | `gauge`   | one gauge's final level                            |
//! | `hist`    | one histogram (stage latencies and simulator hists)|
//! | `snap`    | one periodic gauge sample                          |
//! | `span`    | one thread-tagged wall-clock span                  |

use crate::harness::journal::{field, parse_json, write_atomic, Json};
use crate::util::{json_string, Table};
use sigma_telemetry::{
    validate_chrome_trace, ChromeTrace, FlightSnapshot, MetricsReport, ReportHist, SpanRecord,
    Stage, TelemetrySnapshot, TraceSummary,
};
use std::path::Path;

/// Event-log schema version; bump on breaking layout changes.
pub const FLIGHT_SCHEMA: u32 = 1;

/// Fixed trace track for journal append/fsync spans.
const JOURNAL_TID: u64 = 1001;
/// Fixed trace track for cache probe/insert spans.
const CACHE_TID: u64 = 1002;
/// Fixed trace track for watchdog cancellation spans.
const WATCHDOG_TID: u64 = 1003;

/// Renders the event log for one recorded run: meta line first, then
/// counters, gauges, histograms, snapshots, and spans, each on its own
/// line. Deterministic given the snapshots.
#[must_use]
pub fn render_event_log(
    process: &str,
    flight: &FlightSnapshot,
    telemetry: &TelemetrySnapshot,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"kind\": \"meta\", \"schema\": {FLIGHT_SCHEMA}, \"process\": {}, \"dropped_spans\": {}}}\n",
        json_string(process),
        flight.dropped_spans
    ));
    for (name, v) in &telemetry.counters {
        out.push_str(&format!(
            "{{\"kind\": \"counter\", \"name\": {}, \"value\": {v}}}\n",
            json_string(name)
        ));
    }
    for (name, v) in &flight.gauges {
        out.push_str(&format!(
            "{{\"kind\": \"gauge\", \"name\": {}, \"value\": {v}}}\n",
            json_string(name)
        ));
    }
    for h in telemetry
        .hists
        .iter()
        .map(ReportHist::from)
        .chain(flight.stages.iter().map(ReportHist::from))
    {
        let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            "{{\"kind\": \"hist\", \"name\": {}, \"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [{}]}}\n",
            json_string(&h.name),
            h.count,
            h.sum,
            h.max,
            buckets.join(", ")
        ));
    }
    for s in &flight.snaps {
        let gauges: Vec<String> =
            s.gauges.iter().map(|(n, v)| format!("{}: {v}", json_string(n))).collect();
        out.push_str(&format!(
            "{{\"kind\": \"snap\", \"ts_us\": {}, \"gauges\": {{{}}}}}\n",
            s.ts_us,
            gauges.join(", ")
        ));
    }
    for sp in &flight.spans {
        out.push_str(&format!(
            "{{\"kind\": \"span\", \"stage\": {}, \"label\": {}, \"thread\": {}, \"start_us\": {}, \"dur_us\": {}}}\n",
            json_string(sp.stage.name()),
            json_string(&sp.label),
            sp.thread,
            sp.start_us,
            sp.dur_us
        ));
    }
    out
}

/// Writes the event log atomically (temp + sync + rename), so readers
/// and crash recovery never see a torn file.
///
/// # Errors
///
/// Propagates I/O errors from the atomic write.
pub fn write_event_log(
    path: &Path,
    process: &str,
    flight: &FlightSnapshot,
    telemetry: &TelemetrySnapshot,
) -> std::io::Result<()> {
    write_atomic(path, render_event_log(process, flight, telemetry).as_bytes())
}

/// One periodic gauge sample read back from an event log (the owned
/// mirror of [`sigma_telemetry::SnapRecord`], whose names are static).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapSample {
    /// Sample time, microseconds on the recording clock.
    pub ts_us: u64,
    /// `(name, level)` per gauge.
    pub gauges: Vec<(String, u64)>,
}

/// A parsed flight-recorder event log.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    /// Schema version from the meta line (0 when the meta line is lost).
    pub schema: u32,
    /// Process name from the meta line.
    pub process: String,
    /// Spans the recorder's bounded buffer rejected.
    pub dropped_spans: u64,
    /// Telemetry-registry counters.
    pub counters: Vec<(String, u64)>,
    /// Final gauge levels.
    pub gauges: Vec<(String, u64)>,
    /// Histograms (stage latencies and simulator histograms alike).
    pub hists: Vec<ReportHist>,
    /// Periodic gauge samples, in recording order.
    pub snaps: Vec<SnapSample>,
    /// Retained spans, in recording order.
    pub spans: Vec<SpanRecord>,
    /// Damaged or unknown lines, skipped with a note.
    pub warnings: Vec<String>,
}

impl EventLog {
    /// The per-stage latency histogram for `stage`, if recorded.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> Option<&ReportHist> {
        self.hists.iter().find(|h| h.name == stage.name())
    }

    /// Rebuilds a [`MetricsReport`] (counters + gauges + histograms)
    /// from the parsed log, sorted for deterministic export.
    #[must_use]
    pub fn metrics_report(&self) -> MetricsReport {
        MetricsReport {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            hists: self.hists.clone(),
        }
        .sorted()
    }
}

/// Required u64 field on a parsed JSON object.
fn num(obj: &[(String, Json)], name: &str) -> Result<u64, String> {
    field(obj, name)?
        .as_raw()
        .ok_or_else(|| format!("field {name:?} is not a number"))?
        .parse::<u64>()
        .map_err(|e| format!("field {name:?}: {e}"))
}

/// Required string field on a parsed JSON object.
fn text(obj: &[(String, Json)], name: &str) -> Result<String, String> {
    Ok(field(obj, name)?
        .as_str()
        .ok_or_else(|| format!("field {name:?} is not a string"))?
        .to_string())
}

/// Folds one parsed line into the log; the caller turns errors into
/// warnings so one bad line never loses the rest.
fn apply_line(log: &mut EventLog, line: &str) -> Result<(), String> {
    let value = parse_json(line)?;
    let obj = value.as_object().ok_or("line is not a JSON object")?;
    match text(obj, "kind")?.as_str() {
        "meta" => {
            log.schema = u32::try_from(num(obj, "schema")?)
                .map_err(|_| "schema out of range".to_string())?;
            if log.schema != FLIGHT_SCHEMA {
                return Err(format!(
                    "unsupported schema {} (expected {FLIGHT_SCHEMA})",
                    log.schema
                ));
            }
            log.process = text(obj, "process")?;
            log.dropped_spans = num(obj, "dropped_spans")?;
        }
        "counter" => log.counters.push((text(obj, "name")?, num(obj, "value")?)),
        "gauge" => log.gauges.push((text(obj, "name")?, num(obj, "value")?)),
        "hist" => {
            let buckets = field(obj, "buckets")?
                .as_array()
                .ok_or("buckets is not an array")?
                .iter()
                .map(|b| {
                    b.as_raw()
                        .ok_or_else(|| "bucket is not a number".to_string())?
                        .parse::<u64>()
                        .map_err(|e| format!("bucket: {e}"))
                })
                .collect::<Result<Vec<u64>, String>>()?;
            log.hists.push(ReportHist {
                name: text(obj, "name")?,
                count: num(obj, "count")?,
                sum: num(obj, "sum")?,
                max: num(obj, "max")?,
                buckets,
            });
        }
        "snap" => {
            let gauges = field(obj, "gauges")?
                .as_object()
                .ok_or("gauges is not an object")?
                .iter()
                .map(|(name, v)| {
                    let v = v
                        .as_raw()
                        .ok_or_else(|| format!("gauge {name:?} is not a number"))?
                        .parse::<u64>()
                        .map_err(|e| format!("gauge {name:?}: {e}"))?;
                    Ok((name.clone(), v))
                })
                .collect::<Result<Vec<(String, u64)>, String>>()?;
            log.snaps.push(SnapSample { ts_us: num(obj, "ts_us")?, gauges });
        }
        "span" => {
            let stage_name = text(obj, "stage")?;
            let stage =
                Stage::parse(&stage_name).ok_or_else(|| format!("unknown stage {stage_name:?}"))?;
            log.spans.push(SpanRecord {
                stage,
                label: text(obj, "label")?,
                thread: num(obj, "thread")?,
                start_us: num(obj, "start_us")?,
                dur_us: num(obj, "dur_us")?,
            });
        }
        other => return Err(format!("unknown line kind {other:?}")),
    }
    Ok(())
}

/// Parses an event log, skipping damaged lines with a warning — the
/// same tolerance contract as journal replay.
#[must_use]
pub fn parse_event_log(textual: &str) -> EventLog {
    let mut log = EventLog::default();
    for (i, line) in textual.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if let Err(e) = apply_line(&mut log, line) {
            log.warnings.push(format!("line {}: {e}", i + 1));
        }
    }
    if log.schema == 0 {
        log.warnings.push("no valid meta line".to_string());
    }
    log
}

/// Reads and parses an event log from disk.
///
/// # Errors
///
/// Propagates I/O errors; a *damaged* log never errors — bad lines are
/// skipped with warnings.
pub fn read_event_log(path: &Path) -> std::io::Result<EventLog> {
    Ok(parse_event_log(&std::fs::read_to_string(path)?))
}

/// The fixed named track, if any, a stage's spans belong on; worker
/// stages return `None` and land on the recording thread's own track.
fn stage_track(stage: Stage) -> Option<(u64, &'static str)> {
    match stage {
        Stage::JournalAppend | Stage::JournalFsync => Some((JOURNAL_TID, "journal")),
        Stage::CacheProbe | Stage::CacheInsert => Some((CACHE_TID, "cache")),
        Stage::WatchdogCancel => Some((WATCHDOG_TID, "watchdog")),
        Stage::QueueWait | Stage::Materialize | Stage::EngineRun | Stage::RetryBackoff => None,
    }
}

/// What [`build_report`] produced from one event log.
#[derive(Debug, Clone)]
pub struct FlightReport {
    /// The Chrome trace-event JSON (already validated).
    pub trace_json: String,
    /// The validator's summary of that JSON.
    pub summary: TraceSummary,
    /// Aggregate per-stage latency table (one row per [`Stage`]).
    pub table: Table,
}

/// Converts a parsed event log into a validated Chrome trace plus the
/// per-stage latency table. Worker threads become one track each (in
/// first-span order); journal, cache, and watchdog spans go to fixed
/// named tracks; every periodic gauge sample becomes a counter event.
///
/// # Errors
///
/// Returns the validator's message if the built trace does not pass
/// [`validate_chrome_trace`] — a report is never written unvalidated.
pub fn build_report(log: &EventLog) -> Result<FlightReport, String> {
    let process = if log.process.is_empty() { "sigma flight" } else { &log.process };
    let mut trace = ChromeTrace::new(process);
    let mut workers: Vec<u64> = Vec::new();
    let mut named: Vec<u64> = Vec::new();
    for sp in &log.spans {
        let tid = match stage_track(sp.stage) {
            Some((tid, name)) => {
                if !named.contains(&tid) {
                    named.push(tid);
                    trace.thread(tid, name);
                }
                tid
            }
            None => {
                let idx = workers.iter().position(|t| *t == sp.thread).unwrap_or_else(|| {
                    workers.push(sp.thread);
                    let idx = workers.len() - 1;
                    trace.thread(1 + idx as u64, format!("worker {idx}"));
                    idx
                });
                1 + idx as u64
            }
        };
        let name = if sp.label.is_empty() {
            sp.stage.name().to_string()
        } else {
            format!("{}: {}", sp.stage.name(), sp.label)
        };
        trace.span(tid, name, sp.start_us, sp.dur_us);
    }
    for snap in &log.snaps {
        for (name, v) in &snap.gauges {
            trace.counter(name.clone(), snap.ts_us, *v);
        }
    }
    let trace_json = trace.to_json();
    let summary = validate_chrome_trace(&trace_json)?;
    Ok(FlightReport { trace_json, summary, table: stage_table(log) })
}

/// The aggregate per-stage latency table: one row per [`Stage`], in
/// [`Stage::ALL`] order, zero rows included so the shape is fixed.
#[must_use]
pub fn stage_table(log: &EventLog) -> Table {
    let mut table = Table::new("flight stages", &["stage", "count", "sum_us", "mean_us", "max_us"]);
    for stage in Stage::ALL {
        let (count, sum, mean, max) =
            log.stage(stage).map_or((0, 0, 0.0, 0), |h| (h.count, h.sum, h.mean(), h.max));
        table.push(vec![
            stage.name().to_string(),
            count.to_string(),
            sum.to_string(),
            format!("{mean:.1}"),
            max.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_telemetry::{Counter, FlightRecorder, Gauge, Telemetry};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn demo_recorder() -> FlightRecorder {
        let tick = Arc::new(AtomicU64::new(0));
        FlightRecorder::with_clock(128, move || tick.fetch_add(5, Ordering::Relaxed))
    }

    fn demo_snapshots() -> (FlightSnapshot, TelemetrySnapshot) {
        let recorder = demo_recorder();
        let t0 = recorder.now_us();
        recorder.span_since(Stage::Materialize, "dense 32", t0);
        let t1 = recorder.now_us();
        recorder.span_since(Stage::EngineRun, "eie: dense 32", t1);
        let t2 = recorder.now_us();
        recorder.span_since(Stage::JournalAppend, "dense 32", t2);
        let t3 = recorder.now_us();
        recorder.span_since(Stage::CacheProbe, "hit", t3);
        recorder.gauge_set(Gauge::CellsTotal, 4);
        recorder.gauge_set(Gauge::CellsCompleted, 2);
        recorder.snap();
        let registry = Telemetry::enabled();
        registry.add(Counter::CacheHits, 3);
        (recorder.snapshot(), registry.snapshot())
    }

    #[test]
    fn event_log_round_trips_through_render_and_parse() {
        let (flight, telemetry) = demo_snapshots();
        let log = parse_event_log(&render_event_log("sigma sweep", &flight, &telemetry));
        assert!(log.warnings.is_empty(), "{:?}", log.warnings);
        assert_eq!(log.schema, FLIGHT_SCHEMA);
        assert_eq!(log.process, "sigma sweep");
        assert_eq!(log.spans, flight.spans);
        assert_eq!(log.snaps.len(), 1);
        assert_eq!(log.stage(Stage::EngineRun).map_or(0, |h| h.count), 1);
        assert_eq!(log.counters.iter().find(|(n, _)| n == "cache_hits").map(|(_, v)| *v), Some(3));
        assert_eq!(log.gauges.iter().find(|(n, _)| n == "cells_total").map(|(_, v)| *v), Some(4));
        // The rebuilt metrics report exports cleanly both ways.
        let report = log.metrics_report();
        assert!(report.to_json().contains("\"cache_hits\": 3"));
        assert!(report.to_prometheus().contains("sigma_cache_hits 3"));
    }

    #[test]
    fn damaged_lines_become_warnings_not_errors() {
        let (flight, telemetry) = demo_snapshots();
        let mut textual = render_event_log("sigma sweep", &flight, &telemetry);
        textual.push_str("not json at all\n");
        textual.push_str("{\"kind\": \"mystery\", \"x\": 1}\n");
        textual.push_str("{\"kind\": \"span\", \"stage\": \"nonsense\", \"label\": \"x\", \"thread\": 0, \"start_us\": 0, \"dur_us\": 1}\n");
        let log = parse_event_log(&textual);
        assert_eq!(log.warnings.len(), 3, "{:?}", log.warnings);
        assert_eq!(log.spans, flight.spans, "intact lines all survive");
    }

    #[test]
    fn missing_meta_line_is_flagged() {
        let log =
            parse_event_log("{\"kind\": \"gauge\", \"name\": \"cells_total\", \"value\": 1}\n");
        assert_eq!(log.schema, 0);
        assert!(log.warnings.iter().any(|w| w.contains("meta")), "{:?}", log.warnings);
    }

    #[test]
    fn report_routes_stages_to_named_tracks_and_validates() {
        let (flight, telemetry) = demo_snapshots();
        let log = parse_event_log(&render_event_log("sigma sweep", &flight, &telemetry));
        let report = build_report(&log).unwrap();
        assert_eq!(report.summary.span_count, flight.spans.len());
        // One counter sample per gauge in the one snapshot.
        assert_eq!(report.summary.counter_count, Gauge::ALL.len());
        assert!(report.summary.track("journal").is_some(), "journal spans get a named track");
        assert!(report.summary.track("cache").is_some(), "cache spans get a named track");
        assert!(report.summary.track("worker 0").is_some(), "worker spans get a worker track");
        // The latency table has one row per stage, zeros included.
        assert_eq!(report.table.to_csv().lines().count(), 1 + Stage::ALL.len());
        assert!(report.table.to_csv().contains("engine_run,1,"));
    }

    #[test]
    fn write_event_log_is_atomic_and_readable() {
        let dir = std::env::temp_dir().join("sigma_flight_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("log_{}.flight.jsonl", std::process::id()));
        let (flight, telemetry) = demo_snapshots();
        write_event_log(&path, "sigma sweep", &flight, &telemetry).unwrap();
        let log = read_event_log(&path).unwrap();
        assert!(log.warnings.is_empty(), "{:?}", log.warnings);
        assert_eq!(log.spans, flight.spans);
        let _ = std::fs::remove_file(&path);
    }
}
