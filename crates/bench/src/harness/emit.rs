//! The shared figure-binary entry point: every `src/bin/figNN_*` binary
//! hands its tables here instead of hand-rolling print/CSV loops.
//!
//! Flags understood by every figure binary:
//!
//! * `--csv <dir>` — also write each table as `<slug>.csv`;
//! * `--json <dir>` — also write each table as `<slug>.json`;
//! * `--quiet` — suppress the text rendering (files only).

use crate::harness::journal::write_atomic;
use crate::util::Table;
use std::path::Path;

#[derive(Debug, Default)]
struct EmitOptions {
    csv_dir: Option<String>,
    json_dir: Option<String>,
    quiet: bool,
}

impl EmitOptions {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = EmitOptions::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--csv" => {
                    i += 1;
                    opts.csv_dir = Some(args.get(i).ok_or("--csv needs a directory")?.clone());
                }
                "--json" => {
                    i += 1;
                    opts.json_dir = Some(args.get(i).ok_or("--json needs a directory")?.clone());
                }
                "--quiet" => opts.quiet = true,
                other => return Err(format!("unknown flag {other}")),
            }
            i += 1;
        }
        Ok(opts)
    }
}

/// Renders tables to `out` and optionally to CSV/JSON files, per `args`.
///
/// # Errors
///
/// Returns a message on unknown flags or file I/O failure.
pub fn emit_tables_with(
    tables: &[Table],
    args: &[String],
    out: &mut dyn std::io::Write,
) -> Result<(), String> {
    let opts = EmitOptions::parse(args)?;
    for dir in [&opts.csv_dir, &opts.json_dir].into_iter().flatten() {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
    }
    for table in tables {
        if !opts.quiet {
            writeln!(out, "{table}").map_err(|e| e.to_string())?;
        }
        // Atomic (temp + sync + rename) like every other harness
        // artifact: a consumer never observes a half-written export.
        if let Some(dir) = &opts.csv_dir {
            let path = Path::new(dir).join(format!("{}.csv", table.slug()));
            write_atomic(&path, table.to_csv().as_bytes())
                .map_err(|e| format!("write {}: {e}", path.display()))?;
        }
        if let Some(dir) = &opts.json_dir {
            let path = Path::new(dir).join(format!("{}.json", table.slug()));
            write_atomic(&path, table.to_json().as_bytes())
                .map_err(|e| format!("write {}: {e}", path.display()))?;
        }
    }
    Ok(())
}

/// The figure-binary `main` body: emits `tables` to stdout per the
/// process arguments, exiting with status 2 on a usage error.
pub fn emit_tables(tables: &[Table]) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(msg) = emit_tables_with(tables, &args, &mut std::io::stdout()) {
        eprintln!("{msg} (flags: [--csv DIR] [--json DIR] [--quiet])");
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig. T — sample", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        t
    }

    #[test]
    fn text_emission_renders_tables() {
        let mut out = Vec::new();
        emit_tables_with(&[sample()], &[], &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("Fig. T"));
    }

    #[test]
    fn quiet_plus_files_writes_csv_and_json() {
        let dir = std::env::temp_dir().join("sigma_emit_test");
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_string_lossy().to_string();
        let mut out = Vec::new();
        emit_tables_with(
            &[sample()],
            &["--quiet".into(), "--csv".into(), d.clone(), "--json".into(), d.clone()],
            &mut out,
        )
        .unwrap();
        assert!(out.is_empty(), "quiet must suppress text");
        let slug = sample().slug();
        assert_eq!(
            std::fs::read_to_string(dir.join(format!("{slug}.csv"))).unwrap(),
            sample().to_csv()
        );
        assert_eq!(
            std::fs::read_to_string(dir.join(format!("{slug}.json"))).unwrap(),
            sample().to_json()
        );
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "atomic writes leave no temp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let mut out = Vec::new();
        let err = emit_tables_with(&[sample()], &["--nope".into()], &mut out).unwrap_err();
        assert!(err.contains("--nope"));
        assert!(emit_tables_with(&[sample()], &["--csv".into()], &mut out).is_err());
    }
}
