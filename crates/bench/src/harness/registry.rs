//! The engine registry: every functional engine of the evaluation,
//! buildable by a stable slug.
//!
//! All entries are sized to the same ~64-PE class so their cycle counts
//! are comparable (the analytic TPU rides along at its native 16384 PEs
//! for speedup baselines). The slugs are the `sigma_cli --engine` and
//! sweep-record vocabulary — keep them stable.

use sigma_baselines::{
    AnalyticEngine, CambriconEngine, EieEngine, EyerissEngine, GpuEngine, GpuPrecision,
    OuterSpaceEngine, PackedSystolicEngine, ScnnEngine, SystolicArray, SystolicEngine,
};
use sigma_core::{Dataflow, Engine, SigmaConfig, SigmaSim};
use std::sync::Arc;

/// A registered engine: a stable slug plus the shared engine itself.
///
/// Engines are held behind [`Arc`] so a sweep can hand a clone of the
/// handle to a watchdog thread without cloning (or consuming) the
/// registry entry.
pub struct EngineEntry {
    /// Stable lookup key (e.g. `"sigma"`, `"eie"`).
    pub slug: String,
    /// The engine.
    pub engine: Arc<dyn Engine>,
}

impl std::fmt::Debug for EngineEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineEntry")
            .field("slug", &self.slug)
            .field("engine", &self.engine.name())
            .finish()
    }
}

impl EngineEntry {
    /// Creates an entry.
    #[must_use]
    pub fn new(slug: impl Into<String>, engine: Box<dyn Engine>) -> Self {
        Self { slug: slug.into(), engine: Arc::from(engine) }
    }
}

fn sigma_64pe() -> Box<dyn Engine> {
    // Static geometry, known-good by construction: clamped() is exact.
    let cfg = SigmaConfig::clamped(4, 16, 64, Dataflow::WeightStationary);
    Box::new(SigmaSim::new_clamped(cfg))
}

/// The default fleet: SIGMA plus every baseline, all in the 64-PE class
/// (the analytic TPU at its native size).
#[must_use]
pub fn default_registry() -> Vec<EngineEntry> {
    vec![
        EngineEntry::new("sigma", sigma_64pe()),
        EngineEntry::new("systolic-ws", Box::new(SystolicEngine::weight_stationary(8, 8))),
        EngineEntry::new("systolic-os", Box::new(SystolicEngine::output_stationary(8, 8))),
        EngineEntry::new("packed-systolic", Box::new(PackedSystolicEngine::new(8, 8, 8))),
        EngineEntry::new("eie", Box::new(EieEngine::new(64, 1))),
        EngineEntry::new("outerspace", Box::new(OuterSpaceEngine::new(64, 16))),
        EngineEntry::new("scnn", Box::new(ScnnEngine::new(64, 16))),
        EngineEntry::new("cambricon-x", Box::new(CambriconEngine::new(16, 4))),
        EngineEntry::new("eyeriss-v2", Box::new(EyerissEngine::new(64, 1 << 20, 64))),
        EngineEntry::new("gpu-v100", Box::new(GpuEngine::new(GpuPrecision::Fp16Tensor))),
        EngineEntry::new(
            "tpu-analytic",
            Box::new(AnalyticEngine::new(SystolicArray::new(128, 128))),
        ),
    ]
}

/// Builds one engine by slug (the `sigma_cli --engine` lookup).
#[must_use]
pub fn engine_by_name(slug: &str) -> Option<Arc<dyn Engine>> {
    default_registry().into_iter().find(|e| e.slug == slug).map(|e| e.engine)
}

/// All registered slugs, in registry order.
#[must_use]
pub fn engine_names() -> Vec<String> {
    default_registry().into_iter().map(|e| e.slug).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_sigma_and_every_baseline() {
        let names = engine_names();
        for expected in [
            "sigma",
            "systolic-ws",
            "systolic-os",
            "packed-systolic",
            "eie",
            "outerspace",
            "scnn",
            "cambricon-x",
            "eyeriss-v2",
            "gpu-v100",
            "tpu-analytic",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn slugs_are_unique_and_resolve() {
        let names = engine_names();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate slug");
        for n in &names {
            assert!(engine_by_name(n).is_some(), "{n} does not resolve");
        }
        assert!(engine_by_name("no-such-engine").is_none());
    }
}
