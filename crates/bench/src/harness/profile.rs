//! Sweep-level telemetry aggregation: the `telemetry_summary.json`
//! artifact a telemetry-enabled sweep drops next to its CSV.
//!
//! The summary is a pure fold over the sweep's [`RunRecord`]s — wall
//! time, retry pressure, the operand-footprint proxy, and the Benes
//! route-cache economy — grouped overall and per engine. Like every
//! other artifact in the harness it is rendered with hand-rolled JSON in
//! a fixed key order, so two identical sweeps summarize byte-identically.

use crate::harness::record::{RunRecord, RunStatus};
use crate::util::json_string;

/// Aggregate profile of one engine across all its sweep cells.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineProfile {
    /// Registry slug of the engine.
    pub slug: String,
    /// Cells the engine ran (one per workload).
    pub cells: usize,
    /// Cells that terminated `ok`.
    pub ok: usize,
    /// Summed wall-clock time of the engine's cells, in milliseconds.
    pub wall_ms: f64,
    /// Summed total cycles over the engine's `ok` cells.
    pub total_cycles: u64,
    /// Summed Benes route-cache hits over the engine's cells.
    pub route_cache_hits: u64,
    /// Summed Benes route-cache misses over the engine's cells.
    pub route_cache_misses: u64,
}

/// Aggregate profile of a whole sweep, built by [`SweepProfile::from_records`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepProfile {
    /// Total (engine, workload) cells.
    pub cells: usize,
    /// Cells that terminated `ok`.
    pub ok: usize,
    /// Cells the engine refused with an error.
    pub errors: usize,
    /// Cells that panicked.
    pub panics: usize,
    /// Cells that exceeded the watchdog budget.
    pub timeouts: usize,
    /// Cells that fell back to the analytic model after exhausting their
    /// budget repeatedly (`status=degraded`).
    pub degraded: usize,
    /// Cells that needed more than one attempt.
    pub retried_cells: usize,
    /// Summed attempts across all cells (= cells when nothing retried).
    pub total_attempts: u64,
    /// Summed wall-clock time across all cells, in milliseconds.
    pub total_wall_ms: f64,
    /// Wall-clock time of the slowest cell, in milliseconds.
    pub max_wall_ms: f64,
    /// `"<engine_slug>/<workload>"` of the slowest cell (empty when no
    /// cell recorded wall time).
    pub slowest_cell: String,
    /// Largest per-cell operand-footprint estimate, in bytes.
    pub peak_mem_est_bytes: u64,
    /// Summed Benes route-cache hits across all cells.
    pub route_cache_hits: u64,
    /// Summed Benes route-cache misses across all cells.
    pub route_cache_misses: u64,
    /// Per-engine aggregates, in order of first appearance (engine-major
    /// sweeps keep this equal to fleet order).
    pub engines: Vec<EngineProfile>,
}

impl SweepProfile {
    /// Folds a sweep's records into an aggregate profile.
    #[must_use]
    pub fn from_records(records: &[RunRecord]) -> Self {
        let mut profile = SweepProfile::default();
        for r in records {
            profile.cells += 1;
            match r.status {
                RunStatus::Ok => profile.ok += 1,
                RunStatus::Error => profile.errors += 1,
                RunStatus::Panic => profile.panics += 1,
                RunStatus::Timeout => profile.timeouts += 1,
                RunStatus::Degraded => profile.degraded += 1,
            }
            if r.attempts > 1 {
                profile.retried_cells += 1;
            }
            profile.total_attempts += u64::from(r.attempts);
            profile.total_wall_ms += r.wall_ms;
            if r.wall_ms > profile.max_wall_ms {
                profile.max_wall_ms = r.wall_ms;
                profile.slowest_cell = format!("{}/{}", r.engine_slug, r.workload);
            }
            profile.peak_mem_est_bytes = profile.peak_mem_est_bytes.max(r.mem_est_bytes);
            profile.route_cache_hits += r.route_cache_hits;
            profile.route_cache_misses += r.route_cache_misses;

            let idx = match profile.engines.iter().position(|e| e.slug == r.engine_slug) {
                Some(i) => i,
                None => {
                    profile.engines.push(EngineProfile {
                        slug: r.engine_slug.clone(),
                        cells: 0,
                        ok: 0,
                        wall_ms: 0.0,
                        total_cycles: 0,
                        route_cache_hits: 0,
                        route_cache_misses: 0,
                    });
                    profile.engines.len() - 1
                }
            };
            let engine = &mut profile.engines[idx];
            engine.cells += 1;
            engine.wall_ms += r.wall_ms;
            engine.route_cache_hits += r.route_cache_hits;
            engine.route_cache_misses += r.route_cache_misses;
            if r.status == RunStatus::Ok {
                engine.ok += 1;
                engine.total_cycles += r.total_cycles;
            }
        }
        profile
    }

    /// Fraction of Benes route lookups served from the cache, in [0, 1]
    /// (0 when no lookup was recorded).
    #[must_use]
    pub fn route_cache_hit_rate(&self) -> f64 {
        let lookups = self.route_cache_hits + self.route_cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.route_cache_hits as f64 / lookups as f64
        }
    }

    /// Renders the profile as the `telemetry_summary.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + 160 * self.engines.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"cells\": {},\n", self.cells));
        out.push_str(&format!(
            "  \"status\": {{\"ok\": {}, \"error\": {}, \"panic\": {}, \"timeout\": {}, \
             \"degraded\": {}}},\n",
            self.ok, self.errors, self.panics, self.timeouts, self.degraded
        ));
        out.push_str(&format!("  \"retried_cells\": {},\n", self.retried_cells));
        out.push_str(&format!("  \"total_attempts\": {},\n", self.total_attempts));
        out.push_str(&format!("  \"total_wall_ms\": {:.3},\n", self.total_wall_ms));
        out.push_str(&format!("  \"max_wall_ms\": {:.3},\n", self.max_wall_ms));
        out.push_str(&format!("  \"slowest_cell\": {},\n", json_string(&self.slowest_cell)));
        out.push_str(&format!("  \"peak_mem_est_bytes\": {},\n", self.peak_mem_est_bytes));
        out.push_str(&format!(
            "  \"route_cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.6}}},\n",
            self.route_cache_hits,
            self.route_cache_misses,
            self.route_cache_hit_rate()
        ));
        out.push_str("  \"engines\": [\n");
        for (i, e) in self.engines.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"slug\": {}, \"cells\": {}, \"ok\": {}, \"wall_ms\": {:.3}, \
                 \"total_cycles\": {}, \"route_cache_hits\": {}, \"route_cache_misses\": {}}}{}\n",
                json_string(&e.slug),
                e.cells,
                e.ok,
                e.wall_ms,
                e.total_cycles,
                e.route_cache_hits,
                e.route_cache_misses,
                if i + 1 == self.engines.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::record::CellProfile;
    use sigma_core::model::GemmProblem;
    use sigma_matrix::GemmShape;

    fn failure(slug: &str, workload: &str, status: RunStatus, profile: CellProfile) -> RunRecord {
        RunRecord::from_failure(
            slug,
            "Engine",
            64,
            workload,
            &GemmProblem::dense(GemmShape::new(4, 4, 4)),
            7,
            status,
            "boom".into(),
            profile,
        )
    }

    #[test]
    fn profile_aggregates_status_retries_and_wall_time() {
        let records = vec![
            failure(
                "a",
                "w0",
                RunStatus::Ok,
                CellProfile { wall_ms: 2.0, attempts: 1, mem_est_bytes: 100 },
            ),
            failure(
                "a",
                "w1",
                RunStatus::Timeout,
                CellProfile { wall_ms: 5.0, attempts: 3, mem_est_bytes: 400 },
            ),
            failure(
                "b",
                "w0",
                RunStatus::Panic,
                CellProfile { wall_ms: 1.0, attempts: 2, mem_est_bytes: 100 },
            ),
        ];
        let p = SweepProfile::from_records(&records);
        assert_eq!(p.cells, 3);
        assert_eq!((p.ok, p.errors, p.panics, p.timeouts, p.degraded), (1, 0, 1, 1, 0));
        assert_eq!(p.retried_cells, 2);
        assert_eq!(p.total_attempts, 6);
        assert!((p.total_wall_ms - 8.0).abs() < 1e-9);
        assert!((p.max_wall_ms - 5.0).abs() < 1e-9);
        assert_eq!(p.slowest_cell, "a/w1");
        assert_eq!(p.peak_mem_est_bytes, 400);
        assert_eq!(p.engines.len(), 2);
        assert_eq!(p.engines[0].slug, "a");
        assert_eq!(p.engines[0].cells, 2);
        assert_eq!(p.engines[1].cells, 1);
    }

    #[test]
    fn route_cache_hit_rate_handles_zero_lookups() {
        let p = SweepProfile::default();
        assert_eq!(p.route_cache_hit_rate(), 0.0);
        let q = SweepProfile { route_cache_hits: 3, route_cache_misses: 1, ..p };
        assert!((q.route_cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn json_rendering_is_stable_and_scannable() {
        let records = vec![failure(
            "sigma",
            "dense",
            RunStatus::Ok,
            CellProfile { wall_ms: 1.5, attempts: 1, mem_est_bytes: 64 },
        )];
        let json = SweepProfile::from_records(&records).to_json();
        assert!(json.starts_with("{\n  \"cells\": 1,\n"));
        assert!(json.contains("\"slowest_cell\": \"sigma/dense\""));
        assert!(json.contains("\"total_wall_ms\": 1.500"));
        assert!(json.contains("\"slug\": \"sigma\""));
        assert!(json.ends_with("  ]\n}\n"));
        // Identical input renders byte-identically.
        assert_eq!(json, SweepProfile::from_records(&records).to_json());
    }
}
