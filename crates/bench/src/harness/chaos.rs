//! Deliberately misbehaving engines for hardening the sweep harness.
//!
//! None of these belong in [`default_registry`]; tests and the fault
//! campaign splice them into a fleet to prove that one bad engine
//! cannot take down a sweep — its cell is recorded as `panic`,
//! `timeout`, or `error` and every other cell stays byte-identical.
//!
//! [`default_registry`]: super::registry::default_registry

use sigma_core::{CancelToken, CycleStats, Engine, EngineError, EngineRun};
use sigma_matrix::{Matrix, SparseMatrix};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

/// An engine that panics on every [`Engine::run`] call.
///
/// Models a latent `unwrap()`/index bug tripping on a hostile workload.
#[derive(Debug, Default)]
pub struct PanickingEngine;

impl Engine for PanickingEngine {
    fn name(&self) -> String {
        "Chaos (panics)".to_string()
    }

    fn pes(&self) -> usize {
        1
    }

    // Deliberate: this engine exists to prove the sweep contains panics
    // (sigma-lint D2 waived for this file in lint.toml).
    #[allow(clippy::panic)]
    fn run(&self, _a: &SparseMatrix, _b: &SparseMatrix) -> Result<EngineRun, EngineError> {
        panic!("chaos: deliberate panic from PanickingEngine");
    }
}

/// An engine that wedges: it sleeps far past any reasonable watchdog
/// budget before answering.
///
/// Models an infinite loop / livelock. The sleep is bounded (rather
/// than `loop {}`) so the leaked watchdog thread eventually exits and
/// test processes can still terminate cleanly.
#[derive(Debug)]
pub struct WedgingEngine {
    /// How long the engine stalls before returning.
    pub stall: Duration,
}

impl WedgingEngine {
    /// A wedge that stalls for `stall` before answering.
    #[must_use]
    pub fn new(stall: Duration) -> Self {
        Self { stall }
    }
}

impl Default for WedgingEngine {
    fn default() -> Self {
        Self::new(Duration::from_secs(60))
    }
}

impl Engine for WedgingEngine {
    fn name(&self) -> String {
        "Chaos (wedges)".to_string()
    }

    fn pes(&self) -> usize {
        1
    }

    fn run(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<EngineRun, EngineError> {
        sigma_core::validate_finite(a, b)?;
        std::thread::sleep(self.stall);
        Ok(EngineRun::new(
            Matrix::zeros(a.rows(), b.cols()),
            CycleStats { pes: 1, ..CycleStats::default() },
        ))
    }
}

/// An engine that spins until cooperatively cancelled (or a bound
/// elapses).
///
/// Unlike [`WedgingEngine`] — which sleeps through its whole stall no
/// matter what — this engine polls its [`CancelToken`] the way the real
/// simulator does at fold boundaries. A watchdog that cancels the token
/// and waits a short grace period gets the thread back instead of
/// leaking it, which is exactly what the bounded-thread-count test
/// proves.
#[derive(Debug)]
pub struct SpinningEngine {
    /// Upper bound on the spin, so an un-cancelled call still returns
    /// eventually and test processes terminate cleanly.
    pub bound: Duration,
}

impl SpinningEngine {
    /// A spinner that gives up after `bound` if never cancelled.
    #[must_use]
    pub fn new(bound: Duration) -> Self {
        Self { bound }
    }
}

impl Default for SpinningEngine {
    fn default() -> Self {
        Self::new(Duration::from_secs(60))
    }
}

impl Engine for SpinningEngine {
    fn name(&self) -> String {
        "Chaos (spins, cancellable)".to_string()
    }

    fn pes(&self) -> usize {
        1
    }

    fn run(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<EngineRun, EngineError> {
        // Without a token the spin just runs to its bound.
        self.run_cancellable(a, b, &CancelToken::new())
    }

    fn run_cancellable(
        &self,
        a: &SparseMatrix,
        b: &SparseMatrix,
        cancel: &CancelToken,
    ) -> Result<EngineRun, EngineError> {
        sigma_core::validate_finite(a, b)?;
        let start = std::time::Instant::now();
        while start.elapsed() < self.bound {
            if cancel.is_cancelled() {
                return Err(EngineError::Cancelled);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(EngineRun::new(
            Matrix::zeros(a.rows(), b.cols()),
            CycleStats { pes: 1, ..CycleStats::default() },
        ))
    }
}

/// An engine that fails its first `failures` calls (alternating panic
/// and [`EngineError::Internal`]-style refusals), then succeeds by
/// delegating to a dense reference multiply.
///
/// Exercises the sweep's bounded-retry path: with enough retries the
/// cell recovers to `ok`; with too few it surfaces the last failure.
#[derive(Debug)]
pub struct FlakyEngine {
    failures: u32,
    calls: AtomicU32,
}

impl FlakyEngine {
    /// An engine whose first `failures` calls fail.
    #[must_use]
    pub fn new(failures: u32) -> Self {
        Self { failures, calls: AtomicU32::new(0) }
    }

    /// How many times the engine has been invoked so far.
    #[must_use]
    pub fn calls(&self) -> u32 {
        self.calls.load(Ordering::SeqCst)
    }
}

impl Engine for FlakyEngine {
    fn name(&self) -> String {
        "Chaos (flaky)".to_string()
    }

    fn pes(&self) -> usize {
        1
    }

    // Deliberate panics on the failing calls (sigma-lint D2 waived for
    // this file in lint.toml).
    #[allow(clippy::panic)]
    fn run(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<EngineRun, EngineError> {
        sigma_core::validate_finite(a, b)?;
        let call = self.calls.fetch_add(1, Ordering::SeqCst);
        if call < self.failures {
            if call.is_multiple_of(2) {
                panic!("chaos: flaky failure {call}");
            }
            return Err(EngineError::Numeric(format!("chaos: flaky refusal {call}")));
        }
        let result = a.to_dense().matmul(&b.to_dense());
        let stats = CycleStats { pes: 1, ..CycleStats::default() };
        Ok(EngineRun::new(result, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_matrix::gen::{sparse_uniform, Density};

    fn operands() -> (SparseMatrix, SparseMatrix) {
        let d = Density::new(0.5).unwrap();
        let a = sparse_uniform(3, 5, d, 7);
        let b = sparse_uniform(5, 4, d, 8);
        (a, b)
    }

    #[test]
    fn panicking_engine_panics() {
        let (a, b) = operands();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = PanickingEngine.run(&a, &b);
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn wedging_engine_eventually_answers() {
        let (a, b) = operands();
        let run = WedgingEngine::new(Duration::from_millis(5)).run(&a, &b).unwrap();
        assert_eq!(run.result.rows(), 3);
        assert_eq!(run.result.cols(), 4);
    }

    #[test]
    fn spinning_engine_exits_promptly_when_cancelled() {
        let (a, b) = operands();
        let spinner = SpinningEngine::new(Duration::from_secs(30));
        let cancel = CancelToken::new();
        cancel.cancel();
        let start = std::time::Instant::now();
        assert!(matches!(spinner.run_cancellable(&a, &b, &cancel), Err(EngineError::Cancelled)));
        assert!(start.elapsed() < Duration::from_secs(1), "cancellation must be prompt");
    }

    #[test]
    fn spinning_engine_answers_at_its_bound_without_cancellation() {
        let (a, b) = operands();
        let run = SpinningEngine::new(Duration::from_millis(5)).run(&a, &b).unwrap();
        assert_eq!(run.result.rows(), 3);
    }

    #[test]
    fn flaky_engine_recovers_after_budgeted_failures() {
        let (a, b) = operands();
        let flaky = FlakyEngine::new(2);
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| flaky.run(&a, &b))).is_err()
        );
        assert!(matches!(flaky.run(&a, &b), Err(EngineError::Numeric(_))));
        let run = flaky.run(&a, &b).unwrap();
        assert_eq!(run.result.rows(), 3);
        assert_eq!(flaky.calls(), 3);
    }
}
