//! The shared experiment harness: one registry of [`Engine`]s, one sweep
//! driver, one record schema.
//!
//! Every figure module and binary used to carry its own per-engine
//! driving loop; they now all go through this module:
//!
//! * [`registry`] — the named fleet of functional engines (SIGMA plus
//!   all baselines) buildable by slug, for `sigma_cli --engine` and the
//!   cross-engine agreement tests;
//! * [`sweep`] — the parallel sweep driver: a workload suite fanned
//!   across engines on scoped threads, with deterministic per-workload
//!   seeding, results in a thread-count-independent order, and per-cell
//!   panic isolation plus a watchdog budget (`status` column:
//!   `ok | error | panic | timeout`);
//! * [`journal`] — the write-ahead run journal: crash-safe memoization
//!   of completed cells keyed by a content hash, with tolerant replay
//!   and atomic compaction, behind `Sweep::resume`;
//! * [`cache`] — the persistent content-addressed [`RunCache`] shared
//!   across sweeps and CLI invocations: verified 128-bit [`CellKey`]s,
//!   in-flight duplicate coalescing, LRU eviction, and the journal's
//!   crash model, behind `Sweep::with_cache` / `sigma_cli --cache`;
//! * [`flight`] — the flight-recorder event log (JSONL persistence for
//!   a sweep's wall-clock spans, stage latency histograms, and gauges)
//!   and the `sigma_cli report` builder that turns a log into a
//!   validated Perfetto trace plus a per-stage latency table;
//! * [`chaos`] — deliberately misbehaving engines (panic / wedge /
//!   flake) used to prove the sweep's degradation contract;
//! * [`profile`] — the sweep-level telemetry aggregate (wall time, retry
//!   pressure, route-cache economy) behind `telemetry_summary.json`;
//! * [`record`] — the structured [`RunRecord`] row every sweep produces,
//!   rendered via [`Table`](crate::util::Table) (text/CSV) or JSON;
//! * [`analytic`] — [`SigmaAnalytic`], the best-dataflow analytic SIGMA
//!   model behind the same [`GemmAccelerator`] face as the analytic
//!   baselines, so figure modules stop re-deriving it;
//! * [`emit`] — the common figure-binary entry point (`--csv`, `--json`,
//!   `--quiet`).
//!
//! [`Engine`]: sigma_core::Engine
//! [`GemmAccelerator`]: sigma_baselines::GemmAccelerator

pub mod analytic;
pub mod cache;
pub mod chaos;
pub mod emit;
pub mod flight;
pub mod journal;
pub mod profile;
pub mod record;
pub mod registry;
pub mod sweep;

pub use analytic::{speedup_over, SigmaAnalytic};
pub use cache::{CacheStats, CellKey, CellLease, Lookup, RunCache, CELL_KEY_REVISION};
pub use chaos::{FlakyEngine, PanickingEngine, SpinningEngine, WedgingEngine};
pub use emit::{emit_tables, emit_tables_with};
pub use flight::{
    build_report, parse_event_log, read_event_log, render_event_log, stage_table, write_event_log,
    EventLog, FlightReport, SnapSample, FLIGHT_SCHEMA,
};
pub use journal::{fnv1a_64, replay, write_atomic, JournalReplay, JournalWriter, JOURNAL_SCHEMA};
pub use profile::{EngineProfile, SweepProfile};
pub use record::{records_table, records_to_json, CellProfile, RunRecord, RunStatus};
pub use registry::{default_registry, engine_by_name, engine_names, EngineEntry};
pub use sweep::{
    demo_suite, derive_seed, live_cell_threads, par_map, ResumeOutcome, Sweep, WorkloadSpec,
};
