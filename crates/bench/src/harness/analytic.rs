//! The analytic SIGMA model behind the shared [`GemmAccelerator`] face,
//! plus the speedup helper the figure modules share.

use sigma_baselines::GemmAccelerator;
use sigma_core::model::{estimate_best, GemmProblem};
use sigma_core::{CycleStats, SigmaConfig};

/// Analytic SIGMA at its best stationary dataflow per problem — the
/// design the evaluation figures (12, 14) compare against baselines.
/// Implements [`GemmAccelerator`], so figure code treats it exactly like
/// the analytic TPU / sparse-accelerator models instead of re-deriving
/// `estimate_best` calls inline.
#[derive(Debug, Clone)]
pub struct SigmaAnalytic {
    cfg: SigmaConfig,
}

impl SigmaAnalytic {
    /// The paper's 128 x Flex-DPE-128 configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self { cfg: SigmaConfig::paper() }
    }

    /// Any other configuration.
    #[must_use]
    pub fn new(cfg: SigmaConfig) -> Self {
        Self { cfg }
    }

    /// The wrapped configuration.
    #[must_use]
    pub fn config(&self) -> &SigmaConfig {
        &self.cfg
    }
}

impl GemmAccelerator for SigmaAnalytic {
    fn name(&self) -> String {
        format!("SIGMA {}x{}", self.cfg.num_dpes(), self.cfg.dpe_size())
    }

    fn pes(&self) -> usize {
        self.cfg.total_pes()
    }

    fn simulate(&self, problem: &GemmProblem) -> CycleStats {
        estimate_best(&self.cfg, problem).1
    }
}

/// Speedup of `contender` over `base` on `p` (total cycles of `base`
/// divided by total cycles of `contender`).
#[must_use]
pub fn speedup_over(
    base: &dyn GemmAccelerator,
    contender: &dyn GemmAccelerator,
    p: &GemmProblem,
) -> f64 {
    base.simulate(p).total_cycles() as f64 / contender.simulate(p).total_cycles() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_baselines::SystolicArray;
    use sigma_matrix::GemmShape;

    #[test]
    fn sigma_analytic_matches_estimate_best() {
        let p = GemmProblem::sparse(GemmShape::new(1024, 1024, 1024), 0.5, 0.2);
        let s = SigmaAnalytic::paper().simulate(&p);
        assert_eq!(s, estimate_best(&SigmaConfig::paper(), &p).1);
        assert_eq!(SigmaAnalytic::paper().pes(), SigmaConfig::paper().total_pes());
        assert!(SigmaAnalytic::paper().name().contains("SIGMA"));
    }

    #[test]
    fn speedup_over_is_a_cycle_ratio() {
        let p = GemmProblem::sparse(GemmShape::new(2048, 2048, 2048), 0.5, 0.2);
        let tpu = SystolicArray::new(128, 128);
        let sigma = SigmaAnalytic::paper();
        let s = speedup_over(&tpu, &sigma, &p);
        assert!(s > 1.0, "SIGMA should beat the TPU on sparse GEMMs, got {s}");
        let inv = speedup_over(&sigma, &tpu, &p);
        assert!((s * inv - 1.0).abs() < 1e-12);
    }
}
