//! Fig. 7: matrix memory (metadata) overhead by compression format, for
//! the paper's M=1632, K=36548 matrix across sparsity levels.

use crate::util::Table;
use sigma_matrix::formats::{expected_metadata_bits, CompressionKind};

/// The matrix dimensions of Fig. 7.
pub const ROWS: usize = 1632;
/// Columns of the Fig. 7 matrix.
pub const COLS: usize = 36548;

/// Sparsity levels swept (fraction of zeros).
pub const SPARSITIES: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// Metadata megabits for one format at one sparsity.
#[must_use]
pub fn metadata_mbits(kind: CompressionKind, sparsity: f64) -> f64 {
    expected_metadata_bits(kind, ROWS, COLS, 1.0 - sparsity) / 1e6
}

/// Renders metadata size per format across the sparsity sweep.
#[must_use]
pub fn table() -> Table {
    let mut headers: Vec<String> = vec!["sparsity".to_string()];
    headers.extend(CompressionKind::ALL.iter().map(|k| format!("{k} (Mb)")));
    let href: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("Fig. 7 — metadata overhead, M=1632 x K=36548 (megabits)", &href);
    for s in SPARSITIES {
        let mut row = vec![format!("{:.0}%", s * 100.0)];
        for kind in CompressionKind::ALL {
            row.push(format!("{:.1}", metadata_mbits(kind, s)));
        }
        t.push(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_is_flat_across_sparsity() {
        let lo = metadata_mbits(CompressionKind::Bitmap, 0.1);
        let hi = metadata_mbits(CompressionKind::Bitmap, 0.9);
        assert_eq!(lo, hi);
        assert!((lo - (ROWS * COLS) as f64 / 1e6).abs() < 1e-9);
    }

    #[test]
    fn crossovers_match_paper() {
        // Bitmap beats COO/CSR/CSC below ~30% sparsity.
        for kind in [CompressionKind::Coo, CompressionKind::Csr, CompressionKind::Csc] {
            assert!(
                metadata_mbits(CompressionKind::Bitmap, 0.1) < metadata_mbits(kind, 0.1),
                "{kind} should be worse than bitmap at 10% sparsity"
            );
        }
        // RLC-4 beats bitmap above ~70% sparsity, loses below ~30%.
        assert!(
            metadata_mbits(CompressionKind::Rlc4, 0.9)
                < metadata_mbits(CompressionKind::Bitmap, 0.9)
        );
        assert!(
            metadata_mbits(CompressionKind::Rlc4, 0.1)
                > metadata_mbits(CompressionKind::Bitmap, 0.1)
        );
    }

    #[test]
    fn index_formats_shrink_with_sparsity() {
        for kind in [CompressionKind::Coo, CompressionKind::Csr] {
            assert!(metadata_mbits(kind, 0.9) < metadata_mbits(kind, 0.1));
        }
    }
}
