//! Fig. 1b: example GEMM dimensions from common deep-learning workloads.

use crate::util::Table;
use sigma_workloads::fig1b_suite;

/// Renders the workload GEMM dimension table.
#[must_use]
pub fn table() -> Table {
    let mut t = Table::new(
        "Fig. 1b — GEMM dimensions (M, N, K) in DL training workloads",
        &["workload", "layer", "M", "N", "K", "aspect max/min"],
    );
    for g in fig1b_suite() {
        t.push(vec![
            g.workload.to_string(),
            g.layer.to_string(),
            g.shape.m.to_string(),
            g.shape.n.to_string(),
            g.shape.k.to_string(),
            format!("{:.0}", g.shape.irregularity()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn covers_all_four_workloads() {
        let t = super::table();
        let body = t.render();
        for w in ["Transformer", "GNMT", "NCF", "DeepBench"] {
            assert!(body.contains(w), "missing {w}");
        }
    }
}
