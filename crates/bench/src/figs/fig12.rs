//! Fig. 12: (a) dense GEMMs — rectangular systolic arrays and SIGMA vs the
//! 128x128 TPU; (b) sparse GEMMs — SIGMA vs the TPU across sparsity
//! combinations.

use crate::harness::{speedup_over, SigmaAnalytic};
use crate::util::{fmt_pct, fmt_x, geomean, Table};
use sigma_baselines::{GemmAccelerator, SystolicArray};
use sigma_core::model::GemmProblem;
use sigma_workloads::{evaluation_suite, SparsityProfile};

/// The rectangular TPU aspect ratios of Fig. 12a.
#[must_use]
pub fn tpu_variants() -> Vec<SystolicArray> {
    vec![SystolicArray::new(128, 128), SystolicArray::new(256, 64), SystolicArray::new(512, 32)]
}

/// Fig. 12a: dense speedups and efficiencies over TPU 128x128.
#[must_use]
pub fn table_dense() -> Table {
    let base = SystolicArray::new(128, 128);
    let sigma = SigmaAnalytic::paper();
    let mut t = Table::new(
        "Fig. 12a — dense GEMMs: speedup over TPU 128x128 (and overall efficiency)",
        &["GEMM", "TPU 256x64", "TPU 512x32", "SIGMA", "TPU eff", "SIGMA eff"],
    );
    for g in evaluation_suite() {
        let p = GemmProblem::dense(g.shape);
        let mut row = vec![g.shape.to_string()];
        for v in tpu_variants().into_iter().skip(1) {
            row.push(fmt_x(speedup_over(&base, &v, &p)));
        }
        row.push(fmt_x(speedup_over(&base, &sigma, &p)));
        row.push(fmt_pct(base.simulate(&p).overall_efficiency()));
        row.push(fmt_pct(sigma.simulate(&p).overall_efficiency()));
        t.push(row);
    }
    t
}

/// Fig. 12b: sparse speedups over TPU 128x128 across sparsity combos.
#[must_use]
pub fn table_sparse() -> Table {
    let base = SystolicArray::new(128, 128);
    let sigma = SigmaAnalytic::paper();
    let mut t = Table::new(
        "Fig. 12b — sparse GEMMs: SIGMA speedup over TPU 128x128 by sparsity combo",
        &["GEMM", "MK50-KN50", "MK50-KN80", "MK80-KN50", "MK80-KN80"],
    );
    for g in evaluation_suite() {
        let mut row = vec![g.shape.to_string()];
        for (_, profile) in SparsityProfile::fig12b_sweep() {
            row.push(fmt_x(speedup_over(&base, &sigma, &profile.problem(g.shape))));
        }
        t.push(row);
    }
    t
}

/// Geomean dense and sparse speedups (the paper's ~2x and ~6x headlines).
#[must_use]
pub fn headline_speedups() -> (f64, f64) {
    let base = SystolicArray::new(128, 128);
    let sigma = SigmaAnalytic::paper();
    let mut dense = Vec::new();
    let mut sparse = Vec::new();
    for g in evaluation_suite() {
        dense.push(speedup_over(&base, &sigma, &GemmProblem::dense(g.shape)));
        for (_, profile) in SparsityProfile::fig12b_sweep() {
            sparse.push(speedup_over(&base, &sigma, &profile.problem(g.shape)));
        }
    }
    (geomean(&dense), geomean(&sparse))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_speedups_match_paper_bands() {
        let (dense, sparse) = headline_speedups();
        assert!((1.3..=3.5).contains(&dense), "dense geomean {dense} (paper ~2x)");
        assert!((3.0..=12.0).contains(&sparse), "sparse geomean {sparse} (paper ~6x)");
        assert!(sparse > dense, "sparsity must amplify the win");
    }

    #[test]
    fn sigma_efficiency_high_on_dense() {
        // Paper: SIGMA ~82% overall efficiency dense vs 59% for the TPU,
        // except tiny GEMMs where loading dominates.
        let sigma = SigmaAnalytic::paper();
        let mut effs = Vec::new();
        for g in evaluation_suite() {
            effs.push(sigma.simulate(&GemmProblem::dense(g.shape)).overall_efficiency());
        }
        let avg = effs.iter().sum::<f64>() / effs.len() as f64;
        assert!((0.6..=1.0).contains(&avg), "SIGMA dense avg efficiency {avg}");
    }

    #[test]
    fn tiny_gemm_is_loading_bound_for_sigma() {
        // The 2048-1-128 GEMM: "smaller sizes cause loading latency from
        // limited bandwidth to dominate" — visible when the bulky MK
        // operand is the stationary one.
        let cfg =
            sigma_core::SigmaConfig::paper().with_dataflow(sigma_core::Dataflow::InputStationary);
        let p = GemmProblem::dense(sigma_matrix::GemmShape::new(2048, 1, 128));
        let s = sigma_core::model::estimate(&cfg, &p);
        assert!(
            s.loading_cycles > s.streaming_cycles,
            "loading {} should dominate streaming {}",
            s.loading_cycles,
            s.streaming_cycles
        );
        // Either way, the tiny GEMM cannot reach high overall efficiency.
        assert!(SigmaAnalytic::paper().simulate(&p).overall_efficiency() < 0.6);
    }

    #[test]
    fn sparser_weights_increase_speedup() {
        // More KN sparsity -> fewer folds for weight-stationary SIGMA ->
        // larger win over the zero-mapping TPU.
        let base = SystolicArray::new(128, 128);
        let sigma = SigmaAnalytic::paper();
        let shape = sigma_matrix::GemmShape::new(4096, 4096, 4096);
        let mut speedups = Vec::new();
        for profile in [SparsityProfile::new(0.5, 0.5), SparsityProfile::new(0.5, 0.8)] {
            speedups.push(speedup_over(&base, &sigma, &profile.problem(shape)));
        }
        assert!(speedups[1] > speedups[0]);
    }
}
