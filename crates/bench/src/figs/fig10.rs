//! Fig. 10: comparison of SIGMA's dataflows (weight-stationary,
//! input-stationary, no-local-reuse) on representative sparse GEMMs —
//! cycle breakdown, stationary utilization and efficiencies.

use crate::util::{fmt_cycles, fmt_pct, Table};
use sigma_core::model::estimate;
use sigma_core::{Dataflow, SigmaConfig};
use sigma_workloads::{evaluation_suite, SparsityProfile};

/// Renders one row per (GEMM, dataflow).
#[must_use]
pub fn table() -> Table {
    let mut t = Table::new(
        "Fig. 10 — SIGMA dataflow comparison (50% input / 80% weight sparsity)",
        &["GEMM", "dataflow", "load", "stream", "add", "total", "stat util", "overall eff"],
    );
    for g in evaluation_suite().into_iter().take(4) {
        let p = SparsityProfile::PAPER_SPARSE.problem(g.shape);
        for df in Dataflow::ALL {
            let cfg = SigmaConfig::paper().with_dataflow(df);
            let s = estimate(&cfg, &p);
            let stat_util = if df == Dataflow::NoLocalReuse {
                "n/a".to_string() // nothing is stationary in this dataflow
            } else {
                fmt_pct(s.stationary_utilization())
            };
            t.push(vec![
                g.shape.to_string(),
                df.to_string(),
                fmt_cycles(s.loading_cycles),
                fmt_cycles(s.streaming_cycles),
                fmt_cycles(s.add_cycles),
                fmt_cycles(s.total_cycles()),
                stat_util,
                fmt_pct(s.overall_efficiency()),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_matrix::GemmShape;

    fn stats(df: Dataflow, shape: GemmShape) -> sigma_core::CycleStats {
        let p = SparsityProfile::PAPER_SPARSE.problem(shape);
        estimate(&SigmaConfig::paper().with_dataflow(df), &p)
    }

    #[test]
    fn stationary_dataflows_have_full_utilization() {
        let shape = GemmShape::new(2048, 4096, 1024);
        for df in [Dataflow::WeightStationary, Dataflow::InputStationary] {
            assert_eq!(stats(df, shape).stationary_utilization(), 1.0, "{df}");
        }
    }

    #[test]
    fn no_local_reuse_wastes_no_compute_but_loses_latency() {
        // The paper: "MK-str,KN-str, while being ideal in terms of no
        // wasted computations, suffers in overall latency" at equal
        // hardware bandwidth.
        let shape = GemmShape::new(2048, 4096, 1024);
        let base = SigmaConfig::paper().with_stream_bandwidth(128).unwrap();
        let p = SparsityProfile::PAPER_SPARSE.problem(shape);
        let nlr = estimate(&base.with_dataflow(Dataflow::NoLocalReuse), &p);
        let ws = estimate(&base.with_dataflow(Dataflow::WeightStationary), &p);
        assert_eq!(nlr.useful_macs, nlr.issued_macs, "NLR issues only useful pairs");
        assert!(
            nlr.total_cycles() > ws.total_cycles(),
            "NLR {} should lose to WS {} at equal bandwidth",
            nlr.total_cycles(),
            ws.total_cycles()
        );
    }

    #[test]
    fn best_stationary_choice_depends_on_which_operand_is_sparser() {
        // Holding the sparser matrix stationary gives the higher compute
        // efficiency (paper Fig. 11 discussion).
        let shape = GemmShape::new(1024, 1024, 1024);
        let p = sigma_core::model::GemmProblem::sparse(shape, 0.2, 0.8);
        let is = estimate(&SigmaConfig::paper().with_dataflow(Dataflow::InputStationary), &p);
        let ws = estimate(&SigmaConfig::paper().with_dataflow(Dataflow::WeightStationary), &p);
        // MK is the 80%-sparse matrix here: input-stationary maps it.
        assert!(is.compute_efficiency() > ws.compute_efficiency());
    }
}
