//! Fig. 9: design-space exploration of Flex-DPE size at a fixed 16384-PE
//! budget — aggregate energy across the workloads and performance/area.
//!
//! On top of the core analytic model, the DSE charges the one latency
//! term that *depends on DPE size*: partial dot-products that span
//! Flex-DPE boundaries must merge over the inter-DPE NoC, serialized per
//! fold across the active DPEs. Small DPEs fragment clusters across many
//! boundaries; large DPEs pay more Benes area/power per PE — that tension
//! is the figure.

use crate::util::Table;
use sigma_core::model::estimate_best;
use sigma_core::{CycleStats, SigmaConfig};
use sigma_energy::{sigma_report, DesignReport, CLOCK_HZ};
use sigma_workloads::{evaluation_suite, SparsityProfile};

/// The (num_dpes, dpe_size) sweep at 16384 total PEs.
pub const CONFIGS: [(usize, usize); 7] =
    [(1024, 16), (512, 32), (256, 64), (128, 128), (64, 256), (32, 512), (16, 1024)];

/// Total cycles for the workload suite on one configuration, including
/// the cross-DPE merge term.
#[must_use]
pub fn suite_cycles(num_dpes: usize, dpe_size: usize) -> u64 {
    let cfg = SigmaConfig::clamped(num_dpes, dpe_size, 128, sigma_core::Dataflow::WeightStationary)
        .with_stream_bandwidth_clamped(num_dpes * dpe_size);
    let mut total = 0u64;
    for g in evaluation_suite() {
        let p = SparsityProfile::PAPER_SPARSE.problem(g.shape);
        let (_, stats) = estimate_best(&cfg, &p);
        total += stats.total_cycles() + cross_dpe_merge_cycles(&stats, num_dpes, dpe_size);
    }
    total
}

/// Cross-DPE merge serialization: per fold, each active Flex-DPE beyond
/// the first hands one boundary partial to the NoC bus.
#[must_use]
pub fn cross_dpe_merge_cycles(stats: &CycleStats, num_dpes: usize, dpe_size: usize) -> u64 {
    let pes = (num_dpes * dpe_size) as u64;
    if stats.folds == 0 {
        return 0;
    }
    let avg_occupancy = (stats.mapped_nonzeros / stats.folds).max(1);
    let active_dpes = avg_occupancy.div_ceil(dpe_size as u64).min(num_dpes as u64);
    let _ = pes;
    stats.folds * active_dpes.saturating_sub(1)
}

/// One DSE row: config, area, power, energy over the suite, perf/area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsePoint {
    /// Number of Flex-DPEs.
    pub num_dpes: usize,
    /// Multipliers per Flex-DPE.
    pub dpe_size: usize,
    /// Design report (area/power).
    pub report: DesignReport,
    /// Suite runtime in cycles.
    pub cycles: u64,
    /// Suite energy in joules.
    pub energy_j: f64,
    /// Performance per area: (1/s) / mm².
    pub perf_per_area: f64,
}

/// Sweeps all configurations.
#[must_use]
pub fn sweep() -> Vec<DsePoint> {
    CONFIGS
        .iter()
        .map(|&(n, d)| {
            let report = sigma_report(n, d);
            let cycles = suite_cycles(n, d);
            let seconds = cycles as f64 / CLOCK_HZ;
            DsePoint {
                num_dpes: n,
                dpe_size: d,
                report,
                cycles,
                energy_j: report.power_w * seconds,
                perf_per_area: 1.0 / (seconds * report.area_mm2),
            }
        })
        .collect()
}

/// Renders the DSE table.
#[must_use]
pub fn table() -> Table {
    let mut t = Table::new(
        "Fig. 9 — Flex-DPE sizing DSE at 16384 PEs (sparse workload suite)",
        &["config", "area mm2", "power W", "cycles", "energy mJ", "perf/area (norm)"],
    );
    let points = sweep();
    let best_ppa = points.iter().map(|p| p.perf_per_area).fold(0.0, f64::max);
    for p in &points {
        t.push(vec![
            format!("{} x Flex-DPE-{}", p.num_dpes, p.dpe_size),
            format!("{:.2}", p.report.area_mm2),
            format!("{:.2}", p.report.power_w),
            crate::util::fmt_cycles(p.cycles),
            format!("{:.2}", p.energy_j * 1e3),
            format!("{:.3}", p.perf_per_area / best_ppa),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_optimum_is_a_moderate_dpe_size() {
        // Paper: Flex-DPE-128 consumes the least energy. Allow one size
        // class of slack around it.
        let points = sweep();
        let best =
            points.iter().min_by(|a, b| a.energy_j.partial_cmp(&b.energy_j).unwrap()).unwrap();
        assert!(
            [64, 128, 256].contains(&best.dpe_size),
            "energy optimum at Flex-DPE-{} (paper: 128)",
            best.dpe_size
        );
    }

    #[test]
    fn area_efficiency_optimum_is_a_larger_dpe_size() {
        // Paper: Flex-DPE-512 is the most area efficient.
        let points = sweep();
        let best = points
            .iter()
            .max_by(|a, b| a.perf_per_area.partial_cmp(&b.perf_per_area).unwrap())
            .unwrap();
        assert!(
            [256, 512].contains(&best.dpe_size),
            "perf/area optimum at Flex-DPE-{} (paper: 512)",
            best.dpe_size
        );
    }

    #[test]
    fn extremes_are_suboptimal() {
        let points = sweep();
        let tiny = points.iter().find(|p| p.dpe_size == 16).unwrap();
        let best_e = points.iter().map(|p| p.energy_j).fold(f64::INFINITY, f64::min);
        assert!(tiny.energy_j > best_e, "16-wide DPEs should not be energy-optimal");
    }
}
