//! Fig. 4: mapping micro-examples — a 16-PE systolic array (4x4) versus a
//! 16-multiplier Flex-DPE on dense-regular, dense-irregular and
//! sparse-irregular toy GEMMs, reporting utilization, runtime and SRAM
//! reads. The SIGMA numbers come from the *functional* simulator moving
//! real values.

use crate::util::{fmt_pct, Table};
use sigma_baselines::SystolicArray;
use sigma_core::model::GemmProblem;
use sigma_core::{Dataflow, SigmaConfig, SigmaSim};
use sigma_matrix::gen::{sparse_uniform, Density};
use sigma_matrix::GemmShape;

struct Example {
    name: &'static str,
    shape: GemmShape,
    density_b: f64,
}

fn examples() -> Vec<Example> {
    vec![
        // Fig. 4b: 4x4 KN on a 4x4 array — both designs map fully.
        Example { name: "dense regular 4-4-4", shape: GemmShape::new(4, 4, 4), density_b: 1.0 },
        // Fig. 4c: KN is 2x8 — 16 elements, but only half fit the rigid
        // 4x4 at a time.
        Example { name: "dense irregular 4-8-2", shape: GemmShape::new(4, 8, 2), density_b: 1.0 },
        // Fig. 4d: sparse irregular.
        Example { name: "sparse irregular 4-8-4", shape: GemmShape::new(4, 8, 4), density_b: 0.5 },
    ]
}

/// Renders the comparison rows.
#[must_use]
pub fn table() -> Table {
    let mut t = Table::new(
        "Fig. 4 — systolic 4x4 vs 16-wide Flex-DPE on toy GEMMs",
        &["example", "design", "stat util", "total cycles", "SRAM reads"],
    );
    let systolic = SystolicArray::new(4, 4);
    let sigma = SigmaSim::new_clamped(SigmaConfig::clamped(1, 16, 4, Dataflow::WeightStationary));

    for ex in examples() {
        let p = GemmProblem::sparse(ex.shape, 1.0, ex.density_b);
        let sys = systolic.simulate_best(&p);
        t.push(vec![
            ex.name.to_string(),
            "systolic 4x4".to_string(),
            fmt_pct(sys.stationary_utilization()),
            sys.total_cycles().to_string(),
            sys.sram_reads.to_string(),
        ]);

        let a = sparse_uniform(ex.shape.m, ex.shape.k, Density::DENSE, 5);
        let b = sparse_uniform(ex.shape.k, ex.shape.n, Density::clamped(ex.density_b), 6);
        let Ok((_, run)) = sigma.run_best_stationary(&a, &b) else {
            t.push(vec![
                ex.name.to_string(),
                "Flex-DPE 16".to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        t.push(vec![
            ex.name.to_string(),
            "Flex-DPE 16".to_string(),
            fmt_pct(run.stats.stationary_utilization()),
            run.stats.total_cycles().to_string(),
            run.stats.sram_reads.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flex_dpe_wins_the_irregular_and_sparse_examples() {
        let systolic = SystolicArray::new(4, 4);
        let sigma =
            SigmaSim::new(SigmaConfig::new(1, 16, 4, Dataflow::WeightStationary).unwrap()).unwrap();
        for ex in examples().into_iter().skip(1) {
            let p = GemmProblem::sparse(ex.shape, 1.0, ex.density_b);
            let sys = systolic.simulate_best(&p);
            let a = sparse_uniform(ex.shape.m, ex.shape.k, Density::DENSE, 5);
            let b = sparse_uniform(ex.shape.k, ex.shape.n, Density::new(ex.density_b).unwrap(), 6);
            let (_, run) = sigma.run_best_stationary(&a, &b).unwrap();
            assert!(
                run.stats.total_cycles() < sys.total_cycles(),
                "{}: Flex-DPE {} vs systolic {}",
                ex.name,
                run.stats.total_cycles(),
                sys.total_cycles()
            );
            assert!(run.stats.stationary_utilization() >= sys.stationary_utilization());
        }
    }

    #[test]
    fn sigma_stat_utilization_is_always_full() {
        let sigma =
            SigmaSim::new(SigmaConfig::new(1, 16, 4, Dataflow::WeightStationary).unwrap()).unwrap();
        for ex in examples() {
            let a = sparse_uniform(ex.shape.m, ex.shape.k, Density::DENSE, 5);
            let b = sparse_uniform(ex.shape.k, ex.shape.n, Density::new(ex.density_b).unwrap(), 6);
            let (_, run) = sigma.run_best_stationary(&a, &b).unwrap();
            assert_eq!(run.stats.stationary_utilization(), 1.0, "{}", ex.name);
        }
    }
}
