//! Fig. 8: post-layout comparison of a 128x128 TPU-like systolic array vs
//! SIGMA (128 Flex-DPE-128) — area, power, and effective TFLOPS from the
//! average efficiencies measured across the evaluation GEMMs.

use crate::util::{fmt_pct, Table};
use sigma_baselines::{GemmAccelerator, SystolicArray};
use sigma_core::model::estimate_best;
use sigma_core::SigmaConfig;
use sigma_energy::{sigma_report, systolic_report};
use sigma_workloads::{evaluation_suite, SparsityProfile};

/// Average overall efficiencies across the evaluation suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvgEff {
    /// Average over dense runs.
    pub dense: f64,
    /// Average over the paper-sparse runs (the Fig. 8 headline workload).
    pub sparse: f64,
    /// Average over both.
    pub all: f64,
}

/// Average overall efficiency of (TPU, SIGMA) across the evaluation suite,
/// dense and paper-sparse.
#[must_use]
pub fn average_efficiencies() -> (AvgEff, AvgEff) {
    let tpu = SystolicArray::new(128, 128);
    let cfg = SigmaConfig::paper();
    let mut tpu_eff: Vec<(f64, bool)> = Vec::new();
    let mut sigma_eff: Vec<(f64, bool)> = Vec::new();
    for g in evaluation_suite() {
        for (profile, sparse) in
            [(SparsityProfile::DENSE, false), (SparsityProfile::PAPER_SPARSE, true)]
        {
            let p = profile.problem(g.shape);
            tpu_eff.push((tpu.simulate(&p).overall_efficiency(), sparse));
            sigma_eff.push((estimate_best(&cfg, &p).1.overall_efficiency(), sparse));
        }
    }
    let avg = |xs: &[(f64, bool)]| -> AvgEff {
        let pick = |want: Option<bool>| {
            let v: Vec<f64> = xs
                .iter()
                .filter(|(_, s)| want.is_none() || Some(*s) == want)
                .map(|(e, _)| *e)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        AvgEff { dense: pick(Some(false)), sparse: pick(Some(true)), all: pick(None) }
    };
    (avg(&tpu_eff), avg(&sigma_eff))
}

/// Renders the Fig. 8 comparison table.
#[must_use]
pub fn table() -> Table {
    let (tpu_eff, sigma_eff) = average_efficiencies();
    let tpu = systolic_report(128, 128);
    let sigma = sigma_report(128, 128);
    let mut t = Table::new(
        "Fig. 8 — compute-array area/power and effective TFLOPS (28 nm)",
        &[
            "design",
            "area mm2",
            "power W",
            "avg eff (all)",
            "eff TFLOPS (all)",
            "sparse eff",
            "sparse TFLOPS/W",
        ],
    );
    for (rep, eff) in [(tpu, tpu_eff), (sigma, sigma_eff)] {
        t.push(vec![
            rep.name.to_string(),
            format!("{:.2}", rep.area_mm2),
            format!("{:.2}", rep.power_w),
            fmt_pct(eff.all),
            format!("{:.2}", rep.effective_tflops(eff.all)),
            fmt_pct(eff.sparse),
            format!("{:.3}", rep.effective_tflops_per_watt(eff.sparse)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_totals_and_overheads() {
        let tpu = systolic_report(128, 128);
        let sigma = sigma_report(128, 128);
        assert!((sigma.area_mm2 - 65.10).abs() / 65.10 < 0.05);
        assert!((sigma.power_w - 22.33).abs() / 22.33 < 0.05);
        assert!((sigma.area_mm2 / tpu.area_mm2 - 1.377).abs() < 0.08);
    }

    #[test]
    fn effective_tflops_per_watt_ratio_is_about_3x() {
        // Paper Sec. V: "average 3.2x improvement in Effective TFLOPs/Watt"
        // on its (sparse) target workloads.
        let (tpu_eff, sigma_eff) = average_efficiencies();
        let tpu = systolic_report(128, 128);
        let sigma = sigma_report(128, 128);
        let ratio = sigma.effective_tflops_per_watt(sigma_eff.sparse)
            / tpu.effective_tflops_per_watt(tpu_eff.sparse);
        assert!((1.8..=4.5).contains(&ratio), "TFLOPS/W ratio {ratio} (paper 3.2x)");
    }

    #[test]
    fn sigma_effective_tflops_near_paper_headline() {
        // Abstract: "10.8 TFLOPS efficiency" for the 16384-PE instance,
        // averaged across the evaluated GEMMs.
        let (_, sigma_eff) = average_efficiencies();
        let eff_tflops = sigma_report(128, 128).effective_tflops(sigma_eff.all);
        assert!((6.0..=16.4).contains(&eff_tflops), "effective TFLOPS {eff_tflops}");
    }
}
