//! Fig. 13: energy reduction and performance/area of SIGMA over the TPU's
//! compute array on the sparse workloads.

use crate::util::{fmt_x, geomean, Table};
use sigma_baselines::{GemmAccelerator, SystolicArray};
use sigma_core::model::estimate_best;
use sigma_core::SigmaConfig;
use sigma_energy::{sigma_report, systolic_report};
use sigma_workloads::{evaluation_suite, SparsityProfile};

/// Per-GEMM (energy reduction, perf/area ratio) of SIGMA vs the TPU.
#[must_use]
pub fn ratios() -> Vec<(String, f64, f64)> {
    let tpu = SystolicArray::new(128, 128);
    let cfg = SigmaConfig::paper();
    let tpu_rep = systolic_report(128, 128);
    let sigma_rep = sigma_report(128, 128);
    evaluation_suite()
        .into_iter()
        .map(|g| {
            let p = SparsityProfile::PAPER_SPARSE.problem(g.shape);
            let tpu_cycles = tpu.simulate(&p).total_cycles();
            let (_, s) = estimate_best(&cfg, &p);
            let sigma_cycles = s.total_cycles();
            let energy_reduction = tpu_rep.energy_j(tpu_cycles) / sigma_rep.energy_j(sigma_cycles);
            let perf_area =
                sigma_rep.perf_per_area(sigma_cycles) / tpu_rep.perf_per_area(tpu_cycles);
            (g.shape.to_string(), energy_reduction, perf_area)
        })
        .collect()
}

/// Renders energy-reduction and perf/area rows.
#[must_use]
pub fn table() -> Table {
    let mut t = Table::new(
        "Fig. 13 — SIGMA vs TPU on sparse workloads: energy reduction & perf/area",
        &["GEMM", "energy reduction", "perf/area ratio"],
    );
    let rows = ratios();
    for (name, e, pa) in &rows {
        t.push(vec![name.clone(), fmt_x(*e), fmt_x(*pa)]);
    }
    let es: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let pas: Vec<f64> = rows.iter().map(|r| r.2).collect();
    t.push(vec!["geomean".to_string(), fmt_x(geomean(&es)), fmt_x(geomean(&pas))]);
    t
}

/// Companion table: the activity-based energy breakdown of SIGMA on each
/// sparse GEMM — where the joules go (multiply / reduce / distribute /
/// SRAM / static).
#[must_use]
pub fn breakdown_table() -> Table {
    use sigma_energy::EnergyBreakdown;
    let cfg = SigmaConfig::paper();
    let mut t = Table::new(
        "Fig. 13 companion — SIGMA activity-based energy breakdown (mJ)",
        &["GEMM", "multiply", "reduce", "distribute", "sram", "static", "total"],
    );
    for g in evaluation_suite() {
        let p = SparsityProfile::PAPER_SPARSE.problem(g.shape);
        let (_, s) = estimate_best(&cfg, &p);
        let b = EnergyBreakdown::from_stats(&s, cfg.dpe_size());
        let mj = |x: f64| format!("{:.2}", x * 1e3);
        t.push(vec![
            g.shape.to_string(),
            mj(b.multiply_j),
            mj(b.reduce_j),
            mj(b.distribute_j),
            mj(b.sram_j),
            mj(b.static_j),
            mj(b.total_j()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_energy_reduction_is_about_3x() {
        // Paper: ~3x more energy efficient on sparse workloads despite 2x
        // power, thanks to ~6x speedup.
        let es: Vec<f64> = ratios().iter().map(|r| r.1).collect();
        let g = geomean(&es);
        assert!((1.8..=6.0).contains(&g), "energy reduction geomean {g} (paper ~3x)");
    }

    #[test]
    fn average_perf_per_area_is_about_5x() {
        let pas: Vec<f64> = ratios().iter().map(|r| r.2).collect();
        let g = geomean(&pas);
        assert!((2.5..=8.0).contains(&g), "perf/area geomean {g} (paper ~5x)");
    }

    #[test]
    fn energy_win_comes_from_speedup_not_power() {
        // SIGMA burns ~2x the power, so any energy win must come from
        // running far fewer cycles.
        let sigma_rep = sigma_report(128, 128);
        let tpu_rep = systolic_report(128, 128);
        assert!(sigma_rep.power_w > 1.5 * tpu_rep.power_w);
        let es: Vec<f64> = ratios().iter().map(|r| r.1).collect();
        assert!(geomean(&es) > 1.0);
    }
}
