//! Fig. 2: time breakdown of one training step on the modeled V100.
//! The paper's headline: MatMul-shaped work is ~70% of the step.

use crate::util::{fmt_pct, Table};
use sigma_baselines::gpu::GpuModel;
use sigma_workloads::training::{step_breakdown, TrainingModel};

/// Renders the op-class breakdown for Transformer and GNMT.
#[must_use]
pub fn table() -> Table {
    let gpu = GpuModel::v100();
    let mut t = Table::new(
        "Fig. 2 — training-step time breakdown on V100 (modeled)",
        &["model", "op class", "time (ms)", "share"],
    );
    for model in [TrainingModel::Transformer, TrainingModel::Gnmt] {
        let breakdown = step_breakdown(model, &gpu);
        let total: f64 = breakdown.iter().map(|(_, s)| s).sum();
        for (class, secs) in breakdown {
            t.push(vec![
                model.to_string(),
                class.to_string(),
                format!("{:.2}", secs * 1e3),
                fmt_pct(secs / total),
            ]);
        }
    }
    t
}

/// The MatMul share per model, for shape assertions.
#[must_use]
pub fn matmul_shares() -> Vec<(TrainingModel, f64)> {
    let gpu = GpuModel::v100();
    [TrainingModel::Transformer, TrainingModel::Gnmt]
        .into_iter()
        .map(|m| (m, sigma_workloads::training::matmul_fraction(m, &gpu)))
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn matmul_share_is_about_70_percent() {
        for (model, share) in super::matmul_shares() {
            assert!((0.55..=0.85).contains(&share), "{model}: {share}");
        }
    }
}
