//! One module per table/figure of the paper.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig01`] | Fig. 1b — workload GEMM dimension table |
//! | [`fig02`] | Fig. 2 — training-step op-time breakdown |
//! | [`fig03`] | Fig. 3 — V100 efficiency on irregular/sparse GEMMs |
//! | [`fig04`] | Fig. 4 — systolic vs Flex-DPE mapping micro-examples |
//! | [`fig06`] | Fig. 6b — FAN vs ART vs linear reduction |
//! | [`fig07`] | Fig. 7 — compression-format metadata overhead |
//! | [`fig08`] | Fig. 8 — SIGMA vs TPU area/power/effective TFLOPS |
//! | [`fig09`] | Fig. 9 — Flex-DPE size design-space exploration |
//! | [`fig10`] | Fig. 10 — dataflow comparison |
//! | [`fig11`] | Fig. 11 — progressive feature speedups |
//! | [`fig12`] | Fig. 12a/b — dense & sparse speedup over the TPU |
//! | [`fig13`] | Fig. 13 — energy and perf/area vs the TPU |
//! | [`fig14`] | Fig. 14 — SIGMA vs sparse accelerators |

pub mod ablations;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod tables;

use crate::util::Table;

/// Every figure's tables, in paper order — what `all_figures` prints and
/// `EXPERIMENTS.md` records.
#[must_use]
pub fn all_tables() -> Vec<Table> {
    let mut t = vec![
        tables::table01(),
        fig01::table(),
        fig02::table(),
        fig03::table_dense(),
        fig03::table_sparse(),
    ];
    t.push(fig04::table());
    t.push(fig06::table());
    t.push(fig07::table());
    t.push(fig08::table());
    t.push(fig09::table());
    t.push(fig10::table());
    t.push(fig11::table());
    t.push(fig12::table_dense());
    t.push(fig12::table_sparse());
    t.push(fig13::table());
    t.push(fig13::breakdown_table());
    t.push(fig14::table());
    t.push(tables::table03());
    t.push(ablations::table_distribution());
    t.push(ablations::table_reduction());
    t.push(ablations::table_bandwidth());
    t.push(ablations::table_format());
    t.push(ablations::table_packing());
    t.push(ablations::table_functional_engines());
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_figure_renders() {
        for table in super::all_tables() {
            assert!(!table.rows.is_empty(), "{} has no rows", table.title);
            assert!(!table.render().is_empty());
        }
    }
}
