//! Fig. 3: V100 compute efficiency on (a) dense irregular GEMMs at
//! FP32/FP16 and (b) cuSPARSE with 50%/80% unstructured sparsity.

use crate::util::{fmt_pct, Table};
use sigma_baselines::gpu::{GpuModel, GpuPrecision};
use sigma_matrix::GemmShape;
use sigma_workloads::fig1b_suite;

fn kernels() -> Vec<(String, GemmShape)> {
    let mut v: Vec<(String, GemmShape)> = fig1b_suite()
        .into_iter()
        .filter(|g| g.shape.mk_elems() > 1 << 16) // measurable kernels
        .map(|g| (g.to_string(), g.shape))
        .collect();
    v.push(("dense regular 2048-2048-2048".to_string(), GemmShape::new(2048, 2048, 2048)));
    v
}

/// Fig. 3a: dense GEMM efficiency, FP32 vs FP16 tensor cores.
#[must_use]
pub fn table_dense() -> Table {
    let gpu = GpuModel::v100();
    let mut t = Table::new(
        "Fig. 3a — V100 efficiency on dense DL GEMMs (modeled)",
        &["kernel", "FP32 eff", "FP16-TC eff"],
    );
    for (name, shape) in kernels() {
        t.push(vec![
            name,
            fmt_pct(gpu.dense_efficiency(shape, GpuPrecision::Fp32)),
            fmt_pct(gpu.dense_efficiency(shape, GpuPrecision::Fp16Tensor)),
        ]);
    }
    t
}

/// Fig. 3b: cuSPARSE efficiency with one sparse operand.
#[must_use]
pub fn table_sparse() -> Table {
    let gpu = GpuModel::v100();
    let mut t = Table::new(
        "Fig. 3b — V100 cuSPARSE efficiency, one sparse operand (modeled)",
        &["kernel", "dense FP32 eff", "50% sparse eff", "80% sparse eff"],
    );
    for (name, shape) in kernels() {
        t.push(vec![
            name,
            fmt_pct(gpu.dense_efficiency(shape, GpuPrecision::Fp32)),
            fmt_pct(gpu.cusparse_efficiency(shape, 0.5)),
            fmt_pct(gpu.cusparse_efficiency(shape, 0.2)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_efficiency_is_a_fraction_of_dense() {
        // The paper observes ~4x average efficiency reduction vs dense FP32.
        let gpu = GpuModel::v100();
        let mut ratios = Vec::new();
        for (_, shape) in kernels() {
            let dense = gpu.dense_efficiency(shape, GpuPrecision::Fp32);
            let sparse = gpu.cusparse_efficiency(shape, 0.5);
            ratios.push(dense / sparse);
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!((2.0..=8.0).contains(&avg), "avg dense/sparse ratio {avg} (paper ~4x)");
    }
}
