//! Fig. 14: SIGMA against the sparse accelerators at 80%/30% sparsity on
//! the two matrices. Per the paper's methodology, each design gets the
//! best of the (matrix, sparsity) assignments.

use crate::harness::SigmaAnalytic;
use crate::util::{fmt_x, geomean, Table};
use sigma_baselines::{GemmAccelerator, SparseAccelerator, SparseAcceleratorKind};
use sigma_core::model::GemmProblem;
use sigma_matrix::GemmShape;

/// The GEMMs compared in Fig. 14: the substantial workload shapes (the
/// degenerate GEMV-like kernels of Fig. 12 are not in this figure).
#[must_use]
pub fn gemms() -> Vec<GemmShape> {
    vec![
        GemmShape::new(512, 512, 512),
        GemmShape::new(1024, 1024, 1024),
        GemmShape::new(4096, 4096, 4096),
        GemmShape::new(1632, 36_548, 1024),
        GemmShape::new(5124, 9124, 2560),
        GemmShape::new(320, 3072, 4096),
    ]
}

/// The sparsity combinations tested (80% / 30% on either operand).
#[must_use]
pub fn combos(shape: GemmShape) -> [GemmProblem; 2] {
    [GemmProblem::sparse(shape, 0.2, 0.7), GemmProblem::sparse(shape, 0.7, 0.2)]
}

/// Best-case cycles for one accelerator across the combos (SIGMA goes
/// through the same [`GemmAccelerator`] face via
/// [`SigmaAnalytic`]).
fn best_cycles(acc: &dyn GemmAccelerator, shape: GemmShape) -> u64 {
    combos(shape).iter().map(|p| acc.simulate(p).total_cycles()).min().unwrap_or(u64::MAX)
}

/// SIGMA's speedup over each accelerator per GEMM.
#[must_use]
pub fn speedups() -> Vec<(SparseAcceleratorKind, Vec<(String, f64)>)> {
    let sigma = SigmaAnalytic::paper();
    SparseAcceleratorKind::ALL
        .iter()
        .map(|&kind| {
            let acc = SparseAccelerator::new(kind, 16384);
            let rows = gemms()
                .into_iter()
                .map(|shape| {
                    let other = best_cycles(&acc, shape);
                    let best_sigma = best_cycles(&sigma, shape);
                    (shape.to_string(), other as f64 / best_sigma as f64)
                })
                .collect();
            (kind, rows)
        })
        .collect()
}

/// Renders SIGMA's speedup over each sparse accelerator.
#[must_use]
pub fn table() -> Table {
    let data = speedups();
    let mut headers = vec!["GEMM".to_string()];
    headers.extend(data.iter().map(|(k, _)| k.to_string()));
    let href: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t =
        Table::new("Fig. 14 — SIGMA speedup over sparse accelerators (80%/30% sparsity)", &href);
    for (i, shape) in gemms().iter().enumerate() {
        let mut row = vec![shape.to_string()];
        for (_, rows) in &data {
            row.push(fmt_x(rows[i].1));
        }
        t.push(row);
    }
    let mut geo_row = vec!["geomean".to_string()];
    for (_, rows) in &data {
        let xs: Vec<f64> = rows.iter().map(|r| r.1).collect();
        geo_row.push(fmt_x(geomean(&xs)));
    }
    t.push(geo_row);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overall_geomean_is_about_3x() {
        let mut all = Vec::new();
        for (_, rows) in speedups() {
            all.extend(rows.iter().map(|r| r.1));
        }
        let g = geomean(&all);
        assert!((1.8..=6.0).contains(&g), "overall geomean {g} (paper ~3x)");
    }

    #[test]
    fn sigma_wins_against_every_design_on_average() {
        for (kind, rows) in speedups() {
            let xs: Vec<f64> = rows.iter().map(|r| r.1).collect();
            assert!(geomean(&xs) > 1.0, "{kind} should lose on average");
        }
    }

    #[test]
    fn eyeriss_v2_wins_at_least_one_gemm() {
        // The paper reports SIGMA slower than Eyeriss v2 on two GEMMs.
        let data = speedups();
        let (_, rows) = data.iter().find(|(k, _)| *k == SparseAcceleratorKind::EyerissV2).unwrap();
        assert!(rows.iter().any(|(_, s)| *s < 1.0), "Eyeriss v2 should win somewhere: {rows:?}");
    }
}
