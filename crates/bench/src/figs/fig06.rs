//! Fig. 6b: spatial FP32 reduction comparison — post-layout area, power,
//! speedup and EDP for linear reduction, MAERI's ART, and FAN, across PE
//! counts, on the paper's experiment (100 stationary folds, stream
//! dimension 1000).

use crate::util::{fmt_x, Table};
use sigma_energy::{reduction_report, EnergyDelay};
use sigma_interconnect::{ReductionKind, ReductionNetwork};

/// The Fig. 6b experiment parameters.
pub const FOLDS: u64 = 100;
/// Stream dimension per fold.
pub const STREAM: u64 = 1000;

/// PE counts swept in the figure.
pub const SIZES: [usize; 6] = [16, 32, 64, 128, 256, 512];

/// Renders area/power/speedup/EDP rows per (size, kind).
#[must_use]
pub fn table() -> Table {
    let mut t = Table::new(
        "Fig. 6b — reduction networks: area, power, speedup, EDP (100 folds x 1000 stream)",
        &["PEs", "network", "area mm2", "power W", "speedup vs linear", "EDP vs linear"],
    );
    for size in SIZES {
        let lin_edp =
            EnergyDelay::of_fold_experiment(ReductionKind::Linear, size, FOLDS, STREAM).edp();
        for kind in ReductionKind::ALL {
            let rep = reduction_report(kind, size);
            let net = ReductionNetwork::new(kind, size);
            let edp = EnergyDelay::of_fold_experiment(kind, size, FOLDS, STREAM).edp();
            t.push(vec![
                size.to_string(),
                kind.to_string(),
                format!("{:.4}", rep.area_mm2),
                format!("{:.4}", rep.power_w),
                fmt_x(net.speedup_vs_linear(FOLDS, STREAM)),
                format!("{:.3}", edp / lin_edp),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_overheads_match_paper_at_512() {
        let lin = reduction_report(ReductionKind::Linear, 512);
        let fan = reduction_report(ReductionKind::Fan, 512);
        assert!((fan.area_mm2 / lin.area_mm2 - 1.10).abs() < 0.03);
        assert!((fan.power_w / lin.power_w - 1.31).abs() < 0.05);
    }

    #[test]
    fn fan_edp_crossover_exists() {
        // Linear wins EDP at small sizes; FAN wins at large sizes.
        let edp_ratio = |size| {
            EnergyDelay::of_fold_experiment(ReductionKind::Fan, size, FOLDS, STREAM).edp()
                / EnergyDelay::of_fold_experiment(ReductionKind::Linear, size, FOLDS, STREAM).edp()
        };
        assert!(edp_ratio(16) > 1.0, "linear should win at 16 PEs");
        assert!(edp_ratio(512) < 0.7, "FAN should win big at 512 PEs");
    }

    #[test]
    fn speedup_grows_monotonically_with_size() {
        let mut last = 0.0;
        for size in SIZES {
            let s =
                ReductionNetwork::new(ReductionKind::Fan, size).speedup_vs_linear(FOLDS, STREAM);
            assert!(s >= last);
            last = s;
        }
        assert!(last > 1.4);
    }
}
