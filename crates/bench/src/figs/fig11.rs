//! Fig. 11: progressive feature attribution — TPU, then SIGMA with
//! flexibility only (Fl), + scalable interconnects (Fl+Sc), + sparsity
//! support (Fl+Sc+Sp).
//!
//! * **Fl** maps arbitrary dimensions without stranding PEs, but keeps
//!   systolic-style networks: O(√N)-cycle reduction drain per fold and
//!   zeros mapped stationary.
//! * **Fl+Sc** swaps in the Benes/FAN networks: O(1) distribution and
//!   O(log₂N) drain.
//! * **Fl+Sc+Sp** adds the bitmap controller: only non-zeros are mapped.

use crate::util::{fmt_x, Table};
use sigma_baselines::{GemmAccelerator, SystolicArray};
use sigma_core::model::{estimate_best, GemmProblem};
use sigma_core::SigmaConfig;
use sigma_workloads::{evaluation_suite, SparsityProfile};

/// Cycles for the three progressive SIGMA variants on one problem.
#[must_use]
pub fn progressive_cycles(p: &GemmProblem) -> (u64, u64, u64) {
    let cfg = SigmaConfig::paper();
    let sqrt_pes = (cfg.total_pes() as f64).sqrt() as u64;

    // Fl: dense mapping (no sparsity skip), linear per-fold drain.
    let dense = GemmProblem::dense(p.shape);
    let (_, base) = estimate_best(&cfg, &dense);
    let fl = base.loading_cycles + base.streaming_cycles + base.folds * sqrt_pes;

    // Fl+Sc: dense mapping with the real FAN/Benes latencies.
    let fl_sc = base.total_cycles();

    // Fl+Sc+Sp: sparse mapping.
    let (_, sp) = estimate_best(&cfg, p);
    let fl_sc_sp = sp.total_cycles();
    (fl, fl_sc, fl_sc_sp)
}

/// Renders speedup-over-TPU rows for each progressive variant.
#[must_use]
pub fn table() -> Table {
    let tpu = SystolicArray::new(128, 128);
    let mut t = Table::new(
        "Fig. 11 — progressive features: speedup over TPU 128x128 (sparse suite)",
        &["GEMM", "SIGMA Fl", "SIGMA Fl+Sc", "SIGMA Fl+Sc+Sp"],
    );
    for g in evaluation_suite() {
        let p = SparsityProfile::PAPER_SPARSE.problem(g.shape);
        let tpu_cycles = tpu.simulate(&p).total_cycles();
        let (fl, fl_sc, fl_sc_sp) = progressive_cycles(&p);
        t.push(vec![
            g.shape.to_string(),
            fmt_x(tpu_cycles as f64 / fl as f64),
            fmt_x(tpu_cycles as f64 / fl_sc as f64),
            fmt_x(tpu_cycles as f64 / fl_sc_sp as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_matrix::GemmShape;

    #[test]
    fn each_feature_helps_monotonically() {
        for g in evaluation_suite() {
            let p = SparsityProfile::PAPER_SPARSE.problem(g.shape);
            let (fl, fl_sc, fl_sc_sp) = progressive_cycles(&p);
            assert!(fl_sc <= fl, "{}: scalable networks should help", g.shape);
            assert!(fl_sc_sp <= fl_sc, "{}: sparsity support should help", g.shape);
        }
    }

    #[test]
    fn flexibility_alone_beats_tpu_on_irregular() {
        // The 1024-16-500000 GEMM underutilizes the rigid array; Fl fixes
        // exactly that.
        let shape = GemmShape::new(1024, 16, 500_000);
        let p = GemmProblem::dense(shape);
        let tpu = SystolicArray::new(128, 128).simulate(&p).total_cycles();
        let (fl, _, _) = progressive_cycles(&p);
        assert!(fl < tpu, "Fl {fl} vs TPU {tpu}");
    }

    #[test]
    fn sparsity_is_the_biggest_single_lever_on_sparse_inputs() {
        let shape = GemmShape::new(4096, 4096, 4096);
        let p = SparsityProfile::PAPER_SPARSE.problem(shape);
        let (fl, fl_sc, fl_sc_sp) = progressive_cycles(&p);
        let sc_gain = fl as f64 / fl_sc as f64;
        let sp_gain = fl_sc as f64 / fl_sc_sp as f64;
        assert!(sp_gain > sc_gain, "sparsity gain {sp_gain} vs scalability gain {sc_gain}");
    }
}
