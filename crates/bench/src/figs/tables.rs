//! Table I and Table III: the paper's qualitative comparisons, rendered
//! from the codebase itself wherever a property is machine-checkable.

use crate::util::Table;
use sigma_baselines::SparseAcceleratorKind;
use sigma_interconnect::{BenesNetwork, Fan, ReductionKind, ReductionNetwork};

/// Table I: desired GEMM-engine features, the systolic array's
/// limitation, and SIGMA's approach. The latency columns come from the
/// live network models, not prose.
#[must_use]
pub fn table01() -> Table {
    let mut t = Table::new(
        "Table I — systolic limitations vs SIGMA (128-wide engines)",
        &["requirement", "systolic array", "SIGMA"],
    );
    let benes = BenesNetwork::new_clamped(128);
    let fan = Fan::new_clamped(128);
    let lin = ReductionNetwork::new(ReductionKind::Linear, 128);
    t.push(vec![
        "flexible shapes".into(),
        "rigid RxC tile; stranded PEs on irregular GEMMs".into(),
        "1-D multipliers carved into variable dot products".into(),
    ]);
    t.push(vec![
        "sparsity support".into(),
        "must map zeros (rigid forwarding)".into(),
        "bitmap controller maps only non-zeros".into(),
    ]);
    t.push(vec![
        "distribution latency".into(),
        "O(sqrt(N)) store-and-forward (128 cycles)".into(),
        format!("O(1) Benes traversal ({} cycle)", benes.traversal_latency_cycles()),
    ]);
    t.push(vec![
        "reduction latency".into(),
        format!("O(N) linear drain ({} cycles)", lin.drain_cycles()),
        format!("O(log2 N) FAN drain ({} cycles)", fan.latency_cycles()),
    ]);
    t
}

/// Table III: which sparsity each sparse accelerator exploits and its
/// modeled bottleneck. The sparsity columns are read off the live models.
#[must_use]
pub fn table03() -> Table {
    let mut t = Table::new(
        "Table III — sparse accelerators: sparsity support and modeled bottleneck",
        &["design", "weight sparsity", "activation sparsity", "modeled bottleneck"],
    );
    let bottleneck = |k: SparseAcceleratorKind| -> &'static str {
        match k {
            SparseAcceleratorKind::Eie => "activation broadcast + inter-PE output network",
            SparseAcceleratorKind::Scnn => "output-crossbar bank conflicts on GEMM",
            SparseAcceleratorKind::OuterSpace => "outer-product merge phase",
            SparseAcceleratorKind::EyerissV2 => "operand re-fetch beyond buffer capacity",
            SparseAcceleratorKind::PackedSystolic => "packing capped ~4x; dense activations",
            SparseAcceleratorKind::CambriconX => "dense activations; indexing overhead",
        }
    };
    for kind in SparseAcceleratorKind::ALL {
        let both = kind.exploits_both_sparsities();
        t.push(vec![
            kind.to_string(),
            "yes".into(),
            if both { "yes".into() } else { "no".into() },
            bottleneck(kind).into(),
        ]);
    }
    t.push(vec![
        "SIGMA".into(),
        "yes".into(),
        "yes".into(),
        "streaming-operand sparsity bounds compute efficiency".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table01_reflects_live_latencies() {
        let t = table01();
        let body = t.render();
        assert!(body.contains("7 cycles"), "log2(128) FAN drain");
        assert!(body.contains("128 cycles"), "linear drain");
        assert!(body.contains("1 cycle"), "Benes traversal");
    }

    #[test]
    fn table03_matches_model_capabilities() {
        let t = table03();
        assert_eq!(t.rows.len(), 7); // six baselines + SIGMA
        let body = t.render();
        // The two weight-only designs show "no" for activations.
        let packed_row = t.rows.iter().find(|r| r[0] == "Packed Systolic").unwrap();
        assert_eq!(packed_row[2], "no");
        let scnn_row = t.rows.iter().find(|r| r[0] == "SCNN").unwrap();
        assert_eq!(scnn_row[2], "yes");
        assert!(body.contains("SIGMA"));
    }
}
