//! Ablation studies for SIGMA's design choices (beyond the paper's own
//! figures, but directly supporting its Table I claims):
//!
//! 1. **Distribution network** — replace the Benes with a crossbar, bus,
//!    butterfly or mesh and watch streaming serialize.
//! 2. **Reduction network** — replace FAN with linear or ART reduction
//!    and watch the per-fold drain grow.
//! 3. **Loading bandwidth** — sweep the SRAM width; small GEMMs become
//!    loading-bound exactly as Sec. VI-C describes.
//! 4. **Compression format** — charge each format's metadata traffic on
//!    the load path; bitmap wins at low sparsity, RLC at high.

use crate::util::{fmt_cycles, fmt_x, Table};
use sigma_core::model::{estimate, estimate_best, GemmProblem};
use sigma_core::{Dataflow, SigmaConfig};
use sigma_interconnect::alternatives::{DistributionKind, DistributionModel};
use sigma_interconnect::{ReductionKind, ReductionNetwork};
use sigma_matrix::formats::{expected_metadata_bits, CompressionKind};
use sigma_matrix::GemmShape;
use sigma_workloads::SparsityProfile;

fn reference_problem() -> GemmProblem {
    SparsityProfile::PAPER_SPARSE.problem(GemmShape::new(2048, 2048, 2048))
}

/// Total cycles with the distribution network swapped for `kind`: each
/// streaming step's delivery is re-priced by the alternative network
/// (unique values per step come from the analytic model's send count).
#[must_use]
pub fn cycles_with_distribution(kind: DistributionKind, p: &GemmProblem) -> u64 {
    let cfg = SigmaConfig::paper();
    let (_, s) = estimate_best(&cfg, p);
    if s.folds == 0 {
        return 0;
    }
    let steps_total = s.streaming_cycles.max(1); // Benes: 1 cycle/step here
    let sends_per_step = (s.sram_reads.saturating_sub(s.mapped_nonzeros)) / steps_total.max(1);
    let model = DistributionModel::new(kind, cfg.dpe_size());
    let per_step = model.delivery_cycles(sends_per_step.max(1) / cfg.num_dpes() as u64);
    s.loading_cycles + steps_total * per_step + s.add_cycles
}

/// Ablation 1: distribution-network choice.
#[must_use]
pub fn table_distribution() -> Table {
    let p = reference_problem();
    let base = cycles_with_distribution(DistributionKind::Benes, &p);
    let mut t = Table::new(
        "Ablation — distribution network (2048^3, 50%/80% sparse)",
        &["network", "non-blocking", "switch cost", "total cycles", "slowdown vs Benes"],
    );
    for kind in DistributionKind::ALL {
        let cycles = cycles_with_distribution(kind, &p);
        let model = DistributionModel::new(kind, 128);
        t.push(vec![
            kind.to_string(),
            model.kind().is_non_blocking().to_string(),
            model.switch_cost().to_string(),
            fmt_cycles(cycles),
            fmt_x(cycles as f64 / base as f64),
        ]);
    }
    t
}

/// Total cycles with the reduction network swapped for `kind`: the
/// per-fold drain is re-priced.
#[must_use]
pub fn cycles_with_reduction(kind: ReductionKind, p: &GemmProblem) -> u64 {
    let cfg = SigmaConfig::paper();
    let (_, s) = estimate_best(&cfg, p);
    let drain = ReductionNetwork::new(kind, cfg.dpe_size()).drain_cycles();
    s.loading_cycles + s.streaming_cycles + s.folds * drain
}

/// Ablation 2: reduction-network choice.
#[must_use]
pub fn table_reduction() -> Table {
    // Use a fold-heavy GEMM so the drain matters.
    let p = SparsityProfile::new(0.1, 0.1).problem(GemmShape::new(4096, 4096, 4096));
    let base = cycles_with_reduction(ReductionKind::Fan, &p);
    let mut t = Table::new(
        "Ablation — reduction network (4096^3, fold-heavy)",
        &["network", "drain cycles/fold", "total cycles", "slowdown vs FAN"],
    );
    for kind in ReductionKind::ALL {
        let cycles = cycles_with_reduction(kind, &p);
        t.push(vec![
            kind.to_string(),
            ReductionNetwork::new(kind, 128).drain_cycles().to_string(),
            fmt_cycles(cycles),
            fmt_x(cycles as f64 / base as f64),
        ]);
    }
    t
}

/// Ablation 3: loading-bandwidth sweep on a loading-bound and a
/// streaming-bound GEMM.
#[must_use]
pub fn table_bandwidth() -> Table {
    let loading_bound = GemmProblem::dense(GemmShape::new(2048, 1, 128));
    let streaming_bound = GemmProblem::dense(GemmShape::new(2048, 2048, 2048));
    let mut t = Table::new(
        "Ablation — SRAM loading bandwidth (words/cycle)",
        &["bandwidth", "2048-1-128 cycles", "2048^3 cycles"],
    );
    for bw in [32usize, 64, 128, 256, 512] {
        let cfg = SigmaConfig::clamped(128, 128, bw, Dataflow::InputStationary)
            .with_stream_bandwidth_clamped(128 * 128);
        let a = estimate(&cfg, &loading_bound).total_cycles();
        let b = estimate(&cfg, &streaming_bound).total_cycles();
        t.push(vec![bw.to_string(), fmt_cycles(a), fmt_cycles(b)]);
    }
    t
}

/// Loading cycles including metadata traffic for a format at a sparsity.
#[must_use]
pub fn loading_with_format(kind: CompressionKind, sparsity: f64) -> u64 {
    let shape = GemmShape::new(2048, 2048, 2048);
    let cfg = SigmaConfig::paper();
    let p = GemmProblem::sparse(shape, 1.0, 1.0 - sparsity);
    let (_, s) = estimate_best(&cfg, &p);
    let meta_words = expected_metadata_bits(kind, shape.k, shape.n, 1.0 - sparsity) / 32.0;
    s.loading_cycles + (meta_words / cfg.input_bandwidth() as f64).ceil() as u64
}

/// Ablation 4: front-end compression format's metadata traffic on the
/// load path.
#[must_use]
pub fn table_format() -> Table {
    let mut t = Table::new(
        "Ablation — front-end compression format (loading cycles incl. metadata)",
        &["format", "30% sparse", "50% sparse", "80% sparse"],
    );
    for kind in
        [CompressionKind::Bitmap, CompressionKind::Csr, CompressionKind::Coo, CompressionKind::Rlc4]
    {
        t.push(vec![
            kind.to_string(),
            fmt_cycles(loading_with_format(kind, 0.3)),
            fmt_cycles(loading_with_format(kind, 0.5)),
            fmt_cycles(loading_with_format(kind, 0.8)),
        ]);
    }
    t
}

/// Ablation 5: fold packing order. At narrow streaming bandwidth,
/// contraction-major folds multicast each streamed value to every group
/// and cut SRAM traffic; group-major minimizes cross-fold partials. Run
/// functionally on a mid-size GEMM.
#[must_use]
pub fn table_packing() -> Table {
    use sigma_core::{PackingOrder, SigmaSim};
    use sigma_matrix::gen::{sparse_uniform, Density};
    let mut t = Table::new(
        "Ablation — fold packing order (functional, 64x16x12 dense, stream bw 4)",
        &["packing", "folds", "streaming cycles", "SRAM reads", "total cycles"],
    );
    let a = sparse_uniform(64, 16, Density::DENSE, 71);
    let b = sparse_uniform(16, 12, Density::DENSE, 72);
    for (name, order) in [
        ("group-major", PackingOrder::GroupMajor),
        ("contraction-major", PackingOrder::ContractionMajor),
    ] {
        let cfg = sigma_core::SigmaConfig::clamped(2, 16, 4, Dataflow::InputStationary)
            .with_packing_order(order);
        let run = match SigmaSim::new_clamped(cfg).run_gemm(&a, &b) {
            Ok(run) => run,
            Err(e) => {
                t.push(vec![
                    name.to_string(),
                    format!("error: {e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
        };
        t.push(vec![
            name.to_string(),
            run.stats.folds.to_string(),
            run.stats.streaming_cycles.to_string(),
            run.stats.sram_reads.to_string(),
            run.stats.total_cycles().to_string(),
        ]);
    }
    t
}

/// Functional-engine faceoff: every registered engine on one sparse
/// GEMM, driven through the shared harness and verified against the same
/// reference. Cycle scales differ by design (each machine's natural unit
/// width), so the table reports cycles *and* useful-MACs-per-cycle, the
/// efficiency-style quantity that is comparable.
#[must_use]
pub fn table_functional_engines() -> Table {
    use crate::harness::{default_registry, Sweep, WorkloadSpec};

    let p = GemmProblem::sparse(GemmShape::new(48, 48, 48), 0.5, 0.2);
    let records =
        Sweep::new(vec![WorkloadSpec::new("48^3", p)]).with_seed(77).run(&default_registry());

    let mut t = Table::new(
        "Functional engines — 48^3 GEMM, 50%/80% sparse (64-ish PE machines)",
        &["engine", "PEs", "cycles", "useful MACs/cycle", "verified"],
    );
    for r in &records {
        t.push(vec![
            r.engine.clone(),
            r.pes.to_string(),
            r.total_cycles.to_string(),
            format!("{:.2}", r.useful_macs as f64 / r.total_cycles.max(1) as f64),
            r.verified.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_networks_slow_streaming() {
        let p = reference_problem();
        let benes = cycles_with_distribution(DistributionKind::Benes, &p);
        let bus = cycles_with_distribution(DistributionKind::Bus, &p);
        let mesh = cycles_with_distribution(DistributionKind::Mesh, &p);
        assert!(bus > benes, "bus {bus} vs benes {benes}");
        assert!(mesh > benes);
        // Crossbar matches Benes in time (both non-blocking)...
        let xbar = cycles_with_distribution(DistributionKind::Crossbar, &p);
        assert_eq!(xbar, benes);
        // ...but costs quadratically more switches.
        assert!(
            DistributionModel::new(DistributionKind::Crossbar, 128).switch_cost()
                > 10 * DistributionModel::new(DistributionKind::Benes, 128).switch_cost()
        );
    }

    #[test]
    fn linear_reduction_hurts_fold_heavy_gemms() {
        let p = SparsityProfile::new(0.1, 0.1).problem(GemmShape::new(4096, 4096, 4096));
        let fan = cycles_with_reduction(ReductionKind::Fan, &p);
        let lin = cycles_with_reduction(ReductionKind::Linear, &p);
        assert!(lin as f64 > 1.02 * fan as f64, "linear {lin} vs FAN {fan}");
        // ART matches FAN's timing; its cost penalty is area/power.
        assert_eq!(cycles_with_reduction(ReductionKind::Art, &p), fan);
    }

    #[test]
    fn bandwidth_only_matters_when_loading_bound() {
        let lb = GemmProblem::dense(GemmShape::new(2048, 1, 128));
        let cyc = |bw: usize| {
            let cfg = SigmaConfig::new(128, 128, bw, Dataflow::InputStationary)
                .unwrap()
                .with_stream_bandwidth(128 * 128)
                .unwrap();
            estimate(&cfg, &lb).total_cycles()
        };
        assert!(cyc(32) > 2 * cyc(256), "32w {} vs 256w {}", cyc(32), cyc(256));
    }

    #[test]
    fn bitmap_beats_index_formats_at_low_sparsity() {
        assert!(
            loading_with_format(CompressionKind::Bitmap, 0.3)
                < loading_with_format(CompressionKind::Coo, 0.3)
        );
        // RLC-4 catches up at high sparsity.
        assert!(
            loading_with_format(CompressionKind::Rlc4, 0.8)
                <= loading_with_format(CompressionKind::Bitmap, 0.8)
        );
    }

    #[test]
    fn all_ablation_tables_render() {
        for t in [table_distribution(), table_reduction(), table_bandwidth(), table_format()] {
            assert!(!t.rows.is_empty());
            assert!(!t.render().is_empty());
        }
    }
}
