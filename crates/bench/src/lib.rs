//! Experiment harness: one regenerator per table/figure of the paper.
//!
//! Each `figs::figNN` module computes the figure's data series through the
//! workspace's models and renders it as an ASCII table whose rows mirror
//! what the paper plots. Thin binaries (`src/bin/figNN_*.rs`) emit them
//! through [`harness::emit_tables`]; `src/bin/all_figures.rs` prints
//! everything (and is what `EXPERIMENTS.md` records); the Criterion
//! benches exercise the same entry points plus the simulator's own hot
//! loops.
//!
//! The [`harness`] module is the engine-facing layer: a registry of every
//! functional [`Engine`](sigma_core::Engine), a deterministic parallel
//! [`Sweep`](harness::Sweep) driver, and the [`RunRecord`](harness::RunRecord)
//! schema with CSV/JSON emission.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    warn(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]
#![warn(missing_docs)]

pub mod figs;
pub mod harness;
pub mod perf;
pub mod util;
