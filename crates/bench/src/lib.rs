//! Experiment harness: one regenerator per table/figure of the paper.
//!
//! Each `figs::figNN` module computes the figure's data series through the
//! workspace's models and renders it as an ASCII table whose rows mirror
//! what the paper plots. Thin binaries (`src/bin/figNN_*.rs`) print them;
//! `src/bin/all_figures.rs` prints everything (and is what
//! `EXPERIMENTS.md` records); the Criterion benches exercise the same
//! entry points plus the simulator's own hot loops.

#![warn(missing_docs)]

pub mod figs;
pub mod util;
