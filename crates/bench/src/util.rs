//! Small shared helpers for the experiment binaries.

/// A rendered experiment table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (figure/table id + caption).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width must match headers");
        self.rows.push(row);
    }

    /// Renders as CSV (header row first). Cells containing commas or
    /// quotes are quoted.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// A filesystem-friendly slug of the title (for CSV file names).
    #[must_use]
    pub fn slug(&self) -> String {
        self.title
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_")
    }

    /// Renders with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Geometric mean of a slice of positive values.
///
/// # Panics
///
/// Panics if `xs` is empty or any element is non-positive.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    assert!(xs.iter().all(|x| *x > 0.0), "geomean requires positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats a cycle count compactly.
#[must_use]
pub fn fmt_cycles(c: u64) -> String {
    if c >= 10_000_000 {
        format!("{:.1}M", c as f64 / 1e6)
    } else if c >= 10_000 {
        format!("{:.1}k", c as f64 / 1e3)
    } else {
        c.to_string()
    }
}

/// Formats a ratio as `x.xx×`.
#[must_use]
pub fn fmt_x(r: f64) -> String {
    format!("{r:.2}x")
}

/// Formats a fraction as a percentage.
#[must_use]
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Fig. X", &["name", "value"]);
        t.push(vec!["a".into(), "1".into()]);
        t.push(vec!["long-name".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("Fig. X"));
        assert!(r.lines().count() >= 4);
        let widths: Vec<usize> = r.lines().map(str::len).collect();
        assert_eq!(widths[1], widths[3], "rows align with headers");
    }

    #[test]
    fn csv_escapes_and_slugs() {
        let mut t = Table::new("Fig. 6b — FAN, etc.", &["a,b", "c"]);
        t.push(vec!["x\"y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c\n"));
        assert!(csv.contains("\"x\"\"y\",plain"));
        assert_eq!(t.slug(), "fig_6b_fan_etc");
    }

    #[test]
    fn geomean_values() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_cycles(999), "999");
        assert_eq!(fmt_cycles(25_000), "25.0k");
        assert_eq!(fmt_cycles(12_000_000), "12.0M");
        assert_eq!(fmt_x(2.0), "2.00x");
        assert_eq!(fmt_pct(0.825), "82.5%");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }
}
