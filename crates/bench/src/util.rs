//! Small shared helpers for the experiment binaries.

/// A rendered experiment table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (figure/table id + caption).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers; use
    /// [`Table::try_push`] to handle that case gracefully.
    // Deliberate convenience panic over try_push (sigma-lint D2 waived
    // for this file in lint.toml).
    #[allow(clippy::expect_used)]
    pub fn push(&mut self, row: Vec<String>) {
        self.try_push(row).expect("row width must match headers");
    }

    /// Appends a row, rejecting rows whose width does not match the
    /// headers.
    ///
    /// # Errors
    ///
    /// Returns [`RowWidthError`] when `row.len() != self.headers.len()`;
    /// the table is left unchanged.
    pub fn try_push(&mut self, row: Vec<String>) -> Result<(), RowWidthError> {
        if row.len() != self.headers.len() {
            return Err(RowWidthError { expected: self.headers.len(), got: row.len() });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Renders as CSV (header row first). Cells containing commas,
    /// quotes or CR/LF are quoted.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',')
                || cell.contains('"')
                || cell.contains('\n')
                || cell.contains('\r')
            {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as JSON: `{"title": ..., "rows": [{header: cell, ...}]}`.
    /// Field order is fixed (headers in table order), so equal tables
    /// render byte-identically.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"title\": {},\n", json_string(&self.title)));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {");
            for (j, (h, c)) in self.headers.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_string(h), json_string(c)));
            }
            out.push_str(if i + 1 < self.rows.len() { "},\n" } else { "}\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A filesystem-friendly slug of the title (for CSV file names).
    #[must_use]
    pub fn slug(&self) -> String {
        self.title
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_")
    }

    /// Renders with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// A row whose width does not match the table's headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowWidthError {
    /// Header count of the table.
    pub expected: usize,
    /// Width of the rejected row.
    pub got: usize,
}

impl std::fmt::Display for RowWidthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "row width {} does not match {} headers", self.got, self.expected)
    }
}

impl std::error::Error for RowWidthError {}

/// Quotes and escapes a string as a JSON string literal.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Geometric mean of a slice of positive values.
///
/// # Panics
///
/// Panics if `xs` is empty or any element is non-positive.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    assert!(xs.iter().all(|x| *x > 0.0), "geomean requires positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats a cycle count compactly.
#[must_use]
pub fn fmt_cycles(c: u64) -> String {
    if c >= 10_000_000 {
        format!("{:.1}M", c as f64 / 1e6)
    } else if c >= 10_000 {
        format!("{:.1}k", c as f64 / 1e3)
    } else {
        c.to_string()
    }
}

/// Formats a ratio as `x.xx×`.
#[must_use]
pub fn fmt_x(r: f64) -> String {
    format!("{r:.2}x")
}

/// Formats a fraction as a percentage.
#[must_use]
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Fig. X", &["name", "value"]);
        t.push(vec!["a".into(), "1".into()]);
        t.push(vec!["long-name".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("Fig. X"));
        assert!(r.lines().count() >= 4);
        let widths: Vec<usize> = r.lines().map(str::len).collect();
        assert_eq!(widths[1], widths[3], "rows align with headers");
    }

    #[test]
    fn csv_escapes_and_slugs() {
        let mut t = Table::new("Fig. 6b — FAN, etc.", &["a,b", "c"]);
        t.push(vec!["x\"y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c\n"));
        assert!(csv.contains("\"x\"\"y\",plain"));
        assert_eq!(t.slug(), "fig_6b_fan_etc");
    }

    #[test]
    fn geomean_values() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_cycles(999), "999");
        assert_eq!(fmt_cycles(25_000), "25.0k");
        assert_eq!(fmt_cycles(12_000_000), "12.0M");
        assert_eq!(fmt_x(2.0), "2.00x");
        assert_eq!(fmt_pct(0.825), "82.5%");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn try_push_reports_width_mismatch() {
        let mut t = Table::new("t", &["a", "b"]);
        let err = t.try_push(vec!["only-one".into()]).unwrap_err();
        assert_eq!(err, RowWidthError { expected: 2, got: 1 });
        assert!(err.to_string().contains("row width 1"));
        assert!(t.rows.is_empty(), "failed push must not mutate the table");
        assert!(t.try_push(vec!["x".into(), "y".into()]).is_ok());
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    fn csv_quotes_carriage_returns() {
        let mut t = Table::new("t", &["a"]);
        t.push(vec!["line\rbreak".into()]);
        assert!(t.to_csv().contains("\"line\rbreak\""));
    }

    #[test]
    fn json_rendering_is_valid_and_ordered() {
        let mut t = Table::new("T \"quoted\"", &["x", "y"]);
        t.push(vec!["a\nb".into(), "c".into()]);
        let j = t.to_json();
        assert!(j.contains("\"title\": \"T \\\"quoted\\\"\""));
        assert!(j.contains("{\"x\": \"a\\nb\", \"y\": \"c\"}"));
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
