//! Regenerates Fig. 2 (training-step op-time breakdown).
fn main() {
    sigma_bench::harness::emit_tables(&[sigma_bench::figs::fig02::table()]);
}
