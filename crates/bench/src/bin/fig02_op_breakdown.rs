//! Regenerates Fig. 2 (training-step op-time breakdown).
fn main() {
    println!("{}", sigma_bench::figs::fig02::table());
}
