//! Regenerates Fig. 10 (SIGMA dataflow comparison).
fn main() {
    println!("{}", sigma_bench::figs::fig10::table());
}
