//! Regenerates Fig. 10 (SIGMA dataflow comparison).
fn main() {
    sigma_bench::harness::emit_tables(&[sigma_bench::figs::fig10::table()]);
}
