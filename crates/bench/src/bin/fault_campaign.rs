//! Fault-injection campaign: sweeps fault sites across engines and
//! reports ABFT coverage.
//!
//! Two legs:
//!
//! * **SIGMA microarchitectural leg** — seeded single-site faults
//!   (multiplier transients, FAN stuck-at bits, Benes port drops /
//!   misroutes / operand flips, bitmap-word corruption) injected into
//!   the cycle-accurate SIGMA datapath via
//!   [`SigmaSim::run_gemm_checked`], per dataflow;
//! * **output-corruption leg** — every registry engine runs clean, then
//!   one result element takes a single bit flip and the row/column
//!   checksums must flag (and, at single-site granularity, locate and
//!   repair) it.
//!
//! The binary self-checks and exits non-zero unless:
//!
//! * transient single-site faults with a numeric effect are detected at
//!   >= 99%, and
//! * fault-free control runs raise zero false positives.
//!
//! ```sh
//! cargo run -p sigma-bench --bin fault_campaign -- --smoke
//! ```
//!
//! Flags: `--smoke` (tiny trial counts for CI), plus the common
//! `--csv DIR` / `--json DIR` / `--quiet` emit flags.

use sigma_bench::harness::{default_registry, derive_seed, emit_tables_with};
use sigma_bench::util::Table;
use sigma_core::fault::{FaultKind, FaultPlan, FaultSite, StuckLevel};
use sigma_core::model::GemmProblem;
use sigma_core::{Dataflow, RecoveryPolicy, SigmaConfig, SigmaSim};
use sigma_matrix::abft::{check_product, correct_single, residual_tolerance, AbftVerdict};
use sigma_matrix::GemmShape;
use sigma_workloads::materialize;

/// XORs one bit of an `f32` (the same upset model the injector uses).
fn flip_bit(v: f32, bit: u32) -> f32 {
    f32::from_bits(v.to_bits() ^ (1u32 << (bit % 32)))
}

/// Per-(site-class, target) tally of one campaign cell.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    trials: u64,
    fired: u64,
    numeric: u64,
    detected: u64,
    corrected: u64,
    escaped: u64,
}

impl Tally {
    fn row(&self, class: &str, target: &str) -> Vec<String> {
        let rate = if self.numeric == 0 {
            "n/a".to_string()
        } else {
            format!("{:.1}%", 100.0 * self.detected as f64 / self.numeric as f64)
        };
        vec![
            class.to_string(),
            target.to_string(),
            self.trials.to_string(),
            self.fired.to_string(),
            self.numeric.to_string(),
            self.detected.to_string(),
            self.corrected.to_string(),
            self.escaped.to_string(),
            rate,
        ]
    }
}

/// The fault-site classes of the SIGMA leg. Transient classes feed the
/// >= 99% detection gate; persistent classes are reported for coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteClass {
    MultTransient,
    MultStuck,
    FanStuck,
    BenesFlip,
    BenesDrop,
    BenesMisroute,
    BitmapCorrupt,
}

impl SiteClass {
    const ALL: [SiteClass; 7] = [
        SiteClass::MultTransient,
        SiteClass::MultStuck,
        SiteClass::FanStuck,
        SiteClass::BenesFlip,
        SiteClass::BenesDrop,
        SiteClass::BenesMisroute,
        SiteClass::BitmapCorrupt,
    ];

    fn label(self) -> &'static str {
        match self {
            SiteClass::MultTransient => "mult transient flip",
            SiteClass::MultStuck => "mult stuck-at bit",
            SiteClass::FanStuck => "fan-adder stuck-at bit",
            SiteClass::BenesFlip => "benes operand flip",
            SiteClass::BenesDrop => "benes dropped port",
            SiteClass::BenesMisroute => "benes misrouted port",
            SiteClass::BitmapCorrupt => "bitmap word corruption",
        }
    }

    /// Transient single-event classes: exactly the gate population.
    fn is_transient(self) -> bool {
        matches!(self, SiteClass::MultTransient | SiteClass::BenesFlip | SiteClass::BitmapCorrupt)
    }

    /// Whether the datapath of `df` exercises this site class at all
    /// (the NLR path bypasses the Benes distribution and the bitmap
    /// streaming plan).
    fn reachable_under(self, df: Dataflow) -> bool {
        match self {
            SiteClass::MultTransient | SiteClass::MultStuck | SiteClass::FanStuck => true,
            SiteClass::BenesFlip
            | SiteClass::BenesDrop
            | SiteClass::BenesMisroute
            | SiteClass::BitmapCorrupt => df != Dataflow::NoLocalReuse,
        }
    }

    /// Builds the single-event plan for one trial from a seed.
    fn plan(self, s: u64, dpes: usize, dpe_size: usize) -> FaultPlan {
        let dpe = (s >> 8) as usize % dpes;
        let slot = (s >> 16) as usize % dpe_size;
        let adder = (s >> 24) as usize % (dpe_size - 1);
        let port = (s >> 32) as usize % dpe_size;
        // Mantissa-high / exponent-low bits: large enough deltas to have
        // a numeric effect on most (not all) operands.
        let bit = 20 + (s >> 40) as u32 % 11;
        let level = if s & 1 == 0 { StuckLevel::One } else { StuckLevel::Zero };
        match self {
            SiteClass::MultTransient => FaultPlan::single(
                FaultSite::MultiplierOutput { dpe, slot },
                FaultKind::TransientFlip { bit },
            ),
            SiteClass::MultStuck => FaultPlan::single(
                FaultSite::MultiplierOutput { dpe, slot },
                FaultKind::StuckBit { bit, level },
            ),
            SiteClass::FanStuck => FaultPlan::single(
                FaultSite::FanAdder { dpe, adder },
                FaultKind::StuckBit { bit, level },
            ),
            SiteClass::BenesFlip => FaultPlan::single(
                FaultSite::BenesPort { dpe, port },
                FaultKind::TransientFlip { bit },
            ),
            SiteClass::BenesDrop => {
                FaultPlan::single(FaultSite::BenesPort { dpe, port }, FaultKind::DroppedPort)
            }
            SiteClass::BenesMisroute => FaultPlan::single(
                FaultSite::BenesPort { dpe, port },
                FaultKind::MisroutedPort { from: (s >> 36) as usize % dpe_size },
            ),
            SiteClass::BitmapCorrupt => FaultPlan::single(
                FaultSite::BitmapWord { word: (s >> 48) as usize % 4 },
                FaultKind::CorruptWord { mask: 1u64 << ((s >> 52) % 64) },
            ),
        }
    }
}

/// Everything the gate needs, accumulated across the legs.
#[derive(Debug, Default)]
struct Gate {
    transient_numeric: u64,
    transient_detected: u64,
    false_positives: u64,
    scheduler_mismatches: u64,
}

struct CampaignConfig {
    trials_per_cell: u64,
    controls_per_target: u64,
    problem: GemmProblem,
}

impl CampaignConfig {
    fn new(smoke: bool) -> Self {
        let shape = if smoke { GemmShape::new(10, 9, 12) } else { GemmShape::new(18, 14, 20) };
        Self {
            trials_per_cell: if smoke { 3 } else { 12 },
            controls_per_target: if smoke { 2 } else { 6 },
            problem: GemmProblem::sparse(shape, 0.6, 0.7),
        }
    }
}

/// The SIGMA microarchitectural leg: site classes x dataflows through
/// the cycle-accurate datapath with ABFT-checked recovery.
fn sigma_leg(cc: &CampaignConfig, gate: &mut Gate) -> Table {
    const DPES: usize = 4;
    const DPE_SIZE: usize = 8;
    let policy = RecoveryPolicy::default();
    let mut table = Table::new(
        "Fault campaign — SIGMA microarchitectural sites (ABFT-checked runs)",
        &[
            "site_class",
            "target",
            "trials",
            "fired",
            "numeric_effect",
            "detected",
            "corrected",
            "escaped",
            "detection_rate",
        ],
    );
    for df in Dataflow::ALL {
        let cfg = SigmaConfig::new(DPES, DPE_SIZE, DPES * DPE_SIZE, df)
            .expect("static campaign config is valid");
        let sim = SigmaSim::new(cfg).expect("static campaign config is valid");
        let target = format!("sigma {df}");

        // Fault-free controls: any detection here is a false positive.
        for t in 0..cc.controls_per_target {
            let seed = derive_seed(0xC0_0F_0F + t, 0x5151);
            let (a, b) = materialize(&cc.problem, seed);
            let (_, report) = sim
                .run_gemm_checked(&a, &b, &FaultPlan::none(), &policy)
                .expect("fault-free control run must succeed");
            gate.false_positives += report.counters.detected;
        }

        for class in SiteClass::ALL {
            if !class.reachable_under(df) {
                continue;
            }
            let mut tally = Tally::default();
            for t in 0..cc.trials_per_cell {
                let s = derive_seed(0xFA_17 + t, ((df as u64) << 8) | class as u64);
                let (a, b) = materialize(&cc.problem, s);
                let plan = class.plan(s, DPES, DPE_SIZE);
                let (_, report) = sim
                    .run_gemm_checked(&a, &b, &plan, &policy)
                    .expect("campaign operands are valid");
                tally.trials += 1;
                tally.fired += u64::from(!report.fired.is_empty());
                tally.numeric += u64::from(report.numeric_effect);
                tally.detected += u64::from(report.counters.detected > 0);
                tally.corrected += u64::from(report.counters.corrected > 0);
                tally.escaped += u64::from(report.counters.escaped > 0);
                if class.is_transient() && report.numeric_effect {
                    gate.transient_numeric += 1;
                    gate.transient_detected += u64::from(report.counters.detected > 0);
                }
            }
            table.push(tally.row(class.label(), &target));
        }
    }
    table
}

/// The scheduler-parity leg: every SIGMA campaign cell reruns under the
/// event-driven *and* the lockstep config and the two fault reports must
/// match exactly — identical injected/detected/corrected/escaped
/// counters, fired-site lists, and bitwise-identical results. Faulted
/// runs deliberately route through the tick loop so injection semantics
/// cannot drift between schedulers; this leg pins that contract at
/// campaign scale.
fn scheduler_parity_leg(cc: &CampaignConfig, gate: &mut Gate) -> Table {
    const DPES: usize = 4;
    const DPE_SIZE: usize = 8;
    let policy = RecoveryPolicy::default();
    let mut table = Table::new(
        "Fault campaign — event vs lockstep scheduler parity (faulted runs)",
        &["site_class", "target", "trials", "counter_matches", "result_matches"],
    );
    for df in Dataflow::ALL {
        let base = SigmaConfig::new(DPES, DPE_SIZE, DPES * DPE_SIZE, df)
            .expect("static campaign config is valid");
        let event = SigmaSim::new(base).expect("static campaign config is valid");
        let lockstep =
            SigmaSim::new(base.with_lockstep(true)).expect("static campaign config is valid");
        let target = format!("sigma {df}");
        for class in SiteClass::ALL {
            if !class.reachable_under(df) {
                continue;
            }
            let (mut trials, mut counter_matches, mut result_matches) = (0u64, 0u64, 0u64);
            for t in 0..cc.trials_per_cell {
                let s = derive_seed(0x5C_ED + t, ((df as u64) << 8) | class as u64);
                let (a, b) = materialize(&cc.problem, s);
                let plan = class.plan(s, DPES, DPE_SIZE);
                let (run_e, rep_e) = event
                    .run_gemm_checked(&a, &b, &plan, &policy)
                    .expect("campaign operands are valid");
                let (run_l, rep_l) = lockstep
                    .run_gemm_checked(&a, &b, &plan, &policy)
                    .expect("campaign operands are valid");
                trials += 1;
                let counters_match = rep_e.counters == rep_l.counters
                    && rep_e.fired == rep_l.fired
                    && rep_e.numeric_effect == rep_l.numeric_effect;
                let results_match = run_e
                    .result
                    .as_slice()
                    .iter()
                    .zip(run_l.result.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits());
                counter_matches += u64::from(counters_match);
                result_matches += u64::from(results_match);
                gate.scheduler_mismatches += u64::from(!(counters_match && results_match));
            }
            table.push(vec![
                class.label().to_string(),
                target.clone(),
                trials.to_string(),
                counter_matches.to_string(),
                result_matches.to_string(),
            ]);
        }
    }
    table
}

/// The output-corruption leg: every registry engine runs clean (false-
/// positive control), then one result element takes a transient bit
/// flip and the checksums must flag — and at single-site granularity,
/// locate and repair — it.
fn output_corruption_leg(cc: &CampaignConfig, gate: &mut Gate) -> Table {
    let mut table = Table::new(
        "Fault campaign — output corruption across the engine fleet (ABFT checksums)",
        &[
            "site_class",
            "target",
            "trials",
            "fired",
            "numeric_effect",
            "detected",
            "corrected",
            "escaped",
            "detection_rate",
        ],
    );
    let shape = cc.problem.shape;
    let tol = residual_tolerance(shape.m, shape.n, shape.k);
    for entry in default_registry() {
        let mut tally = Tally::default();
        for t in 0..cc.trials_per_cell {
            let s = derive_seed(0xAB_F7 + t, 0x1000 + tally.trials);
            let (a, b) = materialize(&cc.problem, s);
            let Ok(run) = entry.engine.run(&a, &b) else {
                // An engine refusing the campaign problem contributes no
                // trials (the registry fleet accepts these shapes today).
                continue;
            };
            let (ad, bd) = (a.to_dense(), b.to_dense());
            if !check_product(&ad, &bd, &run.result, tol).is_clean() {
                gate.false_positives += 1;
            }
            let row = (s >> 5) as usize % shape.m;
            let col = (s >> 17) as usize % shape.n;
            let bit = 20 + (s >> 41) as u32 % 11;
            let mut corrupted = run.result.clone();
            let clean_value = corrupted.get(row, col);
            corrupted.set(row, col, flip_bit(clean_value, bit));
            let delta = corrupted.get(row, col) - clean_value;
            let numeric = delta.is_nan() || delta.abs() > tol;
            tally.trials += 1;
            tally.fired += 1;
            tally.numeric += u64::from(numeric);
            let verdict = check_product(&ad, &bd, &corrupted, tol);
            let detected = !verdict.is_clean();
            tally.detected += u64::from(detected);
            if let AbftVerdict::SingleSite { row: r, col: c, delta } = verdict {
                correct_single(&mut corrupted, r, c, delta);
                if check_product(&ad, &bd, &corrupted, tol).is_clean() {
                    tally.corrected += 1;
                }
            }
            tally.escaped += u64::from(numeric && !detected);
            if numeric {
                gate.transient_numeric += 1;
                gate.transient_detected += u64::from(detected);
            }
        }
        table.push(tally.row("output bit flip", &entry.slug));
    }
    table
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");

    let cc = CampaignConfig::new(smoke);
    let mut gate = Gate::default();
    let tables = [
        sigma_leg(&cc, &mut gate),
        scheduler_parity_leg(&cc, &mut gate),
        output_corruption_leg(&cc, &mut gate),
    ];
    if let Err(msg) = emit_tables_with(&tables, &args, &mut std::io::stdout()) {
        eprintln!("{msg} (flags: [--smoke] [--csv DIR] [--json DIR] [--quiet])");
        std::process::exit(2);
    }

    let rate = if gate.transient_numeric == 0 {
        1.0
    } else {
        gate.transient_detected as f64 / gate.transient_numeric as f64
    };
    println!(
        "gate: transient detection {}/{} ({:.1}%), false positives {}, scheduler mismatches {}",
        gate.transient_detected,
        gate.transient_numeric,
        100.0 * rate,
        gate.false_positives,
        gate.scheduler_mismatches,
    );
    let mut failed = false;
    if rate < 0.99 {
        eprintln!("FAIL: transient single-site detection below 99%");
        failed = true;
    }
    if gate.false_positives > 0 {
        eprintln!("FAIL: ABFT flagged {} fault-free run(s)", gate.false_positives);
        failed = true;
    }
    if gate.scheduler_mismatches > 0 {
        eprintln!(
            "FAIL: {} faulted run(s) diverged between the event and lockstep schedulers",
            gate.scheduler_mismatches
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("fault campaign: PASS");
}
