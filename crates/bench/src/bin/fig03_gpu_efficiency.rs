//! Regenerates Fig. 3 (V100 efficiency, dense and cuSPARSE).
fn main() {
    println!("{}", sigma_bench::figs::fig03::table_dense());
    println!("{}", sigma_bench::figs::fig03::table_sparse());
}
