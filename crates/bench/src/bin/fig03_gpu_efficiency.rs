//! Regenerates Fig. 3 (V100 efficiency, dense and cuSPARSE).
fn main() {
    sigma_bench::harness::emit_tables(&[
        sigma_bench::figs::fig03::table_dense(),
        sigma_bench::figs::fig03::table_sparse(),
    ]);
}
