//! Regenerates Fig. 11 (progressive feature speedups over the TPU).
fn main() {
    println!("{}", sigma_bench::figs::fig11::table());
}
