//! Regenerates Fig. 11 (progressive feature speedups over the TPU).
fn main() {
    sigma_bench::harness::emit_tables(&[sigma_bench::figs::fig11::table()]);
}
