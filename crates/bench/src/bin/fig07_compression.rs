//! Regenerates Fig. 7 (compression-format metadata overhead).
fn main() {
    sigma_bench::harness::emit_tables(&[sigma_bench::figs::fig07::table()]);
}
