//! Regenerates Fig. 7 (compression-format metadata overhead).
fn main() {
    println!("{}", sigma_bench::figs::fig07::table());
}
