//! Regenerates Fig. 9 (Flex-DPE sizing design-space exploration).
fn main() {
    println!("{}", sigma_bench::figs::fig09::table());
}
