//! Regenerates Fig. 9 (Flex-DPE sizing design-space exploration).
fn main() {
    sigma_bench::harness::emit_tables(&[sigma_bench::figs::fig09::table()]);
}
