//! Chaos gate for crash-safe resumable sweeps: SIGKILL a child sweep at
//! seeded cell counts, resume from its journal, and demand the final
//! records be **byte-identical** to an uninterrupted run.
//!
//! Protocol:
//!
//! * the parent (default mode) computes the uninterrupted baseline
//!   in-process, then for each seeded kill point spawns *itself* with
//!   `--child --journal PATH`;
//! * the child runs the same sweep through [`Sweep::resume`], with each
//!   engine wrapped in a pacing shim so the journal grows one line every
//!   few tens of milliseconds;
//! * the parent polls the journal's completed-line count and delivers
//!   SIGKILL (`Child::kill`) the moment the seeded threshold is crossed —
//!   possibly mid-append, which is exactly the torn-tail crash the
//!   journal's replay tolerates;
//! * the parent then resumes the sweep in-process and self-gates: the
//!   resumed records, their CSV rendering, and their JSON rendering must
//!   all equal the baseline byte for byte, across every kill point.
//!
//! ```sh
//! cargo run -p sigma-bench --bin chaos_resume -- --smoke
//! ```
//!
//! Flags: `--smoke` (shorter pacing for CI; same number of kill points).
//! Exits non-zero if any kill point fails to resume byte-identically.

use sigma_bench::harness::{
    default_registry, demo_suite, derive_seed, records_table, records_to_json, EngineEntry, Sweep,
};
use sigma_core::{CancelToken, Engine, EngineError, EngineRun};
use sigma_matrix::SparseMatrix;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Slugs of the registry engines the gate sweeps (fast functional ones,
/// so the paced child is dominated by the pacing, not the engines).
const FLEET_SLUGS: [&str; 3] = ["eie", "scnn", "cambricon-x"];

/// Seeded kill points per run. The ISSUE acceptance gate wants the
/// resume proven across at least five distinct crash cells.
const KILL_POINTS: u64 = 6;

/// A shim that stalls before delegating, so the child's journal grows
/// slowly enough for the parent to aim its SIGKILL at a specific cell
/// count. Name and numbers pass straight through: pacing changes wall
/// time only, never records (telemetry is off, so `wall_ms` is 0.000).
struct PacedEngine {
    inner: std::sync::Arc<dyn Engine>,
    pace: Duration,
}

impl Engine for PacedEngine {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn pes(&self) -> usize {
        self.inner.pes()
    }

    fn run(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<EngineRun, EngineError> {
        std::thread::sleep(self.pace);
        self.inner.run(a, b)
    }

    fn run_cancellable(
        &self,
        a: &SparseMatrix,
        b: &SparseMatrix,
        cancel: &CancelToken,
    ) -> Result<EngineRun, EngineError> {
        std::thread::sleep(self.pace);
        self.inner.run_cancellable(a, b, cancel)
    }
}

/// The gate's engine fleet, optionally paced (child mode).
fn fleet(pace: Option<Duration>) -> Vec<EngineEntry> {
    default_registry()
        .into_iter()
        .filter(|e| FLEET_SLUGS.contains(&e.slug.as_str()))
        .map(|e| match pace {
            Some(pace) => {
                EngineEntry::new(e.slug.clone(), Box::new(PacedEngine { inner: e.engine, pace }))
            }
            None => e,
        })
        .collect()
}

/// The gate's sweep: single-threaded so the child's journal grows one
/// line at a time and kill points land on exact cell counts.
fn sweep() -> Sweep {
    Sweep::new(demo_suite()).with_seed(0xC4A5_0FF1).with_threads(1)
}

/// Completed journal lines (newline-terminated only — a torn tail is an
/// in-flight append, not a completed cell).
fn journal_lines(path: &Path) -> usize {
    std::fs::read(path).map_or(0, |raw| raw.iter().filter(|&&b| b == b'\n').count())
}

/// Child mode: run the journaled sweep with paced engines, then exit.
/// (The parent usually SIGKILLs this process before it gets far.)
fn run_child(journal: &Path, pace: Duration) -> i32 {
    match sweep().resume(&fleet(Some(pace)), journal) {
        Ok(_) => 0,
        Err(e) => {
            eprintln!("chaos_resume --child: {e}");
            1
        }
    }
}

/// One parent-side kill point: spawn the child, SIGKILL it once the
/// journal holds `kill_after` completed cells, resume in-process, and
/// compare every rendering against the baseline.
fn run_kill_point(
    exe: &Path,
    journal: &PathBuf,
    pace: Duration,
    kill_after: usize,
    baseline_csv: &str,
    baseline_json: &str,
) -> Result<(usize, u64), String> {
    let _ = std::fs::remove_file(journal);
    let mut child = std::process::Command::new(exe)
        .arg("--child")
        .arg("--journal")
        .arg(journal)
        .arg("--pace-ms")
        .arg(pace.as_millis().to_string())
        .spawn()
        .map_err(|e| format!("could not spawn child: {e}"))?;
    // Poll the journal and deliver SIGKILL the moment the threshold is
    // crossed. The deadline covers the pathological case of a wedged
    // child; the child normally paces through the grid well within it.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if journal_lines(journal) >= kill_after {
            break;
        }
        if let Ok(Some(_)) = child.try_wait() {
            break; // finished before the threshold: resume is all-hits
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            return Err("child never reached the kill threshold".to_string());
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // On Unix, `Child::kill` is SIGKILL: no destructors, no flushing —
    // the journal is whatever the fsynced appends made durable.
    let _ = child.kill();
    let _ = child.wait();
    let survivors = journal_lines(journal);

    let outcome = sweep()
        .resume(&fleet(None), journal)
        .map_err(|e| format!("resume after kill failed: {e}"))?;
    let csv = records_table("sweep", &outcome.records).to_csv();
    let json = records_to_json(&outcome.records);
    if csv != baseline_csv {
        return Err(format!(
            "CSV diverged after killing at {kill_after} cells ({survivors} journaled)"
        ));
    }
    if json != baseline_json {
        return Err(format!(
            "JSON diverged after killing at {kill_after} cells ({survivors} journaled)"
        ));
    }
    Ok((survivors, outcome.resume_hits))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let pace_ms = args
        .iter()
        .position(|a| a == "--pace-ms")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok());
    let journal_arg =
        args.iter().position(|a| a == "--journal").and_then(|i| args.get(i + 1)).map(PathBuf::from);

    if args.iter().any(|a| a == "--child") {
        let Some(journal) = journal_arg else {
            eprintln!("chaos_resume --child requires --journal PATH");
            std::process::exit(2);
        };
        let pace = Duration::from_millis(pace_ms.unwrap_or(25));
        std::process::exit(run_child(&journal, pace));
    }

    let pace = Duration::from_millis(if smoke { 15 } else { 40 });
    let Ok(exe) = std::env::current_exe() else {
        eprintln!("chaos_resume: cannot locate own executable");
        std::process::exit(2);
    };
    let engines = fleet(None);
    let baseline = sweep().run(&engines);
    let baseline_csv = records_table("sweep", &baseline).to_csv();
    let baseline_json = records_to_json(&baseline);
    let cells = baseline.len();
    println!("chaos_resume: grid of {cells} cells, {KILL_POINTS} seeded kill points");

    let dir = std::env::temp_dir().join("sigma_chaos_resume");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("chaos_resume: cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }
    let journal = dir.join(format!("chaos_{}.journal", std::process::id()));

    let mut failed = false;
    for i in 0..KILL_POINTS {
        // Seeded spread over the interior of the grid: never 0 (trivial)
        // and never the full grid (no crash), both covered implicitly by
        // the resume unit tests.
        let kill_after = 1 + (derive_seed(0xDEAD_C4A5, i) as usize) % (cells - 1);
        match run_kill_point(&exe, &journal, pace, kill_after, &baseline_csv, &baseline_json) {
            Ok((survivors, hits)) => println!(
                "kill point {i}: SIGKILL at {kill_after} cells -> {survivors} journaled, \
                 {hits} replayed, output byte-identical"
            ),
            Err(msg) => {
                eprintln!("kill point {i}: FAIL: {msg}");
                failed = true;
            }
        }
    }
    let _ = std::fs::remove_file(&journal);
    if failed {
        eprintln!("chaos_resume: FAIL");
        std::process::exit(1);
    }
    println!("chaos_resume: PASS ({KILL_POINTS} kill points byte-identical)");
}
