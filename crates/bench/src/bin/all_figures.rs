//! Prints every regenerated table and figure in paper order — the output
//! recorded in `EXPERIMENTS.md`.
//!
//! With `--csv <dir>`, additionally writes each table as a CSV file.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv output dir");
    }
    for table in sigma_bench::figs::all_tables() {
        println!("{table}");
        if let Some(dir) = &csv_dir {
            let path = std::path::Path::new(dir).join(format!("{}.csv", table.slug()));
            std::fs::write(&path, table.to_csv()).expect("write csv");
        }
    }
}
