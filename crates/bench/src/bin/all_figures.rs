//! Prints every regenerated table and figure in paper order — the output
//! recorded in `EXPERIMENTS.md`.
//!
//! With `--csv <dir>` / `--json <dir>`, additionally writes each table as
//! a file; `--quiet` suppresses the text rendering.
fn main() {
    sigma_bench::harness::emit_tables(&sigma_bench::figs::all_tables());
}
