//! Regenerates Fig. 13 (energy reduction and perf/area vs the TPU).
fn main() {
    println!("{}", sigma_bench::figs::fig13::table());
    println!("{}", sigma_bench::figs::fig13::breakdown_table());
}
