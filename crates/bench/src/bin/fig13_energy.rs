//! Regenerates Fig. 13 (energy reduction and perf/area vs the TPU).
fn main() {
    sigma_bench::harness::emit_tables(&[
        sigma_bench::figs::fig13::table(),
        sigma_bench::figs::fig13::breakdown_table(),
    ]);
}
