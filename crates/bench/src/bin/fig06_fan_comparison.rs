//! Regenerates Fig. 6b (FAN vs ART vs linear reduction).
fn main() {
    println!("{}", sigma_bench::figs::fig06::table());
}
