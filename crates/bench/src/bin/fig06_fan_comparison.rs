//! Regenerates Fig. 6b (FAN vs ART vs linear reduction).
fn main() {
    sigma_bench::harness::emit_tables(&[sigma_bench::figs::fig06::table()]);
}
