//! Simulator perf-regression gate: cycles-simulated-per-second.
//!
//! Runs the fixed benchmark ladder from [`sigma_bench::perf`] (dense,
//! sparse, and irregular GEMMs at 128–16K PEs), prints a throughput table,
//! and maintains the committed `BENCH_sim.json` baseline at the repo root.
//!
//! ```sh
//! cargo run --release -p sigma-bench --bin perf_bench            # refresh baseline
//! cargo run --release -p sigma-bench --bin perf_bench -- --check # regression gate
//! ```
//!
//! Modes:
//!
//! * default — measure the full ladder and (re)write `BENCH_sim.json`;
//! * `--check` — measure and compare against the committed baseline
//!   without writing; exits non-zero when any case regresses by more than
//!   the tolerance (15%, tightened to 10% for the ≥4K-PE cases; 30% under
//!   `--smoke`, whose low rep count is noisier; override with
//!   `SIGMA_PERF_TOLERANCE=<fraction>`);
//! * `--smoke` — CI subset: the small end of the ladder at low rep count;
//! * `--lockstep-check` — run the 128/512-PE cases through both the event
//!   scheduler and the lockstep tick oracle and require bitwise-equal
//!   stats and results; exits non-zero on any divergence;
//! * `--telemetry` — measure each case twice (telemetry off, then on) and
//!   report the instrumentation overhead per case; no baseline is written;
//! * `--out PATH` / `--baseline PATH` — override the baseline location;
//! * `--quiet` — suppress the table.
//!
//! `--check` requires an optimized build: debug timings are an order of
//! magnitude off the committed numbers, so an unoptimized gate run warns
//! and skips the comparison (force with `SIGMA_PERF_FORCE_CHECK=1`).

use sigma_bench::perf::{
    cases, lockstep_check, measure, measure_with, parse_baseline, to_json, PerfMeasurement,
};
use sigma_bench::util::Table;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Timed repetitions per case: best-of-3 normally, best-of-2 for smoke.
const FULL_REPS: usize = 3;
const SMOKE_REPS: usize = 2;

fn default_baseline_path() -> PathBuf {
    // crates/bench -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_sim.json")
}

struct Args {
    check: bool,
    smoke: bool,
    quiet: bool,
    telemetry: bool,
    lockstep_check: bool,
    baseline: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        check: false,
        smoke: false,
        quiet: false,
        telemetry: false,
        lockstep_check: false,
        baseline: default_baseline_path(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check = true,
            "--smoke" => args.smoke = true,
            "--quiet" => args.quiet = true,
            "--telemetry" => args.telemetry = true,
            "--lockstep-check" => args.lockstep_check = true,
            "--out" | "--baseline" => {
                let path = it.next().ok_or_else(|| format!("{arg} requires a path"))?;
                args.baseline = PathBuf::from(path);
            }
            "--help" | "-h" => {
                println!(
                    "usage: perf_bench [--check] [--smoke] [--telemetry] [--lockstep-check] \
                     [--quiet] [--out PATH] [--baseline PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

/// `--lockstep-check`: run the 128/512-PE ladder cases through both the
/// event scheduler and the lockstep tick oracle and require bitwise-equal
/// runs (stats and per-element result bits). Exits non-zero on the first
/// divergence — this is the CI equivalence gate for the epoch scheduler.
fn run_lockstep_check(quiet: bool) -> ExitCode {
    let mut checked = 0usize;
    for case in cases().iter().filter(|c| c.pes() <= 512) {
        if !quiet {
            eprintln!(
                "perf_bench: lockstep-check {} ({} PEs, {})...",
                case.name,
                case.pes(),
                case.shape()
            );
        }
        if let Err(e) = lockstep_check(case) {
            eprintln!("perf_bench: LOCKSTEP MISMATCH on {}: {e}", case.name);
            return ExitCode::FAILURE;
        }
        checked += 1;
    }
    if checked == 0 {
        eprintln!("perf_bench: lockstep-check found no eligible cases");
        return ExitCode::FAILURE;
    }
    eprintln!("perf_bench: lockstep-check passed ({checked} case(s) bitwise-equal)");
    ExitCode::SUCCESS
}

/// `--telemetry`: times every ladder case with the registry off and on and
/// prints the per-case overhead, so DESIGN.md's quoted number stays
/// reproducible with one command.
fn run_overhead(ladder: &[sigma_bench::perf::PerfCase], reps: usize, quiet: bool) -> ExitCode {
    let mut t = Table::new(
        "perf_bench - telemetry overhead (cycles simulated per second)",
        &["case", "pes", "Mcyc/s off", "Mcyc/s on", "overhead"],
    );
    let mut worst: f64 = 0.0;
    for case in ladder {
        if !quiet {
            eprintln!("perf_bench: timing {} off/on ({} PEs)...", case.name, case.pes());
        }
        let off = measure_with(case, reps, false).expect("ladder case must simulate");
        let on = measure_with(case, reps, true).expect("ladder case must simulate");
        let overhead = off.cycles_per_sec / on.cycles_per_sec - 1.0;
        worst = worst.max(overhead);
        t.push(vec![
            case.name.to_string(),
            case.pes().to_string(),
            format!("{:.3}", off.cycles_per_sec / 1e6),
            format!("{:.3}", on.cycles_per_sec / 1e6),
            format!("{:+.1}%", 100.0 * overhead),
        ]);
    }
    print!("{t}");
    eprintln!("perf_bench: worst-case telemetry overhead {:.1}%", 100.0 * worst);
    ExitCode::SUCCESS
}

/// Per-case regression tolerance. Smoke runs use a loose 30% (two reps are
/// noisy); full runs use 15%, tightened to 10% for the ≥4K-PE cases whose
/// event-scheduler wall times are long enough to be timing-stable.
/// `SIGMA_PERF_TOLERANCE` overrides all of it.
fn tolerance(smoke: bool, pes: usize) -> f64 {
    if let Ok(v) = std::env::var("SIGMA_PERF_TOLERANCE") {
        if let Ok(t) = v.parse::<f64>() {
            if t > 0.0 {
                return t;
            }
        }
        eprintln!("perf_bench: ignoring invalid SIGMA_PERF_TOLERANCE={v:?}");
    }
    if smoke {
        0.30
    } else if pes >= 4096 {
        0.10
    } else {
        0.15
    }
}

fn render(measurements: &[PerfMeasurement], baseline: &[(String, f64)]) -> Table {
    let mut t = Table::new(
        "perf_bench - simulated cycles per second",
        &["case", "pes", "gemm", "dataflow", "sched", "cycles", "wall_ms", "Mcyc/s", "vs baseline"],
    );
    for m in measurements {
        let vs = baseline.iter().find(|(n, _)| n == m.case.name).map_or_else(
            || "-".to_string(),
            |(_, old)| format!("{:+.1}%", 100.0 * (m.cycles_per_sec / old - 1.0)),
        );
        t.push(vec![
            m.case.name.to_string(),
            m.case.pes().to_string(),
            m.case.shape(),
            m.case.dataflow.name().to_string(),
            m.case.scheduler_mode().to_string(),
            m.cycles.to_string(),
            format!("{:.2}", m.best_secs * 1e3),
            format!("{:.3}", m.cycles_per_sec / 1e6),
            vs,
        ]);
    }
    t
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perf_bench: {e}");
            return ExitCode::from(2);
        }
    };

    let reps = if args.smoke { SMOKE_REPS } else { FULL_REPS };
    let ladder: Vec<_> = cases().into_iter().filter(|c| !args.smoke || c.smoke).collect();

    if args.lockstep_check {
        return run_lockstep_check(args.quiet);
    }
    if args.telemetry {
        return run_overhead(&ladder, reps, args.quiet);
    }

    let baseline_text = std::fs::read_to_string(&args.baseline).unwrap_or_default();
    let baseline = parse_baseline(&baseline_text);

    let mut measurements = Vec::with_capacity(ladder.len());
    for case in &ladder {
        if !args.quiet {
            eprintln!("perf_bench: timing {} ({} PEs, {})...", case.name, case.pes(), case.shape());
        }
        measurements.push(measure(case, reps).expect("ladder case must simulate"));
    }

    if !args.quiet {
        print!("{}", render(&measurements, &baseline));
    }

    if args.check {
        if cfg!(debug_assertions) && std::env::var_os("SIGMA_PERF_FORCE_CHECK").is_none() {
            eprintln!(
                "perf_bench: --check skipped: unoptimized build timings are not comparable \
                 to the committed baseline (rerun with --release, or set \
                 SIGMA_PERF_FORCE_CHECK=1)"
            );
            return ExitCode::SUCCESS;
        }
        if baseline.is_empty() {
            eprintln!(
                "perf_bench: no baseline at {} - run perf_bench without --check to create it",
                args.baseline.display()
            );
            return ExitCode::FAILURE;
        }
        let mut regressed = false;
        for m in &measurements {
            let Some((_, old)) = baseline.iter().find(|(n, _)| n == m.case.name) else {
                eprintln!("perf_bench: note: case {} has no baseline entry yet", m.case.name);
                continue;
            };
            let tol = tolerance(args.smoke, m.case.pes());
            let ratio = m.cycles_per_sec / old;
            if ratio < 1.0 - tol {
                eprintln!(
                    "perf_bench: REGRESSION {}: {:.0} cyc/s vs baseline {:.0} ({:.1}% slower, \
                     tolerance {:.0}%)",
                    m.case.name,
                    m.cycles_per_sec,
                    old,
                    100.0 * (1.0 - ratio),
                    100.0 * tol,
                );
                regressed = true;
            }
        }
        if regressed {
            return ExitCode::FAILURE;
        }
        if !args.quiet {
            eprintln!(
                "perf_bench: check passed (tolerance {:.0}%; {:.0}% at >=4K PEs)",
                100.0 * tolerance(args.smoke, 0),
                100.0 * tolerance(args.smoke, 4096),
            );
        }
        return ExitCode::SUCCESS;
    }

    let json = to_json(&measurements);
    if let Err(e) = std::fs::write(&args.baseline, &json) {
        eprintln!("perf_bench: cannot write {}: {e}", args.baseline.display());
        return ExitCode::FAILURE;
    }
    if !args.quiet {
        eprintln!("perf_bench: baseline written to {}", args.baseline.display());
    }
    ExitCode::SUCCESS
}
