//! Simulator perf-regression gate: cycles-simulated-per-second.
//!
//! Runs the fixed benchmark ladder from [`sigma_bench::perf`] (dense,
//! sparse, and irregular GEMMs at 128–16K PEs), prints a throughput table,
//! and maintains the committed `BENCH_sim.json` baseline at the repo root.
//!
//! ```sh
//! cargo run --release -p sigma-bench --bin perf_bench            # refresh baseline
//! cargo run --release -p sigma-bench --bin perf_bench -- --check # regression gate
//! ```
//!
//! Modes:
//!
//! * default — measure the full ladder and (re)write `BENCH_sim.json`;
//! * `--check` — measure and compare against the committed baseline
//!   without writing; exits non-zero when any case regresses by more than
//!   the tolerance (15%, tightened to 10% for the ≥4K-PE cases; 30% under
//!   `--smoke`, whose low rep count is noisier; override with
//!   `SIGMA_PERF_TOLERANCE=<fraction>`);
//! * `--smoke` — CI subset: the small end of the ladder at low rep count;
//! * `--lockstep-check` — run the 128/512-PE cases through both the event
//!   scheduler and the lockstep tick oracle and require bitwise-equal
//!   stats and results; exits non-zero on any divergence;
//! * `--telemetry` — measure each case twice (telemetry off, then on) and
//!   report the instrumentation overhead per case; no baseline is written;
//! * `--dse-warm` — the run-cache leg: sweep a DSE-style grid cold (empty
//!   cache), then warm (same store), demand byte-identical CSV/JSON against
//!   an uncached run, a ≥ 50x warm-over-cold cells/sec speedup, and
//!   exactly-once execution for in-flight duplicates;
//! * `--recorder-check` — the flight-recorder zero-overhead gate: the same
//!   sweep with no recorder, a disabled recorder handle, and an enabled
//!   recorder must render byte-identical records/CSV/JSON, and the enabled
//!   leg's engine-run span count must reconcile with the grid's attempts;
//! * `--json` — machine-readable results on stdout (per-case cycles/sec
//!   plus the tolerance verdict against the baseline) instead of the
//!   table; report-only, so the committed baseline is never rewritten
//!   (combine with `--check` to keep the gate's exit code);
//! * `--out PATH` / `--baseline PATH` — override the baseline location;
//! * `--quiet` — suppress the table.
//!
//! `--check` requires an optimized build: debug timings are an order of
//! magnitude off the committed numbers, so an unoptimized gate run warns
//! and skips the comparison (force with `SIGMA_PERF_FORCE_CHECK=1`). The
//! `--dse-warm` speedup gate skips under debug the same way (the parity
//! and exactly-once checks always run).

use sigma_bench::harness::{
    default_registry, demo_suite, records_table, records_to_json, EngineEntry, RunCache, Sweep,
};
use sigma_bench::perf::{
    cases, lockstep_check, measure, measure_with, parse_baseline, to_json, PerfMeasurement,
};
use sigma_bench::util::{json_string, Table};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

/// Timed repetitions per case: best-of-3 normally, best-of-2 for smoke.
const FULL_REPS: usize = 3;
const SMOKE_REPS: usize = 2;

fn default_baseline_path() -> PathBuf {
    // crates/bench -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_sim.json")
}

struct Args {
    check: bool,
    smoke: bool,
    quiet: bool,
    telemetry: bool,
    lockstep_check: bool,
    dse_warm: bool,
    recorder_check: bool,
    json: bool,
    baseline: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        check: false,
        smoke: false,
        quiet: false,
        telemetry: false,
        lockstep_check: false,
        dse_warm: false,
        recorder_check: false,
        json: false,
        baseline: default_baseline_path(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check = true,
            "--smoke" => args.smoke = true,
            "--quiet" => args.quiet = true,
            "--telemetry" => args.telemetry = true,
            "--lockstep-check" => args.lockstep_check = true,
            "--dse-warm" => args.dse_warm = true,
            "--recorder-check" => args.recorder_check = true,
            "--json" => args.json = true,
            "--out" | "--baseline" => {
                let path = it.next().ok_or_else(|| format!("{arg} requires a path"))?;
                args.baseline = PathBuf::from(path);
            }
            "--help" | "-h" => {
                println!(
                    "usage: perf_bench [--check] [--smoke] [--telemetry] [--lockstep-check] \
                     [--dse-warm] [--recorder-check] [--json] [--quiet] [--out PATH] \
                     [--baseline PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

/// `--lockstep-check`: run the 128/512-PE ladder cases through both the
/// event scheduler and the lockstep tick oracle and require bitwise-equal
/// runs (stats and per-element result bits). Exits non-zero on the first
/// divergence — this is the CI equivalence gate for the epoch scheduler.
fn run_lockstep_check(quiet: bool) -> ExitCode {
    let mut checked = 0usize;
    for case in cases().iter().filter(|c| c.pes() <= 512) {
        if !quiet {
            eprintln!(
                "perf_bench: lockstep-check {} ({} PEs, {})...",
                case.name,
                case.pes(),
                case.shape()
            );
        }
        if let Err(e) = lockstep_check(case) {
            eprintln!("perf_bench: LOCKSTEP MISMATCH on {}: {e}", case.name);
            return ExitCode::FAILURE;
        }
        checked += 1;
    }
    if checked == 0 {
        eprintln!("perf_bench: lockstep-check found no eligible cases");
        return ExitCode::FAILURE;
    }
    eprintln!("perf_bench: lockstep-check passed ({checked} case(s) bitwise-equal)");
    ExitCode::SUCCESS
}

/// `--telemetry`: times every ladder case with the registry off and on and
/// prints the per-case overhead, so DESIGN.md's quoted number stays
/// reproducible with one command.
fn run_overhead(ladder: &[sigma_bench::perf::PerfCase], reps: usize, quiet: bool) -> ExitCode {
    let mut t = Table::new(
        "perf_bench - telemetry overhead (cycles simulated per second)",
        &["case", "pes", "Mcyc/s off", "Mcyc/s on", "overhead"],
    );
    let mut worst: f64 = 0.0;
    for case in ladder {
        if !quiet {
            eprintln!("perf_bench: timing {} off/on ({} PEs)...", case.name, case.pes());
        }
        let off = measure_with(case, reps, false).expect("ladder case must simulate");
        let on = measure_with(case, reps, true).expect("ladder case must simulate");
        let overhead = off.cycles_per_sec / on.cycles_per_sec - 1.0;
        worst = worst.max(overhead);
        t.push(vec![
            case.name.to_string(),
            case.pes().to_string(),
            format!("{:.3}", off.cycles_per_sec / 1e6),
            format!("{:.3}", on.cycles_per_sec / 1e6),
            format!("{:+.1}%", 100.0 * overhead),
        ]);
    }
    print!("{t}");
    eprintln!("perf_bench: worst-case telemetry overhead {:.1}%", 100.0 * worst);
    ExitCode::SUCCESS
}

/// The warm-over-cold cells/sec floor the `--dse-warm` leg must clear.
const DSE_WARM_MIN_SPEEDUP: f64 = 50.0;

/// `--dse-warm`: the run-cache bench leg. Sweeps a DSE-style grid (the
/// engine registry over demo workloads) three ways — uncached, cold cache,
/// warm cache — and demands:
///
/// 1. CSV and JSON renderings byte-identical across all three;
/// 2. warm cells/sec ≥ [`DSE_WARM_MIN_SPEEDUP`] x cold (release builds
///    only — debug timings skip the gate exactly like `--check`);
/// 3. in-flight duplicates execute exactly once (a triplicated fleet on a
///    fresh store resolves every duplicate as a hit or a coalesce).
#[allow(clippy::too_many_lines)]
fn run_dse_warm(smoke: bool, quiet: bool, json: bool) -> ExitCode {
    // A DSE-style grid with enough simulation work per cell that the
    // cold/warm separation is timing-stable; smoke keeps the demo scale.
    let workloads: Vec<_> = if smoke {
        demo_suite().into_iter().take(1).collect()
    } else {
        use sigma_core::model::GemmProblem;
        use sigma_matrix::GemmShape;
        vec![
            sigma_bench::harness::WorkloadSpec::new(
                "dse dense 64x64x64",
                GemmProblem::dense(GemmShape::new(64, 64, 64)),
            ),
            sigma_bench::harness::WorkloadSpec::new(
                "dse sparse 96x96x96 (50%/80%)",
                GemmProblem::sparse(GemmShape::new(96, 96, 96), 0.5, 0.2),
            ),
            sigma_bench::harness::WorkloadSpec::new(
                "dse irregular 48x128x32 (30%/50%)",
                GemmProblem::sparse(GemmShape::new(48, 128, 32), 0.7, 0.5),
            ),
        ]
    };
    let engines = default_registry();
    let cells = engines.len() * workloads.len();
    let store =
        std::env::temp_dir().join(format!("sigma_perf_dse_warm_{}.cache", std::process::id()));
    let _ = std::fs::remove_file(&store);

    let sweep = Sweep::new(workloads.clone()).with_seed(33).with_threads(4);
    let t0 = std::time::Instant::now();
    let uncached = sweep.run(&engines);
    let uncached_secs = t0.elapsed().as_secs_f64();

    let cache = match RunCache::open(&store, 4096) {
        Ok(c) => Arc::new(c),
        Err(e) => {
            eprintln!("perf_bench: cannot open cache store {}: {e}", store.display());
            return ExitCode::FAILURE;
        }
    };
    let cached_sweep = sweep.with_cache(Arc::clone(&cache));
    let t1 = std::time::Instant::now();
    let cold = cached_sweep.run(&engines);
    let cold_secs = t1.elapsed().as_secs_f64();
    // Warm timing is best-of-3, like every other leg in this binary.
    let mut warm_secs = f64::INFINITY;
    let mut warm = Vec::new();
    for _ in 0..3 {
        let t2 = std::time::Instant::now();
        warm = cached_sweep.run(&engines);
        warm_secs = warm_secs.min(t2.elapsed().as_secs_f64());
    }
    let _ = std::fs::remove_file(&store);

    // Gate 1: byte-identical artifacts, uncached vs cold vs warm.
    let parity = [("cold", &cold), ("warm", &warm)];
    for (leg, records) in parity {
        if records_to_json(records) != records_to_json(&uncached)
            || records_table("dse", records).to_csv() != records_table("dse", &uncached).to_csv()
        {
            eprintln!("perf_bench: DSE-WARM PARITY FAILURE: {leg} run differs from uncached");
            return ExitCode::FAILURE;
        }
    }
    let stats = cache.stats();
    if stats.misses != cells as u64 || stats.hits != 3 * cells as u64 {
        eprintln!(
            "perf_bench: DSE-WARM CACHE FAILURE: expected {cells} misses then {} hits, \
             got {} misses / {} hits",
            3 * cells,
            stats.misses,
            stats.hits
        );
        return ExitCode::FAILURE;
    }

    // Gate 3: a triplicated fleet on a fresh store — every duplicate must
    // resolve as a hit or an in-flight coalesce, never a recomputation.
    let dup_store =
        std::env::temp_dir().join(format!("sigma_perf_dse_dedup_{}.cache", std::process::id()));
    let _ = std::fs::remove_file(&dup_store);
    let dup_cache = match RunCache::open(&dup_store, 4096) {
        Ok(c) => Arc::new(c),
        Err(e) => {
            eprintln!("perf_bench: cannot open cache store {}: {e}", dup_store.display());
            return ExitCode::FAILURE;
        }
    };
    let twin = Arc::clone(&engines[0].engine);
    let fleet = vec![
        EngineEntry { slug: engines[0].slug.clone(), engine: Arc::clone(&twin) },
        EngineEntry { slug: engines[0].slug.clone(), engine: Arc::clone(&twin) },
        EngineEntry { slug: engines[0].slug.clone(), engine: twin },
    ];
    let _ = Sweep::new(workloads.clone())
        .with_seed(33)
        .with_threads(4)
        .with_cache(Arc::clone(&dup_cache))
        .run(&fleet);
    let _ = std::fs::remove_file(&dup_store);
    let dup = dup_cache.stats();
    let unique = workloads.len() as u64;
    let dupes = (fleet.len() as u64) * unique - unique;
    if dup.misses != unique || dup.hits + dup.coalesced != dupes {
        eprintln!(
            "perf_bench: DSE-WARM DEDUP FAILURE: {unique} unique cells must miss exactly once \
             and {dupes} duplicates must coalesce; got {} misses / {} hits / {} coalesced",
            dup.misses, dup.hits, dup.coalesced
        );
        return ExitCode::FAILURE;
    }

    // Gate 2: the speedup floor (skipped on debug timings, like --check).
    let cold_rate = cells as f64 / cold_secs.max(1e-9);
    let warm_rate = cells as f64 / warm_secs.max(1e-9);
    let speedup = warm_rate / cold_rate;
    let gate_speedup =
        !cfg!(debug_assertions) || std::env::var_os("SIGMA_PERF_FORCE_CHECK").is_some();
    if json {
        println!(
            "{{\n  \"schema\": 1,\n  \"bench\": \"dse_warm_cells_per_second\",\n  \"cells\": {cells},\n  \
             \"uncached_secs\": {uncached_secs:.6},\n  \"cold_cells_per_sec\": {cold_rate:.1},\n  \
             \"warm_cells_per_sec\": {warm_rate:.1},\n  \"speedup\": {speedup:.1},\n  \
             \"min_speedup\": {DSE_WARM_MIN_SPEEDUP:.1},\n  \"speedup_gated\": {gate_speedup},\n  \
             \"coalesced_duplicates\": {},\n  \"parity\": \"byte-identical\"\n}}",
            dup.hits + dup.coalesced
        );
    } else if !quiet {
        let mut t = Table::new(
            "perf_bench - dse_warm (sweep cells per second)",
            &["leg", "cells", "wall_ms", "cells/s"],
        );
        for (leg, secs) in [("uncached", uncached_secs), ("cold", cold_secs), ("warm", warm_secs)] {
            t.push(vec![
                leg.to_string(),
                cells.to_string(),
                format!("{:.2}", secs * 1e3),
                format!("{:.1}", cells as f64 / secs.max(1e-9)),
            ]);
        }
        print!("{t}");
    }
    if !gate_speedup {
        eprintln!(
            "perf_bench: dse-warm speedup gate skipped: unoptimized build timings are not \
             comparable (measured {speedup:.1}x; rerun with --release, or set \
             SIGMA_PERF_FORCE_CHECK=1)"
        );
        return ExitCode::SUCCESS;
    }
    if speedup < DSE_WARM_MIN_SPEEDUP {
        eprintln!(
            "perf_bench: DSE-WARM REGRESSION: warm sweep is only {speedup:.1}x cold \
             (floor {DSE_WARM_MIN_SPEEDUP:.0}x)"
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "perf_bench: dse-warm passed ({speedup:.0}x warm-over-cold, parity byte-identical, \
         {} duplicate cells deduplicated)",
        dup.hits + dup.coalesced
    );
    ExitCode::SUCCESS
}

/// `--recorder-check`: the flight-recorder zero-overhead gate. Sweeps
/// the same grid three ways — no recorder attached, an explicitly
/// disabled recorder handle, and an enabled recorder on a real
/// monotonic clock — and demands:
///
/// 1. records plus rendered CSV/JSON byte-identical across all three
///    (wall-clock observation may never perturb results);
/// 2. the enabled leg really recorded: its engine-run span count equals
///    the grid's total attempts.
fn run_recorder_check(smoke: bool, quiet: bool) -> ExitCode {
    use sigma_telemetry::FlightRecorder;
    let workloads: Vec<_> =
        if smoke { demo_suite().into_iter().take(2).collect() } else { demo_suite() };
    let engines = default_registry();
    let sweep = Sweep::new(workloads).with_seed(41).with_threads(4);
    let base = sweep.run(&engines);
    let off = sweep.clone().with_flight_recorder(FlightRecorder::off()).run(&engines);
    let epoch = std::time::Instant::now();
    let recorder = FlightRecorder::with_clock(65_536, move || {
        u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    });
    let on = sweep.with_flight_recorder(recorder.clone()).run(&engines);
    for (leg, records) in [("recorder-off", &off), ("recorder-on", &on)] {
        if *records != base
            || records_to_json(records) != records_to_json(&base)
            || records_table("rec", records).to_csv() != records_table("rec", &base).to_csv()
        {
            eprintln!(
                "perf_bench: RECORDER PARITY FAILURE: {leg} run differs from the \
                 no-recorder run"
            );
            return ExitCode::FAILURE;
        }
    }
    let snap = recorder.snapshot();
    let attempts: u64 = on.iter().map(|r| u64::from(r.attempts)).sum();
    let engine_runs = snap.stage("engine_run").map_or(0, |h| h.count);
    if engine_runs != attempts {
        eprintln!(
            "perf_bench: RECORDER RECONCILE FAILURE: {engine_runs} engine-run spans vs \
             {attempts} grid attempts"
        );
        return ExitCode::FAILURE;
    }
    if !quiet {
        eprintln!(
            "perf_bench: recorder-check passed ({} cells byte-identical across three legs, \
             {engine_runs} engine runs recorded)",
            base.len()
        );
    }
    ExitCode::SUCCESS
}

/// `--json`: the measurement set plus per-case baseline verdicts, as one
/// machine-readable document on stdout.
fn render_json(
    measurements: &[PerfMeasurement],
    baseline: &[(String, f64)],
    smoke: bool,
) -> String {
    let mut out = String::from(
        "{\n  \"schema\": 1,\n  \"bench\": \"sim_cycles_per_second\",\n  \"cases\": [\n",
    );
    for (i, m) in measurements.iter().enumerate() {
        let tol = tolerance(smoke, m.case.pes());
        let old = baseline.iter().find(|(n, _)| n == m.case.name).map(|(_, v)| *v);
        let (baseline_field, ratio_field, verdict) = match old {
            Some(old) => {
                let ratio = m.cycles_per_sec / old;
                let verdict = if ratio < 1.0 - tol { "regressed" } else { "pass" };
                (format!("{old:.1}"), format!("{ratio:.4}"), verdict)
            }
            None => ("null".to_string(), "null".to_string(), "no-baseline"),
        };
        out.push_str(&format!(
            "    {{\"name\": {}, \"pes\": {}, \"cycles\": {}, \"wall_ms\": {:.3}, \
             \"cycles_per_sec\": {:.1}, \"baseline_cycles_per_sec\": {baseline_field}, \
             \"ratio\": {ratio_field}, \"tolerance\": {tol}, \"verdict\": {}}}{}\n",
            json_string(m.case.name),
            m.case.pes(),
            m.cycles,
            m.best_secs * 1e3,
            m.cycles_per_sec,
            json_string(verdict),
            if i + 1 == measurements.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Per-case regression tolerance. Smoke runs use a loose 30% (two reps are
/// noisy); full runs use 15%, tightened to 10% for the ≥4K-PE cases whose
/// event-scheduler wall times are long enough to be timing-stable.
/// `SIGMA_PERF_TOLERANCE` overrides all of it.
fn tolerance(smoke: bool, pes: usize) -> f64 {
    if let Ok(v) = std::env::var("SIGMA_PERF_TOLERANCE") {
        if let Ok(t) = v.parse::<f64>() {
            if t > 0.0 {
                return t;
            }
        }
        eprintln!("perf_bench: ignoring invalid SIGMA_PERF_TOLERANCE={v:?}");
    }
    if smoke {
        0.30
    } else if pes >= 4096 {
        0.10
    } else {
        0.15
    }
}

fn render(measurements: &[PerfMeasurement], baseline: &[(String, f64)]) -> Table {
    let mut t = Table::new(
        "perf_bench - simulated cycles per second",
        &["case", "pes", "gemm", "dataflow", "sched", "cycles", "wall_ms", "Mcyc/s", "vs baseline"],
    );
    for m in measurements {
        let vs = baseline.iter().find(|(n, _)| n == m.case.name).map_or_else(
            || "-".to_string(),
            |(_, old)| format!("{:+.1}%", 100.0 * (m.cycles_per_sec / old - 1.0)),
        );
        t.push(vec![
            m.case.name.to_string(),
            m.case.pes().to_string(),
            m.case.shape(),
            m.case.dataflow.name().to_string(),
            m.case.scheduler_mode().to_string(),
            m.cycles.to_string(),
            format!("{:.2}", m.best_secs * 1e3),
            format!("{:.3}", m.cycles_per_sec / 1e6),
            vs,
        ]);
    }
    t
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perf_bench: {e}");
            return ExitCode::from(2);
        }
    };

    let reps = if args.smoke { SMOKE_REPS } else { FULL_REPS };
    let ladder: Vec<_> = cases().into_iter().filter(|c| !args.smoke || c.smoke).collect();

    if args.lockstep_check {
        return run_lockstep_check(args.quiet);
    }
    if args.telemetry {
        return run_overhead(&ladder, reps, args.quiet);
    }
    if args.dse_warm {
        return run_dse_warm(args.smoke, args.quiet, args.json);
    }
    if args.recorder_check {
        return run_recorder_check(args.smoke, args.quiet);
    }

    let baseline_text = std::fs::read_to_string(&args.baseline).unwrap_or_default();
    let baseline = parse_baseline(&baseline_text);

    let mut measurements = Vec::with_capacity(ladder.len());
    for case in &ladder {
        if !args.quiet {
            eprintln!("perf_bench: timing {} ({} PEs, {})...", case.name, case.pes(), case.shape());
        }
        measurements.push(measure(case, reps).expect("ladder case must simulate"));
    }

    if args.json {
        print!("{}", render_json(&measurements, &baseline, args.smoke));
    } else if !args.quiet {
        print!("{}", render(&measurements, &baseline));
    }

    if args.check {
        if cfg!(debug_assertions) && std::env::var_os("SIGMA_PERF_FORCE_CHECK").is_none() {
            eprintln!(
                "perf_bench: --check skipped: unoptimized build timings are not comparable \
                 to the committed baseline (rerun with --release, or set \
                 SIGMA_PERF_FORCE_CHECK=1)"
            );
            return ExitCode::SUCCESS;
        }
        if baseline.is_empty() {
            eprintln!(
                "perf_bench: no baseline at {} - run perf_bench without --check to create it",
                args.baseline.display()
            );
            return ExitCode::FAILURE;
        }
        let mut regressed = false;
        for m in &measurements {
            let Some((_, old)) = baseline.iter().find(|(n, _)| n == m.case.name) else {
                eprintln!("perf_bench: note: case {} has no baseline entry yet", m.case.name);
                continue;
            };
            let tol = tolerance(args.smoke, m.case.pes());
            let ratio = m.cycles_per_sec / old;
            if ratio < 1.0 - tol {
                eprintln!(
                    "perf_bench: REGRESSION {}: {:.0} cyc/s vs baseline {:.0} ({:.1}% slower, \
                     tolerance {:.0}%)",
                    m.case.name,
                    m.cycles_per_sec,
                    old,
                    100.0 * (1.0 - ratio),
                    100.0 * tol,
                );
                regressed = true;
            }
        }
        if regressed {
            return ExitCode::FAILURE;
        }
        if !args.quiet {
            eprintln!(
                "perf_bench: check passed (tolerance {:.0}%; {:.0}% at >=4K PEs)",
                100.0 * tolerance(args.smoke, 0),
                100.0 * tolerance(args.smoke, 4096),
            );
        }
        return ExitCode::SUCCESS;
    }
    if args.json {
        // Report-only: never rewrite the committed baseline from a mode
        // meant for machine consumers.
        return ExitCode::SUCCESS;
    }

    let json = to_json(&measurements);
    if let Err(e) = std::fs::write(&args.baseline, &json) {
        eprintln!("perf_bench: cannot write {}: {e}", args.baseline.display());
        return ExitCode::FAILURE;
    }
    if !args.quiet {
        eprintln!("perf_bench: baseline written to {}", args.baseline.display());
    }
    ExitCode::SUCCESS
}
