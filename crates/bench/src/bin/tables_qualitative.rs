//! Prints Tables I and III (the paper's qualitative comparisons, derived
//! from the live models where machine-checkable).
fn main() {
    sigma_bench::harness::emit_tables(&[
        sigma_bench::figs::tables::table01(),
        sigma_bench::figs::tables::table03(),
    ]);
}
