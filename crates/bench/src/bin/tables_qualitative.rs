//! Prints Tables I and III (the paper's qualitative comparisons, derived
//! from the live models where machine-checkable).
fn main() {
    println!("{}", sigma_bench::figs::tables::table01());
    println!("{}", sigma_bench::figs::tables::table03());
}
