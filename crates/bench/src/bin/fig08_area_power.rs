//! Regenerates Fig. 8 (SIGMA vs TPU area/power/effective TFLOPS).
fn main() {
    sigma_bench::harness::emit_tables(&[sigma_bench::figs::fig08::table()]);
}
