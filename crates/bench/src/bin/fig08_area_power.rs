//! Regenerates Fig. 8 (SIGMA vs TPU area/power/effective TFLOPS).
fn main() {
    println!("{}", sigma_bench::figs::fig08::table());
}
