//! Regenerates Fig. 12a (dense GEMM speedups over TPU 128x128).
fn main() {
    sigma_bench::harness::emit_tables(&[sigma_bench::figs::fig12::table_dense()]);
    let (dense, _) = sigma_bench::figs::fig12::headline_speedups();
    println!("geomean dense speedup over TPU 128x128: {dense:.2}x (paper ~2x)");
}
