//! Randomized functional-agreement fuzzer: runs random sparse GEMMs
//! through the SIGMA engine (all dataflows and both packing orders) and
//! the reference GEMM until the iteration budget is exhausted, exiting
//! non-zero on the first disagreement.
//!
//! ```sh
//! cargo run -p sigma-bench --bin fuzz_agreement -- 200
//! ```

use sigma_core::{Dataflow, PackingOrder, SigmaConfig, SigmaSim};
use sigma_matrix::gen::{sparse_uniform, Density};

fn main() {
    let iters: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100);
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut rng = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    for i in 0..iters {
        let m = (rng() % 14 + 1) as usize;
        let k = (rng() % 14 + 1) as usize;
        let n = (rng() % 14 + 1) as usize;
        let da = (rng() % 11) as f64 / 10.0;
        let db = (rng() % 11) as f64 / 10.0;
        let seed = rng();
        let a = sparse_uniform(m, k, Density::new(da).unwrap(), seed);
        let b = sparse_uniform(k, n, Density::new(db).unwrap(), seed ^ 0xf00d);
        let reference = a.to_dense().matmul(&b.to_dense());
        let tol = 1e-3 * k as f32;
        for df in Dataflow::ALL {
            for order in [PackingOrder::GroupMajor, PackingOrder::ContractionMajor] {
                let cfg = SigmaConfig::new(2, 8, 8, df).unwrap().with_packing_order(order);
                let run = SigmaSim::new(cfg).unwrap().run_gemm(&a, &b).unwrap();
                if !run.result.approx_eq(&reference, tol) {
                    eprintln!(
                        "MISMATCH iter {i}: {m}x{k}x{n} da={da} db={db} seed={seed} \
                         df={df} order={order:?} (max diff {})",
                        run.result.max_abs_diff(&reference)
                    );
                    std::process::exit(1);
                }
            }
        }
    }
    println!("fuzz_agreement: {iters} random GEMMs x 6 configurations all agree");
}
