//! Randomized functional-agreement fuzzer: runs random sparse GEMMs
//! through every registered engine — plus extra SIGMA configurations
//! covering all dataflows and both packing orders — and checks each
//! result against the reference GEMM, exiting non-zero on the first
//! disagreement.
//!
//! ```sh
//! cargo run -p sigma-bench --bin fuzz_agreement -- 200
//! ```

use sigma_bench::harness::{default_registry, EngineEntry};
use sigma_core::{Dataflow, PackingOrder, SigmaConfig, SigmaSim};
use sigma_matrix::gen::{sparse_uniform, Density};

/// The fleet under test: the shared registry plus SIGMA variants that
/// the registry's single entry does not cover (every dataflow x packing
/// order on a deliberately small, fold-prone machine).
fn fleet() -> Vec<EngineEntry> {
    let mut entries = default_registry();
    for df in Dataflow::ALL {
        for order in [PackingOrder::GroupMajor, PackingOrder::ContractionMajor] {
            let cfg = SigmaConfig::new(2, 8, 8, df).unwrap().with_packing_order(order);
            entries.push(EngineEntry::new(
                format!("sigma-2x8-{df}-{order:?}").to_lowercase(),
                Box::new(SigmaSim::new(cfg).unwrap()),
            ));
        }
    }
    entries
}

fn main() {
    let iters: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100);
    let fleet = fleet();
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut rng = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut runs = 0u64;
    for i in 0..iters {
        let m = (rng() % 14 + 1) as usize;
        let k = (rng() % 14 + 1) as usize;
        let n = (rng() % 14 + 1) as usize;
        let da = (rng() % 11) as f64 / 10.0;
        let db = (rng() % 11) as f64 / 10.0;
        let seed = rng();
        let a = sparse_uniform(m, k, Density::new(da).unwrap(), seed);
        let b = sparse_uniform(k, n, Density::new(db).unwrap(), seed ^ 0xf00d);
        let reference = a.to_dense().matmul(&b.to_dense());
        let tol = 1e-3 * k as f32;
        for entry in &fleet {
            let run = match entry.engine.run(&a, &b) {
                Ok(run) => run,
                Err(e) => {
                    eprintln!(
                        "ERROR iter {i}: {m}x{k}x{n} da={da} db={db} seed={seed} \
                         engine={}: {e}",
                        entry.slug
                    );
                    std::process::exit(1);
                }
            };
            runs += 1;
            if !run.result.approx_eq(&reference, tol) {
                eprintln!(
                    "MISMATCH iter {i}: {m}x{k}x{n} da={da} db={db} seed={seed} \
                     engine={} (max diff {})",
                    entry.slug,
                    run.result.max_abs_diff(&reference)
                );
                std::process::exit(1);
            }
        }
    }
    println!(
        "fuzz_agreement: {iters} random GEMMs x {} engines all agree ({runs} runs)",
        fleet.len()
    );
}
