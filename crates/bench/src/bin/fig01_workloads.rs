//! Regenerates Fig. 1b (workload GEMM dimensions).
fn main() {
    println!("{}", sigma_bench::figs::fig01::table());
}
