//! Regenerates Fig. 1b (workload GEMM dimensions).
fn main() {
    sigma_bench::harness::emit_tables(&[sigma_bench::figs::fig01::table()]);
}
