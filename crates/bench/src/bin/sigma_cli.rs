//! `sigma_cli` — run an arbitrary GEMM through the SIGMA models from the
//! command line.
//!
//! ```sh
//! cargo run -p sigma-bench --bin sigma_cli -- \
//!     --m 1024 --n 1024 --k 1024 --input-sparsity 0.5 --weight-sparsity 0.8 \
//!     --dpes 128 --dpe-size 128 --bandwidth 128 [--functional] [--energy]
//! ```
//!
//! Prints per-dataflow Table-II stats, the best-dataflow choice, the TPU
//! baseline, and (optionally) the activity-based energy breakdown. With
//! `--functional` the GEMM is also executed through the functional
//! simulator on scaled-down operands and verified against the reference.

use sigma_baselines::{GemmAccelerator, SystolicArray};
use sigma_core::model::{estimate, estimate_best, GemmProblem};
use sigma_core::{Dataflow, SigmaConfig, SigmaSim};
use sigma_energy::EnergyBreakdown;
use sigma_matrix::gen::{sparse_uniform, Density};
use sigma_matrix::GemmShape;

#[derive(Debug)]
struct Args {
    m: usize,
    n: usize,
    k: usize,
    input_sparsity: f64,
    weight_sparsity: f64,
    dpes: usize,
    dpe_size: usize,
    bandwidth: usize,
    functional: bool,
    energy: bool,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut args = Args {
            m: 1024,
            n: 1024,
            k: 1024,
            input_sparsity: 0.0,
            weight_sparsity: 0.0,
            dpes: 128,
            dpe_size: 128,
            bandwidth: 128,
            functional: false,
            energy: false,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let flag = argv[i].as_str();
            let mut take = |field: &mut dyn FnMut(&str) -> Result<(), String>| {
                i += 1;
                let v = argv.get(i).ok_or_else(|| format!("{flag} needs a value"))?;
                field(v)
            };
            match flag {
                "--m" => take(&mut |v| {
                    args.m = v.parse().map_err(|e| format!("--m: {e}"))?;
                    Ok(())
                })?,
                "--n" => take(&mut |v| {
                    args.n = v.parse().map_err(|e| format!("--n: {e}"))?;
                    Ok(())
                })?,
                "--k" => take(&mut |v| {
                    args.k = v.parse().map_err(|e| format!("--k: {e}"))?;
                    Ok(())
                })?,
                "--input-sparsity" => take(&mut |v| {
                    args.input_sparsity = v.parse().map_err(|e| format!("--input-sparsity: {e}"))?;
                    Ok(())
                })?,
                "--weight-sparsity" => take(&mut |v| {
                    args.weight_sparsity =
                        v.parse().map_err(|e| format!("--weight-sparsity: {e}"))?;
                    Ok(())
                })?,
                "--dpes" => take(&mut |v| {
                    args.dpes = v.parse().map_err(|e| format!("--dpes: {e}"))?;
                    Ok(())
                })?,
                "--dpe-size" => take(&mut |v| {
                    args.dpe_size = v.parse().map_err(|e| format!("--dpe-size: {e}"))?;
                    Ok(())
                })?,
                "--bandwidth" => take(&mut |v| {
                    args.bandwidth = v.parse().map_err(|e| format!("--bandwidth: {e}"))?;
                    Ok(())
                })?,
                "--functional" => args.functional = true,
                "--energy" => args.energy = true,
                "--help" | "-h" => {
                    return Err("usage: sigma_cli --m M --n N --k K \
                        [--input-sparsity S] [--weight-sparsity S] \
                        [--dpes D] [--dpe-size P] [--bandwidth W] \
                        [--functional] [--energy]"
                        .to_string())
                }
                other => return Err(format!("unknown flag {other} (try --help)")),
            }
            i += 1;
        }
        if !(0.0..1.0).contains(&args.input_sparsity)
            || !(0.0..1.0).contains(&args.weight_sparsity)
        {
            return Err("sparsities must be in [0, 1)".to_string());
        }
        Ok(args)
    }
}

fn main() {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let shape = GemmShape::new(args.m, args.n, args.k);
    let p = GemmProblem::sparse(shape, 1.0 - args.input_sparsity, 1.0 - args.weight_sparsity);
    let cfg = match SigmaConfig::new(args.dpes, args.dpe_size, args.bandwidth, Dataflow::WeightStationary)
        .and_then(|c| c.with_stream_bandwidth(args.dpes * args.dpe_size))
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad configuration: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "GEMM {shape} | input sparsity {:.0}% | weight sparsity {:.0}% | SIGMA {} x Flex-DPE-{}",
        args.input_sparsity * 100.0,
        args.weight_sparsity * 100.0,
        args.dpes,
        args.dpe_size
    );
    println!();
    for df in Dataflow::ALL {
        let s = estimate(&cfg.with_dataflow(df), &p);
        println!("  {df:>14}: {s}");
    }
    let (best_df, best) = estimate_best(&cfg, &p);
    println!("\n  best dataflow: {best_df} ({} cycles)", best.total_cycles());

    let tpu = SystolicArray::new(128, 128);
    let t = tpu.simulate(&p);
    println!(
        "  TPU 128x128  : {} cycles -> SIGMA speedup {:.2}x",
        t.total_cycles(),
        t.total_cycles() as f64 / best.total_cycles() as f64
    );

    if args.energy {
        let b = EnergyBreakdown::from_stats(&best, args.dpe_size);
        println!("\n  energy breakdown ({:.3} mJ total):", b.total_j() * 1e3);
        for (label, j) in b.rows() {
            println!("    {label:>10}: {:>8.3} mJ ({:>4.1}%)", j * 1e3, 100.0 * j / b.total_j());
        }
    }

    if args.functional {
        let cap = 64usize;
        let fm = args.m.min(cap);
        let fn_ = args.n.min(cap);
        let fk = args.k.min(cap);
        let a = sparse_uniform(fm, fk, Density::new(1.0 - args.input_sparsity).unwrap(), 1);
        let b = sparse_uniform(fk, fn_, Density::new(1.0 - args.weight_sparsity).unwrap(), 2);
        let sim = SigmaSim::new(
            SigmaConfig::new(4, 16, 64, Dataflow::WeightStationary).unwrap(),
        )
        .unwrap();
        let (df, run) = sim.run_best_stationary(&a, &b).unwrap();
        let reference = a.to_dense().matmul(&b.to_dense());
        let ok = run.result.approx_eq(&reference, 1e-3 * fk as f32);
        println!(
            "\n  functional check on {fm}x{fk}x{fn_} (4 x Flex-DPE-16, {df}): {}",
            if ok { "PASS" } else { "FAIL" }
        );
        if !ok {
            std::process::exit(1);
        }
    }
}
