//! `sigma_cli` — run an arbitrary GEMM through the SIGMA models and the
//! unified engine fleet from the command line.
//!
//! ```sh
//! # Analytic SIGMA (per-dataflow Table-II stats + TPU baseline):
//! cargo run -p sigma-bench --bin sigma_cli -- \
//!     --m 1024 --n 1024 --k 1024 --input-sparsity 0.5 --weight-sparsity 0.8 \
//!     --dpes 128 --dpe-size 128 --bandwidth 128 [--functional] [--energy]
//!
//! # Any registered engine, by name, on materialized operands:
//! cargo run -p sigma-bench --bin sigma_cli -- --engine eie --m 48 --n 48 --k 48
//!
//! # The whole fleet over the demo suite, in parallel:
//! cargo run -p sigma-bench --bin sigma_cli -- --sweep [--threads 4] [--seed 7] [--output json]
//!
//! # A Perfetto-loadable Chrome trace of one functional SIGMA run:
//! cargo run -p sigma-bench --bin sigma_cli -- trace --out run.trace.json \
//!     [--m M --n N --k K --input-sparsity S --weight-sparsity S] [--telemetry]
//! ```
//!
//! `--list-engines` prints the registry's slugs. `--telemetry` on a sweep
//! turns on per-cell wall-time profiling, a live progress line, and a
//! `telemetry_summary.json` artifact (path via `--out`).
//!
//! `--resume JOURNAL` makes `--sweep` crash-safe: every completed cell is
//! appended (and fsynced) to the journal as it finishes, cells already in
//! the journal replay instead of re-running, and the output is
//! byte-identical to an uninterrupted sweep — kill the process at any
//! point and rerun the same command to pick up where it left off.
//!
//! `--cache STORE` attaches the persistent content-addressed run cache:
//! cells seen by *any* previous sweep or invocation sharing the store are
//! served from it instead of re-simulated, with byte-identical output
//! (`--cache-cap N` bounds resident entries, default 4096; `--cache-stats`
//! prints hit-rate/miss/coalesce/eviction counts to stderr afterwards).
//!
//! `--flight-recorder LOG` on a sweep turns on the harness flight
//! recorder: every watchdogged attempt, retry backoff, watchdog
//! cancellation, operand materialization, queue wait, journal append +
//! fsync, and cache probe/insert is timed on a monotonic process clock
//! and persisted — atomically — as a JSONL event log, alongside
//! per-stage latency histograms and periodic gauge snapshots. The
//! recorder lives entirely at this harness edge (the clock is injected),
//! so library crates stay deterministic, and with the flag absent the
//! sweep's output is byte-identical to a recorder-free build.
//!
//! `report --from LOG` converts an event log into a Perfetto-loadable
//! Chrome trace (one track per worker thread; journal/cache/watchdog on
//! named tracks; gauges as counter series), self-validated before it is
//! written, plus an aggregate per-stage latency table on stdout.
//! `--metrics json|prom` instead re-exports the log's counters, gauges,
//! and histograms as a `MetricsReport` JSON or Prometheus-text document.

use std::sync::Arc;

use sigma_baselines::{GemmAccelerator, SystolicArray};
use sigma_bench::harness::{
    build_report, default_registry, demo_suite, engine_by_name, read_event_log, records_table,
    records_to_json, write_event_log, RunCache, Sweep, SweepProfile, WorkloadSpec,
};
use sigma_core::model::{estimate, estimate_best, GemmProblem};
use sigma_core::{validate_chrome_trace, Dataflow, SigmaConfig, SigmaSim};
use sigma_energy::EnergyBreakdown;
use sigma_matrix::gen::{sparse_uniform, Density};
use sigma_matrix::GemmShape;
use sigma_telemetry::{FlightRecorder, Stage, Telemetry};
use sigma_workloads::materialize;

#[derive(Debug)]
struct Args {
    m: usize,
    n: usize,
    k: usize,
    input_sparsity: f64,
    weight_sparsity: f64,
    dpes: usize,
    dpe_size: usize,
    bandwidth: usize,
    functional: bool,
    energy: bool,
    engine: Option<String>,
    list_engines: bool,
    sweep: bool,
    trace: bool,
    telemetry: bool,
    resume: Option<String>,
    cache: Option<String>,
    cache_cap: usize,
    cache_stats: bool,
    flight_recorder: Option<String>,
    report: bool,
    from: Option<String>,
    metrics: Option<MetricsOut>,
    out: Option<String>,
    threads: Option<usize>,
    seed: u64,
    output: Output,
    workloads: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Output {
    Text,
    Csv,
    Json,
}

/// `report --metrics` export format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsOut {
    Json,
    Prometheus,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut args = Args {
            m: 1024,
            n: 1024,
            k: 1024,
            input_sparsity: 0.0,
            weight_sparsity: 0.0,
            dpes: 128,
            dpe_size: 128,
            bandwidth: 128,
            functional: false,
            energy: false,
            engine: None,
            list_engines: false,
            sweep: false,
            resume: None,
            cache: None,
            cache_cap: 4096,
            cache_stats: false,
            flight_recorder: None,
            report: false,
            from: None,
            metrics: None,
            trace: false,
            telemetry: false,
            out: None,
            threads: None,
            seed: 1,
            output: Output::Text,
            workloads: Vec::new(),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let flag = argv[i].as_str();
            let mut take = |field: &mut dyn FnMut(&str) -> Result<(), String>| {
                i += 1;
                let v = argv.get(i).ok_or_else(|| format!("{flag} needs a value"))?;
                field(v)
            };
            match flag {
                "--m" => take(&mut |v| {
                    args.m = v.parse().map_err(|e| format!("--m: {e}"))?;
                    Ok(())
                })?,
                "--n" => take(&mut |v| {
                    args.n = v.parse().map_err(|e| format!("--n: {e}"))?;
                    Ok(())
                })?,
                "--k" => take(&mut |v| {
                    args.k = v.parse().map_err(|e| format!("--k: {e}"))?;
                    Ok(())
                })?,
                "--input-sparsity" => take(&mut |v| {
                    args.input_sparsity =
                        v.parse().map_err(|e| format!("--input-sparsity: {e}"))?;
                    Ok(())
                })?,
                "--weight-sparsity" => take(&mut |v| {
                    args.weight_sparsity =
                        v.parse().map_err(|e| format!("--weight-sparsity: {e}"))?;
                    Ok(())
                })?,
                "--dpes" => take(&mut |v| {
                    args.dpes = v.parse().map_err(|e| format!("--dpes: {e}"))?;
                    Ok(())
                })?,
                "--dpe-size" => take(&mut |v| {
                    args.dpe_size = v.parse().map_err(|e| format!("--dpe-size: {e}"))?;
                    Ok(())
                })?,
                "--bandwidth" => take(&mut |v| {
                    args.bandwidth = v.parse().map_err(|e| format!("--bandwidth: {e}"))?;
                    Ok(())
                })?,
                "--engine" => take(&mut |v| {
                    args.engine = Some(v.to_string());
                    Ok(())
                })?,
                "--threads" => take(&mut |v| {
                    args.threads = Some(v.parse().map_err(|e| format!("--threads: {e}"))?);
                    Ok(())
                })?,
                "--seed" => take(&mut |v| {
                    args.seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
                    Ok(())
                })?,
                "--workload" => take(&mut |v| {
                    args.workloads.push(v.to_string());
                    Ok(())
                })?,
                "--output" => take(&mut |v| {
                    args.output = match v {
                        "text" => Output::Text,
                        "csv" => Output::Csv,
                        "json" => Output::Json,
                        other => return Err(format!("--output: unknown format {other}")),
                    };
                    Ok(())
                })?,
                "--resume" => take(&mut |v| {
                    args.resume = Some(v.to_string());
                    Ok(())
                })?,
                "--cache" => take(&mut |v| {
                    args.cache = Some(v.to_string());
                    Ok(())
                })?,
                "--cache-cap" => take(&mut |v| {
                    args.cache_cap = v.parse().map_err(|e| format!("--cache-cap: {e}"))?;
                    Ok(())
                })?,
                "--cache-stats" => args.cache_stats = true,
                "--flight-recorder" => take(&mut |v| {
                    args.flight_recorder = Some(v.to_string());
                    Ok(())
                })?,
                "--from" => take(&mut |v| {
                    args.from = Some(v.to_string());
                    Ok(())
                })?,
                "--metrics" => take(&mut |v| {
                    args.metrics = match v {
                        "json" => Some(MetricsOut::Json),
                        "prom" | "prometheus" => Some(MetricsOut::Prometheus),
                        other => return Err(format!("--metrics: unknown format {other}")),
                    };
                    Ok(())
                })?,
                "--out" => take(&mut |v| {
                    args.out = Some(v.to_string());
                    Ok(())
                })?,
                "--functional" => args.functional = true,
                "--energy" => args.energy = true,
                "--list-engines" => args.list_engines = true,
                "--sweep" => args.sweep = true,
                "--telemetry" => args.telemetry = true,
                "trace" => args.trace = true,
                "report" => args.report = true,
                "--help" | "-h" => {
                    return Err("usage: sigma_cli [--m M] [--n N] [--k K] \
                        [--input-sparsity S] [--weight-sparsity S] \
                        [--dpes D] [--dpe-size P] [--bandwidth W] \
                        [--functional] [--energy] \
                        | --engine NAME [--seed S] \
                        | --sweep [--workload M:N:K[:da[:db]]]... [--threads T] [--seed S] \
                        [--output text|csv|json] [--telemetry] [--out SUMMARY.json] \
                        [--resume JOURNAL] \
                        [--cache STORE] [--cache-cap N] [--cache-stats] \
                        [--flight-recorder LOG.jsonl] \
                        | trace [--out TRACE.json] [--telemetry] [--seed S] \
                        | report --from LOG.jsonl [--out TRACE.json] \
                        [--metrics json|prom] \
                        | --list-engines"
                        .to_string())
                }
                other => return Err(format!("unknown flag {other} (try --help)")),
            }
            i += 1;
        }
        if !(0.0..1.0).contains(&args.input_sparsity) || !(0.0..1.0).contains(&args.weight_sparsity)
        {
            return Err("sparsities must be in [0, 1)".to_string());
        }
        Ok(args)
    }
}

/// `--list-engines`: the registry's vocabulary.
fn list_engines() {
    println!("registered engines (use with --engine):");
    for entry in default_registry() {
        println!("  {:<16} {}", entry.slug, entry.engine.name());
    }
}

/// `--engine NAME`: one functional engine on materialized operands.
fn run_engine(args: &Args) -> i32 {
    let Some(engine) = engine_by_name(args.engine.as_deref().unwrap_or_default()) else {
        eprintln!(
            "unknown engine {:?}; try --list-engines",
            args.engine.as_deref().unwrap_or_default()
        );
        return 2;
    };
    // Functional engines move every operand element; cap the materialized
    // problem like --functional does so arbitrary shapes stay tractable.
    let cap = 128usize;
    let shape = GemmShape::new(args.m.min(cap), args.n.min(cap), args.k.min(cap));
    if (shape.m, shape.n, shape.k) != (args.m, args.n, args.k) {
        println!("(functional run capped to {shape})");
    }
    let p = GemmProblem::sparse(shape, 1.0 - args.input_sparsity, 1.0 - args.weight_sparsity);
    let (a, b) = materialize(&p, args.seed);
    match engine.run(&a, &b) {
        Ok(run) => {
            let reference = a.to_dense().matmul(&b.to_dense());
            let ok = run.result.approx_eq(&reference, 1e-3 * shape.k as f32);
            println!("{} on {shape} (seed {})", engine.name(), args.seed);
            println!("  {}", run.stats);
            println!("  verified vs reference GEMM: {}", if ok { "PASS" } else { "FAIL" });
            i32::from(!ok)
        }
        Err(e) => {
            eprintln!("{}: {e}", engine.name());
            1
        }
    }
}

/// Parses a `--workload M:N:K[:da[:db]]` spec.
fn parse_workload(spec: &str) -> Result<WorkloadSpec, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if !(3..=5).contains(&parts.len()) {
        return Err(format!("--workload {spec}: expected M:N:K[:density_a[:density_b]]"));
    }
    let dim = |i: usize| -> Result<usize, String> {
        match parts[i].parse::<usize>() {
            Ok(0) => Err(format!("--workload {spec}: dimensions must be non-zero")),
            Ok(d) => Ok(d),
            Err(e) => Err(format!("--workload {spec}: {e}")),
        }
    };
    let den = |i: usize| -> Result<f64, String> {
        parts.get(i).map_or(Ok(1.0), |s| s.parse().map_err(|e| format!("--workload {spec}: {e}")))
    };
    let shape = GemmShape::new(dim(0)?, dim(1)?, dim(2)?);
    let (da, db) = (den(3)?, den(4)?);
    if !(0.0..=1.0).contains(&da) || !(0.0..=1.0).contains(&db) {
        return Err(format!("--workload {spec}: densities must be in [0, 1]"));
    }
    Ok(WorkloadSpec::new(spec, GemmProblem::sparse(shape, da, db)))
}

/// `trace`: one functional SIGMA run rendered as a Chrome trace-event
/// document, self-validated before it is written (track totals must
/// equal the run's Table-II phase totals).
fn run_trace(args: &Args) -> i32 {
    let cap = 64usize;
    let shape = GemmShape::new(args.m.min(cap), args.n.min(cap), args.k.min(cap));
    if (shape.m, shape.n, shape.k) != (args.m, args.n, args.k) {
        eprintln!("(traced functional run capped to {shape})");
    }
    let p = GemmProblem::sparse(shape, 1.0 - args.input_sparsity, 1.0 - args.weight_sparsity);
    let (a, b) = materialize(&p, args.seed);
    let cfg = SigmaConfig::new(4, 16, 64, Dataflow::WeightStationary)
        .unwrap()
        .with_telemetry(args.telemetry);
    let sim = SigmaSim::new(cfg).unwrap();
    let (run, trace) = match sim.run_gemm_traced(&a, &b) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("trace: {e}");
            return 1;
        }
    };

    let process = format!("SIGMA 4x16 {shape} seed {}", args.seed);
    let json = trace.to_chrome_trace(&process).to_json();
    let summary = match validate_chrome_trace(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace: generated document failed validation: {e}");
            return 1;
        }
    };
    let phases = [
        ("phase: load", run.stats.loading_cycles),
        ("phase: stream", run.stats.streaming_cycles),
        ("phase: drain", run.stats.add_cycles),
    ];
    for (track, cycles) in phases {
        if summary.track(track) != Some(cycles) {
            eprintln!(
                "trace: track {track:?} sums to {:?}, stats say {cycles}",
                summary.track(track)
            );
            return 1;
        }
    }

    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("trace: cannot write {path}: {e}");
                return 1;
            }
            eprintln!(
                "wrote {path}: {} spans, {} counter samples, {} cycles \
                 (load {}, stream {}, drain {}) — open at ui.perfetto.dev",
                summary.span_count,
                summary.counter_count,
                run.stats.total_cycles(),
                run.stats.loading_cycles,
                run.stats.streaming_cycles,
                run.stats.add_cycles
            );
        }
        None => print!("{json}"),
    }
    if args.telemetry {
        let handle = sim.telemetry_handle();
        eprintln!("telemetry snapshot:\n{}", handle.snapshot().to_json());
    }
    0
}

/// `report --from LOG`: converts a flight-recorder event log into a
/// validated Perfetto trace (written with `--out`) plus an aggregate
/// per-stage latency table; `--metrics json|prom` re-exports the log's
/// counters, gauges, and histograms instead. Exits non-zero if the log
/// is unreadable or the built trace fails its own validator.
fn run_report(args: &Args) -> i32 {
    let Some(path) = &args.from else {
        eprintln!("report needs --from LOG.jsonl (an event log from --sweep --flight-recorder)");
        return 2;
    };
    let log = match read_event_log(std::path::Path::new(path)) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("report: cannot read {path}: {e}");
            return 1;
        }
    };
    for w in &log.warnings {
        eprintln!("[report] {w}");
    }
    let report = match build_report(&log) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("report: built trace failed validation: {e}");
            return 1;
        }
    };
    match args.metrics {
        Some(MetricsOut::Json) => print!("{}", log.metrics_report().to_json()),
        Some(MetricsOut::Prometheus) => print!("{}", log.metrics_report().to_prometheus()),
        None => {
            println!("{}", report.table.render());
            for stage in Stage::ALL {
                if let Some(h) = log.stage(stage) {
                    if h.count > 0 {
                        println!(
                            "[report] stage {}: count={} sum_us={} mean_us={:.1} max_us={}",
                            stage.name(),
                            h.count,
                            h.sum,
                            h.mean(),
                            h.max
                        );
                    }
                }
            }
        }
    }
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, &report.trace_json) {
            eprintln!("report: cannot write {out}: {e}");
            return 1;
        }
        eprintln!(
            "wrote {out}: {} spans, {} counter samples across {} tracks \
             — open at ui.perfetto.dev",
            report.summary.span_count,
            report.summary.counter_count,
            report.summary.track_durations.len()
        );
    }
    0
}

/// `--sweep`: the whole registry over the demo suite (or `--workload`s).
fn run_sweep(args: &Args) -> i32 {
    let workloads = if args.workloads.is_empty() {
        demo_suite()
    } else {
        match args.workloads.iter().map(|s| parse_workload(s)).collect() {
            Ok(w) => w,
            Err(msg) => {
                eprintln!("{msg}");
                return 2;
            }
        }
    };
    // The flight recorder's wall clock is injected here, at the harness
    // edge: a monotonic microsecond counter since process start. With
    // the flag absent the recorder is a `None` handle and every
    // recording call below is an inlined early return.
    let epoch = std::time::Instant::now();
    let (recorder, flight_registry) = if args.flight_recorder.is_some() {
        let clock = move || u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        (FlightRecorder::with_clock(65_536, clock), Telemetry::enabled())
    } else {
        (FlightRecorder::off(), Telemetry::off())
    };
    let mut sweep = Sweep::new(workloads)
        .with_seed(args.seed)
        .with_telemetry(args.telemetry)
        .with_flight_recorder(recorder.clone())
        .with_telemetry_registry(flight_registry.clone());
    if let Some(t) = args.threads {
        sweep = sweep.with_threads(t);
    }
    let mut warned = 0;
    let cache = match &args.cache {
        Some(path) => match RunCache::open(std::path::Path::new(path), args.cache_cap) {
            Ok(cache) => {
                let cache = Arc::new(cache.with_flight_recorder(recorder.clone()));
                for warning in cache.warnings() {
                    eprintln!("[cache] {warning}");
                    warned += 1;
                }
                sweep = sweep.with_cache(Arc::clone(&cache));
                Some(cache)
            }
            Err(e) => {
                eprintln!("cannot open cache {path}: {e}");
                return 1;
            }
        },
        None => None,
    };
    let records = match &args.resume {
        Some(path) => {
            // Crash-safe mode: completed cells replay from the journal,
            // fresh cells are appended durably as they finish, and the
            // records are byte-identical to an uninterrupted run.
            match sweep.resume(&default_registry(), std::path::Path::new(path)) {
                Ok(outcome) => {
                    for warning in &outcome.warnings {
                        eprintln!("[resume] {warning}");
                    }
                    eprintln!(
                        "[resume] {} cells replayed from {path}, {} executed",
                        outcome.resume_hits, outcome.journal_appends
                    );
                    outcome.records
                }
                Err(e) => {
                    eprintln!("cannot resume from {path}: {e}");
                    return 1;
                }
            }
        }
        None => sweep.run(&default_registry()),
    };
    if let Some(cache) = &cache {
        for warning in cache.warnings().iter().skip(warned) {
            eprintln!("[cache] {warning}");
        }
        if args.cache_stats {
            let s = cache.stats();
            let probes = s.hits + s.misses;
            let hit_rate = if probes == 0 { 0.0 } else { 100.0 * s.hits as f64 / probes as f64 };
            eprintln!(
                "[cache] {} entries in {} (cap {}): {} hits, {} misses \
                 ({hit_rate:.1}% hit rate), {} coalesced in flight, {} evictions",
                s.entries,
                cache.path().display(),
                cache.capacity(),
                s.hits,
                s.misses,
                s.coalesced,
                s.evictions
            );
        }
    }
    if let Some(path) = &args.flight_recorder {
        let flight = recorder.snapshot();
        let telem = flight_registry.snapshot();
        let process = format!("sigma sweep seed {}", args.seed);
        if let Err(e) = write_event_log(std::path::Path::new(path), &process, &flight, &telem) {
            eprintln!("cannot write flight log {path}: {e}");
            return 1;
        }
        eprintln!(
            "[flight] wrote {path}: {} spans retained ({} dropped), {} gauge snapshots \
             — render with `sigma_cli report --from {path}`",
            flight.spans.len(),
            flight.dropped_spans,
            flight.snaps.len()
        );
    }
    match args.output {
        Output::Text => println!("{}", records_table("Engine sweep", &records)),
        Output::Csv => print!("{}", records_table("Engine sweep", &records).to_csv()),
        Output::Json => print!("{}", records_to_json(&records)),
    }
    if args.telemetry {
        let summary = SweepProfile::from_records(&records).to_json();
        let path = args.out.as_deref().unwrap_or("telemetry_summary.json");
        match std::fs::write(path, &summary) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
        }
    }
    i32::from(records.iter().any(|r| !r.verified))
}

fn main() {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    if args.list_engines {
        list_engines();
        return;
    }
    if args.engine.is_some() {
        std::process::exit(run_engine(&args));
    }
    if args.trace {
        std::process::exit(run_trace(&args));
    }
    if args.report {
        std::process::exit(run_report(&args));
    }
    if args.sweep {
        std::process::exit(run_sweep(&args));
    }

    let shape = GemmShape::new(args.m, args.n, args.k);
    let p = GemmProblem::sparse(shape, 1.0 - args.input_sparsity, 1.0 - args.weight_sparsity);
    let cfg = match SigmaConfig::new(
        args.dpes,
        args.dpe_size,
        args.bandwidth,
        Dataflow::WeightStationary,
    )
    .and_then(|c| c.with_stream_bandwidth(args.dpes * args.dpe_size))
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad configuration: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "GEMM {shape} | input sparsity {:.0}% | weight sparsity {:.0}% | SIGMA {} x Flex-DPE-{}",
        args.input_sparsity * 100.0,
        args.weight_sparsity * 100.0,
        args.dpes,
        args.dpe_size
    );
    println!();
    for df in Dataflow::ALL {
        let s = estimate(&cfg.with_dataflow(df), &p);
        println!("  {df:>14}: {s}");
    }
    let (best_df, best) = estimate_best(&cfg, &p);
    println!("\n  best dataflow: {best_df} ({} cycles)", best.total_cycles());

    let tpu = SystolicArray::new(128, 128);
    let t = tpu.simulate(&p);
    println!(
        "  TPU 128x128  : {} cycles -> SIGMA speedup {:.2}x",
        t.total_cycles(),
        t.total_cycles() as f64 / best.total_cycles() as f64
    );

    if args.energy {
        let b = EnergyBreakdown::from_stats(&best, args.dpe_size);
        println!("\n  energy breakdown ({:.3} mJ total):", b.total_j() * 1e3);
        for (label, j) in b.rows() {
            println!("    {label:>10}: {:>8.3} mJ ({:>4.1}%)", j * 1e3, 100.0 * j / b.total_j());
        }
    }

    if args.functional {
        let cap = 64usize;
        let fm = args.m.min(cap);
        let fn_ = args.n.min(cap);
        let fk = args.k.min(cap);
        let a = sparse_uniform(fm, fk, Density::new(1.0 - args.input_sparsity).unwrap(), 1);
        let b = sparse_uniform(fk, fn_, Density::new(1.0 - args.weight_sparsity).unwrap(), 2);
        let sim = SigmaSim::new(SigmaConfig::new(4, 16, 64, Dataflow::WeightStationary).unwrap())
            .unwrap();
        let (df, run) = sim.run_best_stationary(&a, &b).unwrap();
        let reference = a.to_dense().matmul(&b.to_dense());
        let ok = run.result.approx_eq(&reference, 1e-3 * fk as f32);
        println!(
            "\n  functional check on {fm}x{fk}x{fn_} (4 x Flex-DPE-16, {df}): {}",
            if ok { "PASS" } else { "FAIL" }
        );
        if !ok {
            std::process::exit(1);
        }
    }
}
