//! Regenerates Fig. 12b (sparse GEMM speedups over TPU 128x128).
fn main() {
    sigma_bench::harness::emit_tables(&[sigma_bench::figs::fig12::table_sparse()]);
    let (_, sparse) = sigma_bench::figs::fig12::headline_speedups();
    println!("geomean sparse speedup over TPU 128x128: {sparse:.2}x (paper ~6x)");
}
