//! Prints the design-choice ablation studies (distribution network,
//! reduction network, loading bandwidth, compression format, fold
//! packing, and the registry-driven functional-engine faceoff).
fn main() {
    use sigma_bench::figs::ablations;
    sigma_bench::harness::emit_tables(&[
        ablations::table_distribution(),
        ablations::table_reduction(),
        ablations::table_bandwidth(),
        ablations::table_format(),
        ablations::table_packing(),
        ablations::table_functional_engines(),
    ]);
}
