//! Prints the design-choice ablation studies (distribution network,
//! reduction network, loading bandwidth, compression format).
fn main() {
    println!("{}", sigma_bench::figs::ablations::table_distribution());
    println!("{}", sigma_bench::figs::ablations::table_reduction());
    println!("{}", sigma_bench::figs::ablations::table_bandwidth());
    println!("{}", sigma_bench::figs::ablations::table_format());
    println!("{}", sigma_bench::figs::ablations::table_packing());
    println!("{}", sigma_bench::figs::ablations::table_functional_engines());
}
