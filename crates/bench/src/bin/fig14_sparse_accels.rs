//! Regenerates Fig. 14 (SIGMA vs sparse accelerators).
fn main() {
    println!("{}", sigma_bench::figs::fig14::table());
}
