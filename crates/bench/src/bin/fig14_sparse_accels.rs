//! Regenerates Fig. 14 (SIGMA vs sparse accelerators).
fn main() {
    sigma_bench::harness::emit_tables(&[sigma_bench::figs::fig14::table()]);
}
