//! Regenerates Fig. 4 (systolic vs Flex-DPE mapping micro-examples).
fn main() {
    println!("{}", sigma_bench::figs::fig04::table());
}
