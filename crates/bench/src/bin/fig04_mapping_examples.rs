//! Regenerates Fig. 4 (systolic vs Flex-DPE mapping micro-examples).
fn main() {
    sigma_bench::harness::emit_tables(&[sigma_bench::figs::fig04::table()]);
}
