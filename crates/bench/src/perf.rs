//! Simulator throughput measurement: cycles-simulated-per-second.
//!
//! The ROADMAP grades this repo against "as fast as the hardware allows";
//! this module is the measuring stick. [`cases`] defines a fixed ladder of
//! dense/sparse/irregular GEMMs from 128 to 16K PEs, [`measure`] times
//! [`SigmaSim::run_gemm`](sigma_core::SigmaSim) over each with best-of-N
//! wall-clock timing (no criterion dependency — plain `Instant` loops keep
//! the binary usable offline), and [`to_json`]/[`parse_baseline`] round-trip
//! the committed `BENCH_sim.json` baseline that `perf_bench --check`
//! compares against.
//!
//! The figure of merit is **simulated cycles per wall-clock second**
//! (`stats.total_cycles() / best_seconds`): it normalizes across workload
//! shapes, so a regression means the simulator itself got slower, not that
//! the modeled machine changed.

use sigma_core::{Dataflow, SigmaConfig, SigmaError, SigmaSim};
use sigma_matrix::gen::{sparse_uniform, Density};
use sigma_matrix::SparseMatrix;
use std::time::Instant;

/// One benchmark workload: a SIGMA geometry plus a GEMM shape/density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfCase {
    /// Stable case identifier (the baseline key in `BENCH_sim.json`).
    pub name: &'static str,
    /// Flex-DPE count.
    pub num_dpes: usize,
    /// Multipliers per Flex-DPE.
    pub dpe_size: usize,
    /// Dataflow to run.
    pub dataflow: Dataflow,
    /// GEMM `M` dimension.
    pub m: usize,
    /// GEMM `K` (contraction) dimension.
    pub k: usize,
    /// GEMM `N` dimension.
    pub n: usize,
    /// Density of the `M x K` operand.
    pub density_a: f64,
    /// Density of the `K x N` operand.
    pub density_b: f64,
    /// Whether the case runs in `--smoke` mode (CI keeps to the small end
    /// of the ladder).
    pub smoke: bool,
}

impl PerfCase {
    /// Total multipliers in the configured array.
    #[must_use]
    pub fn pes(&self) -> usize {
        self.num_dpes * self.dpe_size
    }

    /// `MxKxN` shape string for display.
    #[must_use]
    pub fn shape(&self) -> String {
        format!("{}x{}x{}", self.m, self.k, self.n)
    }

    /// Deterministic operands for this case (seeded by the case name).
    #[must_use]
    pub fn operands(&self) -> (SparseMatrix, SparseMatrix) {
        let seed = self.name.bytes().fold(0xD6E8_FEB8_6659_FD93_u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3)
        });
        let da = Density::clamped(self.density_a);
        let db = Density::clamped(self.density_b);
        let a = sparse_uniform(self.m, self.k, da, seed);
        let b = sparse_uniform(self.k, self.n, db, seed ^ 0xA5A5_A5A5);
        (a, b)
    }

    /// The simulator for this case.
    #[must_use]
    pub fn sim(&self) -> SigmaSim {
        self.sim_with(false)
    }

    /// The simulator for this case, with telemetry on or off.
    ///
    /// Every ladder geometry is valid, so the clamped constructors build
    /// it exactly; they only exist to keep this path infallible.
    #[must_use]
    pub fn sim_with(&self, telemetry: bool) -> SigmaSim {
        let cfg = SigmaConfig::clamped(self.num_dpes, self.dpe_size, self.dpe_size, self.dataflow)
            .with_stream_bandwidth_clamped(self.pes())
            .with_telemetry(telemetry);
        SigmaSim::new_clamped(cfg)
    }

    /// The scheduler the timed runs use: the stationary dataflows execute
    /// on the epoch/event scheduler (the lockstep tick loop survives only
    /// as the [`SigmaConfig::with_lockstep`] debug oracle), while
    /// No-Local-Reuse packs full-array waves and has no stationary
    /// schedule to skip.
    #[must_use]
    pub fn scheduler_mode(&self) -> &'static str {
        match self.dataflow {
            Dataflow::NoLocalReuse => "wave",
            _ => "event",
        }
    }
}

/// Runs one case under both scheduler modes — the event scheduler and the
/// lockstep tick oracle ([`SigmaConfig::with_lockstep`]) — and checks the
/// two runs are bitwise identical: equal [`CycleStats`] (including
/// `idle_cycles_skipped`) and per-element `f32` bit equality of the
/// results. This is the `perf_bench --lockstep-check` CI gate.
///
/// [`CycleStats`]: sigma_core::CycleStats
///
/// # Errors
///
/// Returns a description of the first divergence, or of a failed run.
pub fn lockstep_check(case: &PerfCase) -> Result<(), String> {
    let (a, b) = case.operands();
    let run = |lockstep: bool| {
        let cfg = SigmaConfig::clamped(case.num_dpes, case.dpe_size, case.dpe_size, case.dataflow)
            .with_stream_bandwidth_clamped(case.pes())
            .with_lockstep(lockstep);
        SigmaSim::new_clamped(cfg).run_gemm(&a, &b)
    };
    let event = run(false).map_err(|e| format!("event-scheduler run failed: {e}"))?;
    let tick = run(true).map_err(|e| format!("lockstep oracle run failed: {e}"))?;
    if event.stats != tick.stats {
        return Err(format!(
            "stats diverge:\n  event: {:?}\n  tick:  {:?}",
            event.stats, tick.stats
        ));
    }
    let (ev, tv) = (event.result.as_slice(), tick.result.as_slice());
    if ev.len() != tv.len() {
        return Err(format!("result shapes diverge: {} vs {} elements", ev.len(), tv.len()));
    }
    for (i, (x, y)) in ev.iter().zip(tv).enumerate() {
        if x.to_bits() != y.to_bits() {
            return Err(format!(
                "result diverges at flat index {i}: event {x:?} (0x{:08x}) vs tick {y:?} (0x{:08x})",
                x.to_bits(),
                y.to_bits()
            ));
        }
    }
    Ok(())
}

/// The fixed benchmark ladder: dense/sparse/irregular shapes at 128, 512,
/// 1K, 4K, and 16K PEs. `sparse_irregular_4k` is the acceptance-gate case.
#[must_use]
pub fn cases() -> Vec<PerfCase> {
    vec![
        PerfCase {
            name: "dense_128",
            num_dpes: 4,
            dpe_size: 32,
            dataflow: Dataflow::WeightStationary,
            m: 48,
            k: 32,
            n: 32,
            density_a: 1.0,
            density_b: 1.0,
            smoke: true,
        },
        PerfCase {
            name: "sparse_512",
            num_dpes: 8,
            dpe_size: 64,
            dataflow: Dataflow::WeightStationary,
            m: 96,
            k: 64,
            n: 48,
            density_a: 0.5,
            density_b: 0.3,
            smoke: true,
        },
        PerfCase {
            name: "irregular_1k",
            num_dpes: 8,
            dpe_size: 128,
            dataflow: Dataflow::InputStationary,
            m: 120,
            k: 56,
            n: 72,
            density_a: 0.4,
            density_b: 0.85,
            smoke: true,
        },
        PerfCase {
            name: "sparse_irregular_4k",
            num_dpes: 32,
            dpe_size: 128,
            dataflow: Dataflow::WeightStationary,
            m: 384,
            k: 192,
            n: 320,
            density_a: 0.45,
            density_b: 0.25,
            smoke: true,
        },
        PerfCase {
            name: "nlr_sparse_1k",
            num_dpes: 8,
            dpe_size: 128,
            dataflow: Dataflow::NoLocalReuse,
            m: 96,
            k: 80,
            n: 96,
            density_a: 0.5,
            density_b: 0.2,
            smoke: true,
        },
        PerfCase {
            name: "dense_16k",
            num_dpes: 128,
            dpe_size: 128,
            dataflow: Dataflow::WeightStationary,
            m: 128,
            k: 128,
            n: 256,
            density_a: 1.0,
            density_b: 1.0,
            smoke: false,
        },
        PerfCase {
            name: "sparse_16k",
            num_dpes: 128,
            dpe_size: 128,
            dataflow: Dataflow::WeightStationary,
            m: 256,
            k: 128,
            n: 512,
            density_a: 0.5,
            density_b: 0.3,
            smoke: false,
        },
    ]
}

/// One timed case: simulated cycles per run and best-of-`reps` wall time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfMeasurement {
    /// The case that was run.
    pub case: PerfCase,
    /// Simulated cycles per `run_gemm` call (`stats.total_cycles()`).
    pub cycles: u64,
    /// Best (minimum) wall-clock seconds over the measurement reps.
    pub best_secs: f64,
    /// The figure of merit: `cycles / best_secs`.
    pub cycles_per_sec: f64,
    /// Number of timed repetitions.
    pub reps: usize,
}

/// Times one case: `reps` timed calls (after one untimed warmup), keeping
/// the minimum wall time. Operand generation and simulator construction are
/// excluded from the timed region.
///
/// # Errors
///
/// Returns the simulator's error if the case fails to run — every ladder
/// case is a valid GEMM, so failure is a simulator bug worth a loud stop
/// at the caller.
pub fn measure(case: &PerfCase, reps: usize) -> Result<PerfMeasurement, SigmaError> {
    measure_with(case, reps, false)
}

/// [`measure`] with the telemetry registry enabled, for quantifying the
/// instrumentation overhead (`perf_bench --telemetry` reports the on/off
/// throughput ratio per case).
///
/// # Errors
///
/// Returns the simulator's error if the case fails to run, like [`measure`].
pub fn measure_with(
    case: &PerfCase,
    reps: usize,
    telemetry: bool,
) -> Result<PerfMeasurement, SigmaError> {
    let reps = reps.max(1);
    let (a, b) = case.operands();
    let sim = case.sim_with(telemetry);
    let warm = sim.run_gemm(&a, &b)?;
    let cycles = warm.stats.total_cycles();
    let mut best_secs = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let run = sim.run_gemm(&a, &b)?;
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(run.stats, warm.stats, "simulation must be deterministic");
        std::hint::black_box(&run.result);
        best_secs = best_secs.min(secs);
    }
    let best_secs = best_secs.max(1e-9);
    #[allow(clippy::cast_precision_loss)]
    let cycles_per_sec = cycles as f64 / best_secs;
    Ok(PerfMeasurement { case: *case, cycles, best_secs, cycles_per_sec, reps })
}

/// Renders measurements as the `BENCH_sim.json` baseline. One case per
/// line so [`parse_baseline`] can stay a dependency-free line scanner;
/// `cycles_per_sec` is emitted in fixed-point notation for the same reason.
#[must_use]
pub fn to_json(measurements: &[PerfMeasurement]) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"bench\": \"sim_cycles_per_second\",\n");
    out.push_str("  \"cases\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"pes\": {}, \"dataflow\": \"{}\", \"sched\": \"{}\", \
             \"m\": {}, \"k\": {}, \
             \"n\": {}, \"density_a\": {}, \"density_b\": {}, \"cycles\": {}, \
             \"wall_ms\": {:.3}, \"cycles_per_sec\": {:.1}}}{}\n",
            m.case.name,
            m.case.pes(),
            m.case.dataflow.name(),
            m.case.scheduler_mode(),
            m.case.m,
            m.case.k,
            m.case.n,
            m.case.density_a,
            m.case.density_b,
            m.cycles,
            m.best_secs * 1e3,
            m.cycles_per_sec,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `(name, cycles_per_sec)` pairs from a `BENCH_sim.json`
/// produced by [`to_json`]. A hand-rolled scanner (no serde in this
/// workspace): one case object per line, scanned for the `"name"` and
/// `"cycles_per_sec"` fields.
#[must_use]
pub fn parse_baseline(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = field_str(line, "name") else { continue };
        let Some(cps) = field_f64(line, "cycles_per_sec") else { continue };
        out.push((name, cps));
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn field_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_covers_128_to_16k_pes() {
        let cs = cases();
        assert!(cs.iter().any(|c| c.pes() == 128));
        assert!(cs.iter().any(|c| c.pes() == 16384));
        assert!(cs.iter().any(|c| c.name == "sparse_irregular_4k" && c.pes() == 4096));
        let smoke: Vec<_> = cs.iter().filter(|c| c.smoke).collect();
        assert!(!smoke.is_empty() && smoke.len() < cs.len());
    }

    #[test]
    fn case_names_are_unique() {
        let cs = cases();
        for (i, a) in cs.iter().enumerate() {
            for b in &cs[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn operands_are_deterministic_and_shaped() {
        let c = &cases()[0];
        let (a1, b1) = c.operands();
        let (a2, b2) = c.operands();
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_eq!((a1.rows(), a1.cols()), (c.m, c.k));
        assert_eq!((b1.rows(), b1.cols()), (c.k, c.n));
    }

    #[test]
    fn measure_smallest_case_yields_positive_throughput() {
        let c = cases().into_iter().find(|c| c.name == "dense_128").unwrap();
        let m = measure(&c, 1).unwrap();
        assert!(m.cycles > 0);
        assert!(m.cycles_per_sec > 0.0);
        assert_eq!(m.reps, 1);
    }

    #[test]
    fn json_round_trips_through_the_scanner() {
        let c = cases().into_iter().find(|c| c.name == "dense_128").unwrap();
        let m = PerfMeasurement {
            case: c,
            cycles: 1234,
            best_secs: 0.5,
            cycles_per_sec: 2468.0,
            reps: 3,
        };
        let json = to_json(&[m]);
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "dense_128");
        assert!((parsed[0].1 - 2468.0).abs() < 0.1);
        assert!(json.contains("\"sched\": \"event\""), "baseline records the scheduler mode");
    }

    #[test]
    fn scheduler_mode_reflects_dataflow() {
        for c in cases() {
            let expect = if c.dataflow == Dataflow::NoLocalReuse { "wave" } else { "event" };
            assert_eq!(c.scheduler_mode(), expect, "{}", c.name);
        }
    }

    #[test]
    fn lockstep_check_passes_on_the_smoke_cases() {
        for c in cases().into_iter().filter(|c| c.pes() <= 512) {
            lockstep_check(&c).unwrap_or_else(|e| panic!("{}: {e}", c.name));
        }
    }

    #[test]
    fn scanner_ignores_non_case_lines() {
        assert!(parse_baseline("{\n  \"schema\": 1\n}\n").is_empty());
        assert_eq!(field_f64("\"cycles_per_sec\": 12.5}", "cycles_per_sec"), Some(12.5));
        assert_eq!(field_str("{\"name\": \"x\"}", "name").as_deref(), Some("x"));
        assert_eq!(field_str("no fields here", "name"), None);
    }
}
