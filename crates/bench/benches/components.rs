//! Criterion microbenchmarks of the simulator's hot components: Benes
//! routing, FAN reduction, the sparsity controller, and a full functional
//! GEMM on a small SIGMA instance.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sigma_core::{ControllerPlan, Dataflow, SigmaConfig, SigmaSim};
use sigma_interconnect::{BenesNetwork, Fan};
use sigma_matrix::gen::{sparse_uniform, Density};

fn bench_benes(c: &mut Criterion) {
    let mut g = c.benchmark_group("benes_route");
    for n in [32usize, 128, 512] {
        let net = BenesNetwork::new(n).unwrap();
        let perm: Vec<usize> = (0..n).rev().collect();
        g.bench_with_input(BenchmarkId::new("permutation", n), &n, |b, _| {
            b.iter(|| net.route_permutation(black_box(&perm)).unwrap())
        });
        let mc: Vec<Option<usize>> = (0..n).map(|o| Some(o / 4)).collect();
        g.bench_with_input(BenchmarkId::new("multicast", n), &n, |b, _| {
            b.iter(|| net.route_monotone_multicast(black_box(&mc)).unwrap())
        });
    }
    g.finish();
}

fn bench_fan(c: &mut Criterion) {
    let mut g = c.benchmark_group("fan_reduce");
    for n in [32usize, 128, 512] {
        let fan = Fan::new(n).unwrap();
        let values: Vec<f32> = (0..n).map(|i| i as f32 * 0.5 + 1.0).collect();
        let ids: Vec<Option<u32>> = (0..n).map(|i| Some((i / 5) as u32)).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| fan.reduce(black_box(&values), black_box(&ids)).unwrap())
        });
    }
    g.finish();
}

fn bench_controller(c: &mut Criterion) {
    let a = sparse_uniform(128, 128, Density::new(0.2).unwrap(), 3);
    let b = sparse_uniform(128, 128, Density::new(0.5).unwrap(), 4);
    c.bench_function("controller_plan_128x128", |bn| {
        bn.iter(|| ControllerPlan::build(black_box(&a), black_box(b.bitmap()), 1024))
    });
}

fn bench_full_gemm(c: &mut Criterion) {
    let sim =
        SigmaSim::new(SigmaConfig::new(4, 32, 128, Dataflow::WeightStationary).unwrap()).unwrap();
    let a = sparse_uniform(48, 48, Density::new(0.5).unwrap(), 5);
    let b = sparse_uniform(48, 48, Density::new(0.2).unwrap(), 6);
    c.bench_function("sigma_functional_gemm_48", |bn| {
        bn.iter(|| sim.run_gemm(black_box(&a), black_box(&b)).unwrap())
    });
}

fn bench_functional_baselines(c: &mut Criterion) {
    use sigma_baselines::{EieSim, OuterProductSim, SystolicSim};
    let a = sparse_uniform(32, 32, Density::new(0.4).unwrap(), 7).to_dense();
    let b = sparse_uniform(32, 32, Density::new(0.4).unwrap(), 8).to_dense();
    c.bench_function("systolic_functional_ws_32", |bn| {
        let sim = SystolicSim::new(8, 8);
        bn.iter(|| sim.run_gemm(black_box(&a), black_box(&b)))
    });
    c.bench_function("systolic_functional_os_32", |bn| {
        let sim = SystolicSim::new(8, 8);
        bn.iter(|| sim.run_gemm_output_stationary(black_box(&a), black_box(&b)))
    });
    c.bench_function("eie_functional_32", |bn| {
        let sim = EieSim::new(16, 2);
        bn.iter(|| sim.run_gemm(black_box(&a), black_box(&b)))
    });
    c.bench_function("outerspace_functional_32", |bn| {
        let sim = OuterProductSim::new(64, 16);
        bn.iter(|| sim.run_gemm(black_box(&a), black_box(&b)))
    });
}

fn bench_butterfly_blocking(c: &mut Criterion) {
    use sigma_interconnect::Butterfly;
    let bf = Butterfly::new(64).unwrap();
    c.bench_function("butterfly_random_waves_64", |bn| {
        bn.iter(|| bf.average_random_waves(black_box(4)))
    });
}

criterion_group!(
    benches,
    bench_benes,
    bench_fan,
    bench_controller,
    bench_full_gemm,
    bench_functional_baselines,
    bench_butterfly_blocking
);
criterion_main!(benches);
