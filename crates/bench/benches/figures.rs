//! Criterion benches that exercise every figure regenerator end-to-end,
//! so `cargo bench --workspace` covers each experiment path.

use criterion::{criterion_group, criterion_main, Criterion};
use sigma_bench::figs;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig01_workloads", |b| b.iter(figs::fig01::table));
    g.bench_function("fig02_op_breakdown", |b| b.iter(figs::fig02::table));
    g.bench_function("fig03_gpu_efficiency", |b| {
        b.iter(|| (figs::fig03::table_dense(), figs::fig03::table_sparse()))
    });
    g.bench_function("fig04_mapping_examples", |b| b.iter(figs::fig04::table));
    g.bench_function("fig06_fan_comparison", |b| b.iter(figs::fig06::table));
    g.bench_function("fig07_compression", |b| b.iter(figs::fig07::table));
    g.bench_function("fig08_area_power", |b| b.iter(figs::fig08::table));
    g.bench_function("fig09_dse", |b| b.iter(figs::fig09::table));
    g.bench_function("fig10_dataflows", |b| b.iter(figs::fig10::table));
    g.bench_function("fig11_progressive", |b| b.iter(figs::fig11::table));
    g.bench_function("fig12_dense_and_sparse", |b| {
        b.iter(|| (figs::fig12::table_dense(), figs::fig12::table_sparse()))
    });
    g.bench_function("fig13_energy", |b| b.iter(figs::fig13::table));
    g.bench_function("fig14_sparse_accels", |b| b.iter(figs::fig14::table));
    g.finish();
}

criterion_group!(figures, bench_figures);
criterion_main!(figures);
