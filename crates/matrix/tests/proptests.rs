//! Property-based tests for the matrix substrate.

use proptest::prelude::*;
use sigma_matrix::formats::{metadata_bits, rlc_symbol_count, CompressionKind, Coo, Csc, Csr, Rlc};
use sigma_matrix::gen::{sparse_uniform, Density};
use sigma_matrix::{Matrix, SparseMatrix};

/// Strategy: a small random sparse matrix described by (rows, cols, density seed).
fn small_sparse() -> impl Strategy<Value = SparseMatrix> {
    (1usize..12, 1usize..12, 0u8..=10, any::<u64>()).prop_map(|(r, c, d10, seed)| {
        sparse_uniform(r, c, Density::new(f64::from(d10) / 10.0).unwrap(), seed)
    })
}

proptest! {
    #[test]
    fn sparse_roundtrip(s in small_sparse()) {
        let d = s.to_dense();
        let s2 = SparseMatrix::from_dense(&d);
        prop_assert_eq!(&s, &s2);
        prop_assert_eq!(s.nnz(), d.nnz());
    }

    #[test]
    fn csr_csc_coo_rlc_roundtrip(s in small_sparse()) {
        let d = s.to_dense();
        prop_assert_eq!(Csr::from_dense(&d).to_dense(), d.clone());
        prop_assert_eq!(Csc::from_dense(&d).to_dense(), d.clone());
        prop_assert_eq!(Coo::from_dense(&d).to_dense(), d.clone());
        for bits in [1u32, 2, 4, 8] {
            prop_assert_eq!(Rlc::from_dense(&d, bits).to_dense(), d.clone());
        }
    }

    #[test]
    fn rlc_symbol_count_agrees_with_codec(s in small_sparse()) {
        let d = s.to_dense();
        for bits in [2u32, 4] {
            prop_assert_eq!(
                rlc_symbol_count(s.bitmap(), bits),
                Rlc::from_dense(&d, bits).symbol_count() as u64
            );
        }
    }

    #[test]
    fn bitmap_metadata_constant_in_density(
        rows in 1usize..20, cols in 1usize..20, seed in any::<u64>()
    ) {
        let lo = sparse_uniform(rows, cols, Density::new(0.1).unwrap(), seed);
        let hi = sparse_uniform(rows, cols, Density::new(0.9).unwrap(), seed.wrapping_add(1));
        prop_assert_eq!(
            metadata_bits(CompressionKind::Bitmap, lo.bitmap()),
            metadata_bits(CompressionKind::Bitmap, hi.bitmap())
        );
    }

    #[test]
    fn matmul_identity_left_right(s in small_sparse()) {
        let d = s.to_dense();
        prop_assert_eq!(d.matmul(&Matrix::identity(d.cols())), d.clone());
        prop_assert_eq!(Matrix::identity(d.rows()).matmul(&d), d);
    }

    #[test]
    fn matmul_transpose_identity(
        m in 1usize..8, n in 1usize..8, k in 1usize..8, seed in any::<u64>()
    ) {
        // (A B)^T == B^T A^T
        let a = sparse_uniform(m, k, Density::new(0.6).unwrap(), seed).to_dense();
        let b = sparse_uniform(k, n, Density::new(0.6).unwrap(), seed.wrapping_add(9)).to_dense();
        let lhs = a.matmul(&b).transposed();
        let rhs = b.transposed().matmul(&a.transposed());
        prop_assert!(lhs.approx_eq(&rhs, 1e-4));
    }

    #[test]
    fn backward_gemms_match_explicit_transpose(
        m in 1usize..8, n in 1usize..8, k in 1usize..8, seed in any::<u64>()
    ) {
        let a = sparse_uniform(k, m, Density::new(0.7).unwrap(), seed).to_dense();
        let b = sparse_uniform(k, n, Density::new(0.7).unwrap(), seed.wrapping_add(3)).to_dense();
        prop_assert!(a.matmul_at(&b).approx_eq(&a.transposed().matmul(&b), 1e-4));

        let c = sparse_uniform(m, k, Density::new(0.7).unwrap(), seed.wrapping_add(5)).to_dense();
        let e = sparse_uniform(n, k, Density::new(0.7).unwrap(), seed.wrapping_add(7)).to_dense();
        prop_assert!(c.matmul_bt(&e).approx_eq(&c.matmul(&e.transposed()), 1e-4));
    }

    #[test]
    fn bitmap_iter_ones_matches_count(s in small_sparse()) {
        prop_assert_eq!(s.bitmap().iter_ones().count(), s.bitmap().count_ones());
        let per_row: usize = (0..s.rows()).map(|r| s.bitmap().row_count_ones(r)).sum();
        prop_assert_eq!(per_row, s.nnz());
        let per_col: usize = (0..s.cols()).map(|c| s.bitmap().col_count_ones(c)).sum();
        prop_assert_eq!(per_col, s.nnz());
    }

    /// ABFT detects (and at single-site granularity, locates) every
    /// injected single bit flip whose delta clears the tolerance, and
    /// never flags the uncorrupted product.
    #[test]
    fn abft_flags_every_single_bit_flip(
        m in 1usize..10, n in 1usize..10, k in 1usize..10,
        r_pick in any::<u64>(), c_pick in any::<u64>(),
        bit in 20u32..31, seed in any::<u64>()
    ) {
        use sigma_matrix::abft::{check_product, correct_single, residual_tolerance, AbftVerdict};

        let a = sparse_uniform(m, k, Density::new(0.8).unwrap(), seed).to_dense();
        let b = sparse_uniform(k, n, Density::new(0.8).unwrap(), seed ^ 0xf1).to_dense();
        let c = a.matmul(&b);
        let tol = residual_tolerance(m, n, k);
        prop_assert!(check_product(&a, &b, &c, tol).is_clean(), "false positive");

        let (row, col) = (r_pick as usize % m, c_pick as usize % n);
        let clean_value = c.get(row, col);
        let flipped = f32::from_bits(clean_value.to_bits() ^ (1u32 << bit));
        let mut corrupted = c.clone();
        corrupted.set(row, col, flipped);
        let delta = flipped - clean_value;
        if delta.is_nan() || delta.abs() > tol {
            let verdict = check_product(&a, &b, &corrupted, tol);
            prop_assert!(!verdict.is_clean(), "numeric-effect flip escaped");
            if let AbftVerdict::SingleSite { row: fr, col: fc, delta: fd } = verdict {
                prop_assert_eq!((fr, fc), (row, col), "located the wrong element");
                correct_single(&mut corrupted, fr, fc, fd);
                // The repair subtracts a float *estimate* of the delta,
                // so the restored element is tolerance-equal up to the
                // estimate's own precision (huge exponent-bit deltas
                // cannot land closer than |delta| * 2^-24).
                if fd.is_finite() {
                    let repair_err = (corrupted.get(row, col) - clean_value).abs();
                    prop_assert!(
                        repair_err <= tol + fd.abs() * 1e-5,
                        "repair left error {repair_err} for delta {fd}"
                    );
                }
            }
        }
    }
}
