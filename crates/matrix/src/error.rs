//! Error types for matrix construction and GEMM shape checking.

use std::error::Error;
use std::fmt;

/// Error returned when two matrices have incompatible shapes for an
/// operation (e.g. the inner dimensions of a GEMM disagree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionError {
    /// Human-readable description of the operation that failed.
    pub op: &'static str,
    /// Shape of the left-hand operand, `(rows, cols)`.
    pub lhs: (usize, usize),
    /// Shape of the right-hand operand, `(rows, cols)`.
    pub rhs: (usize, usize),
}

impl fmt::Display for DimensionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "incompatible dimensions for {}: {}x{} vs {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl Error for DimensionError {}

/// Errors produced while constructing or validating matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The provided buffer length does not equal `rows * cols`.
    DataLength {
        /// Expected element count (`rows * cols`).
        expected: usize,
        /// Length of the buffer that was provided.
        actual: usize,
    },
    /// A dimension mismatch between two operands.
    Dimension(DimensionError),
    /// A buffer element was NaN or infinite. Operand matrices must be
    /// finite — non-finite values poison every downstream accumulation
    /// and make verification meaningless.
    NonFinite {
        /// Index of the first offending element in the row-major buffer.
        index: usize,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DataLength { expected, actual } => {
                write!(f, "data length {actual} does not match rows*cols = {expected}")
            }
            MatrixError::Dimension(d) => d.fmt(f),
            MatrixError::NonFinite { index } => {
                write!(f, "non-finite value (NaN or infinity) at buffer index {index}")
            }
        }
    }
}

impl Error for MatrixError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MatrixError::Dimension(d) => Some(d),
            MatrixError::DataLength { .. } | MatrixError::NonFinite { .. } => None,
        }
    }
}

impl From<DimensionError> for MatrixError {
    fn from(e: DimensionError) -> Self {
        MatrixError::Dimension(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let d = DimensionError { op: "matmul", lhs: (2, 3), rhs: (4, 5) };
        assert_eq!(d.to_string(), "incompatible dimensions for matmul: 2x3 vs 4x5");
        let m: MatrixError = d.into();
        assert!(m.to_string().contains("matmul"));
        let l = MatrixError::DataLength { expected: 6, actual: 5 };
        assert!(l.to_string().contains("5"));
    }

    #[test]
    fn error_source_chain() {
        use std::error::Error as _;
        let d = DimensionError { op: "matmul", lhs: (1, 1), rhs: (2, 2) };
        let m: MatrixError = d.into();
        assert!(m.source().is_some());
        assert!(MatrixError::DataLength { expected: 1, actual: 2 }.source().is_none());
    }
}
