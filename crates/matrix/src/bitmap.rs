//! Bit-packed occupancy bitmap — SIGMA's native compression metadata.
//!
//! Sec. IV-C of the paper: every element of a matrix carries one bit that
//! says whether it is non-zero. The metadata cost is therefore a constant
//! `rows * cols` bits irrespective of sparsity, which is what makes the
//! format attractive for *arbitrary, unstructured* sparsity.

/// A 2-D bit matrix marking the non-zero positions of a matrix.
///
/// Bits are stored row-major, packed into `u64` words.
///
/// ```
/// use sigma_matrix::Bitmap;
/// let mut bm = Bitmap::new(2, 3);
/// bm.set(0, 1, true);
/// bm.set(1, 2, true);
/// assert_eq!(bm.count_ones(), 2);
/// assert!(bm.get(0, 1));
/// assert!(!bm.get(0, 0));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitmap {
    rows: usize,
    cols: usize,
    words: Vec<u64>,
}

impl Bitmap {
    /// Creates an all-zero bitmap of the given shape.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        let bits = rows * cols;
        Self { rows, cols, words: vec![0; bits.div_ceil(64)] }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn index(&self, r: usize, c: usize) -> (usize, u32) {
        debug_assert!(r < self.rows && c < self.cols);
        let bit = r * self.cols + c;
        (bit / 64, (bit % 64) as u32)
    }

    /// Bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if out of bounds; release builds return an
    /// arbitrary in-buffer bit only when indices are in range of the buffer,
    /// so callers must stay in bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.rows && c < self.cols, "bitmap index ({r},{c}) out of bounds");
        let (w, b) = self.index(r, c);
        (self.words[w] >> b) & 1 == 1
    }

    /// Sets the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        assert!(r < self.rows && c < self.cols, "bitmap index ({r},{c}) out of bounds");
        let (w, b) = self.index(r, c);
        if v {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Number of set bits (non-zero elements).
    #[inline]
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Popcount of the bit range `[start, end)` over the packed words:
    /// whole words in the interior, masked partial words at the edges.
    fn count_ones_bit_range(&self, start: usize, end: usize) -> usize {
        if start >= end {
            return 0;
        }
        let (sw, sb) = (start / 64, (start % 64) as u32);
        let (ew, eb) = (end / 64, (end % 64) as u32);
        if sw == ew {
            let width = eb - sb;
            let mask = ((1u64 << width) - 1) << sb;
            return (self.words[sw] & mask).count_ones() as usize;
        }
        let mut n = (self.words[sw] >> sb).count_ones() as usize;
        n += self.words[sw + 1..ew].iter().map(|w| w.count_ones() as usize).sum::<usize>();
        if eb > 0 {
            n += (self.words[ew] & ((1u64 << eb) - 1)).count_ones() as usize;
        }
        n
    }

    /// Number of backing `u64` storage words.
    #[must_use]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// XORs `mask` into storage word `word` — a bitmap-word upset in the
    /// sparsity controller's metadata SRAM. Bits past the logical end of
    /// the bitmap are masked off so the corruption cannot create
    /// out-of-range occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `word >= word_count()`.
    pub fn xor_word(&mut self, word: usize, mask: u64) {
        assert!(word < self.words.len(), "bitmap word {word} out of range");
        let bits = self.rows * self.cols;
        let first_bit = word * 64;
        let valid = bits.saturating_sub(first_bit).min(64);
        let keep = if valid == 64 { u64::MAX } else { (1u64 << valid) - 1 };
        self.words[word] ^= mask & keep;
    }

    /// Number of set bits in row `r` (word-at-a-time popcount; rows are
    /// contiguous bit ranges in the row-major packing).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    #[must_use]
    pub fn row_count_ones(&self, r: usize) -> usize {
        assert!(r < self.rows, "bitmap row {r} out of bounds");
        self.count_ones_bit_range(r * self.cols, (r + 1) * self.cols)
    }

    /// Number of set bits in column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    #[must_use]
    pub fn col_count_ones(&self, c: usize) -> usize {
        (0..self.rows).filter(|&r| self.get(r, c)).count()
    }

    /// OR of all bits in row `r` — one step of the controller's `REGOR`
    /// computation (Fig. 5, Step ii). Word-at-a-time with early exit.
    #[inline]
    #[must_use]
    pub fn row_or(&self, r: usize) -> bool {
        assert!(r < self.rows, "bitmap row {r} out of bounds");
        let (start, end) = (r * self.cols, (r + 1) * self.cols);
        if start >= end {
            return false;
        }
        let (sw, sb) = (start / 64, (start % 64) as u32);
        let (ew, eb) = (end / 64, (end % 64) as u32);
        if sw == ew {
            let mask = ((1u64 << (eb - sb)) - 1) << sb;
            return self.words[sw] & mask != 0;
        }
        if self.words[sw] >> sb != 0 {
            return true;
        }
        if self.words[sw + 1..ew].iter().any(|&w| w != 0) {
            return true;
        }
        eb > 0 && self.words[ew] & ((1u64 << eb) - 1) != 0
    }

    /// The column vector of per-row ORs — the full `REGOR` register file of
    /// the sparsity controller (Fig. 5, Step ii).
    #[must_use]
    pub fn rows_or(&self) -> Vec<bool> {
        (0..self.rows).map(|r| self.row_or(r)).collect()
    }

    /// Element-wise AND with another bitmap of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "bitmap shape mismatch");
        let mut out = self.clone();
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
        out
    }

    /// The metadata size of the bitmap format in bits: exactly one bit per
    /// element (the value SIGMA reports in Fig. 7).
    #[must_use]
    pub fn metadata_bits(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// Iterator over `(row, col)` coordinates of set bits in row-major
    /// order — the order in which the SIGMA controller assigns counter
    /// values to stationary elements (Fig. 5, Step v).
    ///
    /// Skips zero words and walks set bits with `trailing_zeros`, so cost
    /// scales with `nnz + words`, not `rows * cols`. Bits past the logical
    /// end are never set (`set`/`xor_word` maintain that invariant), so the
    /// word scan cannot yield out-of-range coordinates.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter { bitmap: self, word_idx: 0, pending: self.words.first().copied().unwrap_or(0) }
    }

    /// Storage word `w` restricted to the bit range `[start, end)`:
    /// bits below `start` and at-or-above `end` are cleared.
    #[inline]
    fn masked_word(&self, w: usize, start: usize, end: usize) -> u64 {
        let base = w * 64;
        let mut word = self.words[w];
        if start > base {
            word &= u64::MAX << (start - base);
        }
        if end < base + 64 {
            word &= (1u64 << (end - base)) - 1;
        }
        word
    }

    /// Iterator over the column indices of set bits in row `r`, in
    /// ascending order — the word-level primitive behind the epoch
    /// scheduler's per-fold send batching: one pass over a streaming
    /// contraction row yields every step that consumes it.
    ///
    /// Like [`Bitmap::iter_ones`], zero words are skipped and set bits
    /// are walked with `trailing_zeros`, so cost scales with
    /// `row nnz + row words`, not `cols`. Rows that straddle word
    /// boundaries (the row-major packing does not pad) are masked at
    /// both edges.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_iter_ones(&self, r: usize) -> RowOnesIter<'_> {
        assert!(r < self.rows, "bitmap row {r} out of bounds");
        let start = r * self.cols;
        let end = start + self.cols;
        let word_idx = start / 64;
        let pending = if start < end { self.masked_word(word_idx, start, end) } else { 0 };
        RowOnesIter { bitmap: self, start, end, word_idx, pending }
    }

    /// The transpose of this bitmap.
    #[must_use]
    pub fn transposed(&self) -> Bitmap {
        let mut out = Bitmap::new(self.cols, self.rows);
        for (r, c) in self.iter_ones() {
            out.set(c, r, true);
        }
        out
    }

    /// Density (fraction of set bits), in `[0, 1]`.
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.rows * self.cols == 0 {
            return 0.0;
        }
        self.count_ones() as f64 / (self.rows * self.cols) as f64
    }
}

/// Word-skipping iterator over the set bits of a [`Bitmap`] in row-major
/// order (see [`Bitmap::iter_ones`]).
#[derive(Debug, Clone)]
pub struct OnesIter<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    pending: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = (usize, usize);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        while self.pending == 0 {
            self.word_idx += 1;
            self.pending = *self.bitmap.words.get(self.word_idx)?;
        }
        let tz = self.pending.trailing_zeros() as usize;
        self.pending &= self.pending - 1;
        let bit = self.word_idx * 64 + tz;
        Some((bit / self.bitmap.cols, bit % self.bitmap.cols))
    }
}

/// Word-skipping iterator over the set bits of one [`Bitmap`] row,
/// yielding column indices in ascending order (see
/// [`Bitmap::row_iter_ones`]).
#[derive(Debug, Clone)]
pub struct RowOnesIter<'a> {
    bitmap: &'a Bitmap,
    /// First bit of the row in the packed bit address space.
    start: usize,
    /// One past the last bit of the row.
    end: usize,
    word_idx: usize,
    pending: u64,
}

impl Iterator for RowOnesIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        while self.pending == 0 {
            self.word_idx += 1;
            if self.word_idx * 64 >= self.end {
                return None;
            }
            self.pending = self.bitmap.masked_word(self.word_idx, self.start, self.end);
        }
        let tz = self.pending.trailing_zeros() as usize;
        self.pending &= self.pending - 1;
        Some(self.word_idx * 64 + tz - self.start)
    }
}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Bitmap {}x{} ({} ones)", self.rows, self.cols, self.count_ones())?;
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{}", u8::from(self.get(r, c)))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker(rows: usize, cols: usize) -> Bitmap {
        let mut b = Bitmap::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if (r + c) % 2 == 0 {
                    b.set(r, c, true);
                }
            }
        }
        b
    }

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitmap::new(3, 70); // spans multiple u64 words
        b.set(2, 69, true);
        b.set(0, 0, true);
        assert!(b.get(2, 69));
        assert!(b.get(0, 0));
        assert!(!b.get(1, 35));
        b.set(2, 69, false);
        assert!(!b.get(2, 69));
    }

    #[test]
    fn count_ones_counts() {
        let b = checker(4, 4);
        assert_eq!(b.count_ones(), 8);
        assert_eq!(b.row_count_ones(0), 2);
        assert_eq!(b.col_count_ones(1), 2);
    }

    #[test]
    fn row_or_and_regor() {
        let mut b = Bitmap::new(3, 4);
        b.set(1, 2, true);
        assert_eq!(b.rows_or(), vec![false, true, false]);
        assert!(b.row_or(1));
        assert!(!b.row_or(0));
    }

    #[test]
    fn and_intersects() {
        let a = checker(4, 4);
        let mut b = Bitmap::new(4, 4);
        b.set(0, 0, true);
        b.set(0, 1, true);
        let c = a.and(&b);
        assert_eq!(c.count_ones(), 1);
        assert!(c.get(0, 0));
    }

    #[test]
    fn metadata_is_one_bit_per_element() {
        assert_eq!(Bitmap::new(1632, 36548).metadata_bits(), 1632 * 36548);
    }

    #[test]
    fn iter_ones_row_major_order() {
        let mut b = Bitmap::new(2, 3);
        b.set(1, 0, true);
        b.set(0, 2, true);
        let v: Vec<_> = b.iter_ones().collect();
        assert_eq!(v, vec![(0, 2), (1, 0)]);
    }

    #[test]
    fn xor_word_flips_bits_and_masks_tail() {
        let mut bm = Bitmap::new(3, 3); // 9 bits -> one word, 9 valid bits
        assert_eq!(bm.word_count(), 1);
        bm.xor_word(0, u64::MAX);
        // Only the 9 in-range bits may flip.
        assert_eq!(bm.count_ones(), 9);
        bm.xor_word(0, 0b101);
        assert!(!bm.get(0, 0));
        assert!(bm.get(0, 1));
        assert!(!bm.get(0, 2));
        assert_eq!(bm.count_ones(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn xor_word_out_of_range_panics() {
        Bitmap::new(2, 2).xor_word(1, 1);
    }

    #[test]
    fn row_ops_agree_with_per_bit_reference_across_word_boundaries() {
        // 5 x 137 spans many words with rows straddling word boundaries.
        let mut b = Bitmap::new(5, 137);
        for i in 0..(5 * 137) {
            if i % 7 == 0 || i % 31 == 3 {
                b.set(i / 137, i % 137, true);
            }
        }
        for r in 0..5 {
            let reference = (0..137).filter(|&c| b.get(r, c)).count();
            assert_eq!(b.row_count_ones(r), reference, "row {r}");
            assert_eq!(b.row_or(r), reference > 0, "row {r}");
        }
        let naive: Vec<(usize, usize)> = (0..5)
            .flat_map(|r| (0..137).map(move |c| (r, c)))
            .filter(|&(r, c)| b.get(r, c))
            .collect();
        let fast: Vec<_> = b.iter_ones().collect();
        assert_eq!(fast, naive, "iter_ones must stay row-major");
    }

    #[test]
    fn row_ops_on_word_aligned_and_empty_shapes() {
        let mut b = Bitmap::new(3, 64); // rows exactly word-aligned
        b.set(1, 0, true);
        b.set(1, 63, true);
        assert_eq!(b.row_count_ones(0), 0);
        assert_eq!(b.row_count_ones(1), 2);
        assert!(b.row_or(1));
        assert!(!b.row_or(2));
        let empty = Bitmap::new(4, 0);
        assert_eq!(empty.row_count_ones(2), 0);
        assert!(!empty.row_or(0));
        assert_eq!(empty.iter_ones().count(), 0);
    }

    /// Per-bit reference check of every word-level row helper on one shape.
    fn assert_row_helpers_match_reference(b: &Bitmap) {
        for r in 0..b.rows() {
            let reference: Vec<usize> = (0..b.cols()).filter(|&c| b.get(r, c)).collect();
            assert_eq!(b.row_count_ones(r), reference.len(), "row_count_ones row {r}");
            assert_eq!(b.row_or(r), !reference.is_empty(), "row_or row {r}");
            let fast: Vec<usize> = b.row_iter_ones(r).collect();
            assert_eq!(fast, reference, "row_iter_ones row {r}");
        }
        let naive: Vec<(usize, usize)> = (0..b.rows())
            .flat_map(|r| (0..b.cols()).map(move |c| (r, c)))
            .filter(|&(r, c)| b.get(r, c))
            .collect();
        let fast: Vec<_> = b.iter_ones().collect();
        assert_eq!(fast, naive, "iter_ones must stay row-major");
    }

    #[test]
    fn row_helpers_on_empty_rows_and_empty_shapes() {
        // All-zero rows between populated ones.
        let mut b = Bitmap::new(5, 70);
        b.set(0, 69, true);
        b.set(4, 0, true);
        assert_row_helpers_match_reference(&b);
        for r in 1..4 {
            assert_eq!(b.row_count_ones(r), 0);
            assert!(!b.row_or(r));
            assert_eq!(b.row_iter_ones(r).count(), 0);
        }
        // Zero-column shape: every row is an empty bit range.
        let degenerate = Bitmap::new(4, 0);
        assert_row_helpers_match_reference(&degenerate);
        assert_eq!(degenerate.row_iter_ones(3).count(), 0);
        // Fully empty but non-degenerate bitmap.
        assert_row_helpers_match_reference(&Bitmap::new(3, 100));
    }

    #[test]
    fn row_helpers_on_exact_word_multiples() {
        // cols = 64 and 128: rows land exactly on word boundaries, so the
        // edge masks must degenerate to whole words without shifting by 64.
        for cols in [64usize, 128] {
            let mut b = Bitmap::new(3, cols);
            for c in 0..cols {
                if c % 3 == 0 {
                    b.set(0, c, true);
                }
            }
            b.set(1, 0, true);
            b.set(1, 63, true);
            b.set(1, cols - 1, true);
            assert_row_helpers_match_reference(&b);
            assert_eq!(b.row_count_ones(0), cols.div_ceil(3));
            let edges: Vec<usize> = b.row_iter_ones(1).collect();
            if cols == 64 {
                assert_eq!(edges, vec![0, 63]);
            } else {
                assert_eq!(edges, vec![0, 63, 127]);
            }
        }
        // A single 64-wide row occupying exactly one full word.
        let mut one = Bitmap::new(1, 64);
        one.xor_word(0, u64::MAX);
        assert_eq!(one.row_count_ones(0), 64);
        assert_eq!(one.row_iter_ones(0).count(), 64);
    }

    #[test]
    fn row_helpers_on_trailing_partial_words() {
        // cols = 65 and 100: every row straddles word boundaries at
        // unaligned offsets and the last row ends in a partial word.
        for cols in [65usize, 100] {
            let mut b = Bitmap::new(4, cols);
            for i in 0..(4 * cols) {
                if i % 5 == 0 || i % 17 == 2 {
                    b.set(i / cols, i % cols, true);
                }
            }
            // Force bits at every row's first and last column so both
            // edge masks are exercised with occupancy.
            for r in 0..4 {
                b.set(r, 0, true);
                b.set(r, cols - 1, true);
            }
            assert_row_helpers_match_reference(&b);
            // Neighboring rows must not leak through the masks: clearing
            // a whole row leaves adjacent rows untouched.
            let mut cleared = b.clone();
            for c in 0..cols {
                cleared.set(2, c, false);
            }
            assert_eq!(cleared.row_count_ones(2), 0);
            assert!(!cleared.row_or(2));
            assert_eq!(cleared.row_count_ones(1), b.row_count_ones(1));
            assert_eq!(cleared.row_count_ones(3), b.row_count_ones(3));
            assert_row_helpers_match_reference(&cleared);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_iter_ones_out_of_bounds_panics() {
        let _ = Bitmap::new(2, 8).row_iter_ones(2);
    }

    #[test]
    fn transpose_moves_bits() {
        let mut b = Bitmap::new(2, 3);
        b.set(0, 2, true);
        let t = b.transposed();
        assert!(t.get(2, 0));
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.count_ones(), 1);
    }

    #[test]
    fn density_fraction() {
        assert!((checker(4, 4).density() - 0.5).abs() < 1e-12);
        assert_eq!(Bitmap::new(2, 2).density(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let _ = Bitmap::new(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn and_shape_mismatch_panics() {
        let _ = Bitmap::new(2, 2).and(&Bitmap::new(2, 3));
    }
}
