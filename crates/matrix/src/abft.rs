//! Algorithm-based fault tolerance (ABFT) checksums for GEMM.
//!
//! The classic Huang–Abraham scheme: for `C = A·B`, the row sums of `C`
//! must equal `A · (B·1)` and the column sums must equal `(1ᵀ·A) · B`,
//! where `1` is the all-ones vector. Both sides are `O(MK + KN + MN)` to
//! evaluate — asymptotically free next to the `O(MNK)` product — and a
//! single corrupted output element `C[i][j]` perturbs exactly one row
//! residual (`i`) and one column residual (`j`) by the same delta, so it
//! can be *located* and *corrected* in place, not just detected.
//!
//! SIGMA targets DNN training, where a silent datapath error poisons
//! every downstream iteration; these checksums are the detection half of
//! the fault-tolerance story (the injection half lives in `sigma-core`).
//!
//! Floating-point accumulation makes the residuals non-zero even for a
//! correct product, so every check takes a tolerance;
//! [`residual_tolerance`] scales one from the problem shape the same way
//! the harness scales its verification tolerance with `K`.

use crate::Matrix;

/// Outcome of an ABFT checksum pass over a candidate product.
#[derive(Debug, Clone, PartialEq)]
pub enum AbftVerdict {
    /// All residuals within tolerance.
    Clean,
    /// Exactly one row and one column residual out of tolerance: the
    /// signature of a single corrupted element.
    SingleSite {
        /// Row of the corrupted element.
        row: usize,
        /// Column of the corrupted element.
        col: usize,
        /// Observed-minus-expected delta at that element (subtract it to
        /// correct, see [`correct_single`]).
        delta: f32,
    },
    /// More than one row and/or column flagged: multiple corruptions (or
    /// corruptions that cancel within a line). Not locatable by this
    /// scheme — the caller must recompute.
    MultiSite {
        /// Rows whose residuals are out of tolerance.
        rows: Vec<usize>,
        /// Columns whose residuals are out of tolerance.
        cols: Vec<usize>,
    },
}

impl AbftVerdict {
    /// `true` when the check found nothing wrong.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        matches!(self, AbftVerdict::Clean)
    }
}

/// A residual tolerance scaled from the problem shape.
///
/// A correct f32 product keeps each checksum residual within roughly
/// `eps · terms · magnitude`, where `terms ~ K·max(M,N)` values of
/// magnitude ~1 (the generators draw from `(0.5, 1.5)`) enter each
/// residual sum. The factor below leaves more than an order of magnitude
/// of headroom over that bound while staying far below the delta of any
/// fault worth detecting.
#[must_use]
pub fn residual_tolerance(m: usize, n: usize, k: usize) -> f32 {
    let terms = (k.max(1) * m.max(n).max(1)) as f32;
    (4e-6 * terms).max(1e-4)
}

/// Runs the row/column checksum test on a candidate product `c ≈ a·b`.
///
/// Residuals whose magnitude exceeds `tol` — or that are NaN/infinite —
/// flag their row or column; the pattern of flagged lines yields the
/// verdict.
///
/// # Panics
///
/// Panics if the shapes are inconsistent (`a: M×K`, `b: K×N`, `c: M×N`).
#[must_use]
pub fn check_product(a: &Matrix, b: &Matrix, c: &Matrix, tol: f32) -> AbftVerdict {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(b.rows(), k, "inner dimensions disagree");
    assert_eq!((c.rows(), c.cols()), (m, n), "product shape disagrees");

    // B's row sums (the `B·1` column checksum vector).
    let b_row_sums: Vec<f32> = (0..k).map(|kk| (0..n).map(|j| b.get(kk, j)).sum()).collect();
    // A's column sums (the `1ᵀ·A` row checksum vector).
    let a_col_sums: Vec<f32> = (0..k).map(|kk| (0..m).map(|i| a.get(i, kk)).sum()).collect();

    // A NaN residual must flag its line too.
    let out_of_tol = |r: f32| !r.is_finite() || r.abs() > tol;

    let mut rows = Vec::new();
    let mut row_delta = 0.0f32;
    for i in 0..m {
        let observed: f32 = (0..n).map(|j| c.get(i, j)).sum();
        let expected: f32 = b_row_sums.iter().enumerate().map(|(kk, s)| a.get(i, kk) * s).sum();
        let r = observed - expected;
        if out_of_tol(r) {
            rows.push(i);
            row_delta = r;
        }
    }

    let mut cols = Vec::new();
    for j in 0..n {
        let observed: f32 = (0..m).map(|i| c.get(i, j)).sum();
        let expected: f32 = a_col_sums.iter().enumerate().map(|(kk, s)| s * b.get(kk, j)).sum();
        if out_of_tol(observed - expected) {
            cols.push(j);
        }
    }

    match (rows.len(), cols.len()) {
        (0, 0) => AbftVerdict::Clean,
        (1, 1) => AbftVerdict::SingleSite { row: rows[0], col: cols[0], delta: row_delta },
        _ => AbftVerdict::MultiSite { rows, cols },
    }
}

/// Corrects a located single-site error in place: subtracts `delta` from
/// `c[row][col]`. Callers should re-run [`check_product`] afterwards —
/// a NaN/infinity corruption is located but not recoverable by
/// subtraction.
///
/// # Panics
///
/// Panics if `(row, col)` is out of bounds.
pub fn correct_single(c: &mut Matrix, row: usize, col: usize, delta: f32) {
    let fixed = c.get(row, col) - delta;
    c.set(row, col, if fixed.is_finite() { fixed } else { 0.0 });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{dense_uniform, Density};

    fn product(m: usize, n: usize, k: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let a = dense_uniform(m, k, seed);
        let b = dense_uniform(k, n, seed ^ 0xabcd);
        let c = a.matmul(&b);
        (a, b, c)
    }

    #[test]
    fn clean_product_passes() {
        for seed in 0..8 {
            let (a, b, c) = product(12, 9, 17, seed);
            let tol = residual_tolerance(12, 9, 17);
            assert_eq!(check_product(&a, &b, &c, tol), AbftVerdict::Clean, "seed {seed}");
        }
    }

    #[test]
    fn sparse_clean_product_passes() {
        let a = crate::gen::sparse_uniform(16, 20, Density::new(0.3).unwrap(), 3).to_dense();
        let b = crate::gen::sparse_uniform(20, 10, Density::new(0.5).unwrap(), 4).to_dense();
        let c = a.matmul(&b);
        assert!(check_product(&a, &b, &c, residual_tolerance(16, 10, 20)).is_clean());
    }

    #[test]
    fn single_corruption_is_located_and_corrected() {
        let (a, b, mut c) = product(10, 11, 13, 42);
        let tol = residual_tolerance(10, 11, 13);
        let clean = c.clone();
        c.set(3, 7, c.get(3, 7) + 2.5);
        match check_product(&a, &b, &c, tol) {
            AbftVerdict::SingleSite { row, col, delta } => {
                assert_eq!((row, col), (3, 7));
                assert!((delta - 2.5).abs() < tol, "delta {delta}");
                correct_single(&mut c, row, col, delta);
                assert!(c.approx_eq(&clean, tol));
                assert!(check_product(&a, &b, &c, tol).is_clean());
            }
            v => panic!("expected SingleSite, got {v:?}"),
        }
    }

    #[test]
    fn nan_corruption_is_flagged() {
        let (a, b, mut c) = product(6, 6, 6, 7);
        c.set(2, 2, f32::NAN);
        let v = check_product(&a, &b, &c, residual_tolerance(6, 6, 6));
        assert!(matches!(v, AbftVerdict::SingleSite { row: 2, col: 2, .. }), "got {v:?}");
    }

    #[test]
    fn two_errors_in_one_row_are_multi_site() {
        let (a, b, mut c) = product(8, 8, 8, 9);
        c.set(1, 2, c.get(1, 2) + 1.0);
        c.set(1, 5, c.get(1, 5) + 1.0);
        match check_product(&a, &b, &c, residual_tolerance(8, 8, 8)) {
            AbftVerdict::MultiSite { cols, .. } => assert_eq!(cols, vec![2, 5]),
            v => panic!("expected MultiSite, got {v:?}"),
        }
    }

    #[test]
    fn scattered_errors_are_multi_site() {
        let (a, b, mut c) = product(8, 8, 8, 10);
        c.set(0, 0, c.get(0, 0) + 1.0);
        c.set(4, 6, c.get(4, 6) - 3.0);
        assert!(matches!(
            check_product(&a, &b, &c, residual_tolerance(8, 8, 8)),
            AbftVerdict::MultiSite { .. }
        ));
    }

    #[test]
    fn sub_tolerance_perturbation_is_benign() {
        let (a, b, mut c) = product(8, 8, 8, 11);
        let tol = residual_tolerance(8, 8, 8);
        c.set(2, 3, c.get(2, 3) + tol / 10.0);
        assert!(check_product(&a, &b, &c, tol).is_clean());
    }

    #[test]
    fn tolerance_scales_with_shape() {
        assert!(residual_tolerance(128, 128, 128) > residual_tolerance(8, 8, 8));
        assert!(residual_tolerance(0, 0, 0) >= 1e-4);
    }

    #[test]
    fn correct_single_sanitizes_non_finite() {
        let (_, _, mut c) = product(4, 4, 4, 12);
        c.set(1, 1, f32::INFINITY);
        correct_single(&mut c, 1, 1, f32::INFINITY);
        assert!(c.all_finite());
    }
}
