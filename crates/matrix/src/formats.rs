//! Sparse compression formats and their metadata cost (paper Fig. 7).
//!
//! Sec. IV-C compares SIGMA's bitmap format against CSR, CSC, COO and
//! run-length compression (RLC with 2- and 4-bit run fields). The key
//! quantity is the *metadata overhead* — how many bits beyond the raw
//! non-zero values a format needs — as a function of sparsity:
//!
//! * index-based formats (CSR/CSC/COO) pay `log2(dimension)` bits per
//!   non-zero, so they are cheap when very sparse and disastrous when dense;
//! * bitmap pays a flat one bit per element regardless of sparsity;
//! * RLC pays `b` bits per stored symbol, and inserts dummy symbols when a
//!   zero-run overflows its `b`-bit run field.
//!
//! Each format here has a real encoder/decoder (round-trip tested) plus an
//! exact bit-accounting that [`metadata_bits`] exposes for the Fig. 7
//! sweep without materializing values.

use crate::{Bitmap, Matrix};

/// Number of bits needed to index a dimension of size `n` (minimum 1).
#[must_use]
pub fn index_bits(n: usize) -> u32 {
    if n <= 1 {
        1
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// The compression formats compared in Fig. 7, in the paper's plot order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompressionKind {
    /// Uncompressed dense storage: every element stored, no metadata.
    Dense,
    /// Compressed sparse row.
    Csr,
    /// Compressed sparse column.
    Csc,
    /// Coordinate list.
    Coo,
    /// Run-length compression with 4-bit run fields (RLC-4).
    Rlc4,
    /// Run-length compression with 2-bit run fields (RLC-2).
    Rlc2,
    /// SIGMA's bitmap format: one occupancy bit per element.
    Bitmap,
}

impl CompressionKind {
    /// All formats in the order Fig. 7 plots them.
    pub const ALL: [CompressionKind; 7] = [
        CompressionKind::Dense,
        CompressionKind::Csr,
        CompressionKind::Csc,
        CompressionKind::Coo,
        CompressionKind::Rlc4,
        CompressionKind::Rlc2,
        CompressionKind::Bitmap,
    ];

    /// Short display name matching the paper's legend.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CompressionKind::Dense => "None",
            CompressionKind::Csr => "CSR",
            CompressionKind::Csc => "CSC",
            CompressionKind::Coo => "COO",
            CompressionKind::Rlc4 => "RLC-4",
            CompressionKind::Rlc2 => "RLC-2",
            CompressionKind::Bitmap => "Bitmap",
        }
    }
}

impl std::fmt::Display for CompressionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Exact metadata size in bits for storing the matrix described by
/// `occupancy` in the given format.
///
/// Metadata is everything that is not a 32-bit payload value: indices,
/// pointers, run fields, or occupancy bits. Dummy RLC symbols inserted for
/// run-field overflow are charged to [`value_bits`], not here, because they
/// occupy value slots.
#[must_use]
pub fn metadata_bits(kind: CompressionKind, occupancy: &Bitmap) -> u64 {
    let (rows, cols) = (occupancy.rows(), occupancy.cols());
    let nnz = occupancy.count_ones() as u64;
    match kind {
        CompressionKind::Dense => 0,
        CompressionKind::Csr => {
            // col index per nnz + (rows + 1) row pointers sized to address nnz.
            nnz * u64::from(index_bits(cols))
                + (rows as u64 + 1) * u64::from(index_bits(nnz as usize + 1))
        }
        CompressionKind::Csc => {
            nnz * u64::from(index_bits(rows))
                + (cols as u64 + 1) * u64::from(index_bits(nnz as usize + 1))
        }
        CompressionKind::Coo => nnz * u64::from(index_bits(rows) + index_bits(cols)),
        CompressionKind::Rlc4 => rlc_symbol_count(occupancy, 4) * 4,
        CompressionKind::Rlc2 => rlc_symbol_count(occupancy, 2) * 2,
        CompressionKind::Bitmap => occupancy.metadata_bits(),
    }
}

/// Payload (value) storage in bits for the given format: 32 bits per stored
/// symbol. For RLC this includes overflow dummies; for dense storage it is
/// every element.
#[must_use]
pub fn value_bits(kind: CompressionKind, occupancy: &Bitmap) -> u64 {
    let nnz = occupancy.count_ones() as u64;
    match kind {
        CompressionKind::Dense => occupancy.rows() as u64 * occupancy.cols() as u64 * 32,
        CompressionKind::Rlc4 => rlc_symbol_count(occupancy, 4) * 32,
        CompressionKind::Rlc2 => rlc_symbol_count(occupancy, 2) * 32,
        _ => nnz * 32,
    }
}

/// Total compressed footprint (values + metadata) in bits.
#[must_use]
pub fn total_bits(kind: CompressionKind, occupancy: &Bitmap) -> u64 {
    metadata_bits(kind, occupancy) + value_bits(kind, occupancy)
}

/// Number of (run, value) symbols an RLC encoding with `run_bits`-wide run
/// fields needs for this occupancy pattern, scanning row-major.
///
/// A zero-run longer than `2^run_bits - 1` forces a dummy symbol with a
/// zero payload, exactly as in EIE/Eyeriss-style RLC. Trailing zeros after
/// the last non-zero are dropped (the decoder pads to the known shape).
#[must_use]
pub fn rlc_symbol_count(occupancy: &Bitmap, run_bits: u32) -> u64 {
    let max_run = (1u64 << run_bits) - 1;
    let mut symbols = 0u64;
    let mut run = 0u64;
    for r in 0..occupancy.rows() {
        for c in 0..occupancy.cols() {
            if occupancy.get(r, c) {
                // Each dummy consumes max_run + 1 positions (its run plus
                // its own zero payload slot).
                symbols += run / (max_run + 1);
                symbols += 1;
                run = 0;
            } else {
                run += 1;
            }
        }
    }
    symbols
}

/// Expected metadata bits for a `rows x cols` matrix with i.i.d. Bernoulli
/// occupancy at `density`, in closed form — used by the Fig. 7 sweep where
/// the matrix has 59.6M elements and exact bitmap scans are unnecessary.
///
/// For RLC the expected dummy count per zero-gap before a non-zero is
/// `q^(r+1) / (1 − q^(r+1))` with `q = 1 − density` and `r = 2^bits − 1`
/// (a dummy consumes `r + 1` positions), summed over the expected `nnz`
/// gaps.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]`.
#[must_use]
pub fn expected_metadata_bits(
    kind: CompressionKind,
    rows: usize,
    cols: usize,
    density: f64,
) -> f64 {
    assert!((0.0..=1.0).contains(&density), "density out of range");
    let total = rows as f64 * cols as f64;
    let nnz = total * density;
    match kind {
        CompressionKind::Dense => 0.0,
        CompressionKind::Csr => {
            nnz * f64::from(index_bits(cols))
                + (rows as f64 + 1.0) * f64::from(index_bits((nnz as usize).max(1) + 1))
        }
        CompressionKind::Csc => {
            nnz * f64::from(index_bits(rows))
                + (cols as f64 + 1.0) * f64::from(index_bits((nnz as usize).max(1) + 1))
        }
        CompressionKind::Coo => nnz * f64::from(index_bits(rows) + index_bits(cols)),
        CompressionKind::Rlc4 => expected_rlc_symbols(nnz, density, 4) * 4.0,
        CompressionKind::Rlc2 => expected_rlc_symbols(nnz, density, 2) * 2.0,
        CompressionKind::Bitmap => total,
    }
}

/// Expected RLC symbol count (values + overflow dummies) under Bernoulli
/// occupancy.
#[must_use]
pub fn expected_rlc_symbols(nnz: f64, density: f64, run_bits: u32) -> f64 {
    if density <= 0.0 {
        return 0.0;
    }
    let q = 1.0 - density;
    let span = f64::from((1u32 << run_bits) - 1 + 1); // max_run + 1 positions
    let dummies_per_gap = if q == 0.0 { 0.0 } else { q.powf(span) / (1.0 - q.powf(span)) };
    nnz * (1.0 + dummies_per_gap)
}

// ---------------------------------------------------------------------------
// Concrete codecs (round-trip verified in tests)
// ---------------------------------------------------------------------------

/// Compressed Sparse Row encoding of a matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` is the range of non-zeros of row `r`.
    pub row_ptr: Vec<u32>,
    /// Column index of each non-zero.
    pub col_idx: Vec<u32>,
    /// Non-zero values.
    pub values: Vec<f32>,
}

impl Csr {
    /// Encodes a dense matrix.
    #[must_use]
    pub fn from_dense(m: &Matrix) -> Self {
        let mut row_ptr = Vec::with_capacity(m.rows() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let v = m.get(r, c);
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len() as u32);
        }
        Self { rows: m.rows(), cols: m.cols(), row_ptr, col_idx, values }
    }

    /// Decodes back to dense form.
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let lo = self.row_ptr[r] as usize;
            let hi = self.row_ptr[r + 1] as usize;
            for i in lo..hi {
                m.set(r, self.col_idx[i] as usize, self.values[i]);
            }
        }
        m
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }
}

/// Compressed Sparse Column encoding of a matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    rows: usize,
    cols: usize,
    /// `col_ptr[c]..col_ptr[c+1]` is the range of non-zeros of column `c`.
    pub col_ptr: Vec<u32>,
    /// Row index of each non-zero.
    pub row_idx: Vec<u32>,
    /// Non-zero values in column-major order.
    pub values: Vec<f32>,
}

impl Csc {
    /// Encodes a dense matrix.
    #[must_use]
    pub fn from_dense(m: &Matrix) -> Self {
        let mut col_ptr = Vec::with_capacity(m.cols() + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        for c in 0..m.cols() {
            for r in 0..m.rows() {
                let v = m.get(r, c);
                if v != 0.0 {
                    row_idx.push(r as u32);
                    values.push(v);
                }
            }
            col_ptr.push(values.len() as u32);
        }
        Self { rows: m.rows(), cols: m.cols(), col_ptr, row_idx, values }
    }

    /// Decodes back to dense form.
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for c in 0..self.cols {
            let lo = self.col_ptr[c] as usize;
            let hi = self.col_ptr[c + 1] as usize;
            for i in lo..hi {
                m.set(self.row_idx[i] as usize, c, self.values[i]);
            }
        }
        m
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }
}

/// Coordinate-list encoding of a matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    rows: usize,
    cols: usize,
    /// `(row, col, value)` triples in row-major order.
    pub triples: Vec<(u32, u32, f32)>,
}

impl Coo {
    /// Encodes a dense matrix.
    #[must_use]
    pub fn from_dense(m: &Matrix) -> Self {
        let mut triples = Vec::new();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let v = m.get(r, c);
                if v != 0.0 {
                    triples.push((r as u32, c as u32, v));
                }
            }
        }
        Self { rows: m.rows(), cols: m.cols(), triples }
    }

    /// Decodes back to dense form.
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for &(r, c, v) in &self.triples {
            m.set(r as usize, c as usize, v);
        }
        m
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.triples.len()
    }
}

/// Run-length compression with a configurable run-field width, scanning
/// row-major (EIE/Eyeriss style).
#[derive(Debug, Clone, PartialEq)]
pub struct Rlc {
    rows: usize,
    cols: usize,
    run_bits: u32,
    /// `(zero_run, value)` symbols; dummy symbols carry `value == 0.0`.
    pub symbols: Vec<(u32, f32)>,
}

impl Rlc {
    /// Encodes a dense matrix with `run_bits`-wide run fields.
    ///
    /// # Panics
    ///
    /// Panics if `run_bits` is 0 or greater than 16.
    #[must_use]
    pub fn from_dense(m: &Matrix, run_bits: u32) -> Self {
        assert!((1..=16).contains(&run_bits), "run_bits must be in 1..=16");
        let max_run = (1u32 << run_bits) - 1;
        let mut symbols = Vec::new();
        let mut run = 0u32;
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let v = m.get(r, c);
                if v != 0.0 {
                    // A dummy symbol encodes max_run zeros plus its own
                    // zero payload, consuming max_run + 1 positions.
                    while run > max_run {
                        symbols.push((max_run, 0.0));
                        run -= max_run + 1;
                    }
                    symbols.push((run, v));
                    run = 0;
                } else {
                    run += 1;
                }
            }
        }
        Self { rows: m.rows(), cols: m.cols(), run_bits, symbols }
    }

    /// Decodes back to dense form.
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        let mut pos = 0usize;
        for &(run, v) in &self.symbols {
            pos += run as usize;
            if v != 0.0 {
                m.set(pos / self.cols, pos % self.cols, v);
            }
            pos += 1;
        }
        m
    }

    /// Run-field width in bits.
    #[must_use]
    pub fn run_bits(&self) -> u32 {
        self.run_bits
    }

    /// Number of stored symbols (non-zeros + overflow dummies).
    #[must_use]
    pub fn symbol_count(&self) -> usize {
        self.symbols.len()
    }
}

impl From<&Csr> for crate::SparseMatrix {
    /// Front-end conversion: a CSR operand re-encoded into SIGMA's bitmap
    /// format (the paper: "Alternate compression formats can be supported
    /// over SIGMA by only changing the front end controller").
    fn from(c: &Csr) -> Self {
        crate::SparseMatrix::from_dense(&c.to_dense())
    }
}

impl From<&Csc> for crate::SparseMatrix {
    /// Front-end conversion from CSC (see [`From<&Csr>`]).
    fn from(c: &Csc) -> Self {
        crate::SparseMatrix::from_dense(&c.to_dense())
    }
}

impl From<&Coo> for crate::SparseMatrix {
    /// Front-end conversion from COO (see [`From<&Csr>`]).
    fn from(c: &Coo) -> Self {
        crate::SparseMatrix::from_dense(&c.to_dense())
    }
}

impl From<&Rlc> for crate::SparseMatrix {
    /// Front-end conversion from RLC (see [`From<&Csr>`]).
    fn from(c: &Rlc) -> Self {
        crate::SparseMatrix::from_dense(&c.to_dense())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            &[0.0, 1.0, 0.0, 0.0, 0.0, 2.0],
            &[0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[3.0, 0.0, 0.0, 0.0, 0.0, 4.0],
        ])
    }

    #[test]
    fn index_bits_values() {
        assert_eq!(index_bits(1), 1);
        assert_eq!(index_bits(2), 1);
        assert_eq!(index_bits(3), 2);
        assert_eq!(index_bits(256), 8);
        assert_eq!(index_bits(257), 9);
        assert_eq!(index_bits(36548), 16);
    }

    #[test]
    fn csr_roundtrip() {
        let d = sample();
        let c = Csr::from_dense(&d);
        assert_eq!(c.nnz(), 4);
        assert_eq!(c.to_dense(), d);
        assert_eq!(c.row_ptr, vec![0, 2, 2, 4]);
    }

    #[test]
    fn csc_roundtrip() {
        let d = sample();
        let c = Csc::from_dense(&d);
        assert_eq!(c.nnz(), 4);
        assert_eq!(c.to_dense(), d);
        assert_eq!(c.values, vec![3.0, 1.0, 2.0, 4.0]); // column-major
    }

    #[test]
    fn coo_roundtrip() {
        let d = sample();
        let c = Coo::from_dense(&d);
        assert_eq!(c.nnz(), 4);
        assert_eq!(c.to_dense(), d);
    }

    #[test]
    fn rlc_roundtrip_both_widths() {
        let d = sample();
        for bits in [2, 4, 8] {
            let r = Rlc::from_dense(&d, bits);
            assert_eq!(r.to_dense(), d, "RLC-{bits} roundtrip failed");
        }
    }

    #[test]
    fn rlc2_inserts_dummies_for_long_runs() {
        // Row of 1 value, 9 zeros, 1 value: run of 9 with max_run 3 needs
        // 2 dummies (each dummy covers 3 zeros + its own zero slot = 4
        // positions; 9 = 4 + 4 + run-of-1 before the value).
        let mut row = vec![0.0f32; 11];
        row[0] = 1.0;
        row[10] = 2.0;
        let d = Matrix::from_vec(1, 11, row).unwrap();
        let r2 = Rlc::from_dense(&d, 2);
        assert_eq!(r2.symbol_count(), 4); // 2 values + 2 dummies
        let r4 = Rlc::from_dense(&d, 4);
        assert_eq!(r4.symbol_count(), 2); // run of 9 fits in 4 bits
        assert_eq!(r2.to_dense(), d);
        assert_eq!(r4.to_dense(), d);
    }

    #[test]
    fn rlc_symbol_count_matches_codec() {
        let d = sample();
        let bm = crate::SparseMatrix::from_dense(&d).bitmap().clone();
        for bits in [2u32, 4] {
            assert_eq!(
                rlc_symbol_count(&bm, bits),
                Rlc::from_dense(&d, bits).symbol_count() as u64
            );
        }
    }

    #[test]
    fn bitmap_metadata_is_flat() {
        // Same shape, different densities: bitmap metadata identical.
        let lo = crate::gen::sparse_uniform(64, 64, crate::gen::Density::new(0.1).unwrap(), 1);
        let hi = crate::gen::sparse_uniform(64, 64, crate::gen::Density::new(0.9).unwrap(), 2);
        assert_eq!(
            metadata_bits(CompressionKind::Bitmap, lo.bitmap()),
            metadata_bits(CompressionKind::Bitmap, hi.bitmap())
        );
    }

    #[test]
    fn coo_metadata_grows_with_density() {
        let lo = crate::gen::sparse_uniform(64, 64, crate::gen::Density::new(0.1).unwrap(), 1);
        let hi = crate::gen::sparse_uniform(64, 64, crate::gen::Density::new(0.9).unwrap(), 2);
        assert!(
            metadata_bits(CompressionKind::Coo, hi.bitmap())
                > metadata_bits(CompressionKind::Coo, lo.bitmap())
        );
    }

    #[test]
    fn fig7_crossover_shape() {
        // At high sparsity (95%) COO/CSR beat bitmap; at low sparsity (10%)
        // bitmap beats COO/CSR. This is the qualitative claim of Fig. 7.
        let very_sparse =
            crate::gen::sparse_uniform(256, 256, crate::gen::Density::new(0.05).unwrap(), 3);
        let dense_ish =
            crate::gen::sparse_uniform(256, 256, crate::gen::Density::new(0.9).unwrap(), 4);
        let bm = CompressionKind::Bitmap;
        let coo = CompressionKind::Coo;
        assert!(metadata_bits(coo, very_sparse.bitmap()) < metadata_bits(bm, very_sparse.bitmap()));
        assert!(metadata_bits(coo, dense_ish.bitmap()) > metadata_bits(bm, dense_ish.bitmap()));
    }

    #[test]
    fn dense_has_no_metadata_but_all_values() {
        let d = sample();
        let bm = crate::SparseMatrix::from_dense(&d).bitmap().clone();
        assert_eq!(metadata_bits(CompressionKind::Dense, &bm), 0);
        assert_eq!(value_bits(CompressionKind::Dense, &bm), 18 * 32);
        assert_eq!(value_bits(CompressionKind::Csr, &bm), 4 * 32);
    }

    #[test]
    fn total_bits_is_sum() {
        let d = sample();
        let bm = crate::SparseMatrix::from_dense(&d).bitmap().clone();
        for kind in CompressionKind::ALL {
            assert_eq!(total_bits(kind, &bm), metadata_bits(kind, &bm) + value_bits(kind, &bm));
        }
    }

    #[test]
    fn expected_metadata_tracks_exact() {
        // On a moderately sized random bitmap the closed-form expectation
        // must agree with the exact scan within a few percent.
        for density in [0.1, 0.3, 0.5, 0.8] {
            let bm = crate::gen::bitmap_bernoulli(
                200,
                200,
                crate::gen::Density::new(density).unwrap(),
                42,
            );
            for kind in CompressionKind::ALL {
                let exact = metadata_bits(kind, &bm) as f64;
                let expected = expected_metadata_bits(kind, 200, 200, density);
                if exact == 0.0 {
                    assert_eq!(expected, 0.0, "{kind}");
                } else {
                    let rel = (exact - expected).abs() / exact;
                    assert!(rel < 0.08, "{kind} at {density}: exact {exact} vs E {expected}");
                }
            }
        }
    }

    #[test]
    fn expected_rlc_dummy_behaviour() {
        // Dense matrices have no gaps, hence no dummies.
        assert!((expected_rlc_symbols(100.0, 1.0, 2) - 100.0).abs() < 1e-9);
        // Very sparse matrices overflow 2-bit runs often.
        let sym = expected_rlc_symbols(100.0, 0.01, 2);
        assert!(sym > 2000.0, "expected many dummies, got {sym}");
        assert_eq!(expected_rlc_symbols(0.0, 0.0, 2), 0.0);
    }

    #[test]
    fn front_end_conversions_reach_bitmap_format() {
        let d = sample();
        let via_csr: crate::SparseMatrix = (&Csr::from_dense(&d)).into();
        let via_csc: crate::SparseMatrix = (&Csc::from_dense(&d)).into();
        let via_coo: crate::SparseMatrix = (&Coo::from_dense(&d)).into();
        let via_rlc: crate::SparseMatrix = (&Rlc::from_dense(&d, 4)).into();
        let direct = crate::SparseMatrix::from_dense(&d);
        for s in [via_csr, via_csc, via_coo, via_rlc] {
            assert_eq!(s, direct);
        }
    }

    #[test]
    fn kind_names() {
        assert_eq!(CompressionKind::Bitmap.to_string(), "Bitmap");
        assert_eq!(CompressionKind::Rlc2.name(), "RLC-2");
        assert_eq!(CompressionKind::ALL.len(), 7);
    }
}
