//! Dense and sparse matrix substrate for the SIGMA reproduction.
//!
//! The SIGMA accelerator ([Qin et al., HPCA 2020]) operates on GEMMs whose
//! operands are dense or unstructured-sparse `f32` matrices. This crate
//! provides everything the simulator and the baseline models need to talk
//! about those operands:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix with the reference GEMM
//!   implementations used to verify the simulated datapath
//!   ([`Matrix::matmul`], [`Matrix::matmul_at`], [`Matrix::matmul_bt`]).
//! * [`Bitmap`] — the bit-packed occupancy map SIGMA uses as its on-chip
//!   compression format (Sec. IV-C of the paper).
//! * [`SparseMatrix`] — values + bitmap, the operand representation consumed
//!   by the SIGMA sparsity controller.
//! * [`formats`] — CSR / CSC / COO / RLC / bitmap encoders with exact
//!   metadata-size accounting, reproducing the paper's Fig. 7 comparison.
//! * [`gen`] — reproducible random sparse-matrix generators used by the
//!   workload suite.
//!
//! # Example
//!
//! ```
//! use sigma_matrix::{Matrix, SparseMatrix};
//! use sigma_matrix::gen::{sparse_uniform, Density};
//!
//! let a = sparse_uniform(4, 6, Density::new(0.5).unwrap(), 7);
//! let b = sparse_uniform(6, 3, Density::new(0.8).unwrap(), 8);
//! let c = a.to_dense().matmul(&b.to_dense());
//! assert_eq!((c.rows(), c.cols()), (4, 3));
//! let a2 = SparseMatrix::from_dense(&a.to_dense());
//! assert_eq!(a2.nnz(), a.nnz());
//! ```
//!
//! [Qin et al., HPCA 2020]: https://doi.org/10.1109/HPCA47549.2020.00015

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    warn(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod abft;
mod bitmap;
mod dense;
mod error;
pub mod formats;
pub mod gen;
mod sparse;

pub use abft::AbftVerdict;
pub use bitmap::{Bitmap, OnesIter, RowOnesIter};
pub use dense::Matrix;
pub use error::{DimensionError, MatrixError};
pub use sparse::SparseMatrix;

/// Dimensions of a GEMM `C[M,N] = A[M,K] x B[K,N]`, in the paper's (M, N, K)
/// nomenclature (Fig. 1a).
///
/// `M` is the number of rows of the output, `N` the number of columns, and
/// `K` the contracted dimension.
///
/// ```
/// use sigma_matrix::GemmShape;
/// let g = GemmShape::new(128, 256, 64);
/// assert_eq!(g.macs(), 128 * 256 * 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GemmShape {
    /// Rows of `A` and of the output `C`.
    pub m: usize,
    /// Columns of `B` and of the output `C`.
    pub n: usize,
    /// Columns of `A` / rows of `B` (the contracted dimension).
    pub k: usize,
}

impl GemmShape {
    /// Creates a new GEMM shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; a zero-sized GEMM is meaningless for
    /// the accelerator models.
    #[must_use]
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "GEMM dimensions must be non-zero");
        Self { m, n, k }
    }

    /// Total number of multiply-accumulate operations in a dense execution.
    #[must_use]
    pub fn macs(&self) -> u128 {
        self.m as u128 * self.n as u128 * self.k as u128
    }

    /// Elements of the `A` (`MK`) operand.
    #[must_use]
    pub fn mk_elems(&self) -> usize {
        self.m * self.k
    }

    /// Elements of the `B` (`KN`) operand.
    #[must_use]
    pub fn kn_elems(&self) -> usize {
        self.k * self.n
    }

    /// Elements of the output (`MN`).
    #[must_use]
    pub fn mn_elems(&self) -> usize {
        self.m * self.n
    }

    /// `true` when the GEMM is square in all three dimensions, the "dense
    /// regular" case of the paper's Fig. 4b.
    #[must_use]
    pub fn is_regular(&self) -> bool {
        self.m == self.n && self.n == self.k
    }

    /// Aspect ratio max(dim)/min(dim); large values indicate the tall-skinny
    /// or fat-short irregular GEMMs of Sec. II.
    #[must_use]
    pub fn irregularity(&self) -> f64 {
        let mx = self.m.max(self.n).max(self.k) as f64;
        let mn = self.m.min(self.n).min(self.k) as f64;
        mx / mn
    }
}

impl std::fmt::Display for GemmShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{}-{}", self.m, self.n, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_shape_macs() {
        let g = GemmShape::new(2, 3, 4);
        assert_eq!(g.macs(), 24);
        assert_eq!(g.mk_elems(), 8);
        assert_eq!(g.kn_elems(), 12);
        assert_eq!(g.mn_elems(), 6);
    }

    #[test]
    fn gemm_shape_regularity() {
        assert!(GemmShape::new(8, 8, 8).is_regular());
        assert!(!GemmShape::new(8, 8, 4).is_regular());
        let irr = GemmShape::new(16, 500_000, 1024);
        assert!(irr.irregularity() > 30_000.0);
    }

    #[test]
    fn gemm_shape_display() {
        assert_eq!(GemmShape::new(1024, 16, 500_000).to_string(), "1024-16-500000");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn gemm_shape_zero_dim_panics() {
        let _ = GemmShape::new(0, 1, 1);
    }
}
