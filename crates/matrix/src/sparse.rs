//! Bitmap-compressed sparse matrix — SIGMA's operand representation.

use crate::{Bitmap, Matrix};

/// A sparse matrix in SIGMA's bitmap format: the non-zero values in
/// row-major order plus a [`Bitmap`] marking their positions (Sec. IV-C).
///
/// The invariant maintained by all constructors is that
/// `values.len() == bitmap.count_ones()` and the k-th value corresponds to
/// the k-th set bit in row-major order.
///
/// ```
/// use sigma_matrix::{Matrix, SparseMatrix};
/// let d = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 0.0]]);
/// let s = SparseMatrix::from_dense(&d);
/// assert_eq!(s.nnz(), 2);
/// assert_eq!(s.to_dense(), d);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    bitmap: Bitmap,
    values: Vec<f32>,
}

impl SparseMatrix {
    /// Compresses a dense matrix, dropping exact zeros.
    #[must_use]
    pub fn from_dense(m: &Matrix) -> Self {
        let mut bitmap = Bitmap::new(m.rows(), m.cols());
        let mut values = Vec::with_capacity(m.nnz());
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let v = m.get(r, c);
                if v != 0.0 {
                    bitmap.set(r, c, true);
                    values.push(v);
                }
            }
        }
        Self { bitmap, values }
    }

    /// Builds a sparse matrix from parts.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != bitmap.count_ones()` — the representation
    /// invariant of the format.
    #[must_use]
    pub fn from_parts(bitmap: Bitmap, values: Vec<f32>) -> Self {
        assert_eq!(
            values.len(),
            bitmap.count_ones(),
            "value count must equal number of set bitmap bits"
        );
        Self { bitmap, values }
    }

    /// Decompresses to a dense matrix.
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows(), self.cols());
        for ((r, c), v) in self.bitmap.iter_ones().zip(&self.values) {
            m.set(r, c, *v);
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.bitmap.rows()
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.bitmap.cols()
    }

    /// The occupancy bitmap.
    #[must_use]
    pub fn bitmap(&self) -> &Bitmap {
        &self.bitmap
    }

    /// The non-zero values in row-major order.
    #[must_use]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `true` if every stored value is finite (no NaN or infinity).
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }

    /// Fraction of elements that are zero, in `[0, 1]`.
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        1.0 - self.bitmap.density()
    }

    /// Element at `(r, c)`, reconstructing zeros.
    ///
    /// This walks the row to find the value's rank, so it is `O(cols)`; the
    /// simulators use [`SparseMatrix::to_dense`] or iterate instead when on
    /// a hot path.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        if !self.bitmap.get(r, c) {
            return 0.0;
        }
        // Rank of the set bit at (r, c) among all set bits in row-major order.
        let mut rank = 0usize;
        for rr in 0..r {
            rank += self.bitmap.row_count_ones(rr);
        }
        rank += (0..c).filter(|&cc| self.bitmap.get(r, cc)).count();
        self.values[rank]
    }

    /// Iterator over `(row, col, value)` of the stored non-zeros in
    /// row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.bitmap.iter_ones().zip(&self.values).map(|((r, c), v)| (r, c, *v))
    }

    /// The transpose of this sparse matrix.
    #[must_use]
    pub fn transposed(&self) -> SparseMatrix {
        SparseMatrix::from_dense(&self.to_dense().transposed())
    }

    /// Total compressed footprint in bits: 32 bits per non-zero value plus
    /// one metadata bit per element (the quantity plotted in Fig. 7 when the
    /// "Bitmap" format is selected).
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        self.values.len() as u64 * 32 + self.bitmap.metadata_bits()
    }
}

impl From<&Matrix> for SparseMatrix {
    fn from(m: &Matrix) -> Self {
        SparseMatrix::from_dense(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[0.0, 1.5, 0.0, 2.5], &[0.0, 0.0, 0.0, 0.0], &[3.5, 0.0, 0.0, 4.5]])
    }

    #[test]
    fn roundtrip_dense_sparse_dense() {
        let d = sample();
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn values_are_row_major() {
        let s = SparseMatrix::from_dense(&sample());
        assert_eq!(s.values(), &[1.5, 2.5, 3.5, 4.5]);
    }

    #[test]
    fn get_reconstructs_zeros_and_values() {
        let s = SparseMatrix::from_dense(&sample());
        assert_eq!(s.get(0, 0), 0.0);
        assert_eq!(s.get(0, 3), 2.5);
        assert_eq!(s.get(2, 0), 3.5);
        assert_eq!(s.get(1, 2), 0.0);
    }

    #[test]
    fn iter_yields_triples() {
        let s = SparseMatrix::from_dense(&sample());
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v[0], (0, 1, 1.5));
        assert_eq!(v[3], (2, 3, 4.5));
    }

    #[test]
    fn sparsity_computed() {
        let s = SparseMatrix::from_dense(&sample());
        assert!((s.sparsity() - (1.0 - 4.0 / 12.0)).abs() < 1e-12);
    }

    #[test]
    fn transpose_roundtrip() {
        let s = SparseMatrix::from_dense(&sample());
        assert_eq!(s.transposed().transposed().to_dense(), sample());
    }

    #[test]
    fn storage_bits_accounting() {
        let s = SparseMatrix::from_dense(&sample());
        assert_eq!(s.storage_bits(), 4 * 32 + 12);
    }

    #[test]
    #[should_panic(expected = "set bitmap bits")]
    fn from_parts_checks_invariant() {
        let _ = SparseMatrix::from_parts(Bitmap::new(2, 2), vec![1.0]);
    }
}
