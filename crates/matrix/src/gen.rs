//! Reproducible random matrix generators for workloads and tests.
//!
//! The SIGMA evaluation induces *unstructured* random sparsity at controlled
//! densities (Sec. VI-A: inputs ~10–50% sparse, weights ~80% sparse). These
//! generators produce that kind of operand deterministically from a seed.

use crate::{Bitmap, Matrix, SparseMatrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A validated density (fraction of non-zero elements) in `[0, 1]`.
///
/// ```
/// use sigma_matrix::gen::Density;
/// let d = Density::new(0.2).unwrap();
/// assert_eq!(d.value(), 0.2);
/// assert_eq!(d.sparsity(), 0.8);
/// assert!(Density::new(1.5).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Density(f64);

impl Density {
    /// Fully dense (no zeros).
    pub const DENSE: Density = Density(1.0);

    /// Creates a density, returning `None` when outside `[0, 1]` or NaN.
    #[must_use]
    pub fn new(value: f64) -> Option<Self> {
        if (0.0..=1.0).contains(&value) {
            Some(Self(value))
        } else {
            None
        }
    }

    /// Creates a density, clamping `value` into `[0, 1]` (NaN becomes 0)
    /// instead of failing. Exact for already-valid values; prefer
    /// [`Density::new`] when invalid input should be reported.
    #[must_use]
    pub fn clamped(value: f64) -> Self {
        if value.is_nan() {
            Self(0.0)
        } else {
            Self(value.clamp(0.0, 1.0))
        }
    }

    /// Creates a density from a sparsity level (fraction of zeros).
    ///
    /// `Density::from_sparsity(0.8)` is the paper's "80% sparse".
    #[must_use]
    pub fn from_sparsity(sparsity: f64) -> Option<Self> {
        Self::new(1.0 - sparsity)
    }

    /// The non-zero fraction.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.0
    }

    /// The zero fraction (`1 - density`).
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        1.0 - self.0
    }
}

impl Default for Density {
    fn default() -> Self {
        Density::DENSE
    }
}

impl std::fmt::Display for Density {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.0}% dense", self.0 * 100.0)
    }
}

/// Generates a dense matrix with values uniform in `(0.5, 1.5)`.
///
/// Values are bounded away from zero so that `nnz` is exact and f32 rounding
/// in long tree reductions stays well-conditioned in tests.
#[must_use]
pub fn dense_uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(0.5..1.5))
}

/// Generates a sparse matrix with an *exact* number of non-zeros:
/// `round(density * rows * cols)` positions chosen uniformly without
/// replacement, values uniform in `(0.5, 1.5)`.
#[must_use]
pub fn sparse_uniform(rows: usize, cols: usize, density: Density, seed: u64) -> SparseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = rows * cols;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let nnz = ((density.value() * total as f64).round() as usize).min(total);
    let mut positions: Vec<usize> = (0..total).collect();
    positions.shuffle(&mut rng);
    positions.truncate(nnz);
    positions.sort_unstable();
    let mut bitmap = Bitmap::new(rows, cols);
    let mut values = Vec::with_capacity(nnz);
    for p in positions {
        bitmap.set(p / cols, p % cols, true);
        values.push(rng.gen_range(0.5..1.5));
    }
    SparseMatrix::from_parts(bitmap, values)
}

/// Generates only the occupancy bitmap, with each bit set independently
/// with probability `density` (Bernoulli). Cheap enough for the Fig. 7
/// sweep over 1632 x 36548 matrices.
#[must_use]
pub fn bitmap_bernoulli(rows: usize, cols: usize, density: Density, seed: u64) -> Bitmap {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bm = Bitmap::new(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if rng.gen_bool(density.value()) {
                bm.set(r, c, true);
            }
        }
    }
    bm
}

/// Generates a sparse matrix with *structured* (balanced per-row) sparsity:
/// every row has exactly `round(density * cols)` non-zeros. Used to contrast
/// structured-sparsity hardware (e.g. Cambricon-X-style) with SIGMA's
/// unstructured support.
#[must_use]
pub fn sparse_row_balanced(rows: usize, cols: usize, density: Density, seed: u64) -> SparseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let per_row = ((density.value() * cols as f64).round() as usize).min(cols);
    let mut bitmap = Bitmap::new(rows, cols);
    let mut values = Vec::with_capacity(per_row * rows);
    for r in 0..rows {
        let mut cs: Vec<usize> = (0..cols).collect();
        cs.shuffle(&mut rng);
        cs.truncate(per_row);
        cs.sort_unstable();
        for c in cs {
            bitmap.set(r, c, true);
            values.push(rng.gen_range(0.5..1.5));
        }
    }
    SparseMatrix::from_parts(bitmap, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_validation() {
        assert!(Density::new(-0.1).is_none());
        assert!(Density::new(f64::NAN).is_none());
        assert_eq!(Density::from_sparsity(0.8).unwrap().value(), 1.0 - 0.8);
        assert_eq!(Density::default(), Density::DENSE);
        assert_eq!(Density::new(0.25).unwrap().to_string(), "25% dense");
    }

    #[test]
    fn dense_uniform_has_no_zeros() {
        let m = dense_uniform(16, 16, 42);
        assert_eq!(m.nnz(), 256);
        assert!(m.as_slice().iter().all(|v| *v > 0.5 && *v < 1.5));
    }

    #[test]
    fn sparse_uniform_exact_nnz() {
        let s = sparse_uniform(20, 30, Density::new(0.3).unwrap(), 7);
        assert_eq!(s.nnz(), (0.3f64 * 600.0).round() as usize);
        assert_eq!(s.rows(), 20);
        assert_eq!(s.cols(), 30);
    }

    #[test]
    fn sparse_uniform_is_deterministic() {
        let a = sparse_uniform(10, 10, Density::new(0.5).unwrap(), 99);
        let b = sparse_uniform(10, 10, Density::new(0.5).unwrap(), 99);
        assert_eq!(a, b);
        let c = sparse_uniform(10, 10, Density::new(0.5).unwrap(), 100);
        assert_ne!(a, c);
    }

    #[test]
    fn sparse_uniform_extremes() {
        let empty = sparse_uniform(8, 8, Density::new(0.0).unwrap(), 1);
        assert_eq!(empty.nnz(), 0);
        let full = sparse_uniform(8, 8, Density::DENSE, 1);
        assert_eq!(full.nnz(), 64);
    }

    #[test]
    fn bernoulli_density_close() {
        let bm = bitmap_bernoulli(200, 200, Density::new(0.3).unwrap(), 5);
        let d = bm.density();
        assert!((d - 0.3).abs() < 0.02, "observed density {d}");
    }

    #[test]
    fn row_balanced_rows_equal() {
        let s = sparse_row_balanced(10, 40, Density::new(0.25).unwrap(), 3);
        for r in 0..10 {
            assert_eq!(s.bitmap().row_count_ones(r), 10);
        }
    }
}
