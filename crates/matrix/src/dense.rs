//! Row-major dense `f32` matrix with reference GEMM kernels.

use crate::{DimensionError, MatrixError};

/// A row-major dense `f32` matrix.
///
/// This is the "golden" operand representation: the cycle-level simulators
/// in `sigma-core` compute their numeric results through modeled hardware
/// and are checked against [`Matrix::matmul`] and friends.
///
/// ```
/// use sigma_matrix::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DataLength`] if `data.len() != rows * cols`,
    /// or [`MatrixError::NonFinite`] if the buffer contains a NaN or
    /// infinite value.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, MatrixError> {
        if data.len() != rows * cols {
            return Err(MatrixError::DataLength { expected: rows * cols, actual: data.len() });
        }
        if let Some(index) = data.iter().position(|v| !v.is_finite()) {
            return Err(MatrixError::NonFinite { index });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths or `rows` is empty.
    #[must_use]
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Creates the `n x n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix where element `(r, c)` is `f(r, c)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the matrix holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Column `c` collected into a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    #[must_use]
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col {c} out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Underlying row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the matrix and returns the row-major buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Number of non-zero elements.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    /// Fraction of elements that are zero, in `[0, 1]`.
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / self.data.len() as f64
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Reference GEMM: `self[M,K] x rhs[K,N] -> [M,N]`.
    ///
    /// This is the straightforward triple loop; it defines numerical ground
    /// truth (per-output-element left-to-right accumulation order).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`. Use [`Matrix::try_matmul`] for
    /// a fallible variant.
    // Deliberate panicking convenience mirroring std indexing/ops;
    // try_matmul is the checked API (sigma-lint D2 waived in lint.toml).
    #[allow(clippy::expect_used)]
    #[must_use]
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.try_matmul(rhs).expect("matmul dimension mismatch")
    }

    /// Fallible GEMM.
    ///
    /// # Errors
    ///
    /// Returns a [`DimensionError`] if the inner dimensions disagree.
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix, DimensionError> {
        if self.cols != rhs.rows {
            return Err(DimensionError {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc += self.get(i, k) * rhs.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        Ok(out)
    }

    /// Training backward-pass GEMM `(A)^T x B`: `self[K,M]^T x rhs[K,N] -> [M,N]`.
    ///
    /// This is the `(MK)^T x MN` weight-gradient product of Sec. I without
    /// materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    #[must_use]
    pub fn matmul_at(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "matmul_at requires equal row counts");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for i in 0..self.cols {
            for j in 0..rhs.cols {
                let mut acc = 0.0f32;
                for k in 0..self.rows {
                    acc += self.get(k, i) * rhs.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Training backward-pass GEMM `A x (B)^T`: `self[M,K] x rhs[N,K]^T -> [M,N]`.
    ///
    /// This is the `MN x (KN)^T` input-gradient product of Sec. I without
    /// materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    #[must_use]
    pub fn matmul_bt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_bt requires equal column counts");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            for j in 0..rhs.rows {
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc += self.get(i, k) * rhs.get(j, k);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// `true` if every element is finite (no NaN or infinity).
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// Useful for comparing tree-reduced (simulator) results against the
    /// linearly-accumulated reference, where f32 rounding may differ.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }

    /// `true` if every element differs from `other` by at most `tol`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.max_abs_diff(other) <= tol
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:8.3}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| (r * cols + c) as f32 + 1.0)
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.sparsity(), 1.0);
        let i = Matrix::identity(3);
        assert_eq!(i.nnz(), 3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn from_vec_length_check() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(MatrixError::DataLength { expected: 4, actual: 3 })
        ));
    }

    #[test]
    fn from_vec_rejects_non_finite() {
        assert!(matches!(
            Matrix::from_vec(1, 3, vec![1.0, f32::NAN, 2.0]),
            Err(MatrixError::NonFinite { index: 1 })
        ));
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![0.0, 1.0, 2.0, f32::INFINITY]),
            Err(MatrixError::NonFinite { index: 3 })
        ));
        assert!(matches!(
            Matrix::from_vec(1, 1, vec![f32::NEG_INFINITY]),
            Err(MatrixError::NonFinite { index: 0 })
        ));
    }

    #[test]
    fn all_finite_flags_bad_values() {
        let mut m = seq(2, 2);
        assert!(m.all_finite());
        m.set(0, 1, f32::NAN);
        assert!(!m.all_finite());
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = seq(3, 5);
        assert_eq!(a.matmul(&Matrix::identity(5)), a);
        assert_eq!(Matrix::identity(3).matmul(&a), a);
    }

    #[test]
    fn try_matmul_rejects_mismatch() {
        let a = seq(2, 3);
        let b = seq(4, 2);
        let err = a.try_matmul(&b).unwrap_err();
        assert_eq!(err.op, "matmul");
    }

    #[test]
    fn transpose_involution() {
        let a = seq(3, 4);
        assert_eq!(a.transposed().transposed(), a);
        assert_eq!(a.transposed().get(2, 1), a.get(1, 2));
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = seq(4, 3); // K=4, M=3
        let b = seq(4, 5); // K=4, N=5
        assert_eq!(a.matmul_at(&b), a.transposed().matmul(&b));
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = seq(3, 4); // M=3, K=4
        let b = seq(5, 4); // N=5, K=4
        assert_eq!(a.matmul_bt(&b), a.matmul(&b.transposed()));
    }

    #[test]
    fn row_col_access() {
        let a = seq(2, 3);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn sparsity_counts() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[2.0, 0.0]]);
        assert_eq!(a.nnz(), 2);
        assert!((a.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_and_approx_eq() {
        let a = seq(2, 2);
        let mut b = a.clone();
        b.set(1, 1, b.get(1, 1) + 0.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(a.approx_eq(&b, 0.5));
        assert!(!a.approx_eq(&b, 0.4));
    }

    #[test]
    fn display_formats_rows() {
        let s = seq(2, 2).to_string();
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let _ = Matrix::zeros(1, 1).get(1, 0);
    }
}
