//! Benes distribution network (Sec. IV-A-1 of the SIGMA paper).
//!
//! A Benes network of size `N` (a power of two) is a non-blocking
//! multistage network built from tiny 2x2 switches: an input column of
//! `N/2` switches, two recursively nested Benes networks of size `N/2`, and
//! an output column of `N/2` switches — `2·log₂N − 1` switch stages in
//! total. SIGMA uses it as the Flex-DPE's distribution network because it
//! is non-blocking like a crossbar (any source reaches any destination
//! without contention) at `O(N log N)` cost instead of `O(N²)`, and its
//! latch-free switches give O(1) (single-cycle) distribution.
//!
//! Two routing algorithms are provided:
//!
//! * [`BenesNetwork::route_permutation`] — the classic *looping algorithm*
//!   that realizes any permutation of inputs to outputs.
//! * [`BenesNetwork::route_monotone_multicast`] — multicast routing for
//!   *monotone* requests (the non-decreasing source pattern SIGMA's
//!   controller produces when broadcasting one streaming value to the
//!   contiguous group of multipliers holding matching stationary
//!   elements). Switches are broadcast-capable, matching the paper's
//!   "multicasts within the Benes network" support.
//!
//! Both return a [`BenesConfig`] of concrete switch states which can be
//! *executed* on real data with [`BenesConfig::apply`], so the routing is
//! verified end-to-end rather than assumed.

use crate::{is_power_of_two, log2_ceil};
use std::error::Error;
use std::fmt;

/// State of one 2x2 switch.
///
/// A switch has two inputs `(i0, i1)` and two outputs `(o0, o1)`. The two
/// control bits of the paper (one selecting the vertical output, one the
/// diagonal) give exactly these four useful states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchState {
    /// `o0 = i0`, `o1 = i1`.
    Straight,
    /// `o0 = i1`, `o1 = i0`.
    Cross,
    /// `o0 = o1 = i0` (multicast the upper input).
    BroadcastUpper,
    /// `o0 = o1 = i1` (multicast the lower input).
    BroadcastLower,
}

impl SwitchState {
    /// Applies the switch to a pair of optional values.
    #[inline]
    #[must_use]
    pub fn apply<T: Clone>(&self, i0: Option<T>, i1: Option<T>) -> (Option<T>, Option<T>) {
        match self {
            SwitchState::Straight => (i0, i1),
            SwitchState::Cross => (i1, i0),
            SwitchState::BroadcastUpper => (i0.clone(), i0),
            SwitchState::BroadcastLower => (i1.clone(), i1),
        }
    }
}

/// A routed configuration of a Benes network: one state per switch,
/// organized recursively exactly like the hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenesConfig {
    /// A size-2 network: a single switch.
    Leaf(SwitchState),
    /// A size-N network: input column, two size-N/2 subnetworks, output
    /// column.
    Node {
        /// Input-column switch states; switch `i` takes external inputs
        /// `(2i, 2i+1)` and feeds upper-subnet port `i` (its `o0`) and
        /// lower-subnet port `i` (its `o1`).
        input: Vec<SwitchState>,
        /// The upper size-N/2 subnetwork.
        upper: Box<BenesConfig>,
        /// The lower size-N/2 subnetwork.
        lower: Box<BenesConfig>,
        /// Output-column switch states; switch `j` takes upper-subnet
        /// output `j` (its `i0`) and lower-subnet output `j` (its `i1`)
        /// and drives external outputs `(2j, 2j+1)`.
        output: Vec<SwitchState>,
    },
}

impl BenesConfig {
    /// Network size (number of input/output ports) of this configuration.
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            BenesConfig::Leaf(_) => 2,
            BenesConfig::Node { input, .. } => input.len() * 2,
        }
    }

    /// Flattens the configuration into per-stage switch states, outermost
    /// input column first, then the recursively interleaved subnetwork
    /// columns, then the output columns — `2·log₂N − 1` stages of `N/2`
    /// switches. Within a stage, switch `i` of the upper subnetwork comes
    /// before switch `i` of the lower one.
    #[must_use]
    pub fn stages(&self) -> Vec<Vec<SwitchState>> {
        match self {
            BenesConfig::Leaf(s) => vec![vec![*s]],
            BenesConfig::Node { input, upper, lower, output } => {
                let up = upper.stages();
                let low = lower.stages();
                debug_assert_eq!(up.len(), low.len());
                let mut stages = Vec::with_capacity(up.len() + 2);
                stages.push(input.clone());
                for (u, l) in up.into_iter().zip(low) {
                    let mut merged = u;
                    merged.extend(l);
                    stages.push(merged);
                }
                stages.push(output.clone());
                stages
            }
        }
    }

    /// Serializes the configuration into the two control bits per switch
    /// the paper describes (Fig. 5 Step iv): bit 0 selects the vertical
    /// (cross) output, bit 1 enables the diagonal broadcast. Stage-major,
    /// switch-major, low bit first.
    #[must_use]
    pub fn control_bits(&self) -> Vec<bool> {
        let mut bits = Vec::new();
        for stage in self.stages() {
            for s in stage {
                let (cross, broadcast) = match s {
                    SwitchState::Straight => (false, false),
                    SwitchState::Cross => (true, false),
                    SwitchState::BroadcastUpper => (false, true),
                    SwitchState::BroadcastLower => (true, true),
                };
                bits.push(cross);
                bits.push(broadcast);
            }
        }
        bits
    }

    /// Reconstructs a configuration from control bits for a network of
    /// `size` ports (the inverse of [`BenesConfig::control_bits`]).
    ///
    /// # Errors
    ///
    /// Returns [`BenesError::NotPowerOfTwo`] for invalid sizes or
    /// [`BenesError::SizeMismatch`] when the bit count is wrong
    /// (`2 · switches` bits are required).
    pub fn from_control_bits(size: usize, bits: &[bool]) -> Result<Self, BenesError> {
        let net = BenesNetwork::new(size)?;
        let expected = 2 * net.switch_count();
        if bits.len() != expected {
            return Err(BenesError::SizeMismatch { expected, actual: bits.len() });
        }
        let states: Vec<SwitchState> = bits
            .chunks(2)
            .map(|b| match (b[0], b[1]) {
                (false, false) => SwitchState::Straight,
                (true, false) => SwitchState::Cross,
                (false, true) => SwitchState::BroadcastUpper,
                (true, true) => SwitchState::BroadcastLower,
            })
            .collect();
        // Rebuild stage structure, then fold back into the recursion.
        let stage_len = size / 2;
        let stages: Vec<Vec<SwitchState>> =
            states.chunks(stage_len).map(<[SwitchState]>::to_vec).collect();
        Ok(Self::from_stages(&stages))
    }

    /// Rebuilds the recursive form from flattened stages (inverse of
    /// [`BenesConfig::stages`]).
    fn from_stages(stages: &[Vec<SwitchState>]) -> Self {
        if stages.len() == 1 {
            debug_assert_eq!(stages[0].len(), 1);
            return BenesConfig::Leaf(stages[0][0]);
        }
        // Each inner stage holds the upper subnetwork's switches followed
        // by the lower's.
        let inner = &stages[1..stages.len() - 1];
        let per_sub = stages[0].len() / 2;
        let upper_stages: Vec<Vec<SwitchState>> =
            inner.iter().map(|st| st[..per_sub].to_vec()).collect();
        let lower_stages: Vec<Vec<SwitchState>> =
            inner.iter().map(|st| st[per_sub..].to_vec()).collect();
        BenesConfig::Node {
            input: stages[0].clone(),
            upper: Box::new(Self::from_stages(&upper_stages)),
            lower: Box::new(Self::from_stages(&lower_stages)),
            output: stages[stages.len() - 1].clone(),
        }
    }

    /// Executes the configuration: pushes `inputs` through every switch
    /// stage and returns what arrives at each output port.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the network size.
    #[must_use]
    pub fn apply<T: Clone>(&self, inputs: &[Option<T>]) -> Vec<Option<T>> {
        assert_eq!(inputs.len(), self.size(), "input count must equal network size");
        match self {
            BenesConfig::Leaf(s) => {
                let (o0, o1) = s.apply(inputs[0].clone(), inputs[1].clone());
                vec![o0, o1]
            }
            BenesConfig::Node { input, upper, lower, output } => {
                let half = input.len();
                let mut up_in = Vec::with_capacity(half);
                let mut low_in = Vec::with_capacity(half);
                for (i, s) in input.iter().enumerate() {
                    let (o0, o1) = s.apply(inputs[2 * i].clone(), inputs[2 * i + 1].clone());
                    up_in.push(o0);
                    low_in.push(o1);
                }
                let up_out = upper.apply(&up_in);
                let low_out = lower.apply(&low_in);
                let mut out = Vec::with_capacity(half * 2);
                for (j, s) in output.iter().enumerate() {
                    let (o0, o1) = s.apply(up_out[j].clone(), low_out[j].clone());
                    out.push(o0);
                    out.push(o1);
                }
                out
            }
        }
    }
}

/// Errors from Benes construction and routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenesError {
    /// The requested network size is not a power of two (or is < 2).
    NotPowerOfTwo(usize),
    /// A request vector's length does not match the network size.
    SizeMismatch {
        /// Network size.
        expected: usize,
        /// Request length provided.
        actual: usize,
    },
    /// A permutation request repeated or omitted a source.
    NotPermutation,
    /// A multicast request was not monotone (non-decreasing sources).
    NotMonotone,
    /// A request referenced a source index outside the network.
    SourceOutOfRange(usize),
    /// A routing invariant failed mid-recursion. This indicates a bug in
    /// the routing algorithm (or a violated precondition that validation
    /// missed); it is surfaced as an error instead of a panic so a sweep
    /// harness can degrade gracefully.
    Internal(&'static str),
}

impl fmt::Display for BenesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenesError::NotPowerOfTwo(n) => {
                write!(f, "benes network size must be a power of two >= 2, got {n}")
            }
            BenesError::SizeMismatch { expected, actual } => {
                write!(f, "request length {actual} does not match network size {expected}")
            }
            BenesError::NotPermutation => write!(f, "request is not a permutation of the inputs"),
            BenesError::NotMonotone => {
                write!(f, "multicast request sources must be non-decreasing across outputs")
            }
            BenesError::SourceOutOfRange(s) => write!(f, "source index {s} is out of range"),
            BenesError::Internal(what) => write!(f, "benes routing invariant violated: {what}"),
        }
    }
}

impl Error for BenesError {}

/// A serialized multi-pass routing for an arbitrary multicast: each pass
/// is one switch reconfiguration + traversal serving a monotone slice of
/// the request.
#[derive(Debug, Clone, PartialEq)]
pub struct MultipassRouting {
    /// `(configuration, request slice)` per pass.
    pub passes: Vec<(BenesConfig, Vec<Option<usize>>)>,
}

impl MultipassRouting {
    /// Number of serialized traversals (1 = behaved like a single-pass
    /// non-blocking network).
    #[must_use]
    pub fn pass_count(&self) -> usize {
        self.passes.len()
    }

    /// Executes every pass and merges deliveries: each output accepts its
    /// value only from the pass that requested it.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the network size.
    #[must_use]
    pub fn apply<T: Clone>(&self, inputs: &[Option<T>]) -> Vec<Option<T>> {
        let mut out: Vec<Option<T>> = vec![None; inputs.len()];
        for (cfg, req) in &self.passes {
            let delivered = cfg.apply(inputs);
            for (o, d) in delivered.into_iter().enumerate() {
                if req[o].is_some() {
                    out[o] = d;
                }
            }
        }
        out
    }
}

/// A Benes network of a fixed power-of-two size.
///
/// ```
/// use sigma_interconnect::BenesNetwork;
/// let net = BenesNetwork::new(8)?;
/// // Route the reversal permutation and push values through it.
/// let src: Vec<usize> = (0..8).rev().collect();
/// let cfg = net.route_permutation(&src)?;
/// let inputs: Vec<Option<u32>> = (0..8).map(Some).collect();
/// let outputs = cfg.apply(&inputs);
/// assert_eq!(outputs[0], Some(7));
/// assert_eq!(outputs[7], Some(0));
/// # Ok::<(), sigma_interconnect::BenesError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenesNetwork {
    size: usize,
}

impl BenesNetwork {
    /// Creates a network with `size` input and output ports.
    ///
    /// # Errors
    ///
    /// Returns [`BenesError::NotPowerOfTwo`] unless `size` is a power of
    /// two and at least 2.
    pub fn new(size: usize) -> Result<Self, BenesError> {
        if !is_power_of_two(size) || size < 2 {
            return Err(BenesError::NotPowerOfTwo(size));
        }
        Ok(Self { size })
    }

    /// Creates a network, rounding `size` up to the next power of two
    /// (minimum 2) instead of failing. For static tables whose shapes
    /// are known-good by construction; prefer [`BenesNetwork::new`] when
    /// invalid input should be reported.
    #[must_use]
    pub fn new_clamped(size: usize) -> Self {
        Self { size: size.max(2).next_power_of_two() }
    }

    /// Number of ports.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of switch stages: `2·log₂N − 1`.
    #[must_use]
    pub fn stage_count(&self) -> u32 {
        2 * log2_ceil(self.size) - 1
    }

    /// Total number of 2x2 switches: `stages · N/2`.
    #[must_use]
    pub fn switch_count(&self) -> usize {
        self.stage_count() as usize * self.size / 2
    }

    /// Distribution latency in cycles. The paper uses latch-free switches,
    /// so an entire traversal completes in a single cycle (O(1)
    /// communication, Sec. IV-A-1).
    #[must_use]
    pub fn traversal_latency_cycles(&self) -> u64 {
        1
    }

    /// Routes a permutation: output `o` receives input `src[o]`.
    ///
    /// Uses the classic looping algorithm, which 2-colors sources so that
    /// the two sources sharing an input switch and the two sources demanded
    /// by an output switch always take different subnetworks.
    ///
    /// # Errors
    ///
    /// * [`BenesError::SizeMismatch`] if `src.len() != size`.
    /// * [`BenesError::NotPermutation`] if `src` repeats or omits an input.
    pub fn route_permutation(&self, src: &[usize]) -> Result<BenesConfig, BenesError> {
        if src.len() != self.size {
            return Err(BenesError::SizeMismatch { expected: self.size, actual: src.len() });
        }
        let mut seen = vec![false; self.size];
        for &s in src {
            if s >= self.size {
                return Err(BenesError::SourceOutOfRange(s));
            }
            if seen[s] {
                return Err(BenesError::NotPermutation);
            }
            seen[s] = true;
        }
        route_perm(src)
    }

    /// Routes an *arbitrary* multicast by decomposing it into the minimal
    /// number of monotone passes: outputs are scanned left to right and a
    /// new pass starts whenever the requested source decreases. Each pass
    /// is one switch reconfiguration plus one traversal, so the returned
    /// configuration count is the serialization cost — 1 for the monotone
    /// patterns SIGMA's controller emits, more for adversarial requests.
    ///
    /// # Errors
    ///
    /// * [`BenesError::SizeMismatch`] if `src.len() != size`.
    /// * [`BenesError::SourceOutOfRange`] if a source index is too large.
    pub fn route_general_multicast(
        &self,
        src: &[Option<usize>],
    ) -> Result<MultipassRouting, BenesError> {
        if src.len() != self.size {
            return Err(BenesError::SizeMismatch { expected: self.size, actual: src.len() });
        }
        for &s in src.iter().flatten() {
            if s >= self.size {
                return Err(BenesError::SourceOutOfRange(s));
            }
        }
        // Greedy monotone decomposition.
        let mut requests: Vec<Vec<Option<usize>>> = Vec::new();
        let mut current: Vec<Option<usize>> = vec![None; self.size];
        let mut last: Option<usize> = None;
        let mut non_empty = false;
        for (o, &s) in src.iter().enumerate() {
            if let Some(s) = s {
                if last.is_some_and(|l| s < l) {
                    requests.push(std::mem::replace(&mut current, vec![None; self.size]));
                }
                current[o] = Some(s);
                last = Some(s);
                non_empty = true;
            }
        }
        if non_empty {
            requests.push(current);
        }
        let mut passes = Vec::with_capacity(requests.len());
        for req in requests {
            let cfg = self.route_monotone_multicast(&req)?;
            passes.push((cfg, req));
        }
        Ok(MultipassRouting { passes })
    }

    /// Routes a monotone multicast: output `o` receives input `src[o]`
    /// when `Some`, where the sequence of `Some` sources is non-decreasing.
    ///
    /// This is exactly the pattern SIGMA's distribution needs: compressed
    /// stationary/streaming values enter in order on the low ports and each
    /// must reach a contiguous, ordered group of multipliers — including
    /// one-to-many broadcast of a streaming value to every multiplier that
    /// holds a matching stationary element.
    ///
    /// # Errors
    ///
    /// * [`BenesError::SizeMismatch`] if `src.len() != size`.
    /// * [`BenesError::NotMonotone`] if `Some` sources ever decrease.
    /// * [`BenesError::SourceOutOfRange`] if a source index is too large.
    pub fn route_monotone_multicast(
        &self,
        src: &[Option<usize>],
    ) -> Result<BenesConfig, BenesError> {
        self.route_monotone_multicast_scratch(src, &mut MulticastScratch::default())
    }

    /// [`BenesNetwork::route_monotone_multicast`] with caller-owned
    /// recursion scratch, so repeated cold routings (e.g. the route
    /// cache's miss path) stay allocation-light: the coloring buffers are
    /// reused across calls instead of reallocated per network node.
    pub(crate) fn route_monotone_multicast_scratch(
        &self,
        src: &[Option<usize>],
        scratch: &mut MulticastScratch,
    ) -> Result<BenesConfig, BenesError> {
        if src.len() != self.size {
            return Err(BenesError::SizeMismatch { expected: self.size, actual: src.len() });
        }
        let mut last: Option<usize> = None;
        for &s in src.iter().flatten() {
            if s >= self.size {
                return Err(BenesError::SourceOutOfRange(s));
            }
            if let Some(prev) = last {
                if s < prev {
                    return Err(BenesError::NotMonotone);
                }
            }
            last = Some(s);
        }
        route_multicast(src, 0, scratch)
    }
}

/// Reusable per-recursion-depth buffers for [`route_multicast`].
///
/// The multicast recursion visits `N − 1` network nodes and needs five
/// working vectors per node; allocating them fresh dominates cold-routing
/// cost on wide networks. The scratch keeps one set per depth (sub-requests
/// at the same depth are processed sequentially, so siblings can share),
/// making repeated cold routes allocation-light.
#[derive(Debug, Clone, Default)]
pub(crate) struct MulticastScratch {
    levels: Vec<MulticastLevel>,
}

#[derive(Debug, Clone, Default)]
struct MulticastLevel {
    /// Distinct demanded sources, increasing.
    sources: Vec<usize>,
    /// `paired_with_next[s] = Some(t)` when some output switch demands the
    /// distinct pair `(s, t)`.
    paired_with_next: Vec<Option<usize>>,
    /// Greedy subnet color per source port.
    color_of: Vec<Option<u8>>,
    /// Sub-request for the upper half-size network.
    up_src: Vec<Option<usize>>,
    /// Sub-request for the lower half-size network.
    low_src: Vec<Option<usize>>,
}

/// Recursive looping-algorithm permutation routing. `src[o]` = input index.
fn route_perm(src: &[usize]) -> Result<BenesConfig, BenesError> {
    let n = src.len();
    if n == 2 {
        return Ok(BenesConfig::Leaf(if src[0] == 0 {
            SwitchState::Straight
        } else {
            SwitchState::Cross
        }));
    }
    let half = n / 2;

    // out_partner[x] = the other source demanded by x's output switch.
    let mut out_partner = vec![0usize; n];
    for j in 0..half {
        out_partner[src[2 * j]] = src[2 * j + 1];
        out_partner[src[2 * j + 1]] = src[2 * j];
    }

    // 2-color sources: color[x] = 0 => upper subnet, 1 => lower.
    // Constraints: x and x^1 differ (same input switch); x and
    // out_partner[x] differ (same output switch). Cycles formed by these
    // two perfect matchings are even, so alternating assignment works.
    let mut color: Vec<Option<u8>> = vec![None; n];
    for start in 0..n {
        if color[start].is_some() {
            continue;
        }
        let mut x = start;
        let c = 0u8;
        loop {
            color[x] = Some(c);
            let sib = x ^ 1;
            if color[sib].is_some() {
                break;
            }
            color[sib] = Some(1 - c);
            // out_partner[sib] must differ from sib, i.e. it takes color c.
            x = out_partner[sib];
            if color[x].is_some() {
                break;
            }
        }
    }
    let color: Vec<u8> = color
        .into_iter()
        .map(|c| c.ok_or(BenesError::Internal("looping left a source uncolored")))
        .collect::<Result<_, _>>()?;

    // Input switch states and the input-switch index carrying each source.
    let mut input_states = Vec::with_capacity(half);
    for i in 0..half {
        debug_assert_ne!(color[2 * i], color[2 * i + 1], "looping produced same-subnet siblings");
        input_states.push(if color[2 * i] == 0 {
            SwitchState::Straight
        } else {
            SwitchState::Cross
        });
    }

    // Sub-permutations: upper subnet output port j carries the color-0
    // source of output switch j, originating at its input-switch index.
    let mut up_src = Vec::with_capacity(half);
    let mut low_src = Vec::with_capacity(half);
    let mut output_states = Vec::with_capacity(half);
    for j in 0..half {
        let (a, b) = (src[2 * j], src[2 * j + 1]);
        debug_assert_ne!(color[a], color[b], "looping produced same-subnet output pair");
        if color[a] == 0 {
            up_src.push(a / 2);
            low_src.push(b / 2);
            output_states.push(SwitchState::Straight);
        } else {
            up_src.push(b / 2);
            low_src.push(a / 2);
            output_states.push(SwitchState::Cross);
        }
    }

    Ok(BenesConfig::Node {
        input: input_states,
        upper: Box::new(route_perm(&up_src)?),
        lower: Box::new(route_perm(&low_src)?),
        output: output_states,
    })
}

/// Recursive monotone-multicast routing. `src[o]` = Some(input) or None.
///
/// Because the request is monotone, any two sources that conflict (share an
/// input switch or an output switch) are *adjacent* in source order, so the
/// conflict graph is a path and greedy alternating coloring suffices; the
/// sub-requests are again monotone, giving routability by induction.
fn route_multicast(
    src: &[Option<usize>],
    depth: usize,
    scratch: &mut MulticastScratch,
) -> Result<BenesConfig, BenesError> {
    let n = src.len();
    if n == 2 {
        let state = match (src[0], src[1]) {
            (None, None) => SwitchState::Straight,
            (Some(a), Some(b)) if a == b => {
                if a == 0 {
                    SwitchState::BroadcastUpper
                } else {
                    SwitchState::BroadcastLower
                }
            }
            (Some(a), Some(_)) => {
                if a == 0 {
                    SwitchState::Straight
                } else {
                    SwitchState::Cross
                }
            }
            (Some(a), None) => {
                if a == 0 {
                    SwitchState::Straight
                } else {
                    SwitchState::Cross
                }
            }
            (None, Some(b)) => {
                if b == 1 {
                    SwitchState::Straight
                } else {
                    SwitchState::Cross
                }
            }
        };
        return Ok(BenesConfig::Leaf(state));
    }
    let half = n / 2;
    if scratch.levels.len() <= depth {
        scratch.levels.push(MulticastLevel::default());
    }
    let mut lv = std::mem::take(&mut scratch.levels[depth]);
    let MulticastLevel { sources, paired_with_next, color_of, up_src, low_src } = &mut lv;

    // Distinct demanded sources in increasing order.
    sources.clear();
    for &s in src.iter().flatten() {
        if sources.last() != Some(&s) {
            sources.push(s);
        }
    }

    // An output switch demanding two distinct sources always pairs a
    // source with its *successor* in source order (the request is
    // monotone, so the demanded sources are non-decreasing across output
    // ports). One pass precomputes those pairings so the greedy coloring
    // below runs in O(n) instead of rescanning every output switch per
    // source.
    paired_with_next.clear();
    paired_with_next.resize(n, None);
    for j in 0..half {
        if let (Some(a), Some(b)) = (src[2 * j], src[2 * j + 1]) {
            if a != b {
                paired_with_next[a] = Some(b);
            }
        }
    }

    // Greedy path coloring: consecutive sources must differ when they share
    // an input switch or are demanded together by some output switch.
    // Indexed by source port (sources are < n), deterministic by
    // construction — no hash-map involved.
    color_of.clear();
    color_of.resize(n, None);
    let mut prev_color = 0u8;
    for (idx, &s) in sources.iter().enumerate() {
        if idx == 0 {
            color_of[s] = Some(0u8);
            prev_color = 0;
            continue;
        }
        let p = sources[idx - 1];
        let same_input_switch = p / 2 == s / 2;
        let same_output_switch = paired_with_next[p] == Some(s);
        let c = if same_input_switch || same_output_switch { 1 - prev_color } else { prev_color };
        color_of[s] = Some(c);
        prev_color = c;
    }

    // Input switch states.
    let mut input_states = Vec::with_capacity(half);
    for i in 0..half {
        let c0 = color_of[2 * i];
        let c1 = color_of[2 * i + 1];
        let state = match (c0, c1) {
            (Some(a), Some(b)) => {
                debug_assert_ne!(a, b, "sibling sources colored to the same subnet");
                if a == 0 {
                    SwitchState::Straight
                } else {
                    SwitchState::Cross
                }
            }
            (Some(a), None) => {
                if a == 0 {
                    SwitchState::Straight
                } else {
                    SwitchState::Cross
                }
            }
            (None, Some(b)) => {
                if b == 1 {
                    SwitchState::Straight
                } else {
                    SwitchState::Cross
                }
            }
            (None, None) => SwitchState::Straight,
        };
        input_states.push(state);
    }

    // Sub-requests and output switch states.
    let subnet_of = |s: usize| {
        color_of
            .get(s)
            .copied()
            .flatten()
            .ok_or(BenesError::Internal("multicast source missing a subnet color"))
    };
    up_src.clear();
    up_src.resize(half, None);
    low_src.clear();
    low_src.resize(half, None);
    let mut output_states = Vec::with_capacity(half);
    for j in 0..half {
        let (a, b) = (src[2 * j], src[2 * j + 1]);
        let state = match (a, b) {
            (Some(a), Some(b)) if a == b => {
                let c = subnet_of(a)?;
                if c == 0 {
                    up_src[j] = Some(a / 2);
                    SwitchState::BroadcastUpper
                } else {
                    low_src[j] = Some(a / 2);
                    SwitchState::BroadcastLower
                }
            }
            (Some(a), Some(b)) => {
                let (ca, cb) = (subnet_of(a)?, subnet_of(b)?);
                debug_assert_ne!(ca, cb, "output pair colored to the same subnet");
                if ca == 0 {
                    up_src[j] = Some(a / 2);
                    low_src[j] = Some(b / 2);
                    SwitchState::Straight
                } else {
                    up_src[j] = Some(b / 2);
                    low_src[j] = Some(a / 2);
                    SwitchState::Cross
                }
            }
            (Some(a), None) => {
                if subnet_of(a)? == 0 {
                    up_src[j] = Some(a / 2);
                    SwitchState::Straight
                } else {
                    low_src[j] = Some(a / 2);
                    SwitchState::Cross
                }
            }
            (None, Some(b)) => {
                if subnet_of(b)? == 1 {
                    low_src[j] = Some(b / 2);
                    SwitchState::Straight
                } else {
                    up_src[j] = Some(b / 2);
                    SwitchState::Cross
                }
            }
            (None, None) => SwitchState::Straight,
        };
        output_states.push(state);
    }

    // Move the sub-request buffers out and park the rest of this level's
    // scratch before recursing, so deeper levels (and later siblings at
    // this depth) reuse their own buffers.
    let up = std::mem::take(up_src);
    let low = std::mem::take(low_src);
    scratch.levels[depth] = lv;
    let upper = route_multicast(&up, depth + 1, scratch)?;
    let lower = route_multicast(&low, depth + 1, scratch)?;
    scratch.levels[depth].up_src = up;
    scratch.levels[depth].low_src = low;

    Ok(BenesConfig::Node {
        input: input_states,
        upper: Box::new(upper),
        lower: Box::new(lower),
        output: output_states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_perm(n: usize, src: &[usize]) {
        let net = BenesNetwork::new(n).unwrap();
        let cfg = net.route_permutation(src).unwrap();
        let inputs: Vec<Option<usize>> = (0..n).map(Some).collect();
        let out = cfg.apply(&inputs);
        for (o, &s) in src.iter().enumerate() {
            assert_eq!(out[o], Some(s), "output {o} of perm {src:?}");
        }
    }

    fn check_multicast(n: usize, src: &[Option<usize>]) {
        let net = BenesNetwork::new(n).unwrap();
        let cfg = net.route_monotone_multicast(src).unwrap();
        let inputs: Vec<Option<usize>> = (0..n).map(Some).collect();
        let out = cfg.apply(&inputs);
        for (o, &s) in src.iter().enumerate() {
            if let Some(s) = s {
                assert_eq!(out[o], Some(s), "output {o} of multicast {src:?}");
            }
        }
    }

    #[test]
    fn size_validation() {
        assert!(BenesNetwork::new(2).is_ok());
        assert!(BenesNetwork::new(128).is_ok());
        assert_eq!(BenesNetwork::new(0), Err(BenesError::NotPowerOfTwo(0)));
        assert_eq!(BenesNetwork::new(1), Err(BenesError::NotPowerOfTwo(1)));
        assert_eq!(BenesNetwork::new(12), Err(BenesError::NotPowerOfTwo(12)));
    }

    #[test]
    fn structure_metrics() {
        let net = BenesNetwork::new(8).unwrap();
        assert_eq!(net.stage_count(), 5);
        assert_eq!(net.switch_count(), 20);
        assert_eq!(net.traversal_latency_cycles(), 1);
        let n2 = BenesNetwork::new(2).unwrap();
        assert_eq!(n2.stage_count(), 1);
        assert_eq!(n2.switch_count(), 1);
    }

    #[test]
    fn identity_permutation() {
        for n in [2usize, 4, 8, 16, 32] {
            let src: Vec<usize> = (0..n).collect();
            check_perm(n, &src);
        }
    }

    #[test]
    fn reversal_permutation() {
        for n in [2usize, 4, 8, 16, 64] {
            let src: Vec<usize> = (0..n).rev().collect();
            check_perm(n, &src);
        }
    }

    #[test]
    fn rotation_permutations() {
        let n = 16;
        for r in 0..n {
            let src: Vec<usize> = (0..n).map(|o| (o + r) % n).collect();
            check_perm(n, &src);
        }
    }

    #[test]
    fn rejects_non_permutation() {
        let net = BenesNetwork::new(4).unwrap();
        assert_eq!(net.route_permutation(&[0, 0, 1, 2]), Err(BenesError::NotPermutation));
        assert_eq!(
            net.route_permutation(&[0, 1]),
            Err(BenesError::SizeMismatch { expected: 4, actual: 2 })
        );
        assert_eq!(net.route_permutation(&[0, 1, 2, 7]), Err(BenesError::SourceOutOfRange(7)));
    }

    #[test]
    fn broadcast_one_to_all() {
        for n in [2usize, 4, 8, 32] {
            let src = vec![Some(0usize); n];
            check_multicast(n, &src);
        }
    }

    #[test]
    fn multicast_contiguous_groups() {
        // Source 0 -> outputs 0..3, source 1 -> outputs 3..6, source 5 -> 6..8.
        let src = vec![Some(0), Some(0), Some(0), Some(1), Some(1), Some(1), Some(5), Some(5)];
        check_multicast(8, &src);
    }

    #[test]
    fn multicast_with_gaps() {
        let src = vec![Some(1), Some(1), None, Some(3), None, None, Some(6), None];
        check_multicast(8, &src);
    }

    #[test]
    fn multicast_identity_like() {
        let src: Vec<Option<usize>> = (0..16).map(Some).collect();
        check_multicast(16, &src);
    }

    #[test]
    fn multicast_rejects_decreasing() {
        let net = BenesNetwork::new(4).unwrap();
        assert_eq!(
            net.route_monotone_multicast(&[Some(2), Some(1), None, None]),
            Err(BenesError::NotMonotone)
        );
    }

    #[test]
    fn multicast_empty_request() {
        check_multicast(8, &[None; 8]);
    }

    #[test]
    fn switch_state_semantics() {
        assert_eq!(SwitchState::Straight.apply(Some(1), Some(2)), (Some(1), Some(2)));
        assert_eq!(SwitchState::Cross.apply(Some(1), Some(2)), (Some(2), Some(1)));
        assert_eq!(SwitchState::BroadcastUpper.apply(Some(1), Some(2)), (Some(1), Some(1)));
        assert_eq!(SwitchState::BroadcastLower.apply(Some(1), Some(2)), (Some(2), Some(2)));
    }

    #[test]
    fn general_multicast_monotone_takes_one_pass() {
        let net = BenesNetwork::new(8).unwrap();
        let req: Vec<Option<usize>> = (0..8).map(|o| Some(o / 2)).collect();
        let routing = net.route_general_multicast(&req).unwrap();
        assert_eq!(routing.pass_count(), 1);
    }

    #[test]
    fn general_multicast_handles_arbitrary_requests() {
        let net = BenesNetwork::new(8).unwrap();
        // Decreasing + repeated + gaps: not monotone.
        let req = vec![Some(5), Some(2), Some(2), None, Some(7), Some(1), Some(1), Some(6)];
        let routing = net.route_general_multicast(&req).unwrap();
        assert!(routing.pass_count() > 1);
        let inputs: Vec<Option<usize>> = (0..8).map(Some).collect();
        let out = routing.apply(&inputs);
        for (o, want) in req.iter().enumerate() {
            assert_eq!(out[o], *want, "output {o}");
        }
    }

    #[test]
    fn general_multicast_reversal_costs_n_passes() {
        // Strictly decreasing sources: every output starts a new pass.
        let net = BenesNetwork::new(8).unwrap();
        let req: Vec<Option<usize>> = (0..8).rev().map(Some).collect();
        let routing = net.route_general_multicast(&req).unwrap();
        assert_eq!(routing.pass_count(), 8);
        let inputs: Vec<Option<usize>> = (0..8).map(Some).collect();
        let out = routing.apply(&inputs);
        assert_eq!(out[0], Some(7));
        assert_eq!(out[7], Some(0));
    }

    #[test]
    fn general_multicast_validates() {
        let net = BenesNetwork::new(4).unwrap();
        assert!(matches!(
            net.route_general_multicast(&[Some(9), None, None, None]),
            Err(BenesError::SourceOutOfRange(9))
        ));
        assert!(matches!(
            net.route_general_multicast(&[None, None]),
            Err(BenesError::SizeMismatch { .. })
        ));
        // All-empty request: zero passes, applies to nothing.
        let r = net.route_general_multicast(&[None; 4]).unwrap();
        assert_eq!(r.pass_count(), 0);
        assert_eq!(r.apply(&[Some(1), Some(2), Some(3), Some(4)]), vec![None; 4]);
    }

    #[test]
    fn stages_flatten_to_expected_shape() {
        let net = BenesNetwork::new(8).unwrap();
        let cfg = net.route_permutation(&[7, 6, 5, 4, 3, 2, 1, 0]).unwrap();
        let stages = cfg.stages();
        assert_eq!(stages.len(), 5); // 2*log2(8) - 1
        assert!(stages.iter().all(|s| s.len() == 4));
    }

    #[test]
    fn control_bits_roundtrip_permutation() {
        for n in [4usize, 8, 16, 32] {
            let net = BenesNetwork::new(n).unwrap();
            let src: Vec<usize> = (0..n).rev().collect();
            let cfg = net.route_permutation(&src).unwrap();
            let bits = cfg.control_bits();
            assert_eq!(bits.len(), 2 * net.switch_count());
            let back = BenesConfig::from_control_bits(n, &bits).unwrap();
            assert_eq!(back, cfg);
            // And the reconstructed config still routes correctly.
            let inputs: Vec<Option<usize>> = (0..n).map(Some).collect();
            let out = back.apply(&inputs);
            for (o, &s) in src.iter().enumerate() {
                assert_eq!(out[o], Some(s));
            }
        }
    }

    #[test]
    fn control_bits_roundtrip_multicast() {
        let net = BenesNetwork::new(16).unwrap();
        let req: Vec<Option<usize>> = (0..16).map(|o| Some(o / 3)).collect();
        let cfg = net.route_monotone_multicast(&req).unwrap();
        let back = BenesConfig::from_control_bits(16, &cfg.control_bits()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn from_control_bits_validates_length() {
        assert!(matches!(
            BenesConfig::from_control_bits(8, &[false; 3]),
            Err(BenesError::SizeMismatch { .. })
        ));
        assert!(matches!(
            BenesConfig::from_control_bits(6, &[]),
            Err(BenesError::NotPowerOfTwo(6))
        ));
    }

    #[test]
    fn error_display() {
        assert!(BenesError::NotPowerOfTwo(3).to_string().contains("power of two"));
        assert!(BenesError::NotMonotone.to_string().contains("non-decreasing"));
    }
}
