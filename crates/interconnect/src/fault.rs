//! Bit-level fault primitives shared by the interconnect and the core
//! fault injector.
//!
//! Hardware faults on a datapath show up as corrupted bit patterns, not
//! as convenient numeric deltas, so the primitives here operate on the
//! IEEE-754 bit representation of `f32` values: a transient upset flips
//! one bit ([`flip_bit`]), a latched defect forces one bit to a fixed
//! level ([`force_bit`]). [`AdderFault`] packages a persistent stuck-at
//! defect on one FAN adder so [`crate::Fan::reduce_with_faults`] can
//! corrupt exactly the activations that flow through that adder.

/// Flips bit `bit` (0 = LSB of the mantissa, 31 = sign) of an `f32`'s
/// IEEE-754 representation.
///
/// # Panics
///
/// Panics if `bit >= 32`.
#[must_use]
pub fn flip_bit(v: f32, bit: u32) -> f32 {
    assert!(bit < 32, "f32 has 32 bits, got bit index {bit}");
    f32::from_bits(v.to_bits() ^ (1u32 << bit))
}

/// The level a stuck bit is latched at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StuckLevel {
    /// The bit always reads 0.
    Zero,
    /// The bit always reads 1.
    One,
}

/// Forces bit `bit` of an `f32`'s IEEE-754 representation to `level`.
///
/// # Panics
///
/// Panics if `bit >= 32`.
#[must_use]
pub fn force_bit(v: f32, bit: u32, level: StuckLevel) -> f32 {
    assert!(bit < 32, "f32 has 32 bits, got bit index {bit}");
    let mask = 1u32 << bit;
    let bits = match level {
        StuckLevel::Zero => v.to_bits() & !mask,
        StuckLevel::One => v.to_bits() | mask,
    };
    f32::from_bits(bits)
}

/// A persistent stuck-at defect on one FAN adder: every sum produced by
/// adder `adder` has bit `bit` latched at `level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdderFault {
    /// The adder id (see [`crate::Fan::adder_level`] for the layout).
    pub adder: usize,
    /// Which output bit is stuck (0 = LSB, 31 = sign).
    pub bit: u32,
    /// The level it is stuck at.
    pub level: StuckLevel,
}

impl AdderFault {
    /// Applies the defect to one adder activation.
    #[must_use]
    pub fn corrupt(&self, sum: f32) -> f32 {
        force_bit(sum, self.bit, self.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involutive() {
        for bit in 0..32 {
            let v = 1.5f32;
            let flipped = flip_bit(v, bit);
            assert_ne!(flipped.to_bits(), v.to_bits());
            assert_eq!(flip_bit(flipped, bit).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn flip_sign_bit_negates() {
        assert_eq!(flip_bit(2.0, 31), -2.0);
        assert_eq!(flip_bit(-7.25, 31), 7.25);
    }

    #[test]
    fn force_bit_is_idempotent() {
        let v = 3.25f32;
        let once = force_bit(v, 22, StuckLevel::One);
        assert_eq!(force_bit(once, 22, StuckLevel::One).to_bits(), once.to_bits());
        let zeroed = force_bit(v, 22, StuckLevel::Zero);
        assert_eq!(force_bit(zeroed, 22, StuckLevel::Zero).to_bits(), zeroed.to_bits());
    }

    #[test]
    fn force_bit_matches_current_level_is_noop() {
        let v = 1.0f32; // exponent bits 30..23 = 0111_1111, mantissa zero
        assert_eq!(force_bit(v, 0, StuckLevel::Zero).to_bits(), v.to_bits());
        assert_eq!(force_bit(v, 23, StuckLevel::One).to_bits(), v.to_bits());
    }

    #[test]
    fn adder_fault_corrupts() {
        let f = AdderFault { adder: 3, bit: 31, level: StuckLevel::One };
        assert_eq!(f.corrupt(4.0), -4.0);
        assert_eq!(f.corrupt(-4.0), -4.0);
    }
}
