//! Compiled FAN schedules: the structural half of a reduction wave,
//! factored out of the per-cycle loop.
//!
//! [`Fan::reduce_into`](crate::Fan::reduce_into) re-derives the same
//! interval structure on every wave: which adders fire, in what order,
//! where each cluster's partial accumulates, and when each sum
//! completes. None of that depends on the multiplier *values* — it is a
//! pure function of the `vecID` layout, which SIGMA fixes once per fold
//! when the stationary operand is loaded. A [`FanProgram`] runs the
//! interval algorithm once at load time and records:
//!
//! * the exact ordered add sequence as `(dst, src)` leaf positions
//!   (partial sums live at their interval's leftmost leaf), and
//! * the output template: one entry per cluster in left-to-right leaf
//!   order with its `vecID`, leaf range, accumulator slot, and
//!   completion cycle.
//!
//! [`FanProgram::execute_into`] then replays the adds over a wave's
//! product buffer with the hardware's exact association order, so the
//! resulting [`FanReduction`] is **bitwise identical** to
//! [`Fan::reduce_into`](crate::Fan::reduce_into) at a fraction of the
//! cost — this is the per-wave fast path of the event-driven simulator.
//!
//! The compiled `critical_cycles` doubles as the network's
//! *latency-until-quiescent* ([`FanProgram::latency_until_quiescent`]):
//! the number of cycles after the final wave issue until every adder has
//! drained, which the epoch scheduler charges once per fold instead of
//! stepping the tree tick by tick.

use crate::fan::{Fan, FanError, FanReduction, SegmentSum};

/// One cluster output in a compiled FAN schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ProgramOutput {
    /// Cluster identifier.
    vec_id: u32,
    /// Leaf slot where the cluster's final partial accumulates (its
    /// leftmost leaf).
    slot: usize,
    /// Inclusive leaf range the cluster occupies.
    leaf_range: (usize, usize),
    /// Cycles after wave issue at which the sum is available.
    completion_cycles: u64,
}

/// A compiled, value-independent FAN reduction schedule.
///
/// Compile once per stationary load with [`FanProgram::compile`], then
/// replay per streaming wave with [`FanProgram::execute_into`]. Both
/// calls are allocation-free once the internal buffers are warm, so the
/// simulator's steady-state hot loop stays heap-quiet.
///
/// ```
/// use sigma_interconnect::{Fan, FanProgram, FanReduction};
/// let fan = Fan::new(8)?;
/// let ids = [0, 0, 0, 1, 1, 2, 2, 2].map(Some);
/// let mut program = FanProgram::default();
/// program.compile(&fan, &ids)?;
/// let mut work = [1.0, 2.0, 3.0, 10.0, 20.0, 100.0, 200.0, 300.0];
/// let mut out = FanReduction::default();
/// program.execute_into(&mut work, &mut out);
/// let reference = fan.reduce(&[1.0, 2.0, 3.0, 10.0, 20.0, 100.0, 200.0, 300.0], &ids)?;
/// assert_eq!(out, reference);
/// # Ok::<(), sigma_interconnect::FanError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct FanProgram {
    /// Ordered add schedule: `work[dst] += work[src]`, in the exact
    /// level-by-level order the hardware fires its adders.
    adds: Vec<(usize, usize)>,
    /// Cluster outputs in left-to-right leaf order.
    outputs: Vec<ProgramOutput>,
    /// Completion time of the slowest cluster.
    critical_cycles: u64,
    /// Leaf count the program was compiled for.
    size: usize,
    /// `true` after a successful [`FanProgram::compile`].
    valid: bool,
    // Compile-time scratch, reused across compilations.
    intervals: Vec<(usize, usize)>,
    completion: Vec<u64>,
    seen: Vec<u32>,
}

impl FanProgram {
    /// Compiles the add schedule and output template for one `vecID`
    /// layout on `fan`. Reuses internal buffers, so recompilation is
    /// allocation-free once warm.
    ///
    /// # Errors
    ///
    /// Same layout errors as [`Fan::reduce`](crate::Fan::reduce):
    /// [`FanError::SizeMismatch`] and
    /// [`FanError::NonContiguousSegments`]. On error the program is
    /// cleared and [`FanProgram::is_valid`] returns `false`.
    pub fn compile(&mut self, fan: &Fan, vec_ids: &[Option<u32>]) -> Result<(), FanError> {
        self.adds.clear();
        self.outputs.clear();
        self.critical_cycles = 0;
        self.size = fan.size();
        self.valid = false;
        if vec_ids.len() != fan.size() {
            return Err(FanError::SizeMismatch { expected: fan.size(), actual: vec_ids.len() });
        }
        // Contiguity check, identical to the per-wave one in
        // `Fan::reduce_into`: one id per run, sorted, no duplicates.
        self.seen.clear();
        let mut prev: Option<u32> = None;
        for id in vec_ids.iter() {
            if let Some(cur) = *id {
                if prev != Some(cur) {
                    self.seen.push(cur);
                }
            }
            prev = *id;
        }
        self.seen.sort_unstable();
        if let Some(dup) = self.seen.windows(2).find(|w| w[0] == w[1]) {
            return Err(FanError::NonContiguousSegments(dup[0]));
        }

        // Value-free replay of the interval merge: partials live at each
        // interval's leftmost leaf, so merging (s0..=e0) with (s1..=e1)
        // records the add `work[s0] += work[s1]`.
        let intervals = &mut self.intervals;
        intervals.clear();
        self.completion.resize(fan.size(), u64::MAX);
        self.completion.fill(u64::MAX);
        for (i, id) in vec_ids.iter().enumerate() {
            if id.is_some() {
                intervals.push((i, i));
                let left_same = i > 0 && vec_ids[i - 1] == *id;
                let right_same = i + 1 < fan.size() && vec_ids[i + 1] == *id;
                if !left_same && !right_same {
                    self.completion[i] = 0;
                }
            }
        }
        let levels = fan.level_count();
        for lvl in 0..levels {
            let mut i = 0;
            while i + 1 < intervals.len() {
                let (s0, e0) = intervals[i];
                let (s1, e1) = intervals[i + 1];
                let adjacent = e0 + 1 == s1;
                let same_cluster = adjacent && vec_ids[e0] == vec_ids[s1];
                let adder_id = e0;
                if same_cluster && fan.adder_level(adder_id) == lvl {
                    self.adds.push((s0, s1));
                    intervals[i] = (s0, e1);
                    intervals.remove(i + 1);
                    let whole = (s0 == 0 || vec_ids[s0 - 1] != vec_ids[s0])
                        && (e1 + 1 == fan.size() || vec_ids[e1 + 1] != vec_ids[e1]);
                    if whole {
                        self.completion[s0] = u64::from(lvl) + 1;
                    }
                    continue;
                }
                i += 1;
            }
        }

        let mut critical = 0u64;
        for &(s, e) in intervals.iter() {
            let cycles = self.completion[s];
            debug_assert_ne!(cycles, u64::MAX, "every cluster completes within log2(N) levels");
            critical = critical.max(cycles);
            let Some(vec_id) = vec_ids[s] else {
                debug_assert!(false, "interval starts at an active leaf");
                continue;
            };
            self.outputs.push(ProgramOutput {
                vec_id,
                slot: s,
                leaf_range: (s, e),
                completion_cycles: cycles,
            });
        }
        self.critical_cycles = critical;
        self.valid = true;
        Ok(())
    }

    /// Replays the compiled add schedule over one wave of multiplier
    /// products, writing the reduction into `out` (cleared first).
    ///
    /// `work` is consumed in place: slots belonging to active clusters
    /// are overwritten with partial sums as the schedule fires. Idle
    /// leaves are never read, so callers need not zero them. The result
    /// is bitwise identical to
    /// [`Fan::reduce_into`](crate::Fan::reduce_into) on the same values
    /// and the compiled `vecID` layout — same add order, same activation
    /// counts, same completion times.
    ///
    /// # Panics
    ///
    /// Panics (via slice indexing) if `work` is shorter than the
    /// compiled network size. Debug-asserts that the program is valid.
    pub fn execute_into(&self, work: &mut [f32], out: &mut FanReduction) {
        debug_assert!(self.valid, "execute_into on an invalid FanProgram");
        debug_assert!(work.len() >= self.size);
        out.sums.clear();
        for &(dst, src) in &self.adds {
            work[dst] += work[src];
        }
        out.sums.reserve(self.outputs.len());
        for o in &self.outputs {
            out.sums.push(SegmentSum {
                vec_id: o.vec_id,
                value: work[o.slot],
                leaf_range: o.leaf_range,
                completion_cycles: o.completion_cycles,
            });
        }
        out.adds_performed = self.adds.len();
        out.critical_cycles = self.critical_cycles;
    }

    /// `true` after a successful [`FanProgram::compile`]; `false` for a
    /// fresh program or after a compile error.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Number of adder activations per wave (constant across waves).
    #[must_use]
    pub fn adds_performed(&self) -> usize {
        self.adds.len()
    }

    /// Number of cluster sums emitted per wave.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Completion time of the slowest cluster — the cycles needed after
    /// the final wave issue for the tree to drain completely. This is
    /// the FAN's *next-interesting-cycle* hint to the epoch scheduler:
    /// between wave issue and `now + latency_until_quiescent()` nothing
    /// observable happens at the network boundary.
    #[must_use]
    pub fn latency_until_quiescent(&self) -> u64 {
        self.critical_cycles
    }

    /// Alias for [`FanProgram::latency_until_quiescent`], matching the
    /// `critical_cycles` field of [`FanReduction`].
    #[must_use]
    pub fn critical_cycles(&self) -> u64 {
        self.critical_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fan::FanScratch;

    fn ids(spec: &[i64]) -> Vec<Option<u32>> {
        spec.iter().map(|&x| if x < 0 { None } else { Some(x as u32) }).collect()
    }

    fn assert_program_matches_reduce(fan: &Fan, vec_ids: &[Option<u32>], values: &[f32]) {
        let reference = fan.reduce(values, vec_ids).unwrap();
        let mut program = FanProgram::default();
        program.compile(fan, vec_ids).unwrap();
        let mut work = values.to_vec();
        let mut out = FanReduction::default();
        program.execute_into(&mut work, &mut out);
        assert_eq!(out, reference, "compiled replay must match reduce bitwise");
        assert_eq!(program.adds_performed(), reference.adds_performed);
        assert_eq!(program.critical_cycles(), reference.critical_cycles);
        assert_eq!(program.output_count(), reference.sums.len());
    }

    #[test]
    fn matches_reduce_on_representative_layouts() {
        let fan8 = Fan::new(8).unwrap();
        let vals8: Vec<f32> = (1..=8).map(|x| x as f32 * 1.5 - 7.0).collect();
        assert_program_matches_reduce(&fan8, &ids(&[0; 8]), &vals8);
        assert_program_matches_reduce(&fan8, &ids(&[0, 0, 0, 1, 1, 2, 2, 2]), &vals8);
        assert_program_matches_reduce(&fan8, &ids(&[0, 1, 2, 3, 3, 4, 5, 6]), &vals8);
        assert_program_matches_reduce(&fan8, &ids(&[0, 0, -1, -1, 1, 1, -1, -1]), &vals8);
        assert_program_matches_reduce(&fan8, &ids(&[-1; 8]), &vals8);

        let fan16 = Fan::new(16).unwrap();
        let vals16: Vec<f32> = (0..16).map(|x| (x * x) as f32 - 40.0).collect();
        assert_program_matches_reduce(
            &fan16,
            &ids(&[0, 0, 0, 0, 0, 1, 1, 2, 2, 2, 2, 2, 2, 3, 3, 3]),
            &vals16,
        );
        assert_program_matches_reduce(
            &fan16,
            &ids(&[-1, 0, 0, -1, 1, 1, 1, -1, -1, 2, 2, 2, 2, -1, 3, 3]),
            &vals16,
        );
    }

    #[test]
    fn replay_is_bitwise_identical_across_many_waves() {
        // One compile, many value waves — the event scheduler's usage
        // pattern. Values include negatives, zeros of both signs, and
        // magnitudes chosen to exercise rounding, so "bitwise" is a real
        // claim rather than an approximate one.
        let fan = Fan::new(16).unwrap();
        let layout = ids(&[0, 0, 0, 0, 0, 1, 1, 2, 2, 2, 2, 2, 2, -1, 3, 3]);
        let mut program = FanProgram::default();
        program.compile(&fan, &layout).unwrap();
        let mut scratch = FanScratch::default();
        let mut reference = FanReduction::default();
        let mut out = FanReduction::default();
        let mut work = [0.0f32; 16];
        let mut x = 0x2545f491u32;
        for _ in 0..64 {
            let mut values = [0.0f32; 16];
            for v in values.iter_mut() {
                // xorshift-derived mix of magnitudes and signs.
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                *v = (x as f32 / u32::MAX as f32 - 0.5) * 1e3;
                if x & 7 == 0 {
                    *v = 0.0;
                }
                if x & 15 == 1 {
                    *v = -0.0;
                }
            }
            fan.reduce_into(&values, &layout, &[], &mut scratch, &mut reference).unwrap();
            work.copy_from_slice(&values);
            program.execute_into(&mut work, &mut out);
            assert_eq!(out.adds_performed, reference.adds_performed);
            assert_eq!(out.critical_cycles, reference.critical_cycles);
            assert_eq!(out.sums.len(), reference.sums.len());
            for (a, b) in out.sums.iter().zip(reference.sums.iter()) {
                assert_eq!(a.vec_id, b.vec_id);
                assert_eq!(a.leaf_range, b.leaf_range);
                assert_eq!(a.completion_cycles, b.completion_cycles);
                assert_eq!(a.value.to_bits(), b.value.to_bits(), "sums must match bit-for-bit");
            }
        }
    }

    #[test]
    fn idle_leaves_are_never_read() {
        let fan = Fan::new(8).unwrap();
        let layout = ids(&[0, 0, -1, -1, 1, 1, -1, -1]);
        let mut program = FanProgram::default();
        program.compile(&fan, &layout).unwrap();
        // Poison idle slots with NaN: if the replay read them, the sums
        // would be NaN.
        let mut work = [1.0, 2.0, f32::NAN, f32::NAN, 3.0, 4.0, f32::NAN, f32::NAN];
        let mut out = FanReduction::default();
        program.execute_into(&mut work, &mut out);
        assert_eq!(out.sums.len(), 2);
        assert_eq!(out.sums[0].value, 3.0);
        assert_eq!(out.sums[1].value, 7.0);
    }

    #[test]
    fn rejects_bad_layouts_and_marks_invalid() {
        let fan = Fan::new(4).unwrap();
        let mut program = FanProgram::default();
        assert!(!program.is_valid());
        assert_eq!(
            program.compile(&fan, &ids(&[0, 1, 0, 1])),
            Err(FanError::NonContiguousSegments(0))
        );
        assert!(!program.is_valid());
        assert!(matches!(
            program.compile(&fan, &ids(&[0, 0, 0])),
            Err(FanError::SizeMismatch { expected: 4, actual: 3 })
        ));
        assert!(!program.is_valid());
        // A later good compile recovers.
        program.compile(&fan, &ids(&[0, 0, 1, 1])).unwrap();
        assert!(program.is_valid());
        assert_eq!(program.adds_performed(), 2);
        assert_eq!(program.output_count(), 2);
    }

    #[test]
    fn quiescent_latency_matches_critical_cycles() {
        let fan = Fan::new(8).unwrap();
        let mut program = FanProgram::default();
        // Boundary-crossing pair: completion 3 even with a single add.
        program.compile(&fan, &ids(&[0, 1, 2, 3, 3, 4, 5, 6])).unwrap();
        assert_eq!(program.latency_until_quiescent(), 3);
        // All-singleton layout is quiescent immediately.
        program.compile(&fan, &ids(&[0, 1, 2, 3, 4, 5, 6, 7])).unwrap();
        assert_eq!(program.latency_until_quiescent(), 0);
    }

    #[test]
    fn recompile_is_allocation_free_shape() {
        // Not the counting-allocator test (that lives in sigma-core's
        // alloc_free harness) — just check buffers are reused: capacity
        // does not shrink and results stay correct after recompiles.
        let fan = Fan::new(8).unwrap();
        let mut program = FanProgram::default();
        program.compile(&fan, &ids(&[0, 0, 0, 0, 1, 1, 1, 1])).unwrap();
        let adds_cap = program.adds.capacity();
        program.compile(&fan, &ids(&[0, 1, 2, 3, 4, 5, 6, 7])).unwrap();
        assert!(program.adds.capacity() >= adds_cap.min(1));
        assert_eq!(program.adds_performed(), 0);
        program.compile(&fan, &ids(&[0, 0, 0, 0, 1, 1, 1, 1])).unwrap();
        assert_eq!(program.adds_performed(), 6);
    }
}
