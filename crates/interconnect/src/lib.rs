//! Flexible interconnect models for the SIGMA reproduction.
//!
//! SIGMA's Flex-DPE (Sec. IV-A of [Qin et al., HPCA 2020]) is built from two
//! specialized networks:
//!
//! * a **distribution network** — a [Benes network](benes::BenesNetwork)
//!   that loads/streams operands from SRAM to the multipliers in O(1)
//!   (non-blocking, multicast-capable), and
//! * a **reduction network** — the novel [Forwarding Adder Network
//!   (FAN)](fan::Fan), a binary adder tree augmented with forwarding links
//!   so that *non-power-of-two, variable-sized* dot products reduce
//!   spatially in O(log₂ N) cycles.
//!
//! The paper compares these against simpler or costlier alternatives:
//! crossbars, buses, butterflies and meshes for distribution
//! ([`alternatives`]), and linear (temporal / spatio-temporal) reduction and
//! MAERI's ART for reduction ([`reduction`], Fig. 6b). All of those models
//! live here too.
//!
//! Everything is *functional*, not just analytic: the Benes model routes
//! real values through real switch states, and FAN reduces real `f32`
//! values through real adder levels — both are property-tested.
//!
//! [Qin et al., HPCA 2020]: https://doi.org/10.1109/HPCA47549.2020.00015

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    warn(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alternatives;
pub mod benes;
pub mod butterfly;
pub mod fan;
pub mod fault;
pub mod program;
pub mod reduction;
pub mod route_cache;

pub use benes::{BenesConfig, BenesError, BenesNetwork, MultipassRouting, SwitchState};
pub use butterfly::{Butterfly, ButterflyRouting};
pub use fan::{Fan, FanError, FanReduction, FanScratch, SegmentSum};
pub use fault::{flip_bit, force_bit, AdderFault, StuckLevel};
pub use program::FanProgram;
pub use reduction::{ReductionKind, ReductionNetwork};
pub use route_cache::RouteCache;

/// `true` if `n` is a power of two (and non-zero).
#[must_use]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// `ceil(log2(n))` for `n >= 1`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn log2_ceil(n: usize) -> u32 {
    assert!(n > 0, "log2_ceil(0) is undefined");
    usize::BITS - (n - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_check() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(64));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(48));
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(128), 7);
        assert_eq!(log2_ceil(129), 8);
    }
}
