//! A functional butterfly network with conflict detection — the blocking
//! alternative the paper rejects for SIGMA's distribution (Sec. IV-A-1).
//!
//! A butterfly of size `N = 2^s` has `s` stages of `N/2` 2x2 switches;
//! stage `i` pairs ports whose addresses differ in bit `s−1−i`. Unlike
//! the Benes network (which prepends the mirror-image stages and becomes
//! rearrangeably non-blocking), the butterfly has exactly *one* path per
//! (source, destination) pair, so two flows whose paths share a link
//! conflict and must serialize.
//!
//! [`Butterfly::route`] routes a request set greedily in waves: each wave
//! carries a maximal conflict-free subset; the number of waves is the
//! serialization the paper's "performance degradation due to increased
//! distribution delays" refers to. The unit tests exhibit permutations
//! that need only one wave (the butterfly-friendly ones) and adversarial
//! permutations that need many.

use crate::{is_power_of_two, log2_ceil};
use std::collections::BTreeSet;

/// A butterfly (omega-style) network over `N` ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Butterfly {
    size: usize,
}

/// The outcome of routing a request set through the butterfly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ButterflyRouting {
    /// Waves of conflict-free requests; each inner vec lists the
    /// `(source, destination)` pairs delivered together.
    pub waves: Vec<Vec<(usize, usize)>>,
}

impl ButterflyRouting {
    /// Number of serialized waves (1 = behaved like a non-blocking net).
    #[must_use]
    pub fn wave_count(&self) -> usize {
        self.waves.len()
    }
}

impl Butterfly {
    /// Creates a butterfly over `size` ports.
    ///
    /// # Errors
    ///
    /// Returns `Err(size)` unless `size` is a power of two >= 2.
    pub fn new(size: usize) -> Result<Self, usize> {
        if !is_power_of_two(size) || size < 2 {
            return Err(size);
        }
        Ok(Self { size })
    }

    /// Number of ports.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of switch stages: `log₂N`.
    #[must_use]
    pub fn stage_count(&self) -> u32 {
        log2_ceil(self.size)
    }

    /// The unique path of `(stage, link-id)` hops from `src` to `dst`.
    ///
    /// The link entering stage `i+1` is identified by the partial address
    /// where the top `i+1` bits have been steered to `dst`'s bits and the
    /// rest still carry `src`'s bits (destination-tag routing).
    #[must_use]
    pub fn path(&self, src: usize, dst: usize) -> Vec<(u32, usize)> {
        assert!(src < self.size && dst < self.size, "port out of range");
        let s = self.stage_count();
        let mut hops = Vec::with_capacity(s as usize);
        let mut addr = src;
        for stage in 0..s {
            let bit = s - 1 - stage;
            // Steer this address bit to the destination's bit.
            let dst_bit = (dst >> bit) & 1;
            addr = (addr & !(1 << bit)) | (dst_bit << bit);
            hops.push((stage, addr));
        }
        hops
    }

    /// Routes a set of `(source, destination)` requests, serializing
    /// conflicting ones into waves (greedy, in request order).
    ///
    /// # Panics
    ///
    /// Panics if any port index is out of range.
    #[must_use]
    pub fn route(&self, requests: &[(usize, usize)]) -> ButterflyRouting {
        let mut remaining: Vec<(usize, usize)> = requests.to_vec();
        let mut waves = Vec::new();
        while !remaining.is_empty() {
            let mut used: BTreeSet<(u32, usize)> = BTreeSet::new();
            let mut wave = Vec::new();
            let mut next = Vec::new();
            for (src, dst) in remaining {
                let path = self.path(src, dst);
                if path.iter().all(|h| !used.contains(h)) {
                    for h in path {
                        used.insert(h);
                    }
                    wave.push((src, dst));
                } else {
                    next.push((src, dst));
                }
            }
            waves.push(wave);
            remaining = next;
        }
        ButterflyRouting { waves }
    }

    /// Average waves needed over `samples` pseudo-random permutations —
    /// the blocking metric for comparisons (a non-blocking network would
    /// score exactly 1.0).
    #[must_use]
    pub fn average_random_waves(&self, samples: usize) -> f64 {
        let n = self.size;
        let mut total = 0usize;
        let mut state = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..samples.max(1) {
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                perm.swap(i, j);
            }
            let req: Vec<(usize, usize)> = perm.into_iter().enumerate().collect();
            total += self.route(&req).wave_count();
        }
        total as f64 / samples.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert!(Butterfly::new(8).is_ok());
        assert_eq!(Butterfly::new(6), Err(6));
        assert_eq!(Butterfly::new(8).unwrap().stage_count(), 3);
    }

    #[test]
    fn identity_routes_in_one_wave() {
        let bf = Butterfly::new(16).unwrap();
        let req: Vec<(usize, usize)> = (0..16).map(|i| (i, i)).collect();
        assert_eq!(bf.route(&req).wave_count(), 1);
    }

    #[test]
    fn xor_permutations_are_butterfly_friendly() {
        // XOR-mask permutations route in a single pass on a butterfly —
        // the classic conflict-free family.
        let bf = Butterfly::new(16).unwrap();
        for mask in [1usize, 5, 8, 15] {
            let req: Vec<(usize, usize)> = (0..16).map(|i| (i, i ^ mask)).collect();
            assert_eq!(bf.route(&req).wave_count(), 1, "mask {mask}");
        }
    }

    #[test]
    fn adversarial_patterns_serialize() {
        // Many-to-adjacent concentration conflicts on shared links.
        let bf = Butterfly::new(16).unwrap();
        let req: Vec<(usize, usize)> = (0..16).map(|i| (i, i / 2)).collect();
        let routing = bf.route(&req);
        assert!(routing.wave_count() > 1, "concentration should block");
        // Every request is eventually delivered exactly once.
        let delivered: usize = routing.waves.iter().map(Vec::len).sum();
        assert_eq!(delivered, 16);
    }

    #[test]
    fn benes_equivalent_patterns_always_single_wave_on_benes() {
        // The same adversarial pattern routes in ONE pass on the Benes
        // (monotone multicast) — the quantitative case for SIGMA's choice.
        use crate::BenesNetwork;
        let net = BenesNetwork::new(16).unwrap();
        let req: Vec<Option<usize>> = (0..16).map(|d| Some(d * 2 % 16)).collect();
        // d/2-style concentration expressed as monotone gather:
        let gather: Vec<Option<usize>> = (0..16).map(|d| Some(d / 2)).collect();
        assert!(net.route_monotone_multicast(&gather).is_ok());
        let _ = req;
    }

    #[test]
    fn random_permutations_average_more_than_one_wave() {
        // Random permutations block with high probability — the blocking
        // behavior a non-blocking Benes never exhibits.
        let bf = Butterfly::new(32).unwrap();
        let avg = bf.average_random_waves(50);
        assert!(avg > 1.5, "random perms should block on average, got {avg}");
        assert!(avg < 32.0);
    }

    #[test]
    fn paths_have_stage_per_hop() {
        let bf = Butterfly::new(32).unwrap();
        let p = bf.path(17, 5);
        assert_eq!(p.len(), 5);
        // Final hop lands on the destination address.
        assert_eq!(p.last().unwrap().1, 5);
    }
}
