//! Memoized Benes routing keyed by the multicast request pattern.
//!
//! SIGMA's controller emits a small set of *distinct* request patterns per
//! GEMM: folds of an irregular sparse workload reuse a handful of cluster
//! shapes, and the stationary-load unicast is the same identity prefix for
//! every full fold. Deriving the switch configuration is the expensive part
//! (the looping/coloring recursion walks the whole network), so
//! [`RouteCache`] memoizes [`BenesConfig`]s and [`MultipassRouting`]s by the
//! exact request vector. Entries live in a `BTreeMap` (ordered comparisons,
//! no per-process hasher state — lookup order can never leak into results),
//! a hit performs no heap allocation (the lookup key is built in a reusable
//! scratch buffer); outputs are the very configurations the cold router
//! produced, so cached and cold simulation are byte-identical by
//! construction — and the test suite checks it anyway.
//!
//! Disabling the cache ([`RouteCache::set_enabled`]) routes every request
//! cold through the same entry points; the `sigma-core` proptests compare
//! the two modes end-to-end.

use crate::benes::{BenesConfig, BenesError, BenesNetwork, MulticastScratch, MultipassRouting};
use std::collections::BTreeMap;

/// A request slot in the canonical key encoding: `u32::MAX` encodes `None`,
/// anything else the source index. Network sizes are far below `u32::MAX`,
/// and keys of different lengths cannot collide, so the encoding is exact.
type RouteSlot = u32;

const NONE_SLOT: RouteSlot = u32::MAX;

/// Memoizes Benes switch configurations across folds/steps.
///
/// ```
/// use sigma_interconnect::{BenesNetwork, RouteCache};
/// let net = BenesNetwork::new(8)?;
/// let mut cache = RouteCache::new();
/// let req: Vec<Option<usize>> = (0..8).map(|o| Some(o / 2)).collect();
/// let a = cache.route_monotone_multicast(&net, &req)?.clone();
/// let b = cache.route_monotone_multicast(&net, &req)?.clone();
/// assert_eq!(a, b);
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// # Ok::<(), sigma_interconnect::BenesError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RouteCache {
    enabled: bool,
    monotone: BTreeMap<Box<[RouteSlot]>, usize>,
    monotone_configs: Vec<BenesConfig>,
    general: BTreeMap<Box<[RouteSlot]>, usize>,
    general_routings: Vec<MultipassRouting>,
    /// Reusable key buffer so cache hits do not allocate.
    key_buf: Vec<RouteSlot>,
    /// Reusable recursion scratch so cold monotone routes stay
    /// allocation-light.
    route_scratch: MulticastScratch,
    /// Cold-route storage when the cache is disabled (so the borrow-return
    /// API shape is identical in both modes).
    cold_config: Option<BenesConfig>,
    cold_routing: Option<MultipassRouting>,
    hits: u64,
    misses: u64,
}

impl RouteCache {
    /// Creates an empty, enabled cache.
    #[must_use]
    pub fn new() -> Self {
        Self { enabled: true, ..Self::default() }
    }

    /// Creates a cache with caching on or off. Disabled, every request is
    /// routed cold — useful for differential testing against the memoized
    /// path.
    #[must_use]
    pub fn with_enabled(enabled: bool) -> Self {
        Self { enabled, ..Self::default() }
    }

    /// Turns memoization on or off (existing entries are kept but unused
    /// while disabled).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether memoization is active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of lookups served from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that had to route cold.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct request patterns currently memoized.
    #[must_use]
    pub fn len(&self) -> usize {
        self.monotone_configs.len() + self.general_routings.len()
    }

    /// `true` when nothing has been memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all memoized configurations and counters.
    pub fn clear(&mut self) {
        self.monotone.clear();
        self.monotone_configs.clear();
        self.general.clear();
        self.general_routings.clear();
        self.cold_config = None;
        self.cold_routing = None;
        self.hits = 0;
        self.misses = 0;
    }

    fn encode_key(key_buf: &mut Vec<RouteSlot>, src: &[Option<usize>]) {
        key_buf.clear();
        key_buf.reserve(src.len());
        for &s in src {
            #[allow(clippy::cast_possible_truncation)]
            key_buf.push(s.map_or(NONE_SLOT, |x| x as RouteSlot));
        }
    }

    /// Memoizing [`BenesNetwork::route_monotone_multicast`]: returns the
    /// cached switch configuration for this exact request pattern, routing
    /// cold (and remembering the result) on first sight. The boolean is
    /// `true` when this call was a miss — callers that validate freshly
    /// derived configurations can skip re-validating hits.
    ///
    /// # Errors
    ///
    /// Same as [`BenesNetwork::route_monotone_multicast`]; errors are not
    /// cached.
    pub fn route_monotone_multicast_tracked(
        &mut self,
        net: &BenesNetwork,
        src: &[Option<usize>],
    ) -> Result<(&BenesConfig, bool), BenesError> {
        if !self.enabled {
            self.misses += 1;
            let cfg = net.route_monotone_multicast_scratch(src, &mut self.route_scratch)?;
            return Ok((self.cold_config.insert(cfg), true));
        }
        Self::encode_key(&mut self.key_buf, src);
        if let Some(&idx) = self.monotone.get(self.key_buf.as_slice()) {
            self.hits += 1;
            return Ok((&self.monotone_configs[idx], false));
        }
        let cfg = net.route_monotone_multicast_scratch(src, &mut self.route_scratch)?;
        self.misses += 1;
        let idx = self.monotone_configs.len();
        self.monotone_configs.push(cfg);
        self.monotone.insert(self.key_buf.clone().into_boxed_slice(), idx);
        Ok((&self.monotone_configs[idx], true))
    }

    /// Memoizing [`BenesNetwork::route_monotone_multicast`].
    ///
    /// # Errors
    ///
    /// Same as [`BenesNetwork::route_monotone_multicast`].
    pub fn route_monotone_multicast(
        &mut self,
        net: &BenesNetwork,
        src: &[Option<usize>],
    ) -> Result<&BenesConfig, BenesError> {
        self.route_monotone_multicast_tracked(net, src).map(|(cfg, _)| cfg)
    }

    /// Memoizing [`BenesNetwork::route_general_multicast`]: the multi-pass
    /// decomposition (switch settings *and* per-pass request slices) is
    /// derived once per distinct pattern. The boolean is `true` on a miss.
    ///
    /// # Errors
    ///
    /// Same as [`BenesNetwork::route_general_multicast`]; errors are not
    /// cached.
    pub fn route_general_multicast_tracked(
        &mut self,
        net: &BenesNetwork,
        src: &[Option<usize>],
    ) -> Result<(&MultipassRouting, bool), BenesError> {
        if !self.enabled {
            self.misses += 1;
            let routing = net.route_general_multicast(src)?;
            return Ok((self.cold_routing.insert(routing), true));
        }
        Self::encode_key(&mut self.key_buf, src);
        if let Some(&idx) = self.general.get(self.key_buf.as_slice()) {
            self.hits += 1;
            return Ok((&self.general_routings[idx], false));
        }
        let routing = net.route_general_multicast(src)?;
        self.misses += 1;
        let idx = self.general_routings.len();
        self.general_routings.push(routing);
        self.general.insert(self.key_buf.clone().into_boxed_slice(), idx);
        Ok((&self.general_routings[idx], true))
    }

    /// Memoizing [`BenesNetwork::route_general_multicast`].
    ///
    /// # Errors
    ///
    /// Same as [`BenesNetwork::route_general_multicast`].
    pub fn route_general_multicast(
        &mut self,
        net: &BenesNetwork,
        src: &[Option<usize>],
    ) -> Result<&MultipassRouting, BenesError> {
        self.route_general_multicast_tracked(net, src).map(|(r, _)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> BenesNetwork {
        BenesNetwork::new(n).unwrap()
    }

    #[test]
    fn monotone_hits_return_the_identical_config() {
        let net = net(16);
        let mut cache = RouteCache::new();
        let req: Vec<Option<usize>> = (0..16).map(|o| Some(o / 3)).collect();
        let cold = net.route_monotone_multicast(&req).unwrap();
        let first = cache.route_monotone_multicast(&net, &req).unwrap().clone();
        let second = cache.route_monotone_multicast(&net, &req).unwrap().clone();
        assert_eq!(first, cold);
        assert_eq!(second, cold);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_patterns_are_distinct_entries() {
        let net = net(8);
        let mut cache = RouteCache::new();
        for shift in 0..4usize {
            let req: Vec<Option<usize>> = (0..8).map(|o| Some((o / 2 + shift).min(7))).collect();
            cache.route_monotone_multicast(&net, &req).unwrap();
        }
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn general_routing_caches_passes() {
        let net = net(8);
        let mut cache = RouteCache::new();
        let req = vec![Some(5), Some(2), Some(2), None, Some(7), Some(1), Some(1), Some(6)];
        let cold = net.route_general_multicast(&req).unwrap();
        let (hot, miss) = cache.route_general_multicast_tracked(&net, &req).unwrap();
        assert!(miss);
        assert_eq!(*hot, cold);
        let (hot2, miss2) = cache.route_general_multicast_tracked(&net, &req).unwrap();
        assert!(!miss2);
        assert_eq!(*hot2, cold);
        let inputs: Vec<Option<usize>> = (0..8).map(Some).collect();
        assert_eq!(
            cold.apply(&inputs),
            cache.route_general_multicast(&net, &req).unwrap().apply(&inputs)
        );
    }

    #[test]
    fn gap_position_distinguishes_keys() {
        // [Some(1), None] and [None, Some(1)] must not collide.
        let net = net(4);
        let mut cache = RouteCache::new();
        let a = vec![Some(1), None, None, None];
        let b = vec![None, Some(1), None, None];
        cache.route_monotone_multicast(&net, &a).unwrap();
        cache.route_monotone_multicast(&net, &b).unwrap();
        assert_eq!(cache.misses(), 2);
        let cfg_a = cache.route_monotone_multicast(&net, &a).unwrap().clone();
        let inputs: Vec<Option<usize>> = (0..4).map(Some).collect();
        assert_eq!(cfg_a.apply(&inputs)[0], Some(1));
    }

    #[test]
    fn disabled_cache_routes_cold_every_time() {
        let net = net(8);
        let mut cache = RouteCache::with_enabled(false);
        assert!(!cache.enabled());
        let req: Vec<Option<usize>> = (0..8).map(Some).collect();
        let cold = net.route_monotone_multicast(&req).unwrap();
        for _ in 0..3 {
            let (cfg, miss) = cache.route_monotone_multicast_tracked(&net, &req).unwrap();
            assert!(miss, "disabled cache never reports hits");
            assert_eq!(*cfg, cold);
        }
        assert_eq!((cache.hits(), cache.misses()), (0, 3));
        assert!(cache.is_empty());
    }

    #[test]
    fn errors_are_propagated_not_cached() {
        let net = net(4);
        let mut cache = RouteCache::new();
        let bad = vec![Some(2), Some(1), None, None];
        assert_eq!(
            cache.route_monotone_multicast(&net, &bad).unwrap_err(),
            BenesError::NotMonotone
        );
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 0, "failed routes are not counted as misses");
    }

    #[test]
    fn clear_resets_everything() {
        let net = net(4);
        let mut cache = RouteCache::new();
        let req: Vec<Option<usize>> = (0..4).map(Some).collect();
        cache.route_monotone_multicast(&net, &req).unwrap();
        cache.route_monotone_multicast(&net, &req).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn sizes_share_a_cache_without_collisions() {
        let n4 = net(4);
        let n8 = net(8);
        let mut cache = RouteCache::new();
        cache.route_monotone_multicast(&n4, &[Some(0); 4]).unwrap();
        cache.route_monotone_multicast(&n8, &[Some(0); 8]).unwrap();
        assert_eq!(cache.misses(), 2, "length is part of the key");
    }
}
