//! Distribution-network design alternatives (Sec. IV-A-1 discussion).
//!
//! The paper justifies the Benes choice by contrasting it with a crossbar
//! (equally non-blocking but `O(N²)` cost), and with blocking designs —
//! buses, trees, butterflies, meshes — that are cheap in wires but
//! serialize conflicting transfers. These small analytic models expose the
//! cost and delay trade-offs used in the design-choice discussion and the
//! DSE bench.

use crate::log2_ceil;

/// Distribution-network design points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistributionKind {
    /// Non-blocking N×N crossbar.
    Crossbar,
    /// Benes network (SIGMA's choice).
    Benes,
    /// Single shared bus: one unique value broadcast per cycle.
    Bus,
    /// Butterfly: log-stage blocking network.
    Butterfly,
    /// 2-D mesh (store-and-forward between neighbors).
    Mesh,
}

impl DistributionKind {
    /// All design points.
    pub const ALL: [DistributionKind; 5] = [
        DistributionKind::Crossbar,
        DistributionKind::Benes,
        DistributionKind::Bus,
        DistributionKind::Butterfly,
        DistributionKind::Mesh,
    ];

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DistributionKind::Crossbar => "Crossbar",
            DistributionKind::Benes => "Benes",
            DistributionKind::Bus => "Bus",
            DistributionKind::Butterfly => "Butterfly",
            DistributionKind::Mesh => "Mesh",
        }
    }

    /// `true` when any source-to-destination pattern routes without
    /// intermediate contention.
    #[must_use]
    pub fn is_non_blocking(&self) -> bool {
        matches!(self, DistributionKind::Crossbar | DistributionKind::Benes)
    }
}

impl std::fmt::Display for DistributionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Analytic cost/latency model of one distribution design over `n` ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributionModel {
    kind: DistributionKind,
    size: usize,
}

impl DistributionModel {
    /// Creates a model over `size` destination ports.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    #[must_use]
    pub fn new(kind: DistributionKind, size: usize) -> Self {
        assert!(size > 0, "distribution network size must be non-zero");
        Self { kind, size }
    }

    /// The design point.
    #[must_use]
    pub fn kind(&self) -> DistributionKind {
        self.kind
    }

    /// Number of destination ports.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Switching elements (crosspoints or 2×2 switches) — the dominant
    /// area/wire cost driver.
    #[must_use]
    pub fn switch_cost(&self) -> u64 {
        let n = self.size as u64;
        match self.kind {
            DistributionKind::Crossbar => n * n,
            DistributionKind::Benes => u64::from(2 * log2_ceil(self.size).max(1) - 1) * n / 2,
            DistributionKind::Bus => n, // one tap per port
            DistributionKind::Butterfly => u64::from(log2_ceil(self.size).max(1)) * n / 2,
            DistributionKind::Mesh => n, // one small router per port
        }
    }

    /// Cycles to deliver `unique_values` distinct values to their
    /// destinations (multicast of the same value counts once).
    ///
    /// Non-blocking designs deliver everything in one traversal; the bus
    /// serializes per unique value; the butterfly's internal conflicts cost
    /// roughly 2x over non-blocking on adversarial patterns; a mesh pays
    /// hop distance.
    #[must_use]
    pub fn delivery_cycles(&self, unique_values: u64) -> u64 {
        match self.kind {
            DistributionKind::Crossbar | DistributionKind::Benes => 1,
            DistributionKind::Bus => unique_values.max(1),
            DistributionKind::Butterfly => 2,
            DistributionKind::Mesh => {
                // Worst-case Manhattan distance across a sqrt(N) x sqrt(N) grid.
                let side = (self.size as f64).sqrt().ceil() as u64;
                2 * side.max(1) - 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_cost_is_quadratic() {
        let xb = DistributionModel::new(DistributionKind::Crossbar, 128);
        let benes = DistributionModel::new(DistributionKind::Benes, 128);
        assert_eq!(xb.switch_cost(), 128 * 128);
        assert_eq!(benes.switch_cost(), 13 * 64);
        assert!(benes.switch_cost() < xb.switch_cost());
    }

    #[test]
    fn non_blocking_classification() {
        assert!(DistributionKind::Benes.is_non_blocking());
        assert!(DistributionKind::Crossbar.is_non_blocking());
        assert!(!DistributionKind::Bus.is_non_blocking());
        assert!(!DistributionKind::Butterfly.is_non_blocking());
        assert!(!DistributionKind::Mesh.is_non_blocking());
    }

    #[test]
    fn bus_serializes_unique_values() {
        let bus = DistributionModel::new(DistributionKind::Bus, 64);
        assert_eq!(bus.delivery_cycles(1), 1);
        assert_eq!(bus.delivery_cycles(64), 64);
        let benes = DistributionModel::new(DistributionKind::Benes, 64);
        assert_eq!(benes.delivery_cycles(64), 1);
    }

    #[test]
    fn mesh_pays_hop_distance() {
        let mesh = DistributionModel::new(DistributionKind::Mesh, 64);
        assert_eq!(mesh.delivery_cycles(8), 15); // 8x8 grid: 2*8 - 1
    }

    #[test]
    fn names_and_all() {
        assert_eq!(DistributionKind::ALL.len(), 5);
        assert_eq!(DistributionKind::Benes.to_string(), "Benes");
    }
}
