//! FAN — the Forwarding Adder Network (Sec. IV-A-2, Fig. 6 of the paper).
//!
//! FAN is SIGMA's novel reduction topology: a binary adder tree laid out
//! *in order* (adder `i` sits between multiplier outputs `i` and `i+1`)
//! and augmented with forwarding links between adder levels, so that
//! several *variable-sized, non-power-of-two* dot products can reduce
//! concurrently and correctly — something a plain binary adder tree cannot
//! do (partials of different dot products would collide on the way up).
//!
//! ## Topology
//!
//! For `N` multipliers there are `N − 1` adders, `adderID ∈ 0..N-1`. The
//! level of adder `i` is the number of trailing ones of `i`
//! ([`Fan::adder_level`]): even adders are level 0 and combine adjacent
//! multiplier pairs; adder `4k+1` is level 1; the single top adder
//! `N/2 − 1` is level `log₂N − 1`. Each adder at level `L` additionally
//! owns forwarding links to adders `i ± 2^(l−1)` for every `l ∈ 1..=L`
//! (the paper's pseudocode) — these, plus an N-to-2 mux in front of each
//! adder from level 2 upward, let partial sums *bypass* adders belonging
//! to other dot products.
//!
//! ## Routing (Fig. 6c)
//!
//! Every multiplier output carries a `vecID` naming the dot product
//! (cluster) it belongs to; clusters occupy contiguous multiplier ranges.
//! Adder `i` accumulates iff `vecID[i] == vecID[i+1]`; a level-0 adder
//! with unequal vecIDs bypasses both values upward. A segment spanning
//! leaves `a..=b` therefore performs its adds at exactly the adders
//! `a..b`, and completes one cycle after its highest-level adder fires:
//! `completion = max(level(i) for i in a..b) + 1` cycles. The wave
//! pipeline advances one adder level per cycle, so the full-array latency
//! is `log₂N` cycles and a new reduction wave can be issued every cycle.
//!
//! [`Fan::reduce`] executes this faithfully on real `f32` data — same add
//! order, same adder activations, same per-segment completion times.

use crate::{is_power_of_two, log2_ceil};
use std::error::Error;
use std::fmt;

/// Errors from FAN construction and reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FanError {
    /// The network size is not a power of two (or is < 2).
    NotPowerOfTwo(usize),
    /// Input slices do not match the network size.
    SizeMismatch {
        /// Network size.
        expected: usize,
        /// Slice length provided.
        actual: usize,
    },
    /// A `vecID` appeared in two non-adjacent runs: clusters must occupy
    /// contiguous multiplier ranges.
    NonContiguousSegments(u32),
}

impl fmt::Display for FanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FanError::NotPowerOfTwo(n) => {
                write!(f, "fan size must be a power of two >= 2, got {n}")
            }
            FanError::SizeMismatch { expected, actual } => {
                write!(f, "input length {actual} does not match fan size {expected}")
            }
            FanError::NonContiguousSegments(id) => {
                write!(f, "vecID {id} occupies non-contiguous multiplier ranges")
            }
        }
    }
}

impl Error for FanError {}

/// One completed dot-product sum emerging from the FAN.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentSum {
    /// The cluster (dot product) identifier.
    pub vec_id: u32,
    /// The reduced value.
    pub value: f32,
    /// Inclusive range of multiplier (leaf) indices the cluster occupied.
    pub leaf_range: (usize, usize),
    /// Cycles after wave issue at which this sum is available. A
    /// single-multiplier cluster bypasses every adder (0 cycles); a
    /// cluster whose highest enabled adder is at level `L` completes at
    /// `L + 1`. 64-bit like every other cycle counter, so downstream
    /// accumulation never narrows.
    pub completion_cycles: u64,
}

/// Result of pushing one wave of multiplier outputs through the FAN.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FanReduction {
    /// One sum per cluster, in left-to-right leaf order.
    pub sums: Vec<SegmentSum>,
    /// Number of floating-point additions performed (adder activations).
    pub adds_performed: usize,
    /// Completion time of the slowest cluster in this wave, in cycles.
    pub critical_cycles: u64,
}

/// Reusable working state for [`Fan::reduce_into`].
///
/// The interval list, per-leaf completion table, and contiguity set are
/// cleared (not dropped) between waves, so a warmed scratch makes the
/// reduction allocation-free in steady state — the property the
/// simulator's streaming hot loop relies on.
#[derive(Debug, Clone, Default)]
pub struct FanScratch {
    /// Active `(leaf_start, leaf_end_inclusive, partial)` intervals.
    intervals: Vec<(usize, usize, f32)>,
    /// Completion cycle of the cluster starting at each leaf
    /// (`u64::MAX` = not yet complete).
    completion: Vec<u64>,
    /// One vecID per run, sorted for the contiguity check; a Vec (not a
    /// hash set) keeps the hot loop allocation-free after warmup and
    /// independent of per-process hasher state.
    seen: Vec<u32>,
}

/// A Forwarding Adder Network over `N` multiplier outputs.
///
/// ```
/// use sigma_interconnect::Fan;
/// let fan = Fan::new(8)?;
/// // Three clusters: |a a a|b b|c c c| — sizes 3, 2, 3.
/// let values = [1.0, 2.0, 3.0, 10.0, 20.0, 100.0, 200.0, 300.0];
/// let ids = [0, 0, 0, 1, 1, 2, 2, 2].map(Some);
/// let red = fan.reduce(&values, &ids)?;
/// assert_eq!(red.sums.len(), 3);
/// assert_eq!(red.sums[0].value, 6.0);
/// assert_eq!(red.sums[1].value, 30.0);
/// assert_eq!(red.sums[2].value, 600.0);
/// assert_eq!(red.adds_performed, 5); // (3-1) + (2-1) + (3-1)
/// # Ok::<(), sigma_interconnect::FanError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fan {
    size: usize,
}

impl Fan {
    /// Creates a FAN over `size` multiplier outputs.
    ///
    /// # Errors
    ///
    /// Returns [`FanError::NotPowerOfTwo`] unless `size` is a power of two
    /// and at least 2.
    pub fn new(size: usize) -> Result<Self, FanError> {
        if !is_power_of_two(size) || size < 2 {
            return Err(FanError::NotPowerOfTwo(size));
        }
        Ok(Self { size })
    }

    /// Creates a FAN, rounding `size` up to the next power of two
    /// (minimum 2) instead of failing. For static tables whose shapes
    /// are known-good by construction; prefer [`Fan::new`] when invalid
    /// input should be reported.
    #[must_use]
    pub fn new_clamped(size: usize) -> Self {
        Self { size: size.max(2).next_power_of_two() }
    }

    /// Number of multiplier (leaf) inputs.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of adders: `N − 1`.
    #[must_use]
    pub fn adder_count(&self) -> usize {
        self.size - 1
    }

    /// Number of adder levels: `log₂N`.
    #[must_use]
    pub fn level_count(&self) -> u32 {
        log2_ceil(self.size)
    }

    /// Pipeline latency of a full-width reduction wave: `log₂N` cycles.
    #[must_use]
    pub fn latency_cycles(&self) -> u64 {
        u64::from(self.level_count())
    }

    /// The level of adder `id`: the number of trailing ones in its binary
    /// representation (adder `i` sits between leaves `i` and `i+1`).
    ///
    /// # Panics
    ///
    /// Panics if `id >= adder_count()`.
    #[inline]
    #[must_use]
    pub fn adder_level(&self, id: usize) -> u32 {
        assert!(id < self.adder_count(), "adder id {id} out of range");
        (id as u64).trailing_ones()
    }

    /// Total directed forwarding links in the topology, per the paper's
    /// pseudocode: adder `i` at level `L` links to `i ± 2^(l−1)` for
    /// `l ∈ 1..=L`, clipped to existing adders. Level-`L` links are the
    /// natural binary-tree child links; the rest are FAN's additions.
    #[must_use]
    pub fn forwarding_link_count(&self) -> usize {
        let n_adders = self.adder_count();
        let mut links = 0usize;
        for i in 0..n_adders {
            let level = self.adder_level(i);
            for lvl in 1..=level {
                let off = 1usize << (lvl - 1);
                if i >= off {
                    links += 1;
                }
                if i + off < n_adders {
                    links += 1;
                }
            }
        }
        links
    }

    /// Count of the 2-input muxes in front of adders from level 2 upward
    /// (the "N-to-2 mux" cost of Fig. 6's overhead discussion).
    #[must_use]
    pub fn mux_count(&self) -> usize {
        (0..self.adder_count()).filter(|&i| self.adder_level(i) >= 2).count() * 2
    }

    /// Pushes one wave of multiplier outputs through the network.
    ///
    /// `values[i]` is multiplier `i`'s product; `vec_ids[i]` names the
    /// cluster it belongs to, or `None` for an idle multiplier. Clusters
    /// must occupy contiguous leaf ranges (SIGMA's controller always maps
    /// them that way).
    ///
    /// The returned [`FanReduction`] contains each cluster's sum, computed
    /// with the hardware's exact association order (adders fire level by
    /// level), plus activation and timing counts.
    ///
    /// # Errors
    ///
    /// * [`FanError::SizeMismatch`] if slice lengths differ from `size`.
    /// * [`FanError::NonContiguousSegments`] if a `vecID` appears in two
    ///   separate runs.
    pub fn reduce(
        &self,
        values: &[f32],
        vec_ids: &[Option<u32>],
    ) -> Result<FanReduction, FanError> {
        self.reduce_with_faults(values, vec_ids, &[])
    }

    /// [`Fan::reduce`] with persistent stuck-at defects on selected
    /// adders: every activation of a faulted adder has the corresponding
    /// output bit latched (see [`crate::fault::AdderFault`]). An empty
    /// `faults` slice is byte-identical to [`Fan::reduce`]; adders whose
    /// ids never activate (because no cluster spans them) corrupt
    /// nothing.
    ///
    /// # Errors
    ///
    /// Same as [`Fan::reduce`].
    pub fn reduce_with_faults(
        &self,
        values: &[f32],
        vec_ids: &[Option<u32>],
        faults: &[crate::fault::AdderFault],
    ) -> Result<FanReduction, FanError> {
        let mut scratch = FanScratch::default();
        let mut out = FanReduction::default();
        self.reduce_into(values, vec_ids, faults, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`Fan::reduce_with_faults`]: the wave's sums are
    /// written into `out` (cleared first) and all working state lives in
    /// `scratch`, so a warmed `(scratch, out)` pair performs zero heap
    /// allocations per wave. Produces byte-identical results to
    /// [`Fan::reduce`] / [`Fan::reduce_with_faults`] — same add order,
    /// same activation counts, same completion times.
    ///
    /// # Errors
    ///
    /// Same as [`Fan::reduce`]; on error `out` holds an empty reduction.
    pub fn reduce_into(
        &self,
        values: &[f32],
        vec_ids: &[Option<u32>],
        faults: &[crate::fault::AdderFault],
        scratch: &mut FanScratch,
        out: &mut FanReduction,
    ) -> Result<(), FanError> {
        out.sums.clear();
        out.adds_performed = 0;
        out.critical_cycles = 0;
        if values.len() != self.size {
            return Err(FanError::SizeMismatch { expected: self.size, actual: values.len() });
        }
        if vec_ids.len() != self.size {
            return Err(FanError::SizeMismatch { expected: self.size, actual: vec_ids.len() });
        }
        // Contiguity check: every vecID forms a single run. Collect one
        // id per run, sort, and look for duplicates.
        scratch.seen.clear();
        let mut prev: Option<u32> = None;
        for id in vec_ids.iter() {
            if let Some(cur) = *id {
                if prev != Some(cur) {
                    scratch.seen.push(cur);
                }
            }
            prev = *id;
        }
        scratch.seen.sort_unstable();
        if let Some(dup) = scratch.seen.windows(2).find(|w| w[0] == w[1]) {
            return Err(FanError::NonContiguousSegments(dup[0]));
        }

        // Active intervals: (leaf_start, leaf_end_inclusive, partial value).
        // Level-by-level merging reproduces the hardware's add order.
        let intervals = &mut scratch.intervals;
        intervals.clear();
        // Completion cycle by leaf start; u64::MAX marks "still reducing".
        scratch.completion.resize(self.size, u64::MAX);
        scratch.completion.fill(u64::MAX);
        for (i, id) in vec_ids.iter().enumerate() {
            if id.is_some() {
                intervals.push((i, i, values[i]));
                // Single-leaf clusters complete immediately (pure bypass).
                let left_same = i > 0 && vec_ids[i - 1] == *id;
                let right_same = i + 1 < self.size && vec_ids[i + 1] == *id;
                if !left_same && !right_same {
                    scratch.completion[i] = 0;
                }
            }
        }
        let mut adds = 0usize;
        let levels = self.level_count();

        for lvl in 0..levels {
            // Adders at this level whose flanking leaves share a cluster.
            let mut i = 0;
            while i + 1 < intervals.len() {
                let (s0, e0, v0) = intervals[i];
                let (s1, e1, v1) = intervals[i + 1];
                let adjacent = e0 + 1 == s1;
                let same_cluster = adjacent && vec_ids[e0] == vec_ids[s1];
                let adder_id = e0; // adder between leaves e0 and e0+1
                if same_cluster && self.adder_level(adder_id) == lvl {
                    let mut sum = v0 + v1;
                    if !faults.is_empty() {
                        for fault in faults.iter().filter(|f| f.adder == adder_id) {
                            sum = fault.corrupt(sum);
                        }
                    }
                    intervals[i] = (s0, e1, sum);
                    intervals.remove(i + 1);
                    adds += 1;
                    // If the merged interval now covers its whole cluster,
                    // it completes one cycle after this level fires.
                    let whole = (s0 == 0 || vec_ids[s0 - 1] != vec_ids[s0])
                        && (e1 + 1 == self.size || vec_ids[e1 + 1] != vec_ids[e1]);
                    if whole {
                        scratch.completion[s0] = u64::from(lvl) + 1;
                    }
                    // Re-examine the same position: the merged interval may
                    // merge again with the next one at this level.
                    continue;
                }
                i += 1;
            }
        }

        out.sums.reserve(intervals.len());
        let mut critical = 0u64;
        for &(s, e, v) in intervals.iter() {
            let cycles = scratch.completion[s];
            debug_assert_ne!(cycles, u64::MAX, "every cluster completes within log2(N) levels");
            critical = critical.max(cycles);
            // Intervals are seeded from active leaves, so `vec_ids[s]` is
            // always Some; skip (debug-asserting) rather than panic.
            let Some(vec_id) = vec_ids[s] else {
                debug_assert!(false, "interval starts at an active leaf");
                continue;
            };
            out.sums.push(SegmentSum {
                vec_id,
                value: v,
                leaf_range: (s, e),
                completion_cycles: cycles,
            });
        }
        out.adds_performed = adds;
        out.critical_cycles = critical;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(spec: &[i64]) -> Vec<Option<u32>> {
        spec.iter().map(|&x| if x < 0 { None } else { Some(x as u32) }).collect()
    }

    #[test]
    fn size_validation() {
        assert!(Fan::new(2).is_ok());
        assert!(Fan::new(128).is_ok());
        assert_eq!(Fan::new(0), Err(FanError::NotPowerOfTwo(0)));
        assert_eq!(Fan::new(6), Err(FanError::NotPowerOfTwo(6)));
    }

    #[test]
    fn adder_levels_match_paper_layout() {
        let fan = Fan::new(32).unwrap();
        // Level 0 adders are the even ones; top adder is 15 at level 4.
        assert_eq!(fan.adder_level(0), 0);
        assert_eq!(fan.adder_level(2), 0);
        assert_eq!(fan.adder_level(1), 1);
        assert_eq!(fan.adder_level(5), 1);
        assert_eq!(fan.adder_level(3), 2);
        assert_eq!(fan.adder_level(7), 3);
        assert_eq!(fan.adder_level(15), 4);
        assert_eq!(fan.adder_count(), 31);
        assert_eq!(fan.level_count(), 5);
    }

    #[test]
    fn single_full_reduction() {
        let fan = Fan::new(8).unwrap();
        let values: Vec<f32> = (1..=8).map(|x| x as f32).collect();
        let v = ids(&[0, 0, 0, 0, 0, 0, 0, 0]);
        let r = fan.reduce(&values, &v).unwrap();
        assert_eq!(r.sums.len(), 1);
        assert_eq!(r.sums[0].value, 36.0);
        assert_eq!(r.adds_performed, 7);
        assert_eq!(r.critical_cycles, 3); // log2(8)
        assert_eq!(r.sums[0].leaf_range, (0, 7));
    }

    #[test]
    fn non_power_of_two_segments() {
        // The paper's motivating example: (a0 a1 a2 | b0 b1 | c0 c1 c2).
        let fan = Fan::new(8).unwrap();
        let values = [1.0, 1.0, 1.0, 2.0, 2.0, 4.0, 4.0, 4.0];
        let v = ids(&[0, 0, 0, 1, 1, 2, 2, 2]);
        let r = fan.reduce(&values, &v).unwrap();
        let sums: Vec<f32> = r.sums.iter().map(|s| s.value).collect();
        assert_eq!(sums, vec![3.0, 4.0, 12.0]);
        assert_eq!(r.adds_performed, 2 + 1 + 2);
    }

    #[test]
    fn singleton_segments_bypass() {
        let fan = Fan::new(4).unwrap();
        let values = [5.0, 6.0, 7.0, 8.0];
        let v = ids(&[0, 1, 2, 3]);
        let r = fan.reduce(&values, &v).unwrap();
        assert_eq!(r.adds_performed, 0);
        assert_eq!(r.critical_cycles, 0);
        assert_eq!(r.sums.len(), 4);
        for (i, s) in r.sums.iter().enumerate() {
            assert_eq!(s.value, values[i]);
            assert_eq!(s.completion_cycles, 0);
        }
    }

    #[test]
    fn idle_leaves_are_skipped() {
        let fan = Fan::new(8).unwrap();
        let values = [1.0, 2.0, 0.0, 0.0, 3.0, 4.0, 0.0, 0.0];
        let v = ids(&[0, 0, -1, -1, 1, 1, -1, -1]);
        let r = fan.reduce(&values, &v).unwrap();
        assert_eq!(r.sums.len(), 2);
        assert_eq!(r.sums[0].value, 3.0);
        assert_eq!(r.sums[1].value, 7.0);
    }

    #[test]
    fn boundary_crossing_pair_uses_high_adder() {
        // Leaves 3 and 4 share a cluster: their only connecting adder is
        // adder 3 at level 2 (for N=8), so completion takes 3 cycles even
        // though the cluster has just 2 elements.
        let fan = Fan::new(8).unwrap();
        let values = [1.0, 1.0, 1.0, 10.0, 20.0, 1.0, 1.0, 1.0];
        let v = ids(&[0, 1, 2, 3, 3, 4, 5, 6]);
        let r = fan.reduce(&values, &v).unwrap();
        let s = r.sums.iter().find(|s| s.vec_id == 3).unwrap();
        assert_eq!(s.value, 30.0);
        assert_eq!(s.completion_cycles, 3);
        assert_eq!(r.adds_performed, 1);
    }

    #[test]
    fn adds_equal_sum_of_segment_sizes_minus_one() {
        let fan = Fan::new(16).unwrap();
        let values = [1.0f32; 16];
        let v = ids(&[0, 0, 0, 0, 0, 1, 1, 2, 2, 2, 2, 2, 2, 3, 3, 3]);
        let r = fan.reduce(&values, &v).unwrap();
        assert_eq!(r.adds_performed, 4 + 1 + 5 + 2);
        let sums: Vec<f32> = r.sums.iter().map(|s| s.value).collect();
        assert_eq!(sums, vec![5.0, 2.0, 6.0, 3.0]);
    }

    #[test]
    fn rejects_non_contiguous() {
        let fan = Fan::new(4).unwrap();
        let values = [1.0f32; 4];
        let v = ids(&[0, 1, 0, 1]);
        assert_eq!(fan.reduce(&values, &v), Err(FanError::NonContiguousSegments(0)));
        // None breaks a run: same id on both sides is non-contiguous.
        let v2 = ids(&[0, -1, 0, 1]);
        assert_eq!(fan.reduce(&values, &v2), Err(FanError::NonContiguousSegments(0)));
    }

    #[test]
    fn rejects_size_mismatch() {
        let fan = Fan::new(4).unwrap();
        assert!(matches!(
            fan.reduce(&[1.0; 3], &ids(&[0, 0, 0])),
            Err(FanError::SizeMismatch { expected: 4, actual: 3 })
        ));
    }

    #[test]
    fn forwarding_links_and_muxes_grow_with_size() {
        let f8 = Fan::new(8).unwrap();
        let f64 = Fan::new(64).unwrap();
        assert!(f64.forwarding_link_count() > f8.forwarding_link_count());
        assert!(f64.mux_count() > f8.mux_count());
        // N=4: adders 0,1,2 with levels 0,1,0: adder 1 has links to 0 and 2.
        let f4 = Fan::new(4).unwrap();
        assert_eq!(f4.forwarding_link_count(), 2);
        assert_eq!(f4.mux_count(), 0);
    }

    #[test]
    fn stuck_adder_corrupts_only_activations_through_it() {
        use crate::fault::{AdderFault, StuckLevel};
        let fan = Fan::new(8).unwrap();
        let values = [1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0];
        let v = ids(&[0, 0, 0, 0, 1, 1, 1, 1]);
        // Adder 5 (level 1) belongs to cluster 1's reduction; latch its
        // sign bit high. Cluster 0 must be untouched.
        let fault = AdderFault { adder: 5, bit: 31, level: StuckLevel::One };
        let r = fan.reduce_with_faults(&values, &v, &[fault]).unwrap();
        assert_eq!(r.sums[0].value, 10.0, "cluster 0 does not pass through adder 5");
        // Cluster 1: level 0 gives (10+20)=30 at adder 4 and (30+40)=70 at
        // adder 6; level 1 at adder 5 computes 30+70=100 -> sign forced -> -100.
        assert_eq!(r.sums[1].value, -100.0);
        // Empty fault slice is byte-identical to the plain reduce.
        let clean = fan.reduce(&values, &v).unwrap();
        assert_eq!(fan.reduce_with_faults(&values, &v, &[]).unwrap(), clean);
        // A fault on an adder no cluster spans changes nothing.
        let idle = AdderFault { adder: 3, bit: 31, level: StuckLevel::One };
        assert_eq!(fan.reduce_with_faults(&values, &v, &[idle]).unwrap(), clean);
    }

    #[test]
    fn reduce_into_matches_reduce_with_reused_scratch() {
        let fan = Fan::new(16).unwrap();
        let mut scratch = FanScratch::default();
        let mut out = FanReduction::default();
        let waves: Vec<(Vec<f32>, Vec<Option<u32>>)> = vec![
            ((0..16).map(|x| x as f32).collect(), ids(&[0; 16])),
            (
                (0..16).map(|x| (x * 2) as f32).collect(),
                ids(&[0, 0, 0, 0, 0, 1, 1, 2, 2, 2, 2, 2, 2, 3, 3, 3]),
            ),
            (vec![1.0; 16], ids(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15])),
            (vec![2.0; 16], ids(&[-1, 0, 0, -1, 1, 1, 1, -1, -1, 2, 2, 2, 2, -1, 3, 3])),
        ];
        for (values, v) in &waves {
            let reference = fan.reduce(values, v).unwrap();
            fan.reduce_into(values, v, &[], &mut scratch, &mut out).unwrap();
            assert_eq!(out, reference, "scratch reuse must not change results");
        }
    }

    #[test]
    fn reduce_into_clears_output_on_error() {
        let fan = Fan::new(4).unwrap();
        let mut scratch = FanScratch::default();
        let mut out = FanReduction::default();
        fan.reduce_into(&[1.0; 4], &ids(&[0, 0, 1, 1]), &[], &mut scratch, &mut out).unwrap();
        assert_eq!(out.sums.len(), 2);
        let err = fan.reduce_into(&[1.0; 4], &ids(&[0, 1, 0, 1]), &[], &mut scratch, &mut out);
        assert_eq!(err, Err(FanError::NonContiguousSegments(0)));
        assert!(out.sums.is_empty(), "stale sums must not survive an error");
    }

    #[test]
    fn latency_is_log2() {
        assert_eq!(Fan::new(128).unwrap().latency_cycles(), 7);
        assert_eq!(Fan::new(2).unwrap().latency_cycles(), 1);
    }
}
