//! Reduction-network alternatives compared in Fig. 6b: linear (temporal /
//! spatio-temporal), MAERI's ART, and SIGMA's FAN.
//!
//! The experiment behind Fig. 6b runs `F` stationary folds with a stream
//! dimension `S` each: a fold streams `S` waves through the multipliers and
//! must *drain* its last reduction before the next stationary matrix loads
//! (the paper's "Add latency", Table II). The drain is where the three
//! designs differ:
//!
//! * **linear** (forwarding down a column / in-place accumulation):
//!   `O(N)` cycles per drain;
//! * **ART** (MAERI's augmented reduction tree of three-input adders):
//!   `O(log₂N)` drain but expensive FP32 adders;
//! * **FAN**: `O(log₂N)` drain with two-input adders plus cheap muxes.

use crate::fan::{Fan, FanError, FanReduction};
use crate::log2_ceil;

/// The three spatial/temporal reduction designs of Fig. 6b.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReductionKind {
    /// Linear reduction: partials forwarded hop by hop (spatio-temporal,
    /// TPU column) or accumulated in place (temporal, EIE). Drain is
    /// proportional to the dot-product length.
    Linear,
    /// MAERI's Augmented Reduction Tree with 3-input adders.
    Art,
    /// SIGMA's Forwarding Adder Network.
    Fan,
}

impl ReductionKind {
    /// All kinds in Fig. 6b's order.
    pub const ALL: [ReductionKind; 3] =
        [ReductionKind::Linear, ReductionKind::Art, ReductionKind::Fan];

    /// Display name used in the figure legends.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ReductionKind::Linear => "Linear",
            ReductionKind::Art => "ART",
            ReductionKind::Fan => "FAN",
        }
    }
}

impl std::fmt::Display for ReductionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A sized reduction network of one of the three kinds, exposing the
/// timing model used by Fig. 6b and by the accelerator simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionNetwork {
    kind: ReductionKind,
    size: usize,
}

impl ReductionNetwork {
    /// Creates a reduction network over `size` producer lanes.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    #[must_use]
    pub fn new(kind: ReductionKind, size: usize) -> Self {
        assert!(size > 0, "reduction network size must be non-zero");
        Self { kind, size }
    }

    /// The design kind.
    #[must_use]
    pub fn kind(&self) -> ReductionKind {
        self.kind
    }

    /// Number of producer lanes (multipliers feeding the network).
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Cycles to drain the final reduction of a fold before the next
    /// stationary load (the non-overlapped "Add latency" of Table II).
    #[must_use]
    pub fn drain_cycles(&self) -> u64 {
        match self.kind {
            ReductionKind::Linear => self.size as u64,
            ReductionKind::Art | ReductionKind::Fan => u64::from(log2_ceil(self.size)),
        }
    }

    /// Total cycles for the Fig. 6b experiment: `folds` stationary folds,
    /// each streaming `stream` waves then draining.
    ///
    /// Streaming is fully pipelined (one wave per cycle); only the drain
    /// serializes between folds.
    #[must_use]
    pub fn fold_experiment_cycles(&self, folds: u64, stream: u64) -> u64 {
        folds * (stream + self.drain_cycles())
    }

    /// Speedup of this network over a linear reduction of the same size on
    /// the Fig. 6b experiment.
    #[must_use]
    pub fn speedup_vs_linear(&self, folds: u64, stream: u64) -> f64 {
        let lin = ReductionNetwork::new(ReductionKind::Linear, self.size);
        lin.fold_experiment_cycles(folds, stream) as f64
            / self.fold_experiment_cycles(folds, stream) as f64
    }

    /// Number of 2-input FP adder equivalents. ART's 3-input adders are
    /// counted via [`ReductionNetwork::three_input_adder_count`] instead.
    #[must_use]
    pub fn adder_count(&self) -> usize {
        match self.kind {
            // Linear: one accumulating adder per lane.
            ReductionKind::Linear => self.size,
            ReductionKind::Art => 0,
            ReductionKind::Fan => self.size.saturating_sub(1),
        }
    }

    /// Number of 3-input FP adders (non-zero only for ART).
    #[must_use]
    pub fn three_input_adder_count(&self) -> usize {
        match self.kind {
            ReductionKind::Art => self.size.saturating_sub(1),
            _ => 0,
        }
    }

    /// Functionally reduces contiguous `vec_id` segments, regardless of
    /// kind (all three designs compute the same sums; they differ in cost
    /// and timing). FAN sizes must be powers of two; other kinds accept
    /// any size.
    ///
    /// # Errors
    ///
    /// Propagates [`FanError`] for malformed segment requests.
    pub fn reduce(
        &self,
        values: &[f32],
        vec_ids: &[Option<u32>],
    ) -> Result<FanReduction, FanError> {
        match self.kind {
            ReductionKind::Fan | ReductionKind::Art => {
                let fan = Fan::new(self.size.next_power_of_two().max(2))?;
                let mut v = values.to_vec();
                let mut ids = vec_ids.to_vec();
                v.resize(fan.size(), 0.0);
                ids.resize(fan.size(), None);
                fan.reduce(&v, &ids)
            }
            ReductionKind::Linear => {
                // In-order serial accumulation per segment; completion time
                // of a segment equals its length (one hop per cycle).
                if values.len() != vec_ids.len() {
                    return Err(FanError::SizeMismatch {
                        expected: values.len(),
                        actual: vec_ids.len(),
                    });
                }
                let mut seen = std::collections::BTreeSet::new();
                let mut sums: Vec<crate::fan::SegmentSum> = Vec::new();
                let mut adds = 0usize;
                let mut i = 0usize;
                while i < values.len() {
                    let Some(id) = vec_ids[i] else {
                        i += 1;
                        continue;
                    };
                    if !seen.insert(id) {
                        return Err(FanError::NonContiguousSegments(id));
                    }
                    let start = i;
                    let mut acc = values[i];
                    i += 1;
                    while i < values.len() && vec_ids[i] == Some(id) {
                        acc += values[i];
                        adds += 1;
                        i += 1;
                    }
                    sums.push(crate::fan::SegmentSum {
                        vec_id: id,
                        value: acc,
                        leaf_range: (start, i - 1),
                        completion_cycles: (i - 1 - start) as u64,
                    });
                }
                let critical = sums.iter().map(|s| s.completion_cycles).max().unwrap_or(0);
                Ok(FanReduction { sums, adds_performed: adds, critical_cycles: critical })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_cycles_by_kind() {
        assert_eq!(ReductionNetwork::new(ReductionKind::Linear, 512).drain_cycles(), 512);
        assert_eq!(ReductionNetwork::new(ReductionKind::Fan, 512).drain_cycles(), 9);
        assert_eq!(ReductionNetwork::new(ReductionKind::Art, 512).drain_cycles(), 9);
    }

    #[test]
    fn fig6b_speedup_grows_with_pes() {
        // The paper: "taking logN cycles rather than N cycles before
        // starting the next fold significantly improves performance as the
        // number of PEs increases."
        let folds = 100;
        let stream = 1000;
        let s64 = ReductionNetwork::new(ReductionKind::Fan, 64).speedup_vs_linear(folds, stream);
        let s512 = ReductionNetwork::new(ReductionKind::Fan, 512).speedup_vs_linear(folds, stream);
        assert!(s512 > s64);
        assert!(s512 > 1.4, "512-PE FAN speedup {s512}");
        assert!(
            (ReductionNetwork::new(ReductionKind::Linear, 512).speedup_vs_linear(folds, stream)
                - 1.0)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn fold_experiment_totals() {
        let lin = ReductionNetwork::new(ReductionKind::Linear, 128);
        assert_eq!(lin.fold_experiment_cycles(100, 1000), 100 * (1000 + 128));
        let fan = ReductionNetwork::new(ReductionKind::Fan, 128);
        assert_eq!(fan.fold_experiment_cycles(100, 1000), 100 * (1000 + 7));
    }

    #[test]
    fn adder_inventory() {
        let fan = ReductionNetwork::new(ReductionKind::Fan, 128);
        assert_eq!(fan.adder_count(), 127);
        assert_eq!(fan.three_input_adder_count(), 0);
        let art = ReductionNetwork::new(ReductionKind::Art, 128);
        assert_eq!(art.adder_count(), 0);
        assert_eq!(art.three_input_adder_count(), 127);
        let lin = ReductionNetwork::new(ReductionKind::Linear, 128);
        assert_eq!(lin.adder_count(), 128);
    }

    #[test]
    fn all_kinds_reduce_identically() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let ids: Vec<Option<u32>> = [0, 0, 1, 1, 1, 2].iter().map(|&x| Some(x)).collect();
        for kind in ReductionKind::ALL {
            let net = ReductionNetwork::new(kind, 6);
            let r = net.reduce(&values, &ids).unwrap();
            let sums: Vec<f32> = r.sums.iter().map(|s| s.value).collect();
            assert_eq!(sums, vec![3.0, 12.0, 6.0], "{kind}");
            assert_eq!(r.adds_performed, 3, "{kind}");
        }
    }

    #[test]
    fn linear_completion_is_segment_length() {
        let net = ReductionNetwork::new(ReductionKind::Linear, 8);
        let values = [1.0f32; 8];
        let ids: Vec<Option<u32>> = [0, 0, 0, 0, 0, 1, 1, 1].iter().map(|&x| Some(x)).collect();
        let r = net.reduce(&values, &ids).unwrap();
        assert_eq!(r.sums[0].completion_cycles, 4);
        assert_eq!(r.sums[1].completion_cycles, 2);
        assert_eq!(r.critical_cycles, 4);
    }

    #[test]
    fn linear_rejects_non_contiguous() {
        let net = ReductionNetwork::new(ReductionKind::Linear, 4);
        let ids: Vec<Option<u32>> = [0, 1, 0, 1].iter().map(|&x| Some(x)).collect();
        assert!(matches!(net.reduce(&[1.0; 4], &ids), Err(FanError::NonContiguousSegments(0))));
    }

    #[test]
    fn names() {
        assert_eq!(ReductionKind::Fan.to_string(), "FAN");
        assert_eq!(ReductionKind::ALL.len(), 3);
    }
}
