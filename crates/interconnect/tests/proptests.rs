//! Property-based tests: Benes routes *every* permutation and monotone
//! multicast; FAN reduces *every* contiguous segmentation correctly.

use proptest::prelude::*;
use sigma_interconnect::{BenesNetwork, Fan, ReductionKind, ReductionNetwork};

/// Strategy: a power-of-two size in {2, 4, 8, 16, 32, 64}.
fn pot_size() -> impl Strategy<Value = usize> {
    (1u32..=6).prop_map(|e| 1usize << e)
}

/// Strategy: a random permutation of 0..n.
fn permutation(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<_>>()).prop_shuffle()
}

/// Strategy: a monotone multicast request over n ports.
///
/// Walk outputs left to right; at each step either go idle, keep the
/// current source, or advance to a strictly larger source.
fn monotone_request(n: usize) -> impl Strategy<Value = Vec<Option<usize>>> {
    proptest::collection::vec(0u8..=3, n).prop_map(move |choices| {
        let mut out = Vec::with_capacity(n);
        let mut cur: Option<usize> = None;
        for (o, ch) in choices.into_iter().enumerate() {
            match ch {
                0 => out.push(None),
                1 => {
                    // keep current source if any, else start at 0
                    let s = cur.unwrap_or(0);
                    cur = Some(s);
                    out.push(Some(s));
                }
                _ => {
                    // advance: next source strictly greater, capped at n-1
                    let s = match cur {
                        None => (o.min(n - 1)) / 2,
                        Some(c) => (c + 1).min(n - 1),
                    };
                    cur = Some(s);
                    out.push(Some(s));
                }
            }
        }
        out
    })
}

/// Strategy: a contiguous segmentation of n leaves into clusters with
/// optional idle gaps. Returns vec_ids.
fn segmentation(n: usize) -> impl Strategy<Value = Vec<Option<u32>>> {
    proptest::collection::vec((0u8..=4, proptest::bool::ANY), n).prop_map(|steps| {
        let mut ids = Vec::with_capacity(steps.len());
        let mut cur = 0u32;
        let mut active = true;
        for (run_ctl, flip) in steps {
            if run_ctl == 0 {
                // boundary: either idle gap or next cluster
                if flip {
                    ids.push(None);
                    active = false;
                } else {
                    cur += 1;
                    active = true;
                    ids.push(Some(cur));
                }
            } else if active {
                ids.push(Some(cur));
            } else if flip {
                cur += 1;
                active = true;
                ids.push(Some(cur));
            } else {
                ids.push(None);
            }
        }
        ids
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn benes_routes_any_permutation(n in pot_size(), seed in any::<u64>()) {
        let mut src: Vec<usize> = (0..n).collect();
        // cheap deterministic shuffle from the seed
        let mut s = seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            src.swap(i, j);
        }
        let net = BenesNetwork::new(n).unwrap();
        let cfg = net.route_permutation(&src).unwrap();
        let inputs: Vec<Option<usize>> = (0..n).map(Some).collect();
        let out = cfg.apply(&inputs);
        for (o, &want) in src.iter().enumerate() {
            prop_assert_eq!(out[o].unwrap(), want);
        }
    }

    #[test]
    fn benes_routes_shuffled_permutations(perm in permutation(16)) {
        let net = BenesNetwork::new(16).unwrap();
        let cfg = net.route_permutation(&perm).unwrap();
        let inputs: Vec<Option<usize>> = (0..16).map(Some).collect();
        let out = cfg.apply(&inputs);
        for (o, &want) in perm.iter().enumerate() {
            prop_assert_eq!(out[o].unwrap(), want);
        }
    }

    #[test]
    fn benes_routes_any_monotone_multicast(
        (n, req) in pot_size().prop_flat_map(|n| (Just(n), monotone_request(n)))
    ) {
        let net = BenesNetwork::new(n).unwrap();
        let cfg = net.route_monotone_multicast(&req).unwrap();
        let inputs: Vec<Option<usize>> = (0..n).map(Some).collect();
        let out = cfg.apply(&inputs);
        for (o, want) in req.iter().enumerate() {
            if let Some(want) = want {
                prop_assert_eq!(out[o].as_ref(), Some(want), "output {} of {:?}", o, req);
            }
        }
    }

    #[test]
    fn fan_reduces_any_segmentation(
        (n, ids) in pot_size().prop_flat_map(|n| (Just(n), segmentation(n))),
        seed in any::<u64>()
    ) {
        let fan = Fan::new(n).unwrap();
        // deterministic pseudo-random values in (0.5, 1.5)
        let values: Vec<f32> = (0..n)
            .map(|i| {
                let h = seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                0.5 + (h >> 40) as f32 / (1u64 << 24) as f32
            })
            .collect();
        let r = fan.reduce(&values, &ids).unwrap();

        // Expected: per-cluster sums in order, adds = sum(len - 1).
        let mut expected: Vec<(u32, f64, usize)> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if let Some(id) = id {
                match expected.last_mut() {
                    Some((last, sum, len)) if last == id => {
                        *sum += f64::from(values[i]);
                        *len += 1;
                    }
                    _ => expected.push((*id, f64::from(values[i]), 1)),
                }
            }
        }
        prop_assert_eq!(r.sums.len(), expected.len());
        let mut want_adds = 0usize;
        for (got, (id, sum, len)) in r.sums.iter().zip(&expected) {
            prop_assert_eq!(got.vec_id, *id);
            let tol = 1e-3 * (*len as f32).max(1.0);
            prop_assert!((f64::from(got.value) - sum).abs() < f64::from(tol),
                "cluster {} sum {} vs {}", id, got.value, sum);
            want_adds += len - 1;
            // Completion bounded by the pipeline depth.
            prop_assert!(got.completion_cycles <= u64::from(fan.level_count()));
            // A singleton completes instantly; larger clusters need >= 1.
            if *len == 1 {
                prop_assert_eq!(got.completion_cycles, 0);
            } else {
                prop_assert!(got.completion_cycles >= 1);
            }
        }
        prop_assert_eq!(r.adds_performed, want_adds);
    }

    #[test]
    fn linear_and_fan_agree(
        (n, ids) in pot_size().prop_flat_map(|n| (Just(n), segmentation(n)))
    ) {
        let values: Vec<f32> = (0..n).map(|i| (i % 7) as f32 + 1.0).collect();
        let fan = ReductionNetwork::new(ReductionKind::Fan, n).reduce(&values, &ids).unwrap();
        let lin = ReductionNetwork::new(ReductionKind::Linear, n).reduce(&values, &ids).unwrap();
        prop_assert_eq!(fan.sums.len(), lin.sums.len());
        prop_assert_eq!(fan.adds_performed, lin.adds_performed);
        for (f, l) in fan.sums.iter().zip(&lin.sums) {
            prop_assert_eq!(f.vec_id, l.vec_id);
            prop_assert!((f.value - l.value).abs() < 1e-3);
            prop_assert_eq!(f.leaf_range, l.leaf_range);
        }
    }
}
