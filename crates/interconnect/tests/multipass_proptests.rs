//! Property tests for general (non-monotone) Benes multicast and the
//! butterfly's blocking behavior.

use proptest::prelude::*;
use sigma_interconnect::{BenesNetwork, Butterfly};

fn pot_size() -> impl Strategy<Value = usize> {
    (1u32..=5).prop_map(|e| 1usize << e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary multicast requests always deliver via multipass routing,
    /// and the pass count equals 1 + the number of source descents.
    #[test]
    fn general_multicast_always_delivers(
        (n, raw) in pot_size().prop_flat_map(|n| {
            (Just(n), proptest::collection::vec(proptest::option::of(0usize..n), n))
        })
    ) {
        let net = BenesNetwork::new(n).unwrap();
        let routing = net.route_general_multicast(&raw).unwrap();
        // Expected pass count from the descent structure.
        let mut descents = 0usize;
        let mut last: Option<usize> = None;
        let mut any = false;
        for &s in raw.iter().flatten() {
            if last.is_some_and(|l| s < l) {
                descents += 1;
            }
            last = Some(s);
            any = true;
        }
        let expected = if any { descents + 1 } else { 0 };
        prop_assert_eq!(routing.pass_count(), expected);

        let inputs: Vec<Option<usize>> = (0..n).map(Some).collect();
        let out = routing.apply(&inputs);
        for (o, want) in raw.iter().enumerate() {
            prop_assert_eq!(out[o], *want, "output {}", o);
        }
    }

    /// Butterfly routing always delivers every request exactly once, in
    /// at least one and at most `requests` waves; XOR permutations take
    /// exactly one.
    #[test]
    fn butterfly_waves_deliver_everything(
        (n, seed) in pot_size().prop_flat_map(|n| (Just(n), any::<u64>()))
    ) {
        let bf = Butterfly::new(n).unwrap();
        // A pseudo-random permutation.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut s = seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            perm.swap(i, (s >> 33) as usize % (i + 1));
        }
        let req: Vec<(usize, usize)> = perm.iter().copied().enumerate().collect();
        let routing = bf.route(&req);
        let delivered: usize = routing.waves.iter().map(Vec::len).sum();
        prop_assert_eq!(delivered, n);
        prop_assert!(routing.wave_count() >= 1);
        prop_assert!(routing.wave_count() <= n);

        // XOR mask derived from the seed: always one wave.
        let mask = (seed as usize) % n;
        let xor_req: Vec<(usize, usize)> = (0..n).map(|i| (i, i ^ mask)).collect();
        prop_assert_eq!(bf.route(&xor_req).wave_count(), 1);
    }
}
