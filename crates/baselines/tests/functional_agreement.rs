//! Every functional machine in the repository — SIGMA's Flex-DPE engine,
//! both systolic dataflows, EIE, OuterSPACE, SCNN, Cambricon-X, Eyeriss
//! v2 and the packed (column-combined) systolic — must compute the same
//! numeric product on the same operands. Nine independent datapaths
//! agreeing is strong evidence each one moves data correctly.

use proptest::prelude::*;
use sigma_baselines::{
    run_packed_gemm, CambriconSim, EieSim, EyerissV2Sim, OuterProductSim, ScnnSim, SystolicSim,
};
use sigma_core::{Dataflow, SigmaConfig, SigmaSim};
use sigma_matrix::gen::{sparse_uniform, Density};
use sigma_matrix::SparseMatrix;

fn agree_on(m: usize, k: usize, n: usize, da: f64, db: f64, seed: u64) {
    let a_sparse = sparse_uniform(m, k, Density::new(da).unwrap(), seed);
    let b_sparse = sparse_uniform(k, n, Density::new(db).unwrap(), seed ^ 0xbeef);
    let a = a_sparse.to_dense();
    let b = b_sparse.to_dense();
    let reference = a.matmul(&b);
    let tol = 1e-3 * k as f32;

    let sigma = SigmaSim::new(SigmaConfig::new(2, 16, 32, Dataflow::WeightStationary).unwrap())
        .unwrap()
        .run_gemm(&a_sparse, &b_sparse)
        .unwrap();
    assert!(sigma.result.approx_eq(&reference, tol), "SIGMA disagrees");

    let sys = SystolicSim::new(4, 4);
    assert!(sys.run_gemm(&a, &b).result.approx_eq(&reference, tol), "systolic WS disagrees");
    assert!(
        sys.run_gemm_output_stationary(&a, &b).result.approx_eq(&reference, tol),
        "systolic OS disagrees"
    );

    assert!(EieSim::new(4, 2).run_gemm(&a, &b).result.approx_eq(&reference, tol), "EIE disagrees");
    assert!(
        OuterProductSim::new(8, 4).run_gemm(&a, &b).result.approx_eq(&reference, tol),
        "OuterSPACE disagrees"
    );
    assert!(
        ScnnSim::new(8, 4).run_gemm(&a, &b).result.approx_eq(&reference, tol),
        "SCNN disagrees"
    );
    assert!(
        CambriconSim::new(4, 4).run_gemm(&a, &b).result.approx_eq(&reference, tol),
        "Cambricon-X disagrees"
    );
    assert!(
        EyerissV2Sim::new(4, 1 << 16, 8).run_gemm(&a, &b).result.approx_eq(&reference, tol),
        "Eyeriss v2 disagrees"
    );
    let (packed, packing) = run_packed_gemm(&a, &b, 8);
    assert_eq!(packing.conflicts_pruned, 0, "zero-budget packing must be lossless");
    assert!(packed.approx_eq(&reference, tol), "packed systolic disagrees");

    // Round-trip sanity on the sparse representation used throughout.
    assert_eq!(SparseMatrix::from_dense(&a).to_dense(), a);
}

#[test]
fn all_engines_agree_on_fixed_cases() {
    agree_on(8, 8, 8, 1.0, 1.0, 1);
    agree_on(12, 7, 9, 0.5, 0.3, 2);
    agree_on(5, 16, 4, 0.2, 0.8, 3);
    agree_on(1, 10, 13, 0.7, 0.5, 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_engines_agree_on_random_gemms(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        da10 in 1u8..=10,
        db10 in 1u8..=10,
        seed in any::<u64>()
    ) {
        agree_on(m, k, n, f64::from(da10) / 10.0, f64::from(db10) / 10.0, seed);
    }
}
