//! Headline-shape checks: the relative standings the paper reports must
//! hold in our models (who wins, by roughly what factor).

use sigma_baselines::{GemmAccelerator, SparseAccelerator, SparseAcceleratorKind, SystolicArray};
use sigma_core::model::{estimate_best, GemmProblem};
use sigma_core::SigmaConfig;
use sigma_matrix::GemmShape;

fn sigma_cycles(p: &GemmProblem) -> u64 {
    estimate_best(&SigmaConfig::paper(), p).1.total_cycles()
}

/// A representative slice of the paper's dense evaluation GEMMs (Fig. 12a).
fn dense_suite() -> Vec<GemmShape> {
    vec![
        GemmShape::new(2048, 4096, 32),
        GemmShape::new(1024, 16, 500_000),
        GemmShape::new(128, 2048, 4096),
        GemmShape::new(320, 3072, 4096),
        GemmShape::new(1632, 36548, 1024),
        GemmShape::new(4096, 4096, 4096),
    ]
}

#[test]
fn sigma_beats_tpu_on_dense_irregular_by_about_2x() {
    let tpu = SystolicArray::new(128, 128);
    let mut speedups = Vec::new();
    for shape in dense_suite() {
        let p = GemmProblem::dense(shape);
        let s = tpu.simulate(&p).total_cycles() as f64 / sigma_cycles(&p) as f64;
        assert!(s > 0.9, "SIGMA should not lose badly on {shape}: {s}");
        speedups.push(s);
    }
    let geo: f64 = speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64;
    let geo = geo.exp();
    // Paper: ~2x average speedup on dense GEMMs.
    assert!((1.3..=3.5).contains(&geo), "dense geomean speedup {geo} (paper ~2x)");
}

#[test]
fn sigma_beats_tpu_on_sparse_by_about_6x() {
    let tpu = SystolicArray::new(128, 128);
    let mut speedups = Vec::new();
    for shape in dense_suite() {
        // Fig. 12b regime: ~80% weight sparsity, ~50% input sparsity.
        let p = GemmProblem::sparse(shape, 0.5, 0.2);
        let s = tpu.simulate(&p).total_cycles() as f64 / sigma_cycles(&p) as f64;
        speedups.push(s);
    }
    let geo = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    assert!((3.0..=12.0).contains(&geo), "sparse geomean speedup {geo} (paper ~6x)");
}

#[test]
fn tpu_overall_efficiency_below_10_percent_on_sparse() {
    let tpu = SystolicArray::new(128, 128);
    let p = GemmProblem::sparse(GemmShape::new(4096, 4096, 4096), 0.5, 0.2);
    let eff = tpu.simulate(&p).overall_efficiency();
    assert!(eff < 0.12, "TPU sparse overall efficiency {eff} (paper <10%)");
}

#[test]
fn sigma_beats_sparse_accelerators_by_about_3x() {
    // Fig. 14 regime: 80% / 30% sparsity on the two matrices; the paper
    // tests all four (matrix, sparsity) combinations and keeps each
    // accelerator's best.
    let shapes = [
        GemmShape::new(1024, 1024, 1024),
        GemmShape::new(2048, 4096, 32),
        GemmShape::new(128, 2048, 4096),
        GemmShape::new(4096, 4096, 4096),
    ];
    let mut all = Vec::new();
    for kind in SparseAcceleratorKind::ALL {
        let acc = SparseAccelerator::new(kind, 16384);
        for shape in shapes {
            let combos =
                [GemmProblem::sparse(shape, 0.2, 0.7), GemmProblem::sparse(shape, 0.7, 0.2)];
            let best_other = combos.iter().map(|p| acc.simulate(p).total_cycles()).min().unwrap();
            let best_sigma = combos.iter().map(sigma_cycles).min().unwrap();
            all.push(best_other as f64 / best_sigma as f64);
        }
    }
    let geo = (all.iter().map(|s| s.ln()).sum::<f64>() / all.len() as f64).exp();
    assert!((1.8..=6.0).contains(&geo), "vs sparse accels geomean {geo} (paper ~3x)");
}

#[test]
fn eyeriss_v2_wins_somewhere() {
    // The paper found two GEMMs where Eyeriss v2 beats SIGMA thanks to
    // buffering both operands. Small GEMMs that fit its SRAM reproduce
    // that standing.
    let acc = SparseAccelerator::new(SparseAcceleratorKind::EyerissV2, 16384);
    let p = GemmProblem::sparse(GemmShape::new(512, 512, 512), 0.2, 0.7);
    let eyeriss = acc.simulate(&p).total_cycles();
    let sigma = sigma_cycles(&p);
    assert!(
        eyeriss < sigma,
        "Eyeriss v2 should win on small buffered GEMMs ({eyeriss} vs {sigma})"
    );
}

#[test]
fn rectangular_tpus_win_their_aligned_shapes() {
    // Fig. 12a: the 512x32 aspect ratio jumps ahead on 2048-4096-32.
    let p = GemmProblem::dense(GemmShape::new(2048, 4096, 32));
    let square = SystolicArray::new(128, 128).simulate(&p).total_cycles();
    let skinny = SystolicArray::new(512, 32).simulate(&p).total_cycles();
    assert!(skinny < square);
}
