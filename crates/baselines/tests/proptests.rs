//! Property-based tests for the baseline machines.

use proptest::prelude::*;
use sigma_baselines::{
    combine_columns, CambriconSim, EieSim, EyerissV2Sim, OuterProductSim, ScnnSim, SystolicArray,
    SystolicSim,
};
use sigma_core::model::GemmProblem;
use sigma_matrix::gen::{sparse_uniform, Density};
use sigma_matrix::GemmShape;

fn density(x: u8) -> Density {
    Density::new(f64::from(x) / 10.0).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The functional weight-stationary systolic machine agrees with the
    /// analytic SCALE-sim formula whenever the stationary operand fits in
    /// one tile per fold dimension.
    #[test]
    fn functional_systolic_matches_analytic_formula(
        m in 1usize..20, seed in any::<u64>()
    ) {
        let (r, c) = (8usize, 8usize);
        let a = sparse_uniform(m, r, Density::DENSE, seed).to_dense();
        let b = sparse_uniform(r, c, Density::DENSE, seed ^ 1).to_dense();
        let run = SystolicSim::new(r, c).run_gemm(&a, &b);
        let est = SystolicArray::new(r, c)
            .simulate_weight_stationary(&GemmProblem::dense(GemmShape::new(m, c, r)));
        prop_assert_eq!(run.cycles, est.total_cycles());
        prop_assert!(run.result.approx_eq(&a.matmul(&b), 1e-3));
    }

    /// Column combining never loses non-zeros at zero conflict budget,
    /// never exceeds the combine cap, and its factor improves (weakly)
    /// as sparsity grows.
    #[test]
    fn column_combining_invariants(
        d10 in 1u8..=9, seed in any::<u64>(), cap in 2usize..8
    ) {
        let w = sparse_uniform(24, 24, density(d10), seed).to_dense();
        let p = combine_columns(&w, cap, 0);
        prop_assert_eq!(p.conflicts_pruned, 0);
        prop_assert_eq!(p.retained, w.nnz());
        prop_assert!(p.groups.iter().all(|g| g.len() <= cap));
        let cols: usize = p.groups.iter().map(Vec::len).sum();
        prop_assert_eq!(cols, 24);
        prop_assert!(p.packing_factor() >= 1.0 - 1e-12);
    }

    /// EIE and Eyeriss v2 both skip zero work: cycles scale (weakly)
    /// monotonically with activation density at fixed weights.
    #[test]
    fn sparse_engines_scale_with_density(seed in any::<u64>()) {
        let b = sparse_uniform(12, 12, density(5), seed).to_dense();
        let sparse_a = sparse_uniform(12, 12, density(2), seed ^ 2).to_dense();
        let dense_a = sparse_uniform(12, 12, density(9), seed ^ 3).to_dense();
        let eie = EieSim::new(8, 1);
        prop_assert!(eie.run_gemm(&sparse_a, &b).cycles <= eie.run_gemm(&dense_a, &b).cycles);
        let eye = EyerissV2Sim::new(8, 1 << 16, 16);
        prop_assert!(
            eye.run_gemm(&sparse_a, &b).compute_cycles
                <= eye.run_gemm(&dense_a, &b).compute_cycles
        );
    }

    /// SCNN's and OuterSPACE's useful-MAC counts agree exactly (both
    /// enumerate the same nonzero pairs).
    #[test]
    fn pair_counts_agree(
        da in 1u8..=9, db in 1u8..=9, seed in any::<u64>()
    ) {
        let a = sparse_uniform(10, 8, density(da), seed).to_dense();
        let b = sparse_uniform(8, 10, density(db), seed ^ 5).to_dense();
        let scnn = ScnnSim::new(16, 8).run_gemm(&a, &b);
        let osp = OuterProductSim::new(16, 8).run_gemm(&a, &b);
        prop_assert_eq!(scnn.macs, osp.partial_products);
        prop_assert!(scnn.result.approx_eq(&osp.result, 1e-3));
    }

    /// Cambricon-X issued MACs equal weight-nnz x M regardless of
    /// activation pattern.
    #[test]
    fn cambricon_issue_count(
        da in 1u8..=10, db in 1u8..=10, seed in any::<u64>()
    ) {
        let a = sparse_uniform(7, 9, density(da), seed).to_dense();
        let b = sparse_uniform(9, 6, density(db), seed ^ 7).to_dense();
        let run = CambriconSim::new(4, 4).run_gemm(&a, &b);
        prop_assert_eq!(run.issued_macs, b.nnz() as u64 * 7);
        prop_assert!(run.result.approx_eq(&a.matmul(&b), 1e-3));
    }
}
