//! V100 GPU model for the motivation figures (Figs. 2 and 3).
//!
//! The paper *measures* a V100; we cannot, so this is a tiling/roofline
//! substitution (see `DESIGN.md`): GEMM time is the max of a compute term
//! (peak FLOPs derated by tile-quantization utilization) and a memory
//! term (operand traffic over HBM bandwidth), plus a fixed kernel-launch
//! overhead. cuSPARSE SpMM is modeled as FP32-only, single-sparse-operand
//! and index-traffic-bound, reproducing the observed ~4x efficiency drop
//! versus dense FP32 on unstructured sparsity.

use sigma_core::model::GemmProblem;
use sigma_matrix::GemmShape;

/// Numeric precision / engine selection on the modeled V100.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuPrecision {
    /// FP32 CUDA cores (15.7 TFLOPS peak).
    Fp32,
    /// FP16 tensor cores (125 TFLOPS peak).
    Fp16Tensor,
}

impl GpuPrecision {
    /// Peak throughput in FLOP/s.
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        match self {
            GpuPrecision::Fp32 => 15.7e12,
            GpuPrecision::Fp16Tensor => 125.0e12,
        }
    }

    /// The (M, N, K) tile a thread-block computes; utilization losses come
    /// from quantizing the GEMM to these tiles across 80 SMs.
    #[must_use]
    pub fn tile(&self) -> (usize, usize, usize) {
        match self {
            GpuPrecision::Fp32 => (64, 64, 8),
            GpuPrecision::Fp16Tensor => (128, 128, 32),
        }
    }

    /// Bytes per element.
    #[must_use]
    pub fn bytes(&self) -> f64 {
        match self {
            GpuPrecision::Fp32 => 4.0,
            GpuPrecision::Fp16Tensor => 2.0,
        }
    }
}

/// A roofline + tile-quantization model of one V100 card.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// HBM2 bandwidth in bytes/s.
    pub hbm_bw: f64,
    /// Number of streaming multiprocessors.
    pub sms: usize,
    /// Fixed kernel launch + tail latency in seconds.
    pub launch_overhead_s: f64,
}

impl GpuModel {
    /// The V100 instance used throughout (900 GB/s HBM2, 80 SMs).
    #[must_use]
    pub fn v100() -> Self {
        Self { hbm_bw: 900.0e9, sms: 80, launch_overhead_s: 5.0e-6 }
    }

    /// Seconds to run a dense GEMM at the given precision.
    #[must_use]
    pub fn dense_gemm_time_s(&self, shape: GemmShape, prec: GpuPrecision) -> f64 {
        let flops = 2.0 * shape.macs() as f64;
        let compute = flops / (prec.peak_flops() * self.tile_utilization(shape, prec));
        let bytes = (shape.mk_elems() + shape.kn_elems() + shape.mn_elems()) as f64 * prec.bytes();
        let memory = bytes / self.hbm_bw;
        compute.max(memory) + self.launch_overhead_s
    }

    /// Fraction of issued tile work that is real work: tile quantization
    /// across M/N/K plus SM-count quantization of the tile grid.
    #[must_use]
    pub fn tile_utilization(&self, shape: GemmShape, prec: GpuPrecision) -> f64 {
        let (tm, tn, tk) = prec.tile();
        let quant = |d: usize, t: usize| d as f64 / (d.div_ceil(t) * t) as f64;
        let tile_frac = quant(shape.m, tm) * quant(shape.n, tn) * quant(shape.k, tk);
        let tiles = shape.m.div_ceil(tm) * shape.n.div_ceil(tn);
        let wave_frac = tiles as f64 / (tiles.div_ceil(self.sms) * self.sms) as f64;
        tile_frac * wave_frac
    }

    /// Achieved fraction of peak for a dense GEMM (what Fig. 3a plots).
    #[must_use]
    pub fn dense_efficiency(&self, shape: GemmShape, prec: GpuPrecision) -> f64 {
        let flops = 2.0 * shape.macs() as f64;
        flops / prec.peak_flops() / self.dense_gemm_time_s(shape, prec)
    }

    /// Seconds to run a cuSPARSE-style SpMM: one operand sparse
    /// (unstructured CSR), FP32 only. Index-chasing and uncoalesced
    /// gathers keep the effective compute rate ~4x below dense FP32
    /// while still reading the dense operand tile-by-tile.
    ///
    /// `sparse_density` is the non-zero fraction of the sparse operand.
    #[must_use]
    pub fn cusparse_spmm_time_s(&self, shape: GemmShape, sparse_density: f64) -> f64 {
        let useful_flops = 2.0 * shape.macs() as f64 * sparse_density;
        // Effective compute rate: dense FP32 derated 4x (observed average
        // in the paper's Fig. 3b) and by tile quantization.
        let eff_rate = GpuPrecision::Fp32.peak_flops()
            * self.tile_utilization(shape, GpuPrecision::Fp32)
            / 4.0;
        let compute = useful_flops / eff_rate;
        // Memory: CSR values + column indices + the dense operand re-read
        // once per row-panel.
        let nnz = shape.mk_elems() as f64 * sparse_density;
        let bytes = nnz * 8.0 + (shape.kn_elems() + shape.mn_elems()) as f64 * 4.0;
        let memory = bytes / self.hbm_bw;
        compute.max(memory) + self.launch_overhead_s
    }

    /// Achieved fraction of FP32 peak for the SpMM, counting *useful*
    /// FLOPs only (Fig. 3b's metric).
    #[must_use]
    pub fn cusparse_efficiency(&self, shape: GemmShape, sparse_density: f64) -> f64 {
        let useful = 2.0 * shape.macs() as f64 * sparse_density;
        useful / GpuPrecision::Fp32.peak_flops() / self.cusparse_spmm_time_s(shape, sparse_density)
    }

    /// Seconds for a memory-bound elementwise/normalization op touching
    /// `elements` values `passes` times (used by the Fig. 2 op-breakdown
    /// model).
    #[must_use]
    pub fn elementwise_time_s(&self, elements: u64, passes: f64) -> f64 {
        elements as f64 * 4.0 * passes / self.hbm_bw + self.launch_overhead_s
    }

    /// Convenience: time for a [`GemmProblem`] treating it as dense FP16
    /// tensor-core work (training's common case).
    #[must_use]
    pub fn problem_time_s(&self, p: &GemmProblem) -> f64 {
        self.dense_gemm_time_s(p.shape, GpuPrecision::Fp16Tensor)
    }
}

impl Default for GpuModel {
    fn default() -> Self {
        Self::v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_gemm_reaches_paper_efficiency() {
        // The paper: dense regular (2k, 2k, 2k) FP16 reaches up to 76%.
        let gpu = GpuModel::v100();
        let eff = gpu.dense_efficiency(GemmShape::new(2048, 2048, 2048), GpuPrecision::Fp16Tensor);
        assert!((0.6..=1.0).contains(&eff), "regular FP16 efficiency {eff}");
    }

    #[test]
    fn irregular_gemms_lose_efficiency() {
        let gpu = GpuModel::v100();
        let regular =
            gpu.dense_efficiency(GemmShape::new(2048, 2048, 2048), GpuPrecision::Fp16Tensor);
        // GNMT/Transformer decode shapes from Fig. 1b: small batch (M) or
        // small contraction (K) dimensions strand tensor-core tiles.
        for shape in [
            GemmShape::new(128, 2048, 4096),
            GemmShape::new(320, 3072, 4096),
            GemmShape::new(35, 2560, 4096),
            GemmShape::new(2048, 4096, 32),
        ] {
            let eff = gpu.dense_efficiency(shape, GpuPrecision::Fp16Tensor);
            assert!(eff < regular, "{shape} should be below regular ({eff} vs {regular})");
        }
    }

    #[test]
    fn fp16_tensor_cores_beat_fp32() {
        let gpu = GpuModel::v100();
        let shape = GemmShape::new(1024, 1024, 1024);
        assert!(
            gpu.dense_gemm_time_s(shape, GpuPrecision::Fp16Tensor)
                < gpu.dense_gemm_time_s(shape, GpuPrecision::Fp32)
        );
    }

    #[test]
    fn cusparse_efficiency_is_fraction_of_dense() {
        // Fig. 3b: ~4x lower efficiency than dense FP32 on average.
        let gpu = GpuModel::v100();
        let shape = GemmShape::new(2048, 2048, 2048);
        let dense = gpu.dense_efficiency(shape, GpuPrecision::Fp32);
        for density in [0.5, 0.2] {
            let sp = gpu.cusparse_efficiency(shape, density);
            let ratio = dense / sp;
            assert!((2.0..=8.0).contains(&ratio), "dense/sparse ratio {ratio} at {density}");
        }
    }

    #[test]
    fn small_gemms_are_launch_bound() {
        let gpu = GpuModel::v100();
        let t = gpu.dense_gemm_time_s(GemmShape::new(32, 32, 32), GpuPrecision::Fp16Tensor);
        assert!(t >= gpu.launch_overhead_s);
        let eff = gpu.dense_efficiency(GemmShape::new(32, 32, 32), GpuPrecision::Fp16Tensor);
        assert!(eff < 0.02, "tiny GEMMs must be inefficient, got {eff}");
    }

    #[test]
    fn tile_utilization_bounds() {
        let gpu = GpuModel::v100();
        for shape in [GemmShape::new(1, 1, 1), GemmShape::new(4096, 4096, 4096)] {
            for prec in [GpuPrecision::Fp32, GpuPrecision::Fp16Tensor] {
                let u = gpu.tile_utilization(shape, prec);
                assert!((0.0..=1.0).contains(&u));
            }
        }
        // Aligned shapes hit 100% tile utilization.
        let aligned =
            gpu.tile_utilization(GemmShape::new(1280, 1024, 1024), GpuPrecision::Fp16Tensor);
        assert!((aligned - 1.0).abs() < 1e-12);
    }

    #[test]
    fn elementwise_is_bandwidth_bound() {
        let gpu = GpuModel::v100();
        let t = gpu.elementwise_time_s(1_000_000, 2.0);
        assert!(t > 8.0e6 / 900.0e9);
    }
}
