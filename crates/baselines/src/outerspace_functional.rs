//! A functional outer-product engine (OuterSPACE-style, Pal et al.,
//! HPCA 2018): the multiply phase forms rank-1 outer products
//! `A[:,k] ⊗ B[k,:]` touching only non-zero pairs, then a merge phase
//! sorts/accumulates the partial products into the output.
//!
//! The multiply phase is embarrassingly parallel and perfectly sparse —
//! no wasted multiplies ever. The cost center is the merge: every
//! partial product must be routed to and combined at its output location,
//! at a sustained merge throughput well below the multiplier count (the
//! structural term of the analytic model).

use sigma_matrix::Matrix;

/// The outcome of a functional outer-product run.
#[derive(Debug, Clone, PartialEq)]
pub struct OuterProductRun {
    /// The computed product.
    pub result: Matrix,
    /// Multiply-phase cycles: useful pairs over the multiplier pool.
    pub multiply_cycles: u64,
    /// Merge-phase cycles: partial products over the merge throughput.
    pub merge_cycles: u64,
    /// Number of partial products produced (== useful MACs).
    pub partial_products: u64,
    /// Largest per-output merge chain (accumulation depth).
    pub max_chain: u64,
}

impl OuterProductRun {
    /// Total cycles (phases are serialized, as in OuterSPACE's two-phase
    /// execution).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.multiply_cycles + self.merge_cycles
    }
}

/// A functional outer-product GEMM engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OuterProductSim {
    multipliers: usize,
    /// Partial products merged per cycle (sustained).
    merge_throughput: usize,
}

impl OuterProductSim {
    /// Creates the engine.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    #[must_use]
    pub fn new(multipliers: usize, merge_throughput: usize) -> Self {
        assert!(multipliers > 0 && merge_throughput > 0, "parameters must be non-zero");
        Self { multipliers, merge_throughput }
    }

    /// Runs `C = A[MxK] x B[KxN]` as `sum_k A[:,k] ⊗ B[k,:]`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    #[must_use]
    pub fn run_gemm(&self, a: &Matrix, b: &Matrix) -> OuterProductRun {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let (m, k, n) = (a.rows(), a.cols(), b.cols());

        // Multiply phase: enumerate non-zero pairs per rank-1 update.
        let mut out = Matrix::zeros(m, n);
        let mut chain = vec![0u64; m * n];
        let mut pairs = 0u64;
        for kk in 0..k {
            // Gather the non-zeros of A's column and B's row once.
            let col: Vec<(usize, f32)> = (0..m)
                .filter_map(|mm| {
                    let v = a.get(mm, kk);
                    (v != 0.0).then_some((mm, v))
                })
                .collect();
            let row: Vec<(usize, f32)> = (0..n)
                .filter_map(|nn| {
                    let v = b.get(kk, nn);
                    (v != 0.0).then_some((nn, v))
                })
                .collect();
            for &(mm, av) in &col {
                for &(nn, bv) in &row {
                    out.set(mm, nn, out.get(mm, nn) + av * bv);
                    chain[mm * n + nn] += 1;
                    pairs += 1;
                }
            }
        }

        let multiply_cycles = pairs.div_ceil(self.multipliers as u64).max(u64::from(pairs > 0));
        let merge_cycles = pairs.div_ceil(self.merge_throughput as u64);
        OuterProductRun {
            result: out,
            multiply_cycles,
            merge_cycles,
            partial_products: pairs,
            max_chain: chain.into_iter().max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_matrix::gen::{sparse_uniform, Density};

    #[test]
    fn computes_correct_product() {
        let sim = OuterProductSim::new(16, 4);
        let a = sparse_uniform(7, 9, Density::new(0.4).unwrap(), 1).to_dense();
        let b = sparse_uniform(9, 5, Density::new(0.4).unwrap(), 2).to_dense();
        let run = sim.run_gemm(&a, &b);
        assert!(run.result.approx_eq(&a.matmul(&b), 1e-4));
    }

    #[test]
    fn pairs_equal_useful_macs() {
        let a = sparse_uniform(6, 6, Density::new(0.5).unwrap(), 3).to_dense();
        let b = sparse_uniform(6, 6, Density::new(0.5).unwrap(), 4).to_dense();
        let run = OuterProductSim::new(8, 2).run_gemm(&a, &b);
        let mut expected = 0u64;
        for m in 0..6 {
            for n in 0..6 {
                for k in 0..6 {
                    if a.get(m, k) != 0.0 && b.get(k, n) != 0.0 {
                        expected += 1;
                    }
                }
            }
        }
        assert_eq!(run.partial_products, expected);
    }

    #[test]
    fn merge_phase_dominates_at_low_throughput() {
        let a = sparse_uniform(16, 16, Density::new(0.5).unwrap(), 5).to_dense();
        let b = sparse_uniform(16, 16, Density::new(0.5).unwrap(), 6).to_dense();
        let run = OuterProductSim::new(64, 16).run_gemm(&a, &b);
        assert!(run.merge_cycles > run.multiply_cycles);
        // The 4x throughput gap matches the analytic model's 0.25 factor.
        assert_eq!(run.merge_cycles, run.partial_products.div_ceil(16));
    }

    #[test]
    fn chain_depth_bounded_by_k() {
        let a = sparse_uniform(4, 10, Density::DENSE, 7).to_dense();
        let b = sparse_uniform(10, 4, Density::DENSE, 8).to_dense();
        let run = OuterProductSim::new(8, 8).run_gemm(&a, &b);
        assert_eq!(run.max_chain, 10);
    }

    #[test]
    fn empty_operands_cost_nothing() {
        let a = Matrix::zeros(4, 4);
        let b = sparse_uniform(4, 4, Density::DENSE, 9).to_dense();
        let run = OuterProductSim::new(8, 2).run_gemm(&a, &b);
        assert_eq!(run.partial_products, 0);
        assert_eq!(run.total_cycles(), 0);
        assert_eq!(run.result, Matrix::zeros(4, 4));
    }

    #[test]
    fn sparsity_in_both_operands_multiplies_savings() {
        let dense_pair = {
            let a = sparse_uniform(12, 12, Density::DENSE, 10).to_dense();
            let b = sparse_uniform(12, 12, Density::DENSE, 11).to_dense();
            OuterProductSim::new(4, 4).run_gemm(&a, &b).total_cycles()
        };
        let sparse_pair = {
            let a = sparse_uniform(12, 12, Density::new(0.3).unwrap(), 12).to_dense();
            let b = sparse_uniform(12, 12, Density::new(0.3).unwrap(), 13).to_dense();
            OuterProductSim::new(4, 4).run_gemm(&a, &b).total_cycles()
        };
        // ~0.09x the work.
        assert!((sparse_pair as f64) < 0.2 * dense_pair as f64);
    }
}
