//! [`Engine`] implementations for every baseline accelerator.
//!
//! The experiment harness drives all designs — SIGMA (whose impl lives in
//! `sigma-core`) plus the eight baselines here — through the one
//! object-safe [`Engine`] trait: the two systolic dataflows, EIE,
//! OuterSPACE, SCNN, Cambricon-X, Eyeriss v2, the packed (column-combined)
//! systolic array, and the V100 roofline model. Analytic
//! [`GemmAccelerator`] models are adapted via [`AnalyticEngine`].
//!
//! Each adapter maps its engine's native latency terms onto the paper's
//! Table-II [`CycleStats`] buckets so every design reports through one
//! record schema: load-like phases into `loading_cycles`, pipelined
//! compute into `streaming_cycles`, serialized post-compute phases into
//! `add_cycles`.

use crate::cambricon_functional::CambriconSim;
use crate::eie_functional::EieSim;
use crate::eyeriss_functional::EyerissV2Sim;
use crate::gpu::{GpuModel, GpuPrecision};
use crate::outerspace_functional::OuterProductSim;
use crate::packed_functional::run_packed_gemm;
use crate::scnn_functional::ScnnSim;
use crate::systolic_functional::SystolicSim;
use crate::GemmAccelerator;
use sigma_core::model::GemmProblem;
use sigma_core::{CycleStats, Engine, EngineError, EngineRun};
use sigma_matrix::{GemmShape, SparseMatrix};

/// Useful (both-operands-non-zero) MACs of `A x B`, from the bitmaps:
/// `Σ_k nnz(A[:,k]) * nnz(B[k,:])`.
#[must_use]
pub fn useful_macs(a: &SparseMatrix, b: &SparseMatrix) -> u128 {
    (0..a.cols())
        .map(|k| a.bitmap().col_count_ones(k) as u128 * b.bitmap().row_count_ones(k) as u128)
        .sum()
}

fn check_dims(a: &SparseMatrix, b: &SparseMatrix) -> Result<(), EngineError> {
    if a.cols() != b.rows() {
        return Err(EngineError::DimensionMismatch { k_a: a.cols(), k_b: b.rows() });
    }
    sigma_core::validate_finite(a, b)
}

/// The [`GemmProblem`] an operand pair actually poses: its shape and its
/// *measured* densities.
#[must_use]
pub fn problem_of(a: &SparseMatrix, b: &SparseMatrix) -> GemmProblem {
    let shape = GemmShape::new(a.rows(), b.cols(), a.cols());
    let da =
        if a.rows() * a.cols() == 0 { 0.0 } else { a.nnz() as f64 / (a.rows() * a.cols()) as f64 };
    let db =
        if b.rows() * b.cols() == 0 { 0.0 } else { b.nnz() as f64 / (b.rows() * b.cols()) as f64 };
    GemmProblem::sparse(shape, da, db)
}

/// Which stationary mapping a [`SystolicEngine`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystolicMapping {
    /// Weights stationary, activations streamed (the TPU default).
    WeightStationary,
    /// Outputs stationary, both operands streamed.
    OutputStationary,
}

/// The functional rigid systolic array behind one [`Engine`] face.
#[derive(Debug, Clone, Copy)]
pub struct SystolicEngine {
    rows: usize,
    cols: usize,
    mapping: SystolicMapping,
}

impl SystolicEngine {
    /// An `rows x cols` weight-stationary array.
    #[must_use]
    pub fn weight_stationary(rows: usize, cols: usize) -> Self {
        Self { rows, cols, mapping: SystolicMapping::WeightStationary }
    }

    /// An `rows x cols` output-stationary array.
    #[must_use]
    pub fn output_stationary(rows: usize, cols: usize) -> Self {
        Self { rows, cols, mapping: SystolicMapping::OutputStationary }
    }
}

impl Engine for SystolicEngine {
    fn name(&self) -> String {
        let tag = match self.mapping {
            SystolicMapping::WeightStationary => "WS",
            SystolicMapping::OutputStationary => "OS",
        };
        format!("Systolic {}x{} ({tag})", self.rows, self.cols)
    }

    fn pes(&self) -> usize {
        self.rows * self.cols
    }

    fn run(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<EngineRun, EngineError> {
        check_dims(a, b)?;
        let (ad, bd) = (a.to_dense(), b.to_dense());
        let sim = SystolicSim::new(self.rows, self.cols);
        let run = match self.mapping {
            SystolicMapping::WeightStationary => sim.run_gemm(&ad, &bd),
            SystolicMapping::OutputStationary => sim.run_gemm_output_stationary(&ad, &bd),
        };
        let (m, n, k) = (a.rows(), b.cols(), a.cols());
        let stats = CycleStats {
            streaming_cycles: run.cycles,
            folds: run.folds,
            useful_macs: useful_macs(a, b),
            issued_macs: (m * n * k) as u128, // a rigid array issues every slot
            mapped_nonzeros: b.nnz() as u64,
            occupied_slots: (k * n) as u64, // stationary tile slots incl. zeros
            pes: (self.rows * self.cols) as u64,
            ..CycleStats::default()
        };
        Ok(EngineRun::new(run.result, stats))
    }
}

/// EIE behind the [`Engine`] face.
#[derive(Debug, Clone, Copy)]
pub struct EieEngine {
    pes: usize,
    macs_per_cycle: usize,
}

impl EieEngine {
    /// `pes` PEs, each consuming `macs_per_cycle` matches per broadcast
    /// cycle.
    #[must_use]
    pub fn new(pes: usize, macs_per_cycle: usize) -> Self {
        Self { pes, macs_per_cycle }
    }
}

impl Engine for EieEngine {
    fn name(&self) -> String {
        format!("EIE ({} PE)", self.pes)
    }

    fn pes(&self) -> usize {
        self.pes
    }

    fn run(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<EngineRun, EngineError> {
        check_dims(a, b)?;
        let run = EieSim::new(self.pes, self.macs_per_cycle).run_gemm(&a.to_dense(), &b.to_dense());
        let stats = CycleStats {
            streaming_cycles: run.cycles,
            useful_macs: u128::from(run.macs),
            issued_macs: u128::from(run.macs), // only non-zero matches issue
            mapped_nonzeros: b.nnz() as u64,
            occupied_slots: b.nnz() as u64, // CSC stores only non-zeros
            pes: self.pes as u64,
            ..CycleStats::default()
        };
        Ok(EngineRun::new(run.result, stats))
    }
}

/// OuterSPACE behind the [`Engine`] face.
#[derive(Debug, Clone, Copy)]
pub struct OuterSpaceEngine {
    multipliers: usize,
    merge_throughput: usize,
}

impl OuterSpaceEngine {
    /// `multipliers` parallel multipliers, merging `merge_throughput`
    /// partial products per cycle.
    #[must_use]
    pub fn new(multipliers: usize, merge_throughput: usize) -> Self {
        Self { multipliers, merge_throughput }
    }
}

impl Engine for OuterSpaceEngine {
    fn name(&self) -> String {
        format!("OuterSPACE ({} mult)", self.multipliers)
    }

    fn pes(&self) -> usize {
        self.multipliers
    }

    fn run(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<EngineRun, EngineError> {
        check_dims(a, b)?;
        let run = OuterProductSim::new(self.multipliers, self.merge_throughput)
            .run_gemm(&a.to_dense(), &b.to_dense());
        let stats = CycleStats {
            streaming_cycles: run.multiply_cycles,
            add_cycles: run.merge_cycles, // the serialized merge phase
            useful_macs: u128::from(run.partial_products),
            issued_macs: u128::from(run.partial_products),
            pes: self.multipliers as u64,
            ..CycleStats::default()
        };
        Ok(EngineRun::new(run.result, stats))
    }
}

/// SCNN behind the [`Engine`] face.
#[derive(Debug, Clone, Copy)]
pub struct ScnnEngine {
    mults_per_cycle: usize,
    banks: usize,
}

impl ScnnEngine {
    /// `mults_per_cycle` cartesian-product multipliers scattering into
    /// `banks` accumulator banks.
    #[must_use]
    pub fn new(mults_per_cycle: usize, banks: usize) -> Self {
        Self { mults_per_cycle, banks }
    }
}

impl Engine for ScnnEngine {
    fn name(&self) -> String {
        format!("SCNN ({} mult, {} banks)", self.mults_per_cycle, self.banks)
    }

    fn pes(&self) -> usize {
        self.mults_per_cycle
    }

    fn run(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<EngineRun, EngineError> {
        check_dims(a, b)?;
        let run =
            ScnnSim::new(self.mults_per_cycle, self.banks).run_gemm(&a.to_dense(), &b.to_dense());
        let stats = CycleStats {
            streaming_cycles: run.total_cycles(), // pipeline pace = slower stage
            useful_macs: u128::from(run.macs),
            issued_macs: u128::from(run.macs),
            pes: self.mults_per_cycle as u64,
            ..CycleStats::default()
        };
        Ok(EngineRun::new(run.result, stats))
    }
}

/// Cambricon-X behind the [`Engine`] face.
#[derive(Debug, Clone, Copy)]
pub struct CambriconEngine {
    pes: usize,
    lanes: usize,
}

impl CambriconEngine {
    /// `pes` PEs, each with `lanes` synapse-selector lanes.
    #[must_use]
    pub fn new(pes: usize, lanes: usize) -> Self {
        Self { pes, lanes }
    }
}

impl Engine for CambriconEngine {
    fn name(&self) -> String {
        format!("Cambricon-X ({} PE x {})", self.pes, self.lanes)
    }

    fn pes(&self) -> usize {
        self.pes * self.lanes
    }

    fn run(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<EngineRun, EngineError> {
        check_dims(a, b)?;
        let run = CambriconSim::new(self.pes, self.lanes).run_gemm(&a.to_dense(), &b.to_dense());
        let stats = CycleStats {
            streaming_cycles: run.cycles,
            useful_macs: useful_macs(a, b),
            issued_macs: u128::from(run.issued_macs), // dense activations issue
            mapped_nonzeros: b.nnz() as u64,
            occupied_slots: b.nnz() as u64,
            pes: (self.pes * self.lanes) as u64,
            ..CycleStats::default()
        };
        Ok(EngineRun::new(run.result, stats))
    }
}

/// Eyeriss v2 behind the [`Engine`] face.
#[derive(Debug, Clone, Copy)]
pub struct EyerissEngine {
    pes: usize,
    buffer_words: usize,
    fetch_bandwidth: usize,
}

impl EyerissEngine {
    /// `pes` PEs fed from a `buffer_words` global buffer at
    /// `fetch_bandwidth` words per cycle.
    #[must_use]
    pub fn new(pes: usize, buffer_words: usize, fetch_bandwidth: usize) -> Self {
        Self { pes, buffer_words, fetch_bandwidth }
    }
}

impl Engine for EyerissEngine {
    fn name(&self) -> String {
        format!("Eyeriss v2 ({} PE)", self.pes)
    }

    fn pes(&self) -> usize {
        self.pes
    }

    fn run(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<EngineRun, EngineError> {
        check_dims(a, b)?;
        let run = EyerissV2Sim::new(self.pes, self.buffer_words, self.fetch_bandwidth)
            .run_gemm(&a.to_dense(), &b.to_dense());
        // Fetches count as loading only when they serialize (buffer
        // overflow); a buffered run hides them under compute.
        let stats = CycleStats {
            loading_cycles: run.total_cycles() - run.compute_cycles.min(run.total_cycles()),
            streaming_cycles: run.compute_cycles.min(run.total_cycles()),
            useful_macs: u128::from(run.macs),
            issued_macs: u128::from(run.macs),
            sram_reads: run.fetch_cycles * self.fetch_bandwidth as u64,
            pes: self.pes as u64,
            ..CycleStats::default()
        };
        Ok(EngineRun::new(run.result, stats))
    }
}

/// The packed (column-combined) systolic array behind the [`Engine`]
/// face: weights are column-packed with a zero conflict budget (lossless)
/// and the packed matrix runs on a rigid weight-stationary array.
#[derive(Debug, Clone, Copy)]
pub struct PackedSystolicEngine {
    rows: usize,
    cols: usize,
    max_combine: usize,
}

impl PackedSystolicEngine {
    /// An `rows x cols` array packing up to `max_combine` weight columns
    /// per physical column.
    #[must_use]
    pub fn new(rows: usize, cols: usize, max_combine: usize) -> Self {
        Self { rows, cols, max_combine }
    }
}

impl Engine for PackedSystolicEngine {
    fn name(&self) -> String {
        format!("Packed systolic {}x{} (combine {})", self.rows, self.cols, self.max_combine)
    }

    fn pes(&self) -> usize {
        self.rows * self.cols
    }

    fn run(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<EngineRun, EngineError> {
        check_dims(a, b)?;
        let (ad, bd) = (a.to_dense(), b.to_dense());
        let (result, packing) = run_packed_gemm(&ad, &bd, self.max_combine);
        // Latency: the same array streaming the packed (narrower) weight
        // matrix; numerics come from the scatter-correct packed run above.
        let (packed, _) = crate::packed_functional::pack_weights(&bd, &packing);
        let timing = SystolicSim::new(self.rows, self.cols).run_gemm(&ad, &packed);
        let k = a.cols();
        let stats = CycleStats {
            streaming_cycles: timing.cycles,
            folds: timing.folds,
            useful_macs: useful_macs(a, b),
            issued_macs: (a.rows() * packing.groups.len() * k) as u128,
            mapped_nonzeros: b.nnz() as u64,
            occupied_slots: (k * packing.groups.len()) as u64,
            pes: (self.rows * self.cols) as u64,
            ..CycleStats::default()
        };
        Ok(EngineRun::new(result, stats))
    }
}

/// The V100 GPU roofline model behind the [`Engine`] face.
///
/// The GPU baseline is analytic (Sec. III measures silicon): the numeric
/// product is computed by the reference GEMM, and the cycle count
/// converts the modeled kernel time at the V100 boost clock.
#[derive(Debug, Clone, Copy)]
pub struct GpuEngine {
    precision: GpuPrecision,
}

/// V100 boost clock used to convert modeled seconds into cycles.
pub const V100_CLOCK_HZ: f64 = 1.53e9;

/// CUDA cores on a V100 (the GPU's "PE" count for normalization).
pub const V100_CUDA_CORES: usize = 5120;

impl GpuEngine {
    /// A V100 at the given precision.
    #[must_use]
    pub fn new(precision: GpuPrecision) -> Self {
        Self { precision }
    }
}

impl Engine for GpuEngine {
    fn name(&self) -> String {
        format!("V100 ({:?})", self.precision)
    }

    fn pes(&self) -> usize {
        V100_CUDA_CORES
    }

    fn run(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<EngineRun, EngineError> {
        check_dims(a, b)?;
        let p = problem_of(a, b);
        let seconds = GpuModel::default().dense_gemm_time_s(p.shape, self.precision);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cycles = (seconds * V100_CLOCK_HZ).ceil() as u64;
        let stats = CycleStats {
            streaming_cycles: cycles,
            useful_macs: useful_macs(a, b),
            issued_macs: p.shape.macs(), // dense kernels issue everything
            pes: V100_CUDA_CORES as u64,
            ..CycleStats::default()
        };
        Ok(EngineRun::new(a.to_dense().matmul(&b.to_dense()), stats))
    }
}

/// Adapts any analytic [`GemmAccelerator`] into an [`Engine`]: the cycle
/// model runs on the operands' measured shape/densities, and the numeric
/// product comes from the reference GEMM (analytic models move no data).
#[derive(Debug, Clone)]
pub struct AnalyticEngine<A> {
    inner: A,
}

impl<A: GemmAccelerator> AnalyticEngine<A> {
    /// Wraps an analytic model.
    #[must_use]
    pub fn new(inner: A) -> Self {
        Self { inner }
    }

    /// The wrapped model.
    #[must_use]
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: GemmAccelerator + Send + Sync> Engine for AnalyticEngine<A> {
    fn name(&self) -> String {
        format!("{} [analytic]", self.inner.name())
    }

    fn pes(&self) -> usize {
        self.inner.pes()
    }

    fn run(&self, a: &SparseMatrix, b: &SparseMatrix) -> Result<EngineRun, EngineError> {
        check_dims(a, b)?;
        let stats = self.inner.simulate(&problem_of(a, b));
        Ok(EngineRun::new(a.to_dense().matmul(&b.to_dense()), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::{SparseAccelerator, SparseAcceleratorKind};
    use crate::systolic::SystolicArray;
    use sigma_matrix::gen::{sparse_uniform, Density};

    fn operands(seed: u64) -> (SparseMatrix, SparseMatrix) {
        let a = sparse_uniform(9, 12, Density::new(0.5).unwrap(), seed);
        let b = sparse_uniform(12, 7, Density::new(0.4).unwrap(), seed + 100);
        (a, b)
    }

    fn all_functional_engines() -> Vec<Box<dyn Engine>> {
        vec![
            Box::new(SystolicEngine::weight_stationary(4, 4)),
            Box::new(SystolicEngine::output_stationary(4, 4)),
            Box::new(EieEngine::new(4, 2)),
            Box::new(OuterSpaceEngine::new(8, 4)),
            Box::new(ScnnEngine::new(8, 4)),
            Box::new(CambriconEngine::new(4, 4)),
            Box::new(EyerissEngine::new(4, 1 << 16, 8)),
            Box::new(PackedSystolicEngine::new(4, 4, 8)),
        ]
    }

    #[test]
    fn every_functional_engine_matches_the_reference() {
        let (a, b) = operands(42);
        let reference = a.to_dense().matmul(&b.to_dense());
        for engine in all_functional_engines() {
            let run = engine.run(&a, &b).unwrap();
            assert!(
                run.result.approx_eq(&reference, 1e-3 * 12.0),
                "{} disagrees (max diff {})",
                engine.name(),
                run.result.max_abs_diff(&reference)
            );
            assert!(run.stats.total_cycles() > 0, "{} reports zero cycles", engine.name());
            assert!(engine.pes() > 0);
        }
    }

    #[test]
    fn every_engine_rejects_non_finite_operands() {
        use sigma_matrix::Matrix;
        let mut bad_dense = Matrix::zeros(4, 5);
        bad_dense.set(2, 3, f32::NAN);
        let bad = SparseMatrix::from_dense(&bad_dense);
        let good = sparse_uniform(5, 4, Density::DENSE, 3);
        let mut engines = all_functional_engines();
        engines.push(Box::new(GpuEngine::new(GpuPrecision::Fp16Tensor)));
        engines.push(Box::new(AnalyticEngine::new(SystolicArray::new(8, 8))));
        for engine in engines {
            let err = engine.run(&bad, &good).unwrap_err();
            assert!(
                matches!(err, EngineError::Numeric(_)),
                "{} accepted a NaN operand: {err:?}",
                engine.name()
            );
        }
    }

    #[test]
    fn every_engine_rejects_dimension_mismatch() {
        let a = sparse_uniform(4, 5, Density::DENSE, 1);
        let b = sparse_uniform(6, 4, Density::DENSE, 2);
        let mut engines = all_functional_engines();
        engines.push(Box::new(GpuEngine::new(GpuPrecision::Fp16Tensor)));
        engines.push(Box::new(AnalyticEngine::new(SystolicArray::new(8, 8))));
        for engine in engines {
            assert_eq!(
                engine.run(&a, &b).unwrap_err(),
                EngineError::DimensionMismatch { k_a: 5, k_b: 6 },
                "{} accepted mismatched operands",
                engine.name()
            );
        }
    }

    #[test]
    fn useful_macs_counts_pairs() {
        let (a, b) = operands(7);
        let (ad, bd) = (a.to_dense(), b.to_dense());
        let mut expected = 0u128;
        for i in 0..ad.rows() {
            for j in 0..bd.cols() {
                for k in 0..ad.cols() {
                    if ad.get(i, k) != 0.0 && bd.get(k, j) != 0.0 {
                        expected += 1;
                    }
                }
            }
        }
        assert_eq!(useful_macs(&a, &b), expected);
    }

    #[test]
    fn analytic_adapter_reports_model_stats() {
        let (a, b) = operands(3);
        let engine = AnalyticEngine::new(SparseAccelerator::new(SparseAcceleratorKind::Eie, 64));
        let run = engine.run(&a, &b).unwrap();
        let direct =
            SparseAccelerator::new(SparseAcceleratorKind::Eie, 64).simulate(&problem_of(&a, &b));
        assert_eq!(run.stats, direct);
        assert!(engine.name().contains("[analytic]"));
        assert_eq!(engine.pes(), 64);
    }

    #[test]
    fn gpu_engine_scales_with_problem_size() {
        let small = {
            let a = sparse_uniform(16, 16, Density::DENSE, 1);
            let b = sparse_uniform(16, 16, Density::DENSE, 2);
            GpuEngine::new(GpuPrecision::Fp16Tensor).run(&a, &b).unwrap().stats.total_cycles()
        };
        let big = {
            let a = sparse_uniform(512, 512, Density::DENSE, 3);
            let b = sparse_uniform(512, 512, Density::DENSE, 4);
            GpuEngine::new(GpuPrecision::Fp16Tensor).run(&a, &b).unwrap().stats.total_cycles()
        };
        assert!(big > small, "bigger GEMM must cost more GPU cycles ({big} vs {small})");
    }

    #[test]
    fn packed_engine_beats_plain_systolic_on_sparse_weights() {
        // 80% weight sparsity: column combining shrinks the streamed
        // width, so the packed array finishes sooner.
        let a = sparse_uniform(16, 16, Density::DENSE, 11);
        let b = sparse_uniform(16, 16, Density::new(0.2).unwrap(), 12);
        let plain = SystolicEngine::weight_stationary(4, 4).run(&a, &b).unwrap();
        let packed = PackedSystolicEngine::new(4, 4, 8).run(&a, &b).unwrap();
        assert!(
            packed.stats.total_cycles() < plain.stats.total_cycles(),
            "packed {} vs plain {}",
            packed.stats.total_cycles(),
            plain.stats.total_cycles()
        );
    }
}
