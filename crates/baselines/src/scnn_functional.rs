//! A functional SCNN-style engine (Parashar et al., ISCA 2017): each PE
//! takes a vector of `F` non-zero weights and a vector of `I` non-zero
//! activations per cycle and computes their full `F x I` cartesian
//! product; the partial products then cross a crossbar into banked
//! accumulator memories, where *bank conflicts* serialize writes.
//!
//! On convolutions the cartesian product is always useful; on GEMM
//! (a 1x1 convolution) two products are useful only if they belong to
//! the same output — they always do here because we pair an activation
//! `A[m, k]` with weights `B[k, :]` (same `k`), so products target
//! different outputs and the *crossbar scatter*, not the multiplier,
//! becomes the bottleneck. That is exactly the structural claim of the
//! paper's Table III and our analytic SCNN model.

use sigma_matrix::Matrix;

/// The outcome of a functional SCNN-style run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScnnRun {
    /// The computed product.
    pub result: Matrix,
    /// Multiplier-limited cycles.
    pub multiply_cycles: u64,
    /// Accumulator-bank-limited cycles (the usual GEMM bottleneck).
    pub accumulate_cycles: u64,
    /// Useful multiply-accumulates performed.
    pub macs: u64,
    /// Worst single-cycle bank conflict degree observed.
    pub worst_conflict: u64,
}

impl ScnnRun {
    /// Total cycles: the pipeline runs at the slower of the two stages.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.multiply_cycles.max(self.accumulate_cycles)
    }
}

/// A functional SCNN-style cartesian-product engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScnnSim {
    /// Multipliers per cycle (the F x I array, e.g. 16 for 4x4).
    mults_per_cycle: usize,
    /// Accumulator banks (each accepts one write per cycle).
    banks: usize,
}

impl ScnnSim {
    /// Creates the engine.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    #[must_use]
    pub fn new(mults_per_cycle: usize, banks: usize) -> Self {
        assert!(mults_per_cycle > 0 && banks > 0, "parameters must be non-zero");
        Self { mults_per_cycle, banks }
    }

    /// Runs `C = A[MxK] x B[KxN]`, skipping zeros in both operands.
    ///
    /// Per contraction index `k`, the non-zero activations of `A[:, k]`
    /// and non-zero weights of `B[k, :]` form a cartesian product; each
    /// cycle issues up to `mults_per_cycle` products, whose writes are
    /// then scheduled onto the banks (output `(m, n)` lives in bank
    /// `(m * N + n) % banks`); conflicting writes serialize.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    #[must_use]
    pub fn run_gemm(&self, a: &Matrix, b: &Matrix) -> ScnnRun {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Matrix::zeros(m, n);
        let mut macs = 0u64;
        let mut multiply_cycles = 0u64;
        let mut accumulate_cycles = 0u64;
        let mut worst = 0u64;

        for kk in 0..k {
            let acts: Vec<(usize, f32)> = (0..m)
                .filter_map(|mm| {
                    let v = a.get(mm, kk);
                    (v != 0.0).then_some((mm, v))
                })
                .collect();
            let wts: Vec<(usize, f32)> = (0..n)
                .filter_map(|nn| {
                    let v = b.get(kk, nn);
                    (v != 0.0).then_some((nn, v))
                })
                .collect();
            if acts.is_empty() || wts.is_empty() {
                continue;
            }
            // Issue the cartesian product in multiplier-wide waves.
            let products: Vec<(usize, usize, f32)> = acts
                .iter()
                .flat_map(|&(mm, av)| wts.iter().map(move |&(nn, wv)| (mm, nn, av * wv)))
                .collect();
            macs += products.len() as u64;
            for wave in products.chunks(self.mults_per_cycle) {
                multiply_cycles += 1;
                // Bank scheduling: the most-contended bank sets the
                // cycles this wave needs to drain.
                let mut per_bank = vec![0u64; self.banks];
                for &(mm, nn, pv) in wave {
                    out.set(mm, nn, out.get(mm, nn) + pv);
                    per_bank[(mm * n + nn) % self.banks] += 1;
                }
                let drain = per_bank.iter().copied().max().unwrap_or(0);
                worst = worst.max(drain);
                accumulate_cycles += drain.max(1);
            }
        }
        ScnnRun { result: out, multiply_cycles, accumulate_cycles, macs, worst_conflict: worst }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_matrix::gen::{sparse_uniform, Density};

    #[test]
    fn computes_correct_product() {
        let sim = ScnnSim::new(16, 8);
        let a = sparse_uniform(7, 9, Density::new(0.4).unwrap(), 1).to_dense();
        let b = sparse_uniform(9, 6, Density::new(0.4).unwrap(), 2).to_dense();
        let run = sim.run_gemm(&a, &b);
        assert!(run.result.approx_eq(&a.matmul(&b), 1e-4));
    }

    #[test]
    fn macs_are_exactly_the_useful_pairs() {
        let a = sparse_uniform(6, 5, Density::new(0.5).unwrap(), 3).to_dense();
        let b = sparse_uniform(5, 6, Density::new(0.5).unwrap(), 4).to_dense();
        let run = ScnnSim::new(4, 4).run_gemm(&a, &b);
        let mut expected = 0u64;
        for mm in 0..6 {
            for nn in 0..6 {
                for kk in 0..5 {
                    if a.get(mm, kk) != 0.0 && b.get(kk, nn) != 0.0 {
                        expected += 1;
                    }
                }
            }
        }
        assert_eq!(run.macs, expected);
    }

    #[test]
    fn bank_conflicts_make_accumulation_the_bottleneck() {
        // Few banks vs wide multiplier array: scatter dominates.
        let a = sparse_uniform(16, 8, Density::DENSE, 5).to_dense();
        let b = sparse_uniform(8, 16, Density::DENSE, 6).to_dense();
        let run = ScnnSim::new(16, 2).run_gemm(&a, &b);
        assert!(run.accumulate_cycles > run.multiply_cycles);
        assert!(run.worst_conflict > 1);
        assert_eq!(run.total_cycles(), run.accumulate_cycles);
    }

    #[test]
    fn many_banks_remove_the_conflicts() {
        let a = sparse_uniform(8, 8, Density::new(0.5).unwrap(), 7).to_dense();
        let b = sparse_uniform(8, 8, Density::new(0.5).unwrap(), 8).to_dense();
        let few = ScnnSim::new(16, 2).run_gemm(&a, &b);
        let many = ScnnSim::new(16, 256).run_gemm(&a, &b);
        assert!(many.total_cycles() <= few.total_cycles());
        assert!(many.result.approx_eq(&few.result, 1e-5));
    }

    #[test]
    fn sparsity_skips_work_entirely() {
        // 0.3 x 0.3 density leaves ~9% of the useful MACs; bank-conflict
        // serialization keeps the realized cycle ratio above that, but it
        // must still sit well below dense. Averaged over seeds so a single
        // unlucky conflict pattern cannot flip the verdict.
        let dense = {
            let a = sparse_uniform(12, 12, Density::DENSE, 9).to_dense();
            let b = sparse_uniform(12, 12, Density::DENSE, 10).to_dense();
            ScnnSim::new(8, 8).run_gemm(&a, &b).total_cycles()
        };
        let seeds = [11u64, 21, 31, 41];
        let sparse_avg = seeds
            .iter()
            .map(|&s| {
                let a = sparse_uniform(12, 12, Density::new(0.3).unwrap(), s).to_dense();
                let b = sparse_uniform(12, 12, Density::new(0.3).unwrap(), s + 1).to_dense();
                ScnnSim::new(8, 8).run_gemm(&a, &b).total_cycles() as f64
            })
            .sum::<f64>()
            / seeds.len() as f64;
        assert!(sparse_avg < 0.25 * dense as f64, "sparse avg {sparse_avg} vs dense {dense}");
    }

    #[test]
    fn empty_rows_cost_nothing() {
        let a = Matrix::zeros(4, 4);
        let b = sparse_uniform(4, 4, Density::DENSE, 13).to_dense();
        let run = ScnnSim::new(4, 4).run_gemm(&a, &b);
        assert_eq!(run.total_cycles(), 0);
        assert_eq!(run.macs, 0);
    }
}
