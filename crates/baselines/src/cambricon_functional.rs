//! A functional Cambricon-X-style engine (Zhang et al., MICRO 2016):
//! PEs hold *compressed weights* with step indexes; a central indexing
//! module selects, per cycle, the activations matching each PE's next
//! weight group. Weight zeros are skipped; activations are fetched
//! densely (no activation-sparsity support — the design's Table III
//! limitation).
//!
//! Per output neuron (column of `B`), the PE walks its compressed weight
//! list in groups of `lanes` (the 16-wide synapse selectors of the real
//! design); each group costs one cycle plus the indexing overhead.

use sigma_matrix::Matrix;

/// The outcome of a functional Cambricon-X-style run.
#[derive(Debug, Clone, PartialEq)]
pub struct CambriconRun {
    /// The computed product.
    pub result: Matrix,
    /// Total cycles across the PE array.
    pub cycles: u64,
    /// Multiply-accumulates issued (weight-sparse, activation-dense).
    pub issued_macs: u64,
}

/// A functional Cambricon-X-style weight-sparse engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CambriconSim {
    pes: usize,
    /// Synapse-selector width: weights consumed per PE per cycle.
    lanes: usize,
}

impl CambriconSim {
    /// Creates the engine.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    #[must_use]
    pub fn new(pes: usize, lanes: usize) -> Self {
        assert!(pes > 0 && lanes > 0, "parameters must be non-zero");
        Self { pes, lanes }
    }

    /// Runs `C = A[MxK] x B[KxN]`: output columns stripe across PEs; each
    /// PE holds its columns' non-zero weights (with step indexes) and,
    /// for every activation row `m`, walks them `lanes` at a time.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    #[must_use]
    pub fn run_gemm(&self, a: &Matrix, b: &Matrix) -> CambriconRun {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let (m, k, n) = (a.rows(), a.cols(), b.cols());

        // Compress each output column's weights: (k, w) pairs.
        let compressed: Vec<Vec<(usize, f32)>> = (0..n)
            .map(|nn| {
                (0..k)
                    .filter_map(|kk| {
                        let w = b.get(kk, nn);
                        (w != 0.0).then_some((kk, w))
                    })
                    .collect()
            })
            .collect();

        let mut out = Matrix::zeros(m, n);
        let mut issued = 0u64;
        // Per activation row, every PE walks its columns' weight lists;
        // the busiest PE paces the array.
        let mut per_pe_cycles = vec![0u64; self.pes];
        for (nn, weights) in compressed.iter().enumerate() {
            let pe = nn % self.pes;
            let groups = weights.len().div_ceil(self.lanes) as u64;
            per_pe_cycles[pe] += groups * m as u64;
            issued += (weights.len() * m) as u64;
            for mm in 0..m {
                let mut acc = 0.0f32;
                for &(kk, w) in weights {
                    acc += a.get(mm, kk) * w;
                }
                out.set(mm, nn, acc);
            }
        }
        let cycles = per_pe_cycles.into_iter().max().unwrap_or(0);
        CambriconRun { result: out, cycles, issued_macs: issued }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_matrix::gen::{sparse_uniform, Density};

    #[test]
    fn computes_correct_product() {
        let sim = CambriconSim::new(4, 4);
        let a = sparse_uniform(6, 10, Density::new(0.6).unwrap(), 1).to_dense();
        let b = sparse_uniform(10, 7, Density::new(0.3).unwrap(), 2).to_dense();
        let run = sim.run_gemm(&a, &b);
        assert!(run.result.approx_eq(&a.matmul(&b), 1e-4));
    }

    #[test]
    fn weight_sparsity_cuts_cycles() {
        let a = sparse_uniform(8, 16, Density::DENSE, 3).to_dense();
        let dense_w = sparse_uniform(16, 8, Density::DENSE, 4).to_dense();
        let sparse_w = sparse_uniform(16, 8, Density::new(0.25).unwrap(), 5).to_dense();
        let sim = CambriconSim::new(4, 4);
        let d = sim.run_gemm(&a, &dense_w);
        let s = sim.run_gemm(&a, &sparse_w);
        assert!(s.cycles < d.cycles);
        assert!(s.issued_macs < d.issued_macs);
    }

    #[test]
    fn activation_sparsity_is_ignored() {
        // Same weights, sparser activations: identical cycle count (the
        // design cannot skip activation zeros).
        let w = sparse_uniform(12, 6, Density::new(0.5).unwrap(), 6).to_dense();
        let dense_a = sparse_uniform(8, 12, Density::DENSE, 7).to_dense();
        let sparse_a = sparse_uniform(8, 12, Density::new(0.2).unwrap(), 8).to_dense();
        let sim = CambriconSim::new(4, 4);
        assert_eq!(sim.run_gemm(&dense_a, &w).cycles, sim.run_gemm(&sparse_a, &w).cycles);
    }

    #[test]
    fn lane_width_amortizes_weight_walks() {
        let a = sparse_uniform(4, 32, Density::DENSE, 9).to_dense();
        let w = sparse_uniform(32, 4, Density::DENSE, 10).to_dense();
        let narrow = CambriconSim::new(2, 4).run_gemm(&a, &w);
        let wide = CambriconSim::new(2, 16).run_gemm(&a, &w);
        assert!(wide.cycles < narrow.cycles);
        assert!(wide.result.approx_eq(&narrow.result, 1e-5));
    }

    #[test]
    fn striping_imbalance_paces_the_array() {
        // One heavy column among light ones: the PE owning it dominates.
        let mut b = Matrix::zeros(16, 4);
        for kk in 0..16 {
            b.set(kk, 0, 1.0); // column 0: 16 weights
        }
        b.set(0, 1, 1.0); // others: 1 weight
        b.set(0, 2, 1.0);
        b.set(0, 3, 1.0);
        let a = sparse_uniform(4, 16, Density::DENSE, 11).to_dense();
        let run = CambriconSim::new(4, 4).run_gemm(&a, &b);
        // PE 0 walks ceil(16/4)=4 groups x 4 rows = 16 cycles; others 4.
        assert_eq!(run.cycles, 16);
    }
}
