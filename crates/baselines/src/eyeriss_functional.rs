//! A functional Eyeriss v2-style engine (Chen et al., JETCAS 2019):
//! clusters of PEs under a hierarchical two-level NoC, row-stationary+
//! dataflow with CSC-compressed operands so zeros in *both* matrices are
//! skipped, and a global buffer that — when both operands fit — lets the
//! engine read each operand from SRAM exactly once.
//!
//! The structural behaviors the analytic model summarizes, reproduced
//! here with real data movement:
//!
//! * per-PE work is the useful MACs of its output stripe (CSC
//!   intersection), so the *busiest* PE paces the array;
//! * the hierarchical NoC delivers each needed operand word once per
//!   cluster (multicast within a cluster);
//! * when the operands overflow the global buffer, the streamed operand
//!   is re-fetched once per output-row tile — the "buffer cliff" that
//!   lets Eyeriss v2 win small GEMMs against SIGMA and lose big ones.

use sigma_matrix::Matrix;

/// The outcome of a functional Eyeriss v2-style run.
#[derive(Debug, Clone, PartialEq)]
pub struct EyerissRun {
    /// The computed product.
    pub result: Matrix,
    /// Compute cycles: the busiest PE's useful-MAC count.
    pub compute_cycles: u64,
    /// SRAM fetch cycles (global buffer fills, including re-fetches).
    pub fetch_cycles: u64,
    /// Whether both operands fit the global buffer.
    pub fits_buffer: bool,
    /// Useful MACs performed.
    pub macs: u64,
}

impl EyerissRun {
    /// Total cycles: fetches overlap compute only when the operands are
    /// buffered (fits), otherwise the re-fetch serializes.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        if self.fits_buffer {
            self.compute_cycles.max(self.fetch_cycles)
        } else {
            self.compute_cycles + self.fetch_cycles
        }
    }
}

/// A functional Eyeriss v2-style engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EyerissV2Sim {
    pes: usize,
    /// Global buffer capacity in operand words.
    buffer_words: usize,
    /// SRAM fetch bandwidth in words per cycle.
    fetch_bandwidth: usize,
}

impl EyerissV2Sim {
    /// Creates the engine.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    #[must_use]
    pub fn new(pes: usize, buffer_words: usize, fetch_bandwidth: usize) -> Self {
        assert!(pes > 0 && buffer_words > 0 && fetch_bandwidth > 0, "parameters must be non-zero");
        Self { pes, buffer_words, fetch_bandwidth }
    }

    /// Runs `C = A[MxK] x B[KxN]` with output rows striped over PEs.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    #[must_use]
    pub fn run_gemm(&self, a: &Matrix, b: &Matrix) -> EyerissRun {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let (m, k, n) = (a.rows(), a.cols(), b.cols());

        // Compressed row view of A and row view of B (CSC-equivalent for
        // this access pattern).
        let a_rows: Vec<Vec<(usize, f32)>> = (0..m)
            .map(|mm| {
                (0..k)
                    .filter_map(|kk| {
                        let v = a.get(mm, kk);
                        (v != 0.0).then_some((kk, v))
                    })
                    .collect()
            })
            .collect();
        let b_rows: Vec<Vec<(usize, f32)>> = (0..k)
            .map(|kk| {
                (0..n)
                    .filter_map(|nn| {
                        let v = b.get(kk, nn);
                        (v != 0.0).then_some((nn, v))
                    })
                    .collect()
            })
            .collect();

        let a_words = a_rows.iter().map(Vec::len).sum::<usize>();
        let b_words = b_rows.iter().map(Vec::len).sum::<usize>();
        let fits = a_words + b_words <= self.buffer_words;

        // Compute: PE p owns output rows m ≡ p (mod pes); its work is the
        // useful MACs of those rows.
        let mut out = Matrix::zeros(m, n);
        let mut per_pe = vec![0u64; self.pes];
        let mut macs = 0u64;
        for (mm, arow) in a_rows.iter().enumerate() {
            let pe = mm % self.pes;
            for &(kk, av) in arow {
                for &(nn, bv) in &b_rows[kk] {
                    out.set(mm, nn, out.get(mm, nn) + av * bv);
                    per_pe[pe] += 1;
                    macs += 1;
                }
            }
        }
        let compute_cycles = per_pe.into_iter().max().unwrap_or(0);

        // Fetch: one fill when buffered; otherwise B re-fetches once per
        // output-row tile (tiles of `pes` rows stream against it).
        let row_tiles = m.div_ceil(self.pes).max(1) as u64;
        let fetched_words = if fits {
            (a_words + b_words) as u64
        } else {
            a_words as u64 + b_words as u64 * row_tiles
        };
        let fetch_cycles = fetched_words.div_ceil(self.fetch_bandwidth as u64);

        EyerissRun { result: out, compute_cycles, fetch_cycles, fits_buffer: fits, macs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_matrix::gen::{sparse_uniform, Density};

    #[test]
    fn computes_correct_product() {
        let sim = EyerissV2Sim::new(8, 1 << 16, 16);
        let a = sparse_uniform(9, 11, Density::new(0.4).unwrap(), 1).to_dense();
        let b = sparse_uniform(11, 7, Density::new(0.4).unwrap(), 2).to_dense();
        let run = sim.run_gemm(&a, &b);
        assert!(run.result.approx_eq(&a.matmul(&b), 1e-4));
        assert!(run.fits_buffer);
    }

    #[test]
    fn exploits_both_sparsities() {
        let sim = EyerissV2Sim::new(8, 1 << 16, 16);
        let dense = {
            let a = sparse_uniform(16, 16, Density::DENSE, 3).to_dense();
            let b = sparse_uniform(16, 16, Density::DENSE, 4).to_dense();
            sim.run_gemm(&a, &b).compute_cycles
        };
        let sparse = {
            let a = sparse_uniform(16, 16, Density::new(0.3).unwrap(), 5).to_dense();
            let b = sparse_uniform(16, 16, Density::new(0.3).unwrap(), 6).to_dense();
            sim.run_gemm(&a, &b).compute_cycles
        };
        assert!((sparse as f64) < 0.3 * dense as f64, "{sparse} vs {dense}");
    }

    #[test]
    fn buffer_cliff_serializes_refetches() {
        // Same GEMM, two buffer sizes: overflowing multiplies fetch work
        // and stops it hiding behind compute.
        let a = sparse_uniform(64, 32, Density::new(0.5).unwrap(), 7).to_dense();
        let b = sparse_uniform(32, 64, Density::new(0.5).unwrap(), 8).to_dense();
        let big = EyerissV2Sim::new(8, 1 << 20, 8).run_gemm(&a, &b);
        let small = EyerissV2Sim::new(8, 64, 8).run_gemm(&a, &b);
        assert!(big.fits_buffer);
        assert!(!small.fits_buffer);
        assert!(small.total_cycles() > big.total_cycles());
        assert!(small.fetch_cycles > big.fetch_cycles);
        assert!(big.result.approx_eq(&small.result, 1e-5));
    }

    #[test]
    fn stripe_imbalance_paces_compute() {
        // Row 0 dense, the rest empty: PE 0 does all the work.
        let mut a = Matrix::zeros(8, 8);
        for kk in 0..8 {
            a.set(0, kk, 1.0);
        }
        let b = sparse_uniform(8, 8, Density::DENSE, 9).to_dense();
        let run = EyerissV2Sim::new(8, 1 << 16, 64).run_gemm(&a, &b);
        assert_eq!(run.compute_cycles, 64); // 8 k-entries x 8 outputs on PE 0
        assert_eq!(run.macs, 64);
    }

    #[test]
    fn buffered_fetch_hides_behind_compute() {
        let a = sparse_uniform(32, 32, Density::DENSE, 10).to_dense();
        let b = sparse_uniform(32, 32, Density::DENSE, 11).to_dense();
        let run = EyerissV2Sim::new(4, 1 << 20, 4).run_gemm(&a, &b);
        assert!(run.fits_buffer);
        // Compute dominates: total == compute.
        assert_eq!(run.total_cycles(), run.compute_cycles.max(run.fetch_cycles));
    }
}
