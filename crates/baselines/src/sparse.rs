//! Analytic models of the sparse accelerators compared in Fig. 14 /
//! Table III, normalized to a common PE count.
//!
//! Each model charges the latency terms implied by the design's published
//! microarchitecture. The coefficients are coarse by necessity (the paper
//! itself models these designs analytically after extending them from
//! convolution to GEMM), but each design's *distinguishing bottleneck* —
//! the row of Table III — is structural, not a fudge factor:
//!
//! | Design | exploits | bottleneck modeled |
//! |---|---|---|
//! | EIE | act + weight sparsity | serial activation broadcast; inter-PE output network |
//! | SCNN | act + weight sparsity | cartesian-product scatter: output-crossbar bank conflicts, conv-shaped mapping overhead |
//! | OuterSPACE | act + weight sparsity | outer-product merge phase dominates |
//! | Eyeriss v2 | act + weight sparsity | wins when both operands fit its SRAM; heavy re-fetch otherwise |
//! | Packed Systolic | weight sparsity (structured packing) | column-combining caps at 4x; activations dense |
//! | Cambricon-X | weight sparsity only | activations dense; per-PE indexing overhead |

use crate::GemmAccelerator;
use sigma_core::model::GemmProblem;
use sigma_core::CycleStats;

/// The sparse-accelerator baselines of Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SparseAcceleratorKind {
    /// EIE (Han et al., ISCA 2016).
    Eie,
    /// SCNN (Parashar et al., ISCA 2017).
    Scnn,
    /// OuterSPACE (Pal et al., HPCA 2018).
    OuterSpace,
    /// Eyeriss v2 (Chen et al., JETCAS 2019).
    EyerissV2,
    /// Packed systolic / column combining (Kung et al., ASPLOS 2019).
    PackedSystolic,
    /// Cambricon-X (Zhang et al., MICRO 2016).
    CambriconX,
}

impl SparseAcceleratorKind {
    /// All baselines in Fig. 14's order.
    pub const ALL: [SparseAcceleratorKind; 6] = [
        SparseAcceleratorKind::Eie,
        SparseAcceleratorKind::Scnn,
        SparseAcceleratorKind::OuterSpace,
        SparseAcceleratorKind::EyerissV2,
        SparseAcceleratorKind::PackedSystolic,
        SparseAcceleratorKind::CambriconX,
    ];

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SparseAcceleratorKind::Eie => "EIE",
            SparseAcceleratorKind::Scnn => "SCNN",
            SparseAcceleratorKind::OuterSpace => "OuterSPACE",
            SparseAcceleratorKind::EyerissV2 => "Eyeriss v2",
            SparseAcceleratorKind::PackedSystolic => "Packed Systolic",
            SparseAcceleratorKind::CambriconX => "Cambricon-X",
        }
    }

    /// `true` if the design can skip zeros in *both* operands.
    #[must_use]
    pub fn exploits_both_sparsities(&self) -> bool {
        !matches!(self, SparseAcceleratorKind::PackedSystolic | SparseAcceleratorKind::CambriconX)
    }
}

impl std::fmt::Display for SparseAcceleratorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A sparse accelerator instance with a fixed PE budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseAccelerator {
    kind: SparseAcceleratorKind,
    pes: usize,
}

impl SparseAccelerator {
    /// On-chip operand capacity (words) assumed for Eyeriss v2's win
    /// condition: its per-PE scratchpads plus global buffers can pin both
    /// operands of modest GEMMs.
    pub const EYERISS_BUFFER_WORDS: usize = 1 << 20;

    /// Creates an instance with the given PE count (the paper uses 16384
    /// everywhere).
    ///
    /// # Panics
    ///
    /// Panics if `pes == 0`.
    #[must_use]
    pub fn new(kind: SparseAcceleratorKind, pes: usize) -> Self {
        assert!(pes > 0, "PE count must be non-zero");
        Self { kind, pes }
    }

    /// The design kind.
    #[must_use]
    pub fn kind(&self) -> SparseAcceleratorKind {
        self.kind
    }

    fn simulate_cycles(&self, p: &GemmProblem) -> (f64, f64, f64) {
        let pes = self.pes as f64;
        let (m, n, k) = (p.shape.m as f64, p.shape.n as f64, p.shape.k as f64);
        let (da, db) = (p.density_a, p.density_b);
        let useful = p.useful_macs();
        match self.kind {
            SparseAcceleratorKind::Eie => {
                // Non-zero activations broadcast over a 64-lane bus; PEs
                // holding matching CSC weight columns work in parallel
                // with ~1.25x static-partitioning imbalance. Every output
                // then funnels through the inter-PE accumulation network
                // (8 results/cycle at this scale) — the bottleneck the
                // paper calls out ("inter-PE communication overshadows
                // the memory benefits").
                let broadcast = da * m * k / 64.0;
                let compute = useful * 1.25 / pes;
                let output_net = m * n / 8.0;
                (0.0, broadcast.max(compute) + output_net, 0.0)
            }
            SparseAcceleratorKind::Scnn => {
                // Cartesian-product multiplies are perfectly sparse, but
                // every partial product crosses the output crossbar into
                // accumulator banks. On GEMM (= 1x1 conv with FP32
                // outputs) bank conflicts and the conv-shaped front end
                // sustain ~15% of the multiplier pool (the paper:
                // "designed for conv... extended to GEMM").
                let multiplies = useful / (pes * 0.5);
                let scatter = useful / (pes * 0.15);
                (0.0, multiplies.max(scatter), 0.0)
            }
            SparseAcceleratorKind::OuterSpace => {
                // Outer-product: multiply phase is sparse-perfect; the
                // merge (sort + accumulate partial products) phase
                // sustains ~1/4 of the multiply throughput.
                let multiply = useful / pes;
                let merge = useful / (pes * 0.25);
                (0.0, multiply, merge)
            }
            SparseAcceleratorKind::EyerissV2 => {
                // Hierarchical-mesh row-stationary+: both operands sparse,
                // ~70% sustained efficiency when both operands fit on
                // chip; otherwise repeated DRAM refetch of the streamed
                // operand costs ~3x.
                let fits = (m * k + k * n) <= Self::EYERISS_BUFFER_WORDS as f64;
                let eff = if fits { 0.70 } else { 0.70 / 3.0 };
                (0.0, useful / (pes * eff), 0.0)
            }
            SparseAcceleratorKind::PackedSystolic => {
                // Column combining packs sparse weight columns, removing
                // at most 4x of the zeros; activations stay dense. The
                // packed array still pays systolic fill/drain per fold.
                let packed_density = db.max(0.25);
                let issued = m * n * k * packed_density;
                let side = pes.sqrt();
                let folds = ((k * packed_density / side).ceil() * (n / side).ceil()).max(1.0);
                (folds * side, issued / pes, folds * side)
            }
            SparseAcceleratorKind::CambriconX => {
                // Weight sparsity only: zero weights are skipped via
                // per-PE indexing (~15% overhead); dense activations are
                // all fetched and multiplied.
                let issued = m * n * k * db;
                (0.0, issued * 1.15 / pes, 0.0)
            }
        }
    }
}

impl GemmAccelerator for SparseAccelerator {
    fn name(&self) -> String {
        self.kind.name().to_string()
    }

    fn pes(&self) -> usize {
        self.pes
    }

    fn simulate(&self, p: &GemmProblem) -> CycleStats {
        let (load, stream, drain) = self.simulate_cycles(p);
        let useful = p.useful_macs().round() as u128;
        let issued = match self.kind {
            SparseAcceleratorKind::PackedSystolic => {
                (p.shape.macs() as f64 * p.density_b.max(0.25)) as u128
            }
            SparseAcceleratorKind::CambriconX => (p.shape.macs() as f64 * p.density_b) as u128,
            _ => useful,
        };
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        CycleStats {
            loading_cycles: load.round() as u64,
            streaming_cycles: stream.round().max(1.0) as u64,
            add_cycles: drain.round() as u64,
            folds: 1,
            useful_macs: useful,
            issued_macs: issued,
            mapped_nonzeros: 0,
            occupied_slots: 0,
            pes: self.pes as u64,
            sram_reads: 0,
            ..CycleStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_matrix::GemmShape;

    fn sparse_problem() -> GemmProblem {
        // Fig. 14's regime: 80% sparsity on one matrix, 30% on the other.
        GemmProblem::sparse(GemmShape::new(1024, 1024, 1024), 0.7, 0.2)
    }

    #[test]
    fn all_kinds_produce_positive_latency() {
        for kind in SparseAcceleratorKind::ALL {
            let acc = SparseAccelerator::new(kind, 16384);
            let s = acc.simulate(&sparse_problem());
            assert!(s.total_cycles() > 0, "{kind}");
            assert_eq!(acc.pes(), 16384);
        }
    }

    #[test]
    fn weight_only_designs_ignore_activation_sparsity() {
        let shape = GemmShape::new(512, 512, 512);
        for kind in [SparseAcceleratorKind::PackedSystolic, SparseAcceleratorKind::CambriconX] {
            let acc = SparseAccelerator::new(kind, 16384);
            let dense_act = acc.simulate(&GemmProblem::sparse(shape, 1.0, 0.3));
            let sparse_act = acc.simulate(&GemmProblem::sparse(shape, 0.2, 0.3));
            assert_eq!(
                dense_act.total_cycles(),
                sparse_act.total_cycles(),
                "{kind} should not speed up from activation sparsity"
            );
            assert!(!kind.exploits_both_sparsities());
        }
    }

    #[test]
    fn both_sparsity_designs_speed_up_with_either() {
        let shape = GemmShape::new(512, 512, 512);
        for kind in [
            SparseAcceleratorKind::Scnn,
            SparseAcceleratorKind::OuterSpace,
            SparseAcceleratorKind::EyerissV2,
        ] {
            let acc = SparseAccelerator::new(kind, 16384);
            let denser = acc.simulate(&GemmProblem::sparse(shape, 0.8, 0.8));
            let sparser = acc.simulate(&GemmProblem::sparse(shape, 0.2, 0.8));
            assert!(
                sparser.total_cycles() < denser.total_cycles(),
                "{kind} should exploit activation sparsity"
            );
            assert!(kind.exploits_both_sparsities());
        }
    }

    #[test]
    fn eie_broadcast_bound_on_large_activations() {
        let acc = SparseAccelerator::new(SparseAcceleratorKind::Eie, 16384);
        // Large M*K with modest N: the 64-lane activation broadcast floor
        // dominates the parallel compute term.
        let p = GemmProblem::sparse(GemmShape::new(4096, 64, 4096), 0.5, 0.5);
        let s = acc.simulate(&p);
        let broadcast = (0.5 * 4096.0 * 4096.0 / 64.0) as u64;
        assert!(s.total_cycles() >= broadcast);
        // And the broadcast term exceeds what pure compute would need.
        let compute = (p.useful_macs() * 1.25 / 16384.0) as u64;
        assert!(broadcast > compute);
    }

    #[test]
    fn eyeriss_buffer_cliff() {
        let acc = SparseAccelerator::new(SparseAcceleratorKind::EyerissV2, 16384);
        let small = GemmProblem::sparse(GemmShape::new(512, 512, 512), 0.5, 0.5);
        let big = GemmProblem::sparse(GemmShape::new(4096, 4096, 4096), 0.5, 0.5);
        let s_small = acc.simulate(&small);
        let s_big = acc.simulate(&big);
        // Per-MAC cost triples when operands no longer fit.
        let per_small = s_small.total_cycles() as f64 / small.useful_macs();
        let per_big = s_big.total_cycles() as f64 / big.useful_macs();
        assert!(per_big > 2.5 * per_small, "{per_small} vs {per_big}");
    }

    #[test]
    fn outerspace_merge_dominates() {
        let acc = SparseAccelerator::new(SparseAcceleratorKind::OuterSpace, 16384);
        let s = acc.simulate(&sparse_problem());
        assert!(s.add_cycles > s.streaming_cycles, "merge phase should dominate");
    }

    #[test]
    fn names_and_order() {
        assert_eq!(SparseAcceleratorKind::ALL.len(), 6);
        assert_eq!(SparseAcceleratorKind::Eie.to_string(), "EIE");
        assert_eq!(SparseAccelerator::new(SparseAcceleratorKind::Scnn, 4).name(), "SCNN");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_pes_panics() {
        let _ = SparseAccelerator::new(SparseAcceleratorKind::Eie, 0);
    }
}
