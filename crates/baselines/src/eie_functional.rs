//! A functional EIE-style engine (Han et al., ISCA 2016): CSC-compressed
//! stationary weights striped across PEs, non-zero activations broadcast
//! one per cycle, temporal (in-place) accumulation in per-PE output
//! registers.
//!
//! This is the machine the analytic [`crate::SparseAccelerator`] EIE model
//! summarizes; here real values move so we can verify the numerics and
//! ground the model's two structural terms:
//!
//! * the **broadcast bottleneck** — one non-zero activation (column of
//!   `A`) is broadcast per cycle; PEs with no matching weight idle;
//! * **load imbalance** — output rows are statically striped over PEs, so
//!   the busiest PE sets the pace of each broadcast.
//!
//! For a GEMM `C = A x B` the engine keeps `B` (weights) stationary in
//! CSC form striped row-cyclically... more precisely: output columns `n`
//! are striped across PEs; PE `p` owns every column `n ≡ p (mod P)` and
//! stores the non-zeros of `B[:, n]` indexed by `k`. When activation
//! `A[m, k]` is broadcast, each PE multiplies it with its stored
//! non-zeros of row `k` and accumulates into its output registers.

use sigma_matrix::Matrix;

/// The outcome of a functional EIE run.
#[derive(Debug, Clone, PartialEq)]
pub struct EieRun {
    /// The computed product.
    pub result: Matrix,
    /// Broadcast cycles (one per non-zero activation, stretched when the
    /// busiest PE needs multiple cycles to consume its matches).
    pub cycles: u64,
    /// Total multiply-accumulates performed (all useful by construction).
    pub macs: u64,
    /// The pace-setting imbalance: total cycles divided by the ideal
    /// (perfectly balanced) cycles.
    pub imbalance: f64,
}

/// A functional EIE-style sparse engine with `pes` processing elements,
/// each able to perform `macs_per_cycle` multiply-accumulates per cycle
/// against a broadcast activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EieSim {
    pes: usize,
    macs_per_cycle: usize,
}

impl EieSim {
    /// Creates the engine.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    #[must_use]
    pub fn new(pes: usize, macs_per_cycle: usize) -> Self {
        assert!(pes > 0 && macs_per_cycle > 0, "parameters must be non-zero");
        Self { pes, macs_per_cycle }
    }

    /// Number of PEs.
    #[must_use]
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// Runs `C = A[MxK] x B[KxN]`, exploiting zeros in both operands
    /// (zero activations are never broadcast; zero weights are never
    /// stored).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    #[must_use]
    pub fn run_gemm(&self, a: &Matrix, b: &Matrix) -> EieRun {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let (m, k, n) = (a.rows(), a.cols(), b.cols());

        // Stationary weights: per PE, per contraction row k, the list of
        // (owned-column local index, weight) non-zeros.
        let mut owned: Vec<Vec<Vec<(usize, f32)>>> = vec![vec![Vec::new(); k]; self.pes];
        for nn in 0..n {
            let pe = nn % self.pes;
            for (kk, bucket) in owned[pe].iter_mut().enumerate() {
                let w = b.get(kk, nn);
                if w != 0.0 {
                    bucket.push((nn, w));
                }
            }
        }

        let mut out = Matrix::zeros(m, n);
        let mut cycles = 0u64;
        let mut macs = 0u64;
        let mut ideal_work = 0u64;

        // Stream activations row by row (one output row at a time), and
        // within a row broadcast each non-zero activation.
        for mm in 0..m {
            for kk in 0..k {
                let act = a.get(mm, kk);
                if act == 0.0 {
                    continue; // activation sparsity: skipped entirely
                }
                // Each PE consumes its matches; the busiest PE sets the
                // number of cycles this broadcast occupies.
                let mut busiest = 0usize;
                let mut total = 0usize;
                for pe in &owned {
                    let matches = &pe[kk];
                    busiest = busiest.max(matches.len());
                    total += matches.len();
                    for &(nn, w) in matches {
                        out.set(mm, nn, out.get(mm, nn) + act * w);
                    }
                }
                macs += total as u64;
                ideal_work += total as u64;
                cycles += (busiest.div_ceil(self.macs_per_cycle) as u64).max(1);
            }
        }

        let ideal_cycles = ideal_work.div_ceil((self.pes * self.macs_per_cycle) as u64).max(1);
        EieRun { result: out, cycles, macs, imbalance: cycles as f64 / ideal_cycles as f64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_matrix::gen::{sparse_uniform, Density};

    #[test]
    fn computes_correct_product() {
        let sim = EieSim::new(4, 1);
        let a = sparse_uniform(6, 8, Density::new(0.4).unwrap(), 1).to_dense();
        let b = sparse_uniform(8, 6, Density::new(0.3).unwrap(), 2).to_dense();
        let run = sim.run_gemm(&a, &b);
        assert!(run.result.approx_eq(&a.matmul(&b), 1e-4));
    }

    #[test]
    fn only_useful_macs_performed() {
        let sim = EieSim::new(4, 1);
        let a = sparse_uniform(5, 6, Density::new(0.5).unwrap(), 3).to_dense();
        let b = sparse_uniform(6, 5, Density::new(0.5).unwrap(), 4).to_dense();
        let run = sim.run_gemm(&a, &b);
        // Exact useful-pair count.
        let mut expected = 0u64;
        for m in 0..5 {
            for n in 0..5 {
                for k in 0..6 {
                    if a.get(m, k) != 0.0 && b.get(k, n) != 0.0 {
                        expected += 1;
                    }
                }
            }
        }
        assert_eq!(run.macs, expected);
    }

    #[test]
    fn broadcast_is_the_floor() {
        // With many PEs and few output columns, each broadcast occupies
        // one cycle regardless: cycles == number of non-zero activations.
        let sim = EieSim::new(64, 1);
        let a = sparse_uniform(10, 12, Density::new(0.5).unwrap(), 5).to_dense();
        let b = sparse_uniform(12, 4, Density::DENSE, 6).to_dense();
        let run = sim.run_gemm(&a, &b);
        assert_eq!(run.cycles, a.nnz() as u64);
        // Most PEs idle: imbalance well above 1.
        assert!(run.imbalance > 4.0, "imbalance {}", run.imbalance);
    }

    #[test]
    fn zero_activations_are_skipped() {
        let sim = EieSim::new(4, 1);
        let dense_a = sparse_uniform(8, 8, Density::DENSE, 7).to_dense();
        let sparse_a = sparse_uniform(8, 8, Density::new(0.25).unwrap(), 8).to_dense();
        let b = sparse_uniform(8, 8, Density::new(0.5).unwrap(), 9).to_dense();
        let dense_run = sim.run_gemm(&dense_a, &b);
        let sparse_run = sim.run_gemm(&sparse_a, &b);
        assert!(sparse_run.cycles < dense_run.cycles / 2);
    }

    #[test]
    fn wider_pes_amortize_matches() {
        let a = sparse_uniform(6, 6, Density::DENSE, 10).to_dense();
        let b = sparse_uniform(6, 64, Density::DENSE, 11).to_dense();
        // 2 PEs x 1 MAC: 32 matches per PE per broadcast -> 32 cycles each.
        let slow = EieSim::new(2, 1).run_gemm(&a, &b);
        let fast = EieSim::new(2, 8).run_gemm(&a, &b);
        assert_eq!(slow.cycles, 36 * 32);
        assert_eq!(fast.cycles, 36 * 4);
        assert!(fast.result.approx_eq(&slow.result, 1e-4));
    }

    #[test]
    fn functional_cycles_track_analytic_broadcast_term() {
        // The analytic EIE model charges da*M*K/64 broadcasts (64-lane
        // bus); the functional engine with 1 broadcast/cycle matches the
        // un-laned count — the structural term, up to the lane constant.
        let a = sparse_uniform(32, 32, Density::new(0.5).unwrap(), 12).to_dense();
        let b = sparse_uniform(32, 16, Density::new(0.5).unwrap(), 13).to_dense();
        let run = EieSim::new(256, 1).run_gemm(&a, &b);
        assert_eq!(run.cycles, a.nnz() as u64);
    }
}
