//! A *functional* weight-stationary systolic array: real values move
//! through real PE registers cycle by cycle, exactly like the TPU-style
//! baseline the analytic model summarizes.
//!
//! Each PE holds one stationary weight; activations enter at the left
//! edge with a one-cycle skew per row and propagate rightward; partial
//! sums propagate downward, accumulating one `a·w` per row; finished
//! sums fall out of the bottom edge. GEMMs larger than the array run as
//! fold tiles over (K, N), with K-folds accumulating into the output.
//!
//! The simulator returns both the numeric product (verified against the
//! reference GEMM in tests) and the exact cycle count, which matches the
//! SCALE-sim-style analytic formula `2R + C + M − 2` per fold — that
//! agreement is itself a test, tying the analytic baseline model to real
//! hardware behavior.

use sigma_matrix::Matrix;

/// A functional `R x C` weight-stationary systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystolicSim {
    rows: usize,
    cols: usize,
}

/// The outcome of a functional systolic run.
#[derive(Debug, Clone, PartialEq)]
pub struct SystolicRun {
    /// The computed product.
    pub result: Matrix,
    /// Total cycles: per fold, weight load (`R`) plus the streaming
    /// pipeline until the last output drains.
    pub cycles: u64,
    /// Number of (K, N) fold tiles executed.
    pub folds: u64,
}

impl SystolicSim {
    /// Creates the array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        Self { rows, cols }
    }

    /// Array rows (the contraction direction).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns (the output-width direction).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Runs `C = A[MxK] x B[KxN]` with `B` stationary, folding over
    /// `(K, N)` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    #[must_use]
    pub fn run_gemm(&self, a: &Matrix, b: &Matrix) -> SystolicRun {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Matrix::zeros(m, n);
        let mut cycles = 0u64;
        let mut folds = 0u64;

        let mut k0 = 0;
        while k0 < k {
            let kr = (k - k0).min(self.rows);
            let mut n0 = 0;
            while n0 < n {
                let nc = (n - n0).min(self.cols);
                cycles += self.run_fold(a, b, &mut out, k0, kr, n0, nc);
                folds += 1;
                n0 += nc;
            }
            k0 += kr;
        }
        SystolicRun { result: out, cycles, folds }
    }

    /// Executes one stationary fold and returns its cycle count.
    #[allow(clippy::too_many_arguments)]
    fn run_fold(
        &self,
        a: &Matrix,
        b: &Matrix,
        out: &mut Matrix,
        k0: usize,
        kr: usize,
        n0: usize,
        nc: usize,
    ) -> u64 {
        let m = a.rows();
        // Weight load: store-and-forward down all R rows.
        let mut cycles = self.rows as u64;

        // Stationary weights for this tile.
        let mut w = vec![vec![0.0f32; nc]; kr];
        for (r, row) in w.iter_mut().enumerate() {
            for (c, val) in row.iter_mut().enumerate() {
                *val = b.get(k0 + r, n0 + c);
            }
        }

        // PE pipeline registers.
        let mut a_reg = vec![vec![0.0f32; nc]; kr];
        let mut p_reg = vec![vec![0.0f32; nc]; kr];
        let mut collected = 0usize;
        let total_outputs = m * nc;
        let mut t = 0u64;
        // Activation m enters row r at cycle m + r; the finished psum for
        // (m, column c) leaves the bottom PE's register at m + kr + c.
        while collected < total_outputs {
            // Compute this cycle's register updates from the previous
            // state (reverse order so reads see time t-1 values).
            let mut new_a = vec![vec![0.0f32; nc]; kr];
            let mut new_p = vec![vec![0.0f32; nc]; kr];
            for r in 0..kr {
                for c in 0..nc {
                    let a_in = if c == 0 {
                        // Left edge: skewed feed.
                        let tt = t as i64 - r as i64;
                        if tt >= 0 && (tt as usize) < m {
                            a.get(tt as usize, k0 + r)
                        } else {
                            0.0
                        }
                    } else {
                        a_reg[r][c - 1]
                    };
                    let p_in = if r == 0 { 0.0 } else { p_reg[r - 1][c] };
                    new_a[r][c] = a_in;
                    new_p[r][c] = p_in + a_in * w[r][c];
                }
            }
            a_reg = new_a;
            p_reg = new_p;
            t += 1;
            // After the update at cycle t-1 -> t, the bottom register of
            // column c holds the finished psum for activation row
            // m = t - kr - c when that index is valid.
            for (c, bottom) in p_reg[kr - 1].iter().enumerate() {
                let mm = t as i64 - kr as i64 - c as i64;
                if mm >= 0 && (mm as usize) < m {
                    let mm = mm as usize;
                    out.set(mm, n0 + c, out.get(mm, n0 + c) + bottom);
                    collected += 1;
                }
            }
        }
        cycles += t;
        cycles
    }

    /// The SCALE-sim-style analytic cycle count for one fold of this
    /// array with `streamed` activation rows: `R + (streamed − 1) +
    /// (kr − 1) + (nc − 1) + 1`.
    #[must_use]
    pub fn analytic_fold_cycles(&self, kr: usize, nc: usize, streamed: usize) -> u64 {
        self.rows as u64 + (streamed as u64 - 1) + (kr as u64 - 1) + (nc as u64 - 1) + 1
    }

    /// Runs `C = A[MxK] x B[KxN]` in the *output-stationary* dataflow:
    /// each PE owns one output element, `A` streams from the left
    /// (row-skewed), `B` from the top (column-skewed), and finished
    /// outputs shift down their columns to drain. Folds tile `(M, N)`.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    #[must_use]
    pub fn run_gemm_output_stationary(&self, a: &Matrix, b: &Matrix) -> SystolicRun {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Matrix::zeros(m, n);
        let mut cycles = 0u64;
        let mut folds = 0u64;

        let mut m0 = 0;
        while m0 < m {
            let mr = (m - m0).min(self.rows);
            let mut n0 = 0;
            while n0 < n {
                let nc = (n - n0).min(self.cols);
                cycles += self.run_fold_os(a, b, &mut out, m0, mr, n0, nc, k);
                folds += 1;
                n0 += nc;
            }
            m0 += mr;
        }
        SystolicRun { result: out, cycles, folds }
    }

    /// One output-stationary fold; returns its cycle count.
    #[allow(clippy::too_many_arguments)]
    fn run_fold_os(
        &self,
        a: &Matrix,
        b: &Matrix,
        out: &mut Matrix,
        m0: usize,
        mr: usize,
        n0: usize,
        nc: usize,
        k: usize,
    ) -> u64 {
        // Pipeline registers: a travels right, b travels down, psums stay.
        let mut a_reg = vec![vec![0.0f32; nc]; mr];
        let mut b_reg = vec![vec![0.0f32; nc]; mr];
        let mut acc = vec![vec![0.0f32; nc]; mr];

        // PE (r, c) receives a[m0+r][k'] and b[k'][n0+c] simultaneously at
        // cycle k' + r + c; the last PE finishes at (k-1) + (mr-1) + (nc-1).
        let stream_cycles = (k as u64) + (mr as u64 - 1) + (nc as u64 - 1);
        for t in 0..stream_cycles {
            let mut new_a = vec![vec![0.0f32; nc]; mr];
            let mut new_b = vec![vec![0.0f32; nc]; mr];
            for r in 0..mr {
                for c in 0..nc {
                    let a_in = if c == 0 {
                        let kk = t as i64 - r as i64;
                        if kk >= 0 && (kk as usize) < k {
                            a.get(m0 + r, kk as usize)
                        } else {
                            0.0
                        }
                    } else {
                        a_reg[r][c - 1]
                    };
                    let b_in = if r == 0 {
                        let kk = t as i64 - c as i64;
                        if kk >= 0 && (kk as usize) < k {
                            b.get(kk as usize, n0 + c)
                        } else {
                            0.0
                        }
                    } else {
                        b_reg[r - 1][c]
                    };
                    acc[r][c] += a_in * b_in;
                    new_a[r][c] = a_in;
                    new_b[r][c] = b_in;
                }
            }
            a_reg = new_a;
            b_reg = new_b;
        }
        for (r, row) in acc.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                out.set(m0 + r, n0 + c, out.get(m0 + r, n0 + c) + v);
            }
        }
        // Drain: outputs shift down the columns (mr cycles).
        stream_cycles + mr as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_matrix::gen::{dense_uniform, sparse_uniform, Density};

    #[test]
    fn single_fold_correct_and_timed() {
        let sim = SystolicSim::new(4, 4);
        let a = dense_uniform(6, 4, 1);
        let b = dense_uniform(4, 4, 2);
        let run = sim.run_gemm(&a, &b);
        assert!(run.result.approx_eq(&a.matmul(&b), 1e-4));
        assert_eq!(run.folds, 1);
        // 2R + C + M - 2 = 8 + 4 + 6 - 2 = 16.
        assert_eq!(run.cycles, 16);
        assert_eq!(run.cycles, sim.analytic_fold_cycles(4, 4, 6));
    }

    #[test]
    fn multi_fold_accumulates_k_tiles() {
        let sim = SystolicSim::new(4, 4);
        let a = dense_uniform(5, 10, 3); // K = 10: three K-folds
        let b = dense_uniform(10, 7, 4); // N = 7: two N-folds
        let run = sim.run_gemm(&a, &b);
        assert!(run.result.approx_eq(&a.matmul(&b), 1e-3));
        assert_eq!(run.folds, 6);
    }

    #[test]
    fn sparse_inputs_still_correct_but_not_faster() {
        let sim = SystolicSim::new(4, 4);
        let a = sparse_uniform(6, 8, Density::new(0.3).unwrap(), 5).to_dense();
        let b = sparse_uniform(8, 6, Density::new(0.3).unwrap(), 6).to_dense();
        let dense_a = dense_uniform(6, 8, 7);
        let dense_b = dense_uniform(8, 6, 8);
        let sparse_run = sim.run_gemm(&a, &b);
        let dense_run = sim.run_gemm(&dense_a, &dense_b);
        assert!(sparse_run.result.approx_eq(&a.matmul(&b), 1e-3));
        // The rigid array cannot skip zeros: identical cycle count.
        assert_eq!(sparse_run.cycles, dense_run.cycles);
    }

    #[test]
    fn functional_matches_analytic_model_totals() {
        // The functional machine and the analytic SystolicArray model
        // agree on total cycles for single-tile-per-fold GEMMs.
        use crate::systolic::SystolicArray;
        use sigma_core::model::GemmProblem;
        use sigma_matrix::GemmShape;
        let sim = SystolicSim::new(8, 8);
        let model = SystolicArray::new(8, 8);
        for (m, k, n) in [(8usize, 8usize, 8usize), (12, 8, 8), (20, 8, 8)] {
            let a = dense_uniform(m, k, 11);
            let b = dense_uniform(k, n, 12);
            let run = sim.run_gemm(&a, &b);
            let est =
                model.simulate_weight_stationary(&GemmProblem::dense(GemmShape::new(m, n, k)));
            assert_eq!(run.cycles, est.total_cycles(), "functional vs analytic on {m}-{n}-{k}");
        }
    }

    #[test]
    fn output_stationary_correct_single_fold() {
        let sim = SystolicSim::new(4, 4);
        let a = dense_uniform(4, 6, 21);
        let b = dense_uniform(6, 4, 22);
        let run = sim.run_gemm_output_stationary(&a, &b);
        assert!(run.result.approx_eq(&a.matmul(&b), 1e-4));
        assert_eq!(run.folds, 1);
        // K + (mr-1) + (nc-1) streaming + mr drain = 6 + 3 + 3 + 4.
        assert_eq!(run.cycles, 16);
    }

    #[test]
    fn output_stationary_folds_over_outputs() {
        let sim = SystolicSim::new(4, 4);
        let a = dense_uniform(10, 5, 23);
        let b = dense_uniform(5, 9, 24);
        let run = sim.run_gemm_output_stationary(&a, &b);
        assert!(run.result.approx_eq(&a.matmul(&b), 1e-3));
        assert_eq!(run.folds, 3 * 3);
    }

    #[test]
    fn dataflow_choice_depends_on_shape() {
        let sim = SystolicSim::new(8, 8);
        // Long-K GEMM: output-stationary avoids K-folding entirely.
        let a = dense_uniform(8, 64, 25);
        let b = dense_uniform(64, 8, 26);
        let ws = sim.run_gemm(&a, &b);
        let os = sim.run_gemm_output_stationary(&a, &b);
        assert!(os.result.approx_eq(&ws.result, 1e-2));
        assert!(os.cycles < ws.cycles, "OS {} should beat WS {} on long-K", os.cycles, ws.cycles);
        // Large-M, small-K: weight-stationary wins (one weight load, long
        // stream vs many output tiles).
        let a2 = dense_uniform(64, 8, 27);
        let b2 = dense_uniform(8, 8, 28);
        let ws2 = sim.run_gemm(&a2, &b2);
        let os2 = sim.run_gemm_output_stationary(&a2, &b2);
        assert!(ws2.cycles < os2.cycles, "WS {} should beat OS {}", ws2.cycles, os2.cycles);
    }

    #[test]
    fn identity_weights_pass_inputs_through() {
        let sim = SystolicSim::new(4, 4);
        let a = dense_uniform(3, 4, 9);
        let run = sim.run_gemm(&a, &Matrix::identity(4));
        assert!(run.result.approx_eq(&a, 1e-6));
    }

    #[test]
    fn irregular_small_tile_costs_like_full_array_load() {
        // A 2-column stationary tile still pays the full R-cycle load:
        // the rigidity SIGMA's O(1) loading avoids.
        let sim = SystolicSim::new(8, 8);
        let a = dense_uniform(4, 8, 13);
        let b = dense_uniform(8, 2, 14);
        let run = sim.run_gemm(&a, &b);
        assert!(run.cycles >= 8, "must include the 8-cycle weight load");
        assert!(run.result.approx_eq(&a.matmul(&b), 1e-4));
    }
}
