//! Weight-stationary systolic array (TPU-like), modeled with SCALE-sim's
//! fold/skew arithmetic.
//!
//! An `R x C` array keeps one operand stationary and streams the other
//! with a diagonal skew. Per stationary fold the well-known
//! weight-stationary cycle count is `2R + C + M' − 2` for `M'` streamed
//! rows: `R` cycles to load weights (store-and-forward down the rows),
//! `M' + R − 1` cycles of skewed streaming, and `C − 1` cycles of drain
//! across the columns. Folds arise when the stationary operand exceeds
//! the array: `ceil(K/R) · ceil(N/C)` of them for a `KN`-stationary
//! mapping.
//!
//! Rigidity has two costs SIGMA avoids (Fig. 4): a stationary tile
//! smaller than the physical array strands PEs (irregularity), and zeros
//! must be mapped like any other value (no sparsity support).

use crate::GemmAccelerator;
use sigma_core::model::GemmProblem;
use sigma_core::CycleStats;

/// An `R x C` weight-stationary systolic array.
///
/// ```
/// use sigma_baselines::{GemmAccelerator, SystolicArray};
/// use sigma_core::model::GemmProblem;
/// use sigma_matrix::GemmShape;
///
/// let tpu = SystolicArray::new(128, 128);
/// let stats = tpu.simulate(&GemmProblem::dense(GemmShape::new(128, 128, 128)));
/// assert_eq!(stats.folds, 1);
/// assert_eq!(stats.stationary_utilization(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
}

impl SystolicArray {
    /// Creates an array with `rows x cols` MACs.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        Self { rows, cols }
    }

    /// Array rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Simulates with the `KN` operand stationary (`K` on rows, `N` on
    /// columns), streaming `M` rows of `MK`.
    #[must_use]
    pub fn simulate_weight_stationary(&self, p: &GemmProblem) -> CycleStats {
        self.simulate_mapping(p.shape.k, p.shape.n, p.shape.m, p.density_b, p)
    }

    /// Simulates with the `MK` operand stationary (`K` on rows, `M` on
    /// columns), streaming `N` columns of `KN`.
    #[must_use]
    pub fn simulate_input_stationary(&self, p: &GemmProblem) -> CycleStats {
        self.simulate_mapping(p.shape.k, p.shape.m, p.shape.n, p.density_a, p)
    }

    /// Simulates all four stationary mappings — `KN` or `MK` stationary,
    /// contraction on rows or on columns — and returns the fastest, as the
    /// paper's evaluation does ("Either the MK or KN matrix is kept
    /// stationary"; Fig. 12a's 512x32 array wins 2048-4096-32 because
    /// K = 32 aligns with its 32-wide dimension).
    #[must_use]
    pub fn simulate_best(&self, p: &GemmProblem) -> CycleStats {
        let [first, rest @ ..] = [
            self.simulate_weight_stationary(p),
            self.simulate_input_stationary(p),
            // Transposed orientations: contraction on the column dimension.
            self.simulate_mapping(p.shape.n, p.shape.k, p.shape.m, p.density_b, p),
            self.simulate_mapping(p.shape.m, p.shape.k, p.shape.n, p.density_a, p),
        ];
        rest.into_iter()
            .fold(first, |best, c| if c.total_cycles() < best.total_cycles() { c } else { best })
    }

    /// Core SCALE-sim arithmetic for a stationary operand of
    /// `stat_rows x stat_cols` (mapped onto `R x C`) and `streamed` moving
    /// vectors.
    fn simulate_mapping(
        &self,
        stat_rows: usize,
        stat_cols: usize,
        streamed: usize,
        d_stat: f64,
        p: &GemmProblem,
    ) -> CycleStats {
        let row_folds = stat_rows.div_ceil(self.rows) as u64;
        let col_folds = stat_cols.div_ceil(self.cols) as u64;
        let folds = row_folds * col_folds;

        // Per fold: R-cycle weight load; skewed stream of `streamed` rows
        // (fill overlaps with compute, so streaming latency is the issue
        // rate `streamed` plus the R-1 skew); C-1 drain plus the R-deep
        // column accumulation ripple.
        let loading = folds * self.rows as u64;
        let streaming = folds * (streamed as u64 + self.rows as u64 - 1);
        let add = folds * (self.cols as u64 - 1).max(1);

        // Occupancy: each fold maps the actual sub-tile, which may be
        // smaller than the array at the edges.
        let mut occupied: u64 = 0;
        for fr in 0..row_folds {
            let r = (stat_rows as u64 - fr * self.rows as u64).min(self.rows as u64);
            for fc in 0..col_folds {
                let c = (stat_cols as u64 - fc * self.cols as u64).min(self.cols as u64);
                occupied += r * c;
            }
        }
        let slots = folds * (self.rows * self.cols) as u64;

        // Sparsity: a rigid array maps zeros, so the non-zero fraction of
        // the occupied tiles is just the stationary operand's density.
        let issued = p.shape.macs();
        let useful = (p.useful_macs()).round() as u128;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let mapped_nonzeros = (occupied as f64 * d_stat).round() as u64;

        CycleStats {
            loading_cycles: loading,
            streaming_cycles: streaming,
            add_cycles: add,
            folds,
            useful_macs: useful,
            issued_macs: issued,
            mapped_nonzeros,
            // A rigid array occupies the whole fold footprint: stranded
            // PEs and mapped zeros both count against utilization.
            occupied_slots: slots,
            pes: (self.rows * self.cols) as u64,
            sram_reads: (stat_rows * stat_cols) as u64 + folds * (streamed * self.rows) as u64,
            ..CycleStats::default()
        }
    }
}

impl GemmAccelerator for SystolicArray {
    fn name(&self) -> String {
        format!("TPU {}x{}", self.rows, self.cols)
    }

    fn pes(&self) -> usize {
        self.rows * self.cols
    }

    fn simulate(&self, problem: &GemmProblem) -> CycleStats {
        self.simulate_best(problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_matrix::GemmShape;

    #[test]
    fn dense_regular_single_fold() {
        let tpu = SystolicArray::new(128, 128);
        let s = tpu.simulate_weight_stationary(&GemmProblem::dense(GemmShape::new(128, 128, 128)));
        assert_eq!(s.folds, 1);
        assert_eq!(s.loading_cycles, 128);
        assert_eq!(s.streaming_cycles, 128 + 127);
        assert_eq!(s.stationary_utilization(), 1.0);
        // SCALE-sim's 2R + C + M - 2 total.
        assert_eq!(s.total_cycles(), 2 * 128 + 128 + 128 - 2);
    }

    #[test]
    fn irregular_tile_strands_pes() {
        // The paper's example: a 16-wide stationary dimension on a 128x128
        // array leaves 87.5% of columns idle.
        let tpu = SystolicArray::new(128, 128);
        let p = GemmProblem::dense(GemmShape::new(1024, 16, 128));
        let s = tpu.simulate_weight_stationary(&p);
        assert_eq!(s.folds, 1);
        assert!((s.stationary_utilization() - 16.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn sparsity_cannot_be_skipped() {
        let tpu = SystolicArray::new(32, 32);
        let dense = tpu.simulate_weight_stationary(&GemmProblem::dense(GemmShape::new(64, 64, 64)));
        let sparse = tpu.simulate_weight_stationary(&GemmProblem::sparse(
            GemmShape::new(64, 64, 64),
            0.2,
            0.2,
        ));
        // Same latency regardless of sparsity; only useful work drops.
        assert_eq!(dense.total_cycles(), sparse.total_cycles());
        assert!(sparse.useful_macs < dense.useful_macs);
        assert!(sparse.overall_efficiency() < dense.overall_efficiency());
        assert!((sparse.stationary_utilization() - 0.2).abs() < 0.02);
    }

    #[test]
    fn folds_multiply_latency() {
        let tpu = SystolicArray::new(16, 16);
        let one = tpu.simulate_weight_stationary(&GemmProblem::dense(GemmShape::new(8, 16, 16)));
        let four = tpu.simulate_weight_stationary(&GemmProblem::dense(GemmShape::new(8, 32, 32)));
        assert_eq!(one.folds, 1);
        assert_eq!(four.folds, 4);
        assert!(four.total_cycles() > 3 * one.total_cycles());
    }

    #[test]
    fn aspect_ratio_alignment_matters() {
        // K=32 wastes a 128x128 but aligns with 512x32's columns when N
        // maps to rows... (Fig. 12a's 2048-4096-32 example: the 512x32
        // array wins).
        let square = SystolicArray::new(128, 128);
        let skinny = SystolicArray::new(512, 32);
        let p = GemmProblem::dense(GemmShape::new(2048, 4096, 32));
        let sq = square.simulate_best(&p);
        let sk = skinny.simulate_best(&p);
        assert!(
            sk.total_cycles() < sq.total_cycles(),
            "512x32 ({}) should beat 128x128 ({}) on 2048-4096-32",
            sk.total_cycles(),
            sq.total_cycles()
        );
    }

    #[test]
    fn best_mapping_picks_min() {
        let tpu = SystolicArray::new(64, 64);
        let p = GemmProblem::dense(GemmShape::new(512, 16, 64));
        let best = tpu.simulate_best(&p).total_cycles();
        let ws = tpu.simulate_weight_stationary(&p).total_cycles();
        let is = tpu.simulate_input_stationary(&p).total_cycles();
        assert_eq!(best, ws.min(is));
    }

    #[test]
    fn accelerator_trait_name() {
        let tpu = SystolicArray::new(128, 128);
        assert_eq!(tpu.name(), "TPU 128x128");
        assert_eq!(tpu.pes(), 16384);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = SystolicArray::new(0, 4);
    }
}
