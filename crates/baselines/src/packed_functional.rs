//! Column combining (Kung et al., ASPLOS 2019) — the "Packed Systolic"
//! baseline, implemented as a real packing algorithm plus execution on
//! the functional systolic array.
//!
//! The idea: a sparse weight matrix's columns are greedily *combined*
//! into groups whose non-zero patterns (mostly) don't collide on the
//! same row; each group occupies a single physical systolic column whose
//! PEs carry per-weight column indices. Combining removes zero rows of
//! compute but only works up to a packing factor (the paper caps the
//! benefit at ~4x, and conflicts force pruning or serialization — here
//! we take the standard "prune conflicts" variant, which makes the
//! computation *approximate* unless the column patterns are disjoint).
//!
//! This grounds the analytic `SparseAcceleratorKind::PackedSystolic`
//! model: weight-sparsity-only benefit, capped packing, activations
//! dense.

use sigma_matrix::Matrix;

/// The result of packing a sparse matrix's columns.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnPacking {
    /// `groups[g]` lists the original column indices packed into
    /// physical column `g`.
    pub groups: Vec<Vec<usize>>,
    /// Non-zeros dropped because two combined columns collided on a row
    /// (the lossy part of column combining; training recovers these).
    pub conflicts_pruned: usize,
    /// Total non-zeros retained.
    pub retained: usize,
}

impl ColumnPacking {
    /// Packing factor achieved: original columns per physical column.
    #[must_use]
    pub fn packing_factor(&self) -> f64 {
        if self.groups.is_empty() {
            return 1.0;
        }
        let total: usize = self.groups.iter().map(Vec::len).sum();
        total as f64 / self.groups.len() as f64
    }
}

/// Greedily combines the columns of `w` (a `K x N` weight matrix) into
/// groups of at most `max_combine` columns, first-fit by conflict count:
/// a column joins the first group where it collides on fewer than
/// `conflict_budget` rows; colliding entries of the *joining* column are
/// pruned.
#[must_use]
pub fn combine_columns(w: &Matrix, max_combine: usize, conflict_budget: usize) -> ColumnPacking {
    assert!(max_combine >= 1, "max_combine must be at least 1");
    let (k, n) = (w.rows(), w.cols());
    // occupancy[g][r] = true when group g already has a weight on row r.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut occupancy: Vec<Vec<bool>> = Vec::new();
    let mut pruned = 0usize;
    let mut retained = 0usize;

    for col in 0..n {
        let pattern: Vec<usize> = (0..k).filter(|&r| w.get(r, col) != 0.0).collect();
        let mut placed = false;
        for (g, occ) in occupancy.iter_mut().enumerate() {
            if groups[g].len() >= max_combine {
                continue;
            }
            let conflicts = pattern.iter().filter(|&&r| occ[r]).count();
            if conflicts <= conflict_budget {
                for &r in &pattern {
                    if occ[r] {
                        pruned += 1;
                    } else {
                        occ[r] = true;
                        retained += 1;
                    }
                }
                groups[g].push(col);
                placed = true;
                break;
            }
        }
        if !placed {
            let mut occ = vec![false; k];
            for &r in &pattern {
                occ[r] = true;
            }
            retained += pattern.len();
            groups.push(vec![col]);
            occupancy.push(occ);
        }
    }
    ColumnPacking { groups, conflicts_pruned: pruned, retained }
}

/// Builds the packed weight matrix (`K x groups`) and the per-PE column
/// index map, then reports the packed GEMM's systolic cost: the packed
/// matrix has `groups.len()` physical columns instead of `N`.
///
/// Returns `(packed_weights, column_of[g][r])` where `column_of[g][r]`
/// is the original output column the PE at `(r, g)` contributes to (or
/// `None` when no weight is packed there).
#[must_use]
pub fn pack_weights(w: &Matrix, packing: &ColumnPacking) -> (Matrix, Vec<Vec<Option<usize>>>) {
    let k = w.rows();
    let g_count = packing.groups.len();
    let mut packed = Matrix::zeros(k, g_count);
    let mut column_of: Vec<Vec<Option<usize>>> = vec![vec![None; k]; g_count];
    for (g, members) in packing.groups.iter().enumerate() {
        for &col in members {
            for (r, slot) in column_of[g].iter_mut().enumerate() {
                let v = w.get(r, col);
                if v != 0.0 && slot.is_none() {
                    packed.set(r, g, v);
                    *slot = Some(col);
                }
            }
        }
    }
    (packed, column_of)
}

/// Runs `C = A x W` on a packed array *functionally*: activations stream
/// densely; each packed column's per-row products scatter to their
/// original output columns. Returns the result (exact when no conflicts
/// were pruned) and the packed column count (the latency driver).
#[must_use]
pub fn run_packed_gemm(a: &Matrix, w: &Matrix, max_combine: usize) -> (Matrix, ColumnPacking) {
    assert_eq!(a.cols(), w.rows(), "inner dimensions must agree");
    let packing = combine_columns(w, max_combine, 0);
    let (_, column_of) = pack_weights(w, &packing);
    let (m, k) = (a.rows(), a.cols());
    let mut out = Matrix::zeros(m, w.cols());
    for (g, col_map) in column_of.iter().enumerate() {
        let _ = g;
        for mm in 0..m {
            for (r, dest) in col_map.iter().enumerate().take(k) {
                if let Some(dest) = dest {
                    let wv = w.get(r, *dest);
                    out.set(mm, *dest, out.get(mm, *dest) + a.get(mm, r) * wv);
                }
            }
        }
    }
    (out, packing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_matrix::gen::{sparse_uniform, Density};

    #[test]
    fn disjoint_columns_pack_losslessly() {
        // Columns with disjoint row patterns combine with no pruning.
        let w = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0, 2.0],
            &[0.0, 3.0, 0.0, 0.0],
            &[0.0, 0.0, 4.0, 0.0],
            &[5.0, 0.0, 0.0, 0.0],
        ]);
        let p = combine_columns(&w, 4, 0);
        assert_eq!(p.conflicts_pruned, 0);
        assert!(p.packing_factor() > 1.0, "factor {}", p.packing_factor());
        assert_eq!(p.retained, w.nnz());
    }

    #[test]
    fn packed_gemm_exact_with_zero_budget_when_disjoint() {
        let w = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 3.0, 0.0], &[0.0, 0.0, 4.0]]);
        let a = sparse_uniform(5, 3, Density::DENSE, 1).to_dense();
        let (out, packing) = run_packed_gemm(&a, &w, 4);
        assert_eq!(packing.conflicts_pruned, 0);
        assert!(out.approx_eq(&a.matmul(&w), 1e-5));
        // Three disjoint columns fit one physical column.
        assert_eq!(packing.groups.len(), 1);
    }

    #[test]
    fn sparser_weights_pack_tighter() {
        let sparse = sparse_uniform(64, 64, Density::new(0.1).unwrap(), 2).to_dense();
        let denser = sparse_uniform(64, 64, Density::new(0.5).unwrap(), 3).to_dense();
        let ps = combine_columns(&sparse, 8, 0);
        let pd = combine_columns(&denser, 8, 0);
        assert!(
            ps.packing_factor() > pd.packing_factor(),
            "sparse {} vs dense {}",
            ps.packing_factor(),
            pd.packing_factor()
        );
        assert!(ps.packing_factor() > 2.0);
    }

    #[test]
    fn max_combine_caps_the_factor() {
        let w = sparse_uniform(64, 64, Density::new(0.05).unwrap(), 4).to_dense();
        let p = combine_columns(&w, 4, 0);
        assert!(p.packing_factor() <= 4.0 + 1e-9);
        for g in &p.groups {
            assert!(g.len() <= 4);
        }
    }

    #[test]
    fn every_column_lands_exactly_once() {
        let w = sparse_uniform(32, 40, Density::new(0.2).unwrap(), 5).to_dense();
        let p = combine_columns(&w, 6, 0);
        let mut seen = vec![false; 40];
        for g in &p.groups {
            for &c in g {
                assert!(!seen[c], "column {c} packed twice");
                seen[c] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn zero_budget_packing_is_always_exact() {
        // With conflict_budget 0 nothing is pruned, so the packed GEMM is
        // exact for any operand.
        let w = sparse_uniform(24, 24, Density::new(0.15).unwrap(), 6).to_dense();
        let a = sparse_uniform(10, 24, Density::new(0.8).unwrap(), 7).to_dense();
        let (out, packing) = run_packed_gemm(&a, &w, 8);
        assert_eq!(packing.conflicts_pruned, 0);
        assert!(out.approx_eq(&a.matmul(&w), 1e-4));
        // And the packed array is narrower than the original.
        assert!(packing.groups.len() < 24);
    }
}
