//! Baseline accelerator models for the SIGMA evaluation (Sec. VI-A).
//!
//! The paper compares SIGMA against a TPU-style systolic array (modeled
//! with SCALE-sim) and six sparse accelerators — EIE, SCNN, OuterSPACE,
//! Eyeriss v2, Packed Systolic and Cambricon-X — all normalized to
//! 16384 PEs, plus V100 GPU measurements for the motivation figures.
//!
//! Like the paper's own infrastructure, the sparse-accelerator baselines
//! are *analytic cycle models*: each one charges the latency terms implied
//! by its published microarchitecture (its dataflow, which operand's
//! sparsity it can exploit, and its documented bottleneck from the paper's
//! Table III). The systolic model reproduces SCALE-sim's weight-stationary
//! fold/skew arithmetic exactly, and the GPU model is a tiling/roofline
//! model of a V100 (a substitution for the paper's silicon measurements —
//! see `DESIGN.md`).

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    warn(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cambricon_functional;
pub mod eie_functional;
pub mod engines;
pub mod eyeriss_functional;
pub mod gpu;
pub mod outerspace_functional;
pub mod packed_functional;
pub mod scnn_functional;
pub mod sparse;
pub mod systolic;
pub mod systolic_functional;

pub use cambricon_functional::{CambriconRun, CambriconSim};
pub use eie_functional::{EieRun, EieSim};
pub use engines::{
    useful_macs, AnalyticEngine, CambriconEngine, EieEngine, EyerissEngine, GpuEngine,
    OuterSpaceEngine, PackedSystolicEngine, ScnnEngine, SystolicEngine, SystolicMapping,
};
pub use eyeriss_functional::{EyerissRun, EyerissV2Sim};
pub use gpu::{GpuModel, GpuPrecision};
pub use outerspace_functional::{OuterProductRun, OuterProductSim};
pub use packed_functional::{combine_columns, pack_weights, run_packed_gemm, ColumnPacking};
pub use scnn_functional::{ScnnRun, ScnnSim};
pub use sparse::{SparseAccelerator, SparseAcceleratorKind};
pub use systolic::SystolicArray;
pub use systolic_functional::{SystolicRun, SystolicSim};

use sigma_core::model::GemmProblem;
use sigma_core::CycleStats;

/// A GEMM accelerator that can be driven by the experiment harness.
///
/// Implementors return Table-II style [`CycleStats`]; total cycles are the
/// comparison currency across all designs.
pub trait GemmAccelerator {
    /// Human-readable design name (used in figure legends).
    fn name(&self) -> String;

    /// Number of PEs (for normalization checks).
    fn pes(&self) -> usize;

    /// Simulates one GEMM and returns its cycle accounting.
    fn simulate(&self, problem: &GemmProblem) -> CycleStats;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_matrix::GemmShape;

    #[test]
    fn trait_objects_are_usable() {
        let designs: Vec<Box<dyn GemmAccelerator>> = vec![
            Box::new(SystolicArray::new(128, 128)),
            Box::new(SparseAccelerator::new(SparseAcceleratorKind::Eie, 16384)),
        ];
        let p = GemmProblem::dense(GemmShape::new(256, 256, 256));
        for d in designs {
            let s = d.simulate(&p);
            assert!(s.total_cycles() > 0, "{} produced zero cycles", d.name());
            assert!(d.pes() > 0);
        }
    }
}
