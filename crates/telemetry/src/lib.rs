//! Lightweight observability for the SIGMA simulator: a metrics registry
//! (monotonic counters + cycle-bucketed histograms), a Chrome
//! trace-event (Perfetto-loadable) JSON exporter, and a wall-clock
//! [`flight`] recorder (thread-tagged spans, per-stage latency
//! histograms, gauges, and a JSON/Prometheus [`MetricsReport`]) whose
//! clock is injected by the harness so library code stays
//! deterministic.
//!
//! The registry follows the fault injector's zero-overhead-when-disabled
//! design: a [`Telemetry`] handle is an `Option<Arc<..>>` — a disabled
//! handle is a `None` and every recording call is an inlined early
//! return, so the hot simulation loops pay nothing when telemetry is off
//! (asserted by the counting-allocator test in `sigma-core` and the
//! `perf_bench --check` gate). An enabled handle records through
//! pre-sized `AtomicU64` arrays: recording takes `&self`, never
//! allocates, and is safe from the `Send + Sync` engine fleet.
//!
//! The workspace has no registry access (and no serde), so the exporter
//! in [`perfetto`] hand-rolls the Chrome trace-event JSON and ships its
//! own scanner-based validator, mirroring how `BENCH_sim.json` is
//! produced and re-parsed in `sigma-bench`.

#![forbid(unsafe_code)]
#![cfg_attr(
    not(test),
    warn(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::todo,
        clippy::unimplemented
    )
)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flight;
pub mod perfetto;
pub mod registry;

pub use flight::{
    FlightRecorder, FlightSnapshot, Gauge, MetricsReport, ReportHist, SnapRecord, SpanRecord, Stage,
};
pub use perfetto::{validate_chrome_trace, ChromeTrace, TraceSummary};
pub use registry::{Counter, Hist, HistSummary, Telemetry, TelemetrySnapshot};
