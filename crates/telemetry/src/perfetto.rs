//! Chrome trace-event JSON export (loadable in `ui.perfetto.dev` or
//! `chrome://tracing`) plus a scanner-based validator.
//!
//! The builder emits the JSON object form of the trace-event format:
//! `{"traceEvents": [...]}` with `"M"` metadata events naming the
//! process/threads, `"X"` complete events for spans (one simulated cycle
//! maps to one microsecond of trace time, so durations read directly as
//! cycles), and `"C"` counter events for metric timelines. One event per
//! line, so the no-serde validator can re-parse the output with the same
//! line-scanner technique `BENCH_sim.json` uses.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for embedding in JSON.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One buffered trace event, rendered lazily by [`ChromeTrace::to_json`].
#[derive(Debug, Clone, PartialEq)]
enum Event {
    /// `"M"` thread_name metadata.
    ThreadName { tid: u64, name: String },
    /// `"X"` complete event: a span on a thread track.
    Span { tid: u64, name: String, ts: u64, dur: u64 },
    /// `"C"` counter sample.
    Counter { name: String, ts: u64, value: u64 },
}

/// A Chrome trace-event JSON document under construction.
///
/// All events share one process (`pid` 1) named at construction; spans
/// land on numbered threads that [`ChromeTrace::thread`] gives names
/// (Perfetto renders each named thread as its own track).
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeTrace {
    process: String,
    events: Vec<Event>,
}

impl ChromeTrace {
    /// Starts an empty trace for a process with the given display name.
    #[must_use]
    pub fn new(process: impl Into<String>) -> Self {
        Self { process: process.into(), events: Vec::new() }
    }

    /// Names a thread track. Call once per `tid` before adding its spans.
    pub fn thread(&mut self, tid: u64, name: impl Into<String>) {
        self.events.push(Event::ThreadName { tid, name: name.into() });
    }

    /// Adds a complete ("X") span on thread `tid`, starting at `ts` and
    /// lasting `dur` (simulated cycles, rendered as microseconds).
    pub fn span(&mut self, tid: u64, name: impl Into<String>, ts: u64, dur: u64) {
        self.events.push(Event::Span { tid, name: name.into(), ts, dur });
    }

    /// Adds a counter ("C") sample.
    pub fn counter(&mut self, name: impl Into<String>, ts: u64, value: u64) {
        self.events.push(Event::Counter { name: name.into(), ts, value });
    }

    /// Number of buffered events (metadata included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the trace-event JSON document. One event per line (see the
    /// module docs); deterministic, so identical traces render
    /// byte-identically.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n\"traceEvents\": [\n");
        let mut lines: Vec<String> = Vec::with_capacity(self.events.len() + 1);
        lines.push(format!(
            "{{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", \
             \"args\": {{\"name\": \"{}\"}}}}",
            escape(&self.process)
        ));
        for e in &self.events {
            lines.push(match e {
                Event::ThreadName { tid, name } => format!(
                    "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"name\": \"thread_name\", \
                     \"args\": {{\"name\": \"{}\"}}}}",
                    escape(name)
                ),
                Event::Span { tid, name, ts, dur } => format!(
                    "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {tid}, \"ts\": {ts}, \"dur\": {dur}, \
                     \"name\": \"{}\"}}",
                    escape(name)
                ),
                Event::Counter { name, ts, value } => format!(
                    "{{\"ph\": \"C\", \"pid\": 1, \"ts\": {ts}, \"name\": \"{}\", \
                     \"args\": {{\"value\": {value}}}}}",
                    escape(name)
                ),
            });
        }
        out.push_str(&lines.join(",\n"));
        out.push_str("\n],\n\"displayTimeUnit\": \"ms\"\n}\n");
        out
    }
}

/// What [`validate_chrome_trace`] extracts from an exported document.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Number of `"X"` span events.
    pub span_count: usize,
    /// Number of `"C"` counter samples.
    pub counter_count: usize,
    /// Summed span durations per named thread track.
    pub track_durations: Vec<(String, u64)>,
    /// Summed span durations over every track.
    pub total_duration: u64,
    /// Largest `ts + dur` seen (the trace horizon).
    pub end_ts: u64,
}

impl TraceSummary {
    /// Total span duration on one named track (None if the track is
    /// absent).
    #[must_use]
    pub fn track(&self, name: &str) -> Option<u64> {
        self.track_durations.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Re-parses a document produced by [`ChromeTrace::to_json`] and checks
/// its schema: the `traceEvents` envelope is present, every event line
/// carries a phase, spans carry `tid`/`ts`/`dur`, counters carry a value,
/// and every span's thread is named. Returns per-track duration totals
/// for cross-checking against `CycleStats`.
///
/// # Errors
///
/// Returns a message describing the first schema violation found.
pub fn validate_chrome_trace(json: &str) -> Result<TraceSummary, String> {
    let trimmed = json.trim_start();
    if !trimmed.starts_with('{') {
        return Err("document does not start with '{'".into());
    }
    if !json.contains("\"traceEvents\": [") {
        return Err("missing \"traceEvents\" array".into());
    }
    if !json.trim_end().ends_with('}') {
        return Err("document does not end with '}'".into());
    }

    let mut thread_names: BTreeMap<u64, String> = BTreeMap::new();
    let mut per_tid: Vec<(u64, u64)> = Vec::new();
    let mut span_count = 0usize;
    let mut counter_count = 0usize;
    let mut total = 0u64;
    let mut end_ts = 0u64;

    for (ln, line) in json.lines().enumerate() {
        let Some(ph) = field_str(line, "ph") else { continue };
        match ph.as_str() {
            "M" => {
                let name =
                    field_str(line, "name").ok_or(format!("line {ln}: metadata without name"))?;
                if name == "thread_name" {
                    let tid = field_u64(line, "tid")
                        .ok_or(format!("line {ln}: thread_name lacks tid"))?;
                    // The display name lives in the args object, which is
                    // the line's second "name" field.
                    let args_at = line
                        .find("\"args\"")
                        .ok_or(format!("line {ln}: thread_name lacks args"))?;
                    let display = field_str(&line[args_at..], "name")
                        .ok_or(format!("line {ln}: thread_name args lack a name"))?;
                    thread_names.insert(tid, display);
                }
            }
            "X" => {
                let tid = field_u64(line, "tid").ok_or(format!("line {ln}: span lacks tid"))?;
                let ts = field_u64(line, "ts").ok_or(format!("line {ln}: span lacks ts"))?;
                let dur = field_u64(line, "dur").ok_or(format!("line {ln}: span lacks dur"))?;
                field_str(line, "name").ok_or(format!("line {ln}: span lacks name"))?;
                span_count += 1;
                total += dur;
                end_ts = end_ts.max(ts + dur);
                match per_tid.iter_mut().find(|(t, _)| *t == tid) {
                    Some((_, d)) => *d += dur,
                    None => per_tid.push((tid, dur)),
                }
            }
            "C" => {
                field_u64(line, "ts").ok_or(format!("line {ln}: counter lacks ts"))?;
                field_u64(line, "value").ok_or(format!("line {ln}: counter lacks value"))?;
                counter_count += 1;
            }
            other => return Err(format!("line {ln}: unknown event phase {other:?}")),
        }
    }

    let mut track_durations = Vec::with_capacity(per_tid.len());
    for (tid, dur) in per_tid {
        let name = thread_names
            .get(&tid)
            .cloned()
            .ok_or(format!("span thread {tid} has no thread_name metadata"))?;
        track_durations.push((name, dur));
    }
    Ok(TraceSummary { span_count, counter_count, track_durations, total_duration: total, end_ts })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChromeTrace {
        let mut ct = ChromeTrace::new("sigma");
        ct.thread(1, "phase: load");
        ct.thread(2, "phase: stream");
        ct.span(1, "fold 0", 0, 4);
        ct.span(2, "fold 0 step 0", 4, 2);
        ct.span(2, "fold 0 step 1", 6, 3);
        ct.counter("cycles: stream", 9, 5);
        ct
    }

    #[test]
    fn export_validates_and_sums_tracks() {
        let json = sample().to_json();
        let summary = validate_chrome_trace(&json).unwrap();
        assert_eq!(summary.span_count, 3);
        assert_eq!(summary.counter_count, 1);
        assert_eq!(summary.track("phase: load"), Some(4));
        assert_eq!(summary.track("phase: stream"), Some(5));
        assert_eq!(summary.track("phase: drain"), None);
        assert_eq!(summary.total_duration, 9);
        assert_eq!(summary.end_ts, 9);
    }

    #[test]
    fn export_is_deterministic_and_escaped() {
        let mut ct = ChromeTrace::new("quote\"back\\slash\nline");
        ct.thread(1, "t");
        ct.span(1, "s", 0, 1);
        let j = ct.to_json();
        assert_eq!(j, ct.to_json());
        assert!(j.contains("quote\\\"back\\\\slash\\nline"));
        validate_chrome_trace(&j).unwrap();
    }

    #[test]
    fn empty_trace_still_validates() {
        let ct = ChromeTrace::new("empty");
        assert!(ct.is_empty());
        assert_eq!(ct.len(), 0);
        let summary = validate_chrome_trace(&ct.to_json()).unwrap();
        assert_eq!(summary.span_count, 0);
        assert_eq!(summary.total_duration, 0);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"events\": []}").is_err());
        let missing_meta = "{\n\"traceEvents\": [\n\
            {\"ph\": \"X\", \"pid\": 1, \"tid\": 9, \"ts\": 0, \"dur\": 1, \"name\": \"s\"}\n\
            ],\n\"displayTimeUnit\": \"ms\"\n}\n";
        let err = validate_chrome_trace(missing_meta).unwrap_err();
        assert!(err.contains("thread 9"), "{err}");
        let bad_phase = "{\n\"traceEvents\": [\n{\"ph\": \"Q\", \"name\": \"s\"}\n],\n}";
        assert!(validate_chrome_trace(bad_phase).is_err());
    }

    #[test]
    fn zero_duration_spans_are_legal() {
        let mut ct = ChromeTrace::new("p");
        ct.thread(1, "t");
        ct.span(1, "empty load", 0, 0);
        let summary = validate_chrome_trace(&ct.to_json()).unwrap();
        assert_eq!(summary.span_count, 1);
        assert_eq!(summary.track("t"), Some(0));
    }
}
