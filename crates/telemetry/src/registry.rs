//! The metrics registry: a fixed vocabulary of monotonic counters and
//! power-of-two-bucketed histograms behind a cheaply cloneable handle.
//!
//! The vocabulary is a closed enum rather than string keys so recording
//! is an array index + atomic add — no hashing, no locking, no
//! allocation — and so the set of instrumentation sites is reviewable in
//! one place.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic event counters recorded by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Benes route configurations replayed from the route cache.
    RouteCacheHits,
    /// Benes route configurations derived cold (cache miss or disabled).
    RouteCacheMisses,
    /// Stationary-operand words read from SRAM (fold loading).
    SramStationaryReads,
    /// Streaming-operand words read from SRAM (one per distinct non-zero
    /// per step; multicast replication is free).
    SramStreamingReads,
    /// Stationary fold loads pushed through a Benes distribution.
    BenesLoads,
    /// Streaming steps executed across all Flex-DPEs.
    StreamSteps,
    /// Additions performed inside FAN reduction trees.
    FanAdds,
    /// Cluster sums leaving FAN trees over forwarding links.
    FanClusterSums,
    /// Multiplications whose streamed operand was non-zero.
    UsefulMacs,
    /// Multiplications issued (occupied slots x steps).
    IssuedMacs,
    /// Stationary folds the controller planned.
    FoldsPlanned,
    /// Stationary non-zeros the controller dropped (streaming-side empty
    /// contraction rows that can never contribute).
    StationaryDropped,
    /// Streaming cycles whose step had no non-zero operands — dead
    /// cycles the event scheduler fast-forwards in O(1) while still
    /// charging them to the cycle totals.
    IdleCyclesSkipped,
    /// Completed sweep cells appended to the write-ahead run journal.
    JournalAppends,
    /// Sweep cells skipped on resume because the journal already held a
    /// matching completed record.
    ResumeHits,
    /// Sweep cells that exhausted their watchdog budget repeatedly and
    /// were rerun on the analytic fallback (`status=degraded`).
    DegradedCells,
    /// Sweep cells answered by the content-addressed run cache.
    CacheHits,
    /// Sweep cells absent from the run cache (executed and inserted).
    CacheMisses,
    /// Sweep cells that blocked on an identical in-flight cell and
    /// reused its result instead of recomputing.
    InflightCoalesced,
    /// Run-cache entries evicted to stay within capacity.
    CacheEvictions,
}

impl Counter {
    /// Every counter, in emission order.
    pub const ALL: [Counter; 20] = [
        Counter::RouteCacheHits,
        Counter::RouteCacheMisses,
        Counter::SramStationaryReads,
        Counter::SramStreamingReads,
        Counter::BenesLoads,
        Counter::StreamSteps,
        Counter::FanAdds,
        Counter::FanClusterSums,
        Counter::UsefulMacs,
        Counter::IssuedMacs,
        Counter::FoldsPlanned,
        Counter::StationaryDropped,
        Counter::IdleCyclesSkipped,
        Counter::JournalAppends,
        Counter::ResumeHits,
        Counter::DegradedCells,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::InflightCoalesced,
        Counter::CacheEvictions,
    ];

    /// Stable snake_case name (CSV/JSON key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::RouteCacheHits => "route_cache_hits",
            Counter::RouteCacheMisses => "route_cache_misses",
            Counter::SramStationaryReads => "sram_stationary_reads",
            Counter::SramStreamingReads => "sram_streaming_reads",
            Counter::BenesLoads => "benes_loads",
            Counter::StreamSteps => "stream_steps",
            Counter::FanAdds => "fan_adds",
            Counter::FanClusterSums => "fan_cluster_sums",
            Counter::UsefulMacs => "useful_macs",
            Counter::IssuedMacs => "issued_macs",
            Counter::FoldsPlanned => "folds_planned",
            Counter::StationaryDropped => "stationary_dropped",
            Counter::IdleCyclesSkipped => "idle_cycles_skipped",
            Counter::JournalAppends => "journal_appends",
            Counter::ResumeHits => "resume_hits",
            Counter::DegradedCells => "degraded_cells",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::InflightCoalesced => "inflight_coalesced",
            Counter::CacheEvictions => "cache_evictions",
        }
    }
}

/// Histograms recorded by the simulator. Values land in power-of-two
/// buckets (0, 1, 2, 3–4, 5–8, ...), which suits both cycle counts and
/// the 0–100 occupancy percentages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hist {
    /// Multicast fan-out: multipliers fed by one streamed SRAM read.
    MulticastFanout,
    /// Per-Flex-DPE multiplier occupancy at fold load, in percent.
    MultiplierOccupancyPct,
    /// Per-step FAN adder occupancy (adds performed / adders), percent.
    FanAdderOccupancyPct,
    /// Per-step FAN forwarding-link occupancy (cluster sums routed out /
    /// forwarding links), in percent.
    FanLinkOccupancyPct,
    /// Cycles per streaming step (bandwidth serialization).
    StreamStepCycles,
}

impl Hist {
    /// Every histogram, in emission order.
    pub const ALL: [Hist; 5] = [
        Hist::MulticastFanout,
        Hist::MultiplierOccupancyPct,
        Hist::FanAdderOccupancyPct,
        Hist::FanLinkOccupancyPct,
        Hist::StreamStepCycles,
    ];

    /// Stable snake_case name (CSV/JSON key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Hist::MulticastFanout => "multicast_fanout",
            Hist::MultiplierOccupancyPct => "multiplier_occupancy_pct",
            Hist::FanAdderOccupancyPct => "fan_adder_occupancy_pct",
            Hist::FanLinkOccupancyPct => "fan_link_occupancy_pct",
            Hist::StreamStepCycles => "stream_step_cycles",
        }
    }
}

/// Power-of-two histogram buckets: index 0 holds zeros, index `i >= 1`
/// holds values in `(2^(i-2), 2^(i-1)]`, with the last bucket open-ended.
pub(crate) const HIST_BUCKETS: usize = 18;

/// Bucket index for a value (see [`HIST_BUCKETS`]).
#[inline]
pub(crate) fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        // ceil(log2(value)) + 1, so bucket i covers (2^(i-2), 2^(i-1)].
        ((65 - (value - 1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive lower bound of a bucket, for display.
pub(crate) fn bucket_floor(index: usize) -> u64 {
    match index {
        0 => 0,
        1 => 1,
        i => (1 << (i - 2)) + 1,
    }
}

/// Inclusive upper bound of a bucket, `None` for the open-ended last
/// bucket (rendered as `+Inf` in Prometheus exposition).
pub(crate) fn bucket_ceil(index: usize) -> Option<u64> {
    if index + 1 >= HIST_BUCKETS {
        return None;
    }
    Some(match index {
        0 => 0,
        i => 1u64 << (i - 1),
    })
}

#[derive(Debug)]
pub(crate) struct HistCells {
    pub(crate) buckets: [AtomicU64; HIST_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl HistCells {
    pub(crate) fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn observe(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    #[inline]
    fn observe_n(&self, value: u64, n: u64) {
        self.buckets[bucket_of(value)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(value.saturating_mul(n), Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Flattens the cells into a [`HistSummary`] under `name`.
    pub(crate) fn summary(&self, name: &'static str) -> HistSummary {
        HistSummary {
            name,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// The shared registry cells behind an enabled [`Telemetry`] handle.
#[derive(Debug)]
struct Registry {
    counters: [AtomicU64; Counter::ALL.len()],
    hists: [HistCells; Hist::ALL.len()],
}

impl Registry {
    fn new() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| HistCells::new()),
        }
    }
}

/// A cheaply cloneable telemetry handle.
///
/// Disabled (the default) it is a `None` and every recording call is an
/// inlined no-op; enabled it shares one atomic [`Registry`] across all
/// clones, so a simulator and its per-fold `FlexDpe` units accumulate
/// into the same counters.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Registry>>,
}

impl Telemetry {
    /// A disabled handle: recording is a no-op, snapshots are empty.
    #[must_use]
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// An enabled handle with a fresh, zeroed registry.
    #[must_use]
    pub fn enabled() -> Self {
        Self { inner: Some(Arc::new(Registry::new())) }
    }

    /// Whether recording does anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `by` to a counter. No-op (and allocation-free) when disabled.
    #[inline]
    pub fn add(&self, counter: Counter, by: u64) {
        if let Some(reg) = &self.inner {
            reg.counters[counter as usize].fetch_add(by, Ordering::Relaxed);
        }
    }

    /// Records one histogram observation. No-op when disabled.
    #[inline]
    pub fn observe(&self, hist: Hist, value: u64) {
        if let Some(reg) = &self.inner {
            reg.hists[hist as usize].observe(value);
        }
    }

    /// Records `n` identical histogram observations in one shot —
    /// bucket, count, sum, and max land exactly as `n` calls to
    /// [`Telemetry::observe`] would. This is how the epoch scheduler
    /// accumulates per-step occupancy metrics whose value is constant
    /// across a whole fold without visiting every step. No-op when
    /// disabled or when `n == 0`.
    #[inline]
    pub fn observe_n(&self, hist: Hist, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(reg) = &self.inner {
            reg.hists[hist as usize].observe_n(value, n);
        }
    }

    /// Current value of a counter (0 when disabled).
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.inner.as_ref().map_or(0, |reg| reg.counters[counter as usize].load(Ordering::Relaxed))
    }

    /// Zeroes every counter and histogram (no-op when disabled).
    pub fn reset(&self) {
        if let Some(reg) = &self.inner {
            for c in &reg.counters {
                c.store(0, Ordering::Relaxed);
            }
            for h in &reg.hists {
                for b in &h.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                h.count.store(0, Ordering::Relaxed);
                h.sum.store(0, Ordering::Relaxed);
                h.max.store(0, Ordering::Relaxed);
            }
        }
    }

    /// A point-in-time copy of the registry. Disabled handles return a
    /// snapshot with `enabled = false` and every metric zero.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = Counter::ALL.iter().map(|&c| (c.name(), self.counter(c))).collect();
        let hists = Hist::ALL
            .iter()
            .enumerate()
            .map(|(hi, &h)| {
                let (count, sum, max, buckets) = self.inner.as_ref().map_or_else(
                    || (0, 0, 0, vec![0; HIST_BUCKETS]),
                    |reg| {
                        let cells = &reg.hists[hi];
                        (
                            cells.count.load(Ordering::Relaxed),
                            cells.sum.load(Ordering::Relaxed),
                            cells.max.load(Ordering::Relaxed),
                            cells.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                        )
                    },
                );
                HistSummary { name: h.name(), count, sum, max, buckets }
            })
            .collect();
        TelemetrySnapshot { enabled: self.is_enabled(), counters, hists }
    }
}

/// One histogram, flattened for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSummary {
    /// Stable metric name.
    pub name: &'static str,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Occupancy per power-of-two bucket (see [`Hist`]).
    pub buckets: Vec<u64>,
}

impl HistSummary {
    /// Mean observed value (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of every counter and histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Whether the source handle was recording.
    pub enabled: bool,
    /// `(name, value)` per counter, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// One summary per histogram, in [`Hist::ALL`] order.
    pub hists: Vec<HistSummary>,
}

impl TelemetrySnapshot {
    /// Looks a counter up by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// Looks a histogram up by name.
    #[must_use]
    pub fn hist(&self, name: &str) -> Option<&HistSummary> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Renders the snapshot as a JSON object (hand-rolled; the workspace
    /// has no serde). Stable key order, so identical runs render
    /// byte-identically.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"enabled\": {},\n", self.enabled));
        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(&format!("{}\"{name}\": {v}", if i == 0 { "" } else { ", " }));
        }
        out.push_str("},\n  \"histograms\": [\n");
        for (i, h) in self.hists.iter().enumerate() {
            let nonzero: Vec<String> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(bi, &n)| format!("{{\"ge\": {}, \"count\": {n}}}", bucket_floor(bi)))
                .collect();
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"mean\": {:.3}, \"buckets\": [{}]}}{}\n",
                h.name,
                h.count,
                h.sum,
                h.max,
                h.mean(),
                nonzero.join(", "),
                if i + 1 < self.hists.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::off();
        assert!(!t.is_enabled());
        t.add(Counter::FanAdds, 5);
        t.observe(Hist::MulticastFanout, 3);
        assert_eq!(t.counter(Counter::FanAdds), 0);
        let snap = t.snapshot();
        assert!(!snap.enabled);
        assert_eq!(snap.counter("fan_adds"), Some(0));
        assert_eq!(snap.hist("multicast_fanout").unwrap().count, 0);
    }

    #[test]
    fn counters_accumulate_across_clones() {
        let t = Telemetry::enabled();
        let u = t.clone();
        t.add(Counter::RouteCacheHits, 2);
        u.add(Counter::RouteCacheHits, 3);
        assert_eq!(t.counter(Counter::RouteCacheHits), 5);
        assert_eq!(u.snapshot().counter("route_cache_hits"), Some(5));
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let t = Telemetry::enabled();
        for v in [0u64, 1, 2, 3, 4, 8, 100] {
            t.observe(Hist::StreamStepCycles, v);
        }
        let snap = t.snapshot();
        let h = snap.hist("stream_step_cycles").unwrap();
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 118);
        assert_eq!(h.max, 100);
        assert!((h.mean() - 118.0 / 7.0).abs() < 1e-9);
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 1); // 2
        assert_eq!(h.buckets[3], 2); // 3..=4
        assert_eq!(h.buckets[4], 1); // 5..=8
        assert_eq!(h.buckets[8], 1); // 65..=128
    }

    #[test]
    fn observe_n_is_equivalent_to_n_observes() {
        let batched = Telemetry::enabled();
        let looped = Telemetry::enabled();
        for (value, n) in [(0u64, 3u64), (1, 7), (4, 2), (100, 5), (13, 0)] {
            batched.observe_n(Hist::StreamStepCycles, value, n);
            for _ in 0..n {
                looped.observe(Hist::StreamStepCycles, value);
            }
        }
        let b = batched.snapshot();
        let l = looped.snapshot();
        assert_eq!(b.hist("stream_step_cycles"), l.hist("stream_step_cycles"));
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 3);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(5), 4);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(3), 3);
        assert_eq!(bucket_floor(4), 5);
        assert_eq!(bucket_ceil(0), Some(0));
        assert_eq!(bucket_ceil(1), Some(1));
        assert_eq!(bucket_ceil(3), Some(4));
        assert_eq!(bucket_ceil(HIST_BUCKETS - 2), Some(1 << (HIST_BUCKETS - 3)));
        assert_eq!(bucket_ceil(HIST_BUCKETS - 1), None);
        // Floors and ceils tile the u64 line with no gaps: each bucket's
        // ceil is the next bucket's floor minus one.
        for i in 0..HIST_BUCKETS - 1 {
            assert_eq!(bucket_ceil(i).unwrap(), bucket_floor(i + 1) - 1);
        }
    }

    #[test]
    fn reset_zeroes_everything() {
        let t = Telemetry::enabled();
        t.add(Counter::IssuedMacs, 9);
        t.observe(Hist::MulticastFanout, 4);
        t.reset();
        assert_eq!(t.counter(Counter::IssuedMacs), 0);
        assert_eq!(t.snapshot().hist("multicast_fanout").unwrap().count, 0);
    }

    #[test]
    fn names_are_unique_and_snapshot_json_is_stable() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Hist::ALL.iter().map(|h| h.name()));
        let mut uniq = names.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len());

        let t = Telemetry::enabled();
        t.add(Counter::FanAdds, 3);
        t.observe(Hist::MulticastFanout, 2);
        let j1 = t.snapshot().to_json();
        let j2 = t.snapshot().to_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"fan_adds\": 3"));
        assert!(j1.contains("\"multicast_fanout\""));
    }
}
