//! The harness flight recorder: wall-clock spans, per-stage latency
//! histograms, gauges, and a [`MetricsReport`] with JSON and Prometheus
//! text exposition.
//!
//! Simulated time (cycles, counters, Chrome traces of the epoch
//! scheduler) is covered by [`crate::registry`] and [`crate::perfetto`].
//! This module covers *wall-clock* time in the experiment harness: how
//! long a sweep cell waited in the queue, how long the engine ran, how
//! long a journal fsync or a cache probe took. Those latencies are
//! inherently nondeterministic, so the recorder never touches result
//! data — it feeds a side-channel event log and stderr only.
//!
//! # Clock injection and the D1 determinism contract
//!
//! `sigma-telemetry` is a determinism-critical crate: the `sigma-lint`
//! D1 rule bans `Instant`/`SystemTime` in its library code so that no
//! simulation result can ever depend on wall time. The recorder
//! therefore owns no clock. The harness edge (`sigma_cli`, which is
//! *not* determinism-critical) injects a monotonic microsecond closure
//! at construction, and every timestamp flows through it. Library code
//! stays clock-free; wall time enters in exactly one audited place.
//!
//! # Zero overhead when disabled
//!
//! [`FlightRecorder`] follows the [`crate::Telemetry`] handle design: a
//! disabled recorder is an `Option::None` and every recording call is an
//! inlined early return — no allocation, no atomics, no lock. This is
//! what makes it safe to leave compiled into the sweep hot path: with
//! the recorder off, sweep output is byte-identical to a build that
//! never heard of it (asserted by `perf_bench --recorder-check`).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::registry::{bucket_ceil, bucket_floor, bucket_of, HistCells, HIST_BUCKETS};
use crate::{HistSummary, TelemetrySnapshot};

/// Harness pipeline stages timed by the flight recorder.
///
/// Each stage owns one power-of-two latency histogram (microseconds)
/// and tags the spans recorded for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// A sweep cell waiting between sweep start and a worker claiming it.
    QueueWait,
    /// Lazy workload materialization (operand generation + reference).
    Materialize,
    /// One watchdog-supervised engine attempt on a cell.
    EngineRun,
    /// Journal line render + buffered write.
    JournalAppend,
    /// Journal `sync_data` to stable storage.
    JournalFsync,
    /// Run-cache lookup (including any in-flight coalescing wait).
    CacheProbe,
    /// Run-cache insert (append + index update + amortized compaction).
    CacheInsert,
    /// Deterministic backoff sleep between cell retry attempts.
    RetryBackoff,
    /// Cancelling a timed-out cell and grace-joining its thread.
    WatchdogCancel,
}

impl Stage {
    /// Every stage, in emission order.
    pub const ALL: [Stage; 9] = [
        Stage::QueueWait,
        Stage::Materialize,
        Stage::EngineRun,
        Stage::JournalAppend,
        Stage::JournalFsync,
        Stage::CacheProbe,
        Stage::CacheInsert,
        Stage::RetryBackoff,
        Stage::WatchdogCancel,
    ];

    /// Stable snake_case name (JSONL/Prometheus key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Materialize => "materialize",
            Stage::EngineRun => "engine_run",
            Stage::JournalAppend => "journal_append",
            Stage::JournalFsync => "journal_fsync",
            Stage::CacheProbe => "cache_probe",
            Stage::CacheInsert => "cache_insert",
            Stage::RetryBackoff => "retry_backoff",
            Stage::WatchdogCancel => "watchdog_cancel",
        }
    }

    /// Inverse of [`Stage::name`], for event-log readers.
    #[must_use]
    pub fn parse(name: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|s| s.name() == name)
    }
}

/// Instantaneous (non-monotonic) levels sampled by periodic snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Sweep cells completed so far.
    CellsCompleted,
    /// Total cells the sweep will run.
    CellsTotal,
    /// Watchdog cell threads currently alive.
    LiveCellThreads,
    /// Entries resident in the run cache.
    CacheEntries,
}

impl Gauge {
    /// Every gauge, in emission order.
    pub const ALL: [Gauge; 4] =
        [Gauge::CellsCompleted, Gauge::CellsTotal, Gauge::LiveCellThreads, Gauge::CacheEntries];

    /// Stable snake_case name (JSONL/Prometheus key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Gauge::CellsCompleted => "cells_completed",
            Gauge::CellsTotal => "cells_total",
            Gauge::LiveCellThreads => "live_cell_threads",
            Gauge::CacheEntries => "cache_entries",
        }
    }

    /// Inverse of [`Gauge::name`], for event-log readers.
    #[must_use]
    pub fn parse(name: &str) -> Option<Gauge> {
        Gauge::ALL.iter().copied().find(|g| g.name() == name)
    }
}

/// One completed wall-clock span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The pipeline stage this span timed.
    pub stage: Stage,
    /// Human label ("eie: dense 64", journal key prefix, ...).
    pub label: String,
    /// Recorder-local tag of the recording thread (dense, first-use order).
    pub thread: u64,
    /// Start, microseconds on the injected clock.
    pub start_us: u64,
    /// Duration, microseconds (saturating; never negative).
    pub dur_us: u64,
}

/// One periodic sample of every gauge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapRecord {
    /// Sample time, microseconds on the injected clock.
    pub ts_us: u64,
    /// `(name, value)` per gauge, in [`Gauge::ALL`] order.
    pub gauges: Vec<(&'static str, u64)>,
}

/// The injected monotonic clock: microseconds since an epoch the
/// harness picks (typically process start).
pub type Clock = Box<dyn Fn() -> u64 + Send + Sync>;

struct FlightInner {
    clock: Clock,
    capacity: usize,
    spans: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
    stages: [HistCells; Stage::ALL.len()],
    gauges: [AtomicU64; Gauge::ALL.len()],
    snaps: Mutex<Vec<SnapRecord>>,
    next_thread: AtomicU64,
}

impl std::fmt::Debug for FlightInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightInner")
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

thread_local! {
    /// Recorder-assigned dense thread tag; `u64::MAX` means unassigned.
    /// Thread-local (not keyed by `std::thread::ThreadId`, which the D1
    /// lint bans here) so tags are small, dense integers usable directly
    /// as Perfetto track ids.
    static THREAD_TAG: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// A cheaply cloneable wall-clock span/latency recorder.
///
/// Disabled (the default) every call is an inlined no-op; enabled it
/// shares one bounded span buffer, one latency histogram per [`Stage`],
/// and one cell per [`Gauge`] across all clones. See the module docs
/// for the clock-injection and zero-overhead contracts.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<FlightInner>>,
}

impl FlightRecorder {
    /// A disabled handle: recording is a no-op, snapshots are empty.
    #[must_use]
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// An enabled handle holding at most `capacity` spans (further spans
    /// still land in the stage histograms but are counted as dropped),
    /// timed by the injected monotonic microsecond `clock`.
    #[must_use]
    pub fn with_clock(capacity: usize, clock: impl Fn() -> u64 + Send + Sync + 'static) -> Self {
        Self {
            inner: Some(Arc::new(FlightInner {
                clock: Box::new(clock),
                capacity,
                spans: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
                stages: std::array::from_fn(|_| HistCells::new()),
                gauges: std::array::from_fn(|_| AtomicU64::new(0)),
                snaps: Mutex::new(Vec::new()),
                next_thread: AtomicU64::new(0),
            })),
        }
    }

    /// Whether recording does anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current time on the injected clock, microseconds. Returns 0 when
    /// disabled so callers can unconditionally capture a start stamp.
    #[inline]
    #[must_use]
    pub fn now_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| (i.clock)())
    }

    /// The recording thread's dense tag, assigned on first use.
    fn thread_tag(inner: &FlightInner) -> u64 {
        THREAD_TAG.with(|c| {
            let tag = c.get();
            if tag != u64::MAX {
                return tag;
            }
            let tag = inner.next_thread.fetch_add(1, Ordering::Relaxed);
            c.set(tag);
            tag
        })
    }

    /// Records a completed span from `start_us` to `end_us` and lands
    /// its duration in the stage's latency histogram. The histogram
    /// always records; the span itself is dropped (and counted) once the
    /// bounded buffer is full. No-op when disabled.
    pub fn record_span(&self, stage: Stage, label: &str, start_us: u64, end_us: u64) {
        let Some(inner) = &self.inner else { return };
        let dur = end_us.saturating_sub(start_us);
        inner.stages[stage as usize].observe(dur);
        let mut spans = inner.spans.lock().unwrap_or_else(PoisonError::into_inner);
        if spans.len() >= inner.capacity {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(SpanRecord {
            stage,
            label: label.to_string(),
            thread: Self::thread_tag(inner),
            start_us,
            dur_us: dur,
        });
    }

    /// Records a span from `start_us` until now on the injected clock.
    pub fn span_since(&self, stage: Stage, label: &str, start_us: u64) {
        if self.inner.is_some() {
            self.record_span(stage, label, start_us, self.now_us());
        }
    }

    /// Sets a gauge to an absolute level. No-op when disabled.
    #[inline]
    pub fn gauge_set(&self, gauge: Gauge, value: u64) {
        if let Some(inner) = &self.inner {
            inner.gauges[gauge as usize].store(value, Ordering::Relaxed);
        }
    }

    /// Adds to a gauge. No-op when disabled.
    #[inline]
    pub fn gauge_add(&self, gauge: Gauge, by: u64) {
        if let Some(inner) = &self.inner {
            inner.gauges[gauge as usize].fetch_add(by, Ordering::Relaxed);
        }
    }

    /// Current gauge level (0 when disabled).
    #[must_use]
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.gauges[gauge as usize].load(Ordering::Relaxed))
    }

    /// Samples every gauge at the current clock time. The sample series
    /// becomes Perfetto counter tracks in `sigma_cli report`. No-op when
    /// disabled.
    pub fn snap(&self) {
        let Some(inner) = &self.inner else { return };
        let ts_us = (inner.clock)();
        let gauges = Gauge::ALL
            .iter()
            .map(|&g| (g.name(), inner.gauges[g as usize].load(Ordering::Relaxed)))
            .collect();
        let mut snaps = inner.snaps.lock().unwrap_or_else(PoisonError::into_inner);
        if snaps.len() < inner.capacity {
            snaps.push(SnapRecord { ts_us, gauges });
        }
    }

    /// Spans rejected by the bounded buffer so far.
    #[must_use]
    pub fn dropped_spans(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// A point-in-time copy of everything recorded. Disabled handles
    /// return an empty snapshot with `enabled = false`.
    #[must_use]
    pub fn snapshot(&self) -> FlightSnapshot {
        let Some(inner) = &self.inner else {
            return FlightSnapshot {
                enabled: false,
                spans: Vec::new(),
                dropped_spans: 0,
                stages: Stage::ALL
                    .iter()
                    .map(|&s| HistSummary {
                        name: s.name(),
                        count: 0,
                        sum: 0,
                        max: 0,
                        buckets: vec![0; HIST_BUCKETS],
                    })
                    .collect(),
                gauges: Gauge::ALL.iter().map(|&g| (g.name(), 0)).collect(),
                snaps: Vec::new(),
            };
        };
        FlightSnapshot {
            enabled: true,
            spans: inner.spans.lock().unwrap_or_else(PoisonError::into_inner).clone(),
            dropped_spans: inner.dropped.load(Ordering::Relaxed),
            stages: Stage::ALL
                .iter()
                .map(|&s| inner.stages[s as usize].summary(s.name()))
                .collect(),
            gauges: Gauge::ALL
                .iter()
                .map(|&g| (g.name(), inner.gauges[g as usize].load(Ordering::Relaxed)))
                .collect(),
            snaps: inner.snaps.lock().unwrap_or_else(PoisonError::into_inner).clone(),
        }
    }
}

/// A point-in-time copy of a [`FlightRecorder`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightSnapshot {
    /// Whether the source recorder was recording.
    pub enabled: bool,
    /// Every retained span, in recording order.
    pub spans: Vec<SpanRecord>,
    /// Spans rejected by the bounded buffer.
    pub dropped_spans: u64,
    /// One latency summary per stage, in [`Stage::ALL`] order
    /// (microsecond values in power-of-two buckets).
    pub stages: Vec<HistSummary>,
    /// `(name, level)` per gauge, in [`Gauge::ALL`] order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Periodic gauge samples, in recording order.
    pub snaps: Vec<SnapRecord>,
}

impl FlightSnapshot {
    /// Looks a stage latency summary up by name.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<&HistSummary> {
        self.stages.iter().find(|h| h.name == name)
    }

    /// Looks a gauge level up by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }
}

/// One histogram inside a [`MetricsReport`], with an owned name so
/// reports can be rebuilt from parsed event logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportHist {
    /// Metric name (snake_case).
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Occupancy per power-of-two bucket (same geometry as
    /// [`crate::Hist`]; the last bucket is open-ended).
    pub buckets: Vec<u64>,
}

impl ReportHist {
    /// Mean observed value (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.sum as f64 / self.count as f64
        }
    }

    /// Records one observation (used when rebuilding from raw samples).
    pub fn observe(&mut self, value: u64) {
        if self.buckets.len() < HIST_BUCKETS {
            self.buckets.resize(HIST_BUCKETS, 0);
        }
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }
}

impl From<&HistSummary> for ReportHist {
    fn from(h: &HistSummary) -> Self {
        ReportHist {
            name: h.name.to_string(),
            count: h.count,
            sum: h.sum,
            max: h.max,
            buckets: h.buckets.clone(),
        }
    }
}

/// A merged metrics view — counters, gauges, histograms — rendered as
/// JSON or Prometheus text exposition with deterministic (sorted-name)
/// ordering. This is the payload a future `sigma-serve` metrics
/// endpoint serves; today `sigma_cli report --metrics` prints it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// `(name, value)` monotonic counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` gauges.
    pub gauges: Vec<(String, u64)>,
    /// Histograms (stage latencies and simulator histograms alike).
    pub hists: Vec<ReportHist>,
}

impl MetricsReport {
    /// Builds a report from a registry snapshot plus a flight snapshot:
    /// registry counters and histograms, flight gauges and stage
    /// latency histograms.
    #[must_use]
    pub fn from_snapshots(telemetry: &TelemetrySnapshot, flight: &FlightSnapshot) -> Self {
        let mut report = MetricsReport::default();
        for (name, v) in &telemetry.counters {
            report.counters.push(((*name).to_string(), *v));
        }
        for h in &telemetry.hists {
            report.hists.push(ReportHist::from(h));
        }
        for (name, v) in &flight.gauges {
            report.gauges.push(((*name).to_string(), *v));
        }
        for h in &flight.stages {
            report.hists.push(ReportHist::from(h));
        }
        report
    }

    /// Merges `other` into `self`: counters and histogram cells sum by
    /// name, gauges keep the elementwise maximum (the high-water mark —
    /// the meaningful combination for levels sampled over disjoint
    /// intervals). Names absent on either side are adopted. Merging an
    /// empty report is the identity.
    pub fn merge(&mut self, other: &MetricsReport) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine = mine.saturating_add(*v),
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine = (*mine).max(*v),
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        for h in &other.hists {
            match self.hists.iter_mut().find(|mine| mine.name == h.name) {
                Some(mine) => {
                    mine.count += h.count;
                    mine.sum = mine.sum.saturating_add(h.sum);
                    mine.max = mine.max.max(h.max);
                    if mine.buckets.len() < h.buckets.len() {
                        mine.buckets.resize(h.buckets.len(), 0);
                    }
                    for (b, add) in mine.buckets.iter_mut().zip(&h.buckets) {
                        *b += add;
                    }
                }
                None => self.hists.push(h.clone()),
            }
        }
    }

    /// A copy with counters, gauges, and histograms sorted by name —
    /// the canonical order every exporter uses.
    #[must_use]
    pub fn sorted(&self) -> MetricsReport {
        let mut s = self.clone();
        s.counters.sort_by(|a, b| a.0.cmp(&b.0));
        s.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        s.hists.sort_by(|a, b| a.name.cmp(&b.name));
        s
    }

    /// Renders the report as a JSON object (hand-rolled; the workspace
    /// has no serde). Entries are sorted by name, so two reports with
    /// the same content render byte-identically regardless of insertion
    /// order.
    #[must_use]
    pub fn to_json(&self) -> String {
        let s = self.sorted();
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in s.counters.iter().enumerate() {
            out.push_str(&format!("{}\"{name}\": {v}", if i == 0 { "" } else { ", " }));
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in s.gauges.iter().enumerate() {
            out.push_str(&format!("{}\"{name}\": {v}", if i == 0 { "" } else { ", " }));
        }
        out.push_str("},\n  \"histograms\": [\n");
        for (i, h) in s.hists.iter().enumerate() {
            let nonzero: Vec<String> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(bi, &n)| format!("{{\"ge\": {}, \"count\": {n}}}", bucket_floor(bi)))
                .collect();
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"mean\": {:.3}, \"buckets\": [{}]}}{}\n",
                h.name,
                h.count,
                h.sum,
                h.max,
                h.mean(),
                nonzero.join(", "),
                if i + 1 < s.hists.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the report in the Prometheus text exposition format
    /// (version 0.0.4): `sigma_`-prefixed families sorted by name,
    /// histograms as cumulative `_bucket{le="..."}` series with `_sum`
    /// and `_count`.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let s = self.sorted();
        let mut out = String::new();
        for (name, v) in &s.counters {
            out.push_str(&format!("# TYPE sigma_{name} counter\nsigma_{name} {v}\n"));
        }
        for (name, v) in &s.gauges {
            out.push_str(&format!("# TYPE sigma_{name} gauge\nsigma_{name} {v}\n"));
        }
        for h in &s.hists {
            let name = &h.name;
            out.push_str(&format!("# TYPE sigma_{name} histogram\n"));
            let mut cumulative = 0u64;
            for (bi, &n) in h.buckets.iter().enumerate() {
                cumulative += n;
                let le = if bi + 1 == h.buckets.len() {
                    "+Inf".to_string()
                } else {
                    bucket_ceil(bi).map_or_else(|| "+Inf".to_string(), |c| c.to_string())
                };
                out.push_str(&format!("sigma_{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("sigma_{name}_sum {}\n", h.sum));
            out.push_str(&format!("sigma_{name}_count {}\n", h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    /// A deterministic test clock ticking 10µs per call.
    fn ticking() -> FlightRecorder {
        let t = Arc::new(AtomicU64::new(0));
        FlightRecorder::with_clock(1024, move || t.fetch_add(10, Ordering::Relaxed))
    }

    #[test]
    fn stage_and_gauge_names_are_unique_and_parse_roundtrips() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.extend(Gauge::ALL.iter().map(|g| g.name()));
        let mut uniq = names.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len());
        for s in Stage::ALL {
            assert_eq!(Stage::parse(s.name()), Some(s));
        }
        for g in Gauge::ALL {
            assert_eq!(Gauge::parse(g.name()), Some(g));
        }
        assert_eq!(Stage::parse("nope"), None);
        assert_eq!(Gauge::parse("nope"), None);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = FlightRecorder::off();
        assert!(!r.is_enabled());
        assert_eq!(r.now_us(), 0);
        r.record_span(Stage::EngineRun, "x", 0, 5);
        r.span_since(Stage::CacheProbe, "y", 0);
        r.gauge_set(Gauge::CellsTotal, 7);
        r.gauge_add(Gauge::CellsCompleted, 1);
        r.snap();
        assert_eq!(r.gauge(Gauge::CellsTotal), 0);
        assert_eq!(r.dropped_spans(), 0);
        let snap = r.snapshot();
        assert!(!snap.enabled);
        assert!(snap.spans.is_empty());
        assert!(snap.snaps.is_empty());
        assert_eq!(snap.stage("engine_run").map(|h| h.count), Some(0));
        assert_eq!(snap.gauge("cells_total"), Some(0));
    }

    #[test]
    fn spans_land_in_stage_histograms_at_bucket_boundaries() {
        let r = ticking();
        // Durations 0, 1, bucket-edge pair around 2^15, and u64::MAX.
        for dur in [0u64, 1, 1 << 15, (1 << 15) + 1, u64::MAX] {
            r.record_span(Stage::EngineRun, "cell", 0, dur);
        }
        let snap = r.snapshot();
        let h = snap.stage("engine_run").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[16], 1); // 2^15 closes bucket 16
        assert_eq!(h.buckets[17], 2); // 2^15 + 1 and u64::MAX both open-ended
        assert_eq!(snap.stage("cache_probe").unwrap().count, 0);
    }

    #[test]
    fn span_buffer_is_bounded_but_histograms_keep_counting() {
        let t = Arc::new(AtomicU64::new(0));
        let r = FlightRecorder::with_clock(2, move || t.fetch_add(1, Ordering::Relaxed));
        for i in 0..5u64 {
            r.record_span(Stage::JournalAppend, "a", i, i + 1);
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.dropped_spans, 3);
        assert_eq!(r.dropped_spans(), 3);
        assert_eq!(snap.stage("journal_append").unwrap().count, 5);
    }

    #[test]
    fn span_since_uses_injected_clock_and_saturates() {
        let r = ticking();
        let t0 = r.now_us(); // 0
        r.span_since(Stage::RetryBackoff, "sleep", t0); // now = 10
        r.record_span(Stage::RetryBackoff, "clamped", 50, 20); // end < start
        let snap = r.snapshot();
        assert_eq!(snap.spans[0].start_us, 0);
        assert_eq!(snap.spans[0].dur_us, 10);
        assert_eq!(snap.spans[1].dur_us, 0);
    }

    #[test]
    fn threads_get_distinct_dense_tags() {
        let r = ticking();
        r.record_span(Stage::EngineRun, "main", 0, 1);
        let r2 = r.clone();
        std::thread::spawn(move || r2.record_span(Stage::EngineRun, "worker", 0, 1))
            .join()
            .unwrap();
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_ne!(snap.spans[0].thread, snap.spans[1].thread);
    }

    #[test]
    fn gauges_and_snaps_sample_current_levels() {
        let r = ticking();
        r.gauge_set(Gauge::CellsTotal, 32);
        r.gauge_add(Gauge::CellsCompleted, 3);
        r.snap();
        r.gauge_add(Gauge::CellsCompleted, 4);
        r.snap();
        assert_eq!(r.gauge(Gauge::CellsCompleted), 7);
        let snap = r.snapshot();
        assert_eq!(snap.snaps.len(), 2);
        assert!(snap.snaps[0].ts_us < snap.snaps[1].ts_us);
        let find = |s: &SnapRecord, n: &str| {
            s.gauges.iter().find(|(g, _)| *g == n).map(|(_, v)| *v).unwrap()
        };
        assert_eq!(find(&snap.snaps[0], "cells_completed"), 3);
        assert_eq!(find(&snap.snaps[1], "cells_completed"), 7);
        assert_eq!(find(&snap.snaps[1], "cells_total"), 32);
        assert_eq!(snap.gauge("cells_completed"), Some(7));
    }

    #[test]
    fn metrics_report_orders_deterministically() {
        // Same content, opposite insertion order.
        let mut a = MetricsReport::default();
        a.counters.push(("zeta".into(), 1));
        a.counters.push(("alpha".into(), 2));
        a.gauges.push(("g2".into(), 9));
        a.gauges.push(("g1".into(), 8));
        a.hists.push(ReportHist {
            name: "late".into(),
            count: 1,
            sum: 4,
            max: 4,
            buckets: vec![0, 0, 0, 1],
        });
        a.hists.push(ReportHist {
            name: "early".into(),
            count: 0,
            sum: 0,
            max: 0,
            buckets: vec![],
        });
        let b = MetricsReport {
            counters: a.counters.iter().rev().cloned().collect(),
            gauges: a.gauges.iter().rev().cloned().collect(),
            hists: a.hists.iter().rev().cloned().collect(),
        };
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_prometheus(), b.to_prometheus());
        let json = a.to_json();
        assert!(json.find("\"alpha\": 2").unwrap() < json.find("\"zeta\": 1").unwrap());
        assert!(json.find("\"early\"").unwrap() < json.find("\"late\"").unwrap());
        let prom = a.to_prometheus();
        assert!(prom.find("sigma_g1 8").unwrap() < prom.find("sigma_g2 9").unwrap());
    }

    #[test]
    fn prometheus_histograms_are_cumulative_with_inf_tail() {
        let tele = Telemetry::off();
        let r = ticking();
        for dur in [0u64, 1, 1, 3] {
            r.record_span(Stage::CacheProbe, "p", 0, dur);
        }
        let report = MetricsReport::from_snapshots(&tele.snapshot(), &r.snapshot());
        let prom = report.to_prometheus();
        assert!(prom.contains("# TYPE sigma_cache_probe histogram"));
        assert!(prom.contains("sigma_cache_probe_bucket{le=\"0\"} 1"));
        assert!(prom.contains("sigma_cache_probe_bucket{le=\"1\"} 3"));
        assert!(prom.contains("sigma_cache_probe_bucket{le=\"4\"} 4"));
        assert!(prom.contains("sigma_cache_probe_bucket{le=\"+Inf\"} 4"));
        assert!(prom.contains("sigma_cache_probe_sum 5"));
        assert!(prom.contains("sigma_cache_probe_count 4"));
    }

    #[test]
    fn empty_report_merge_is_identity_both_ways() {
        let tele = Telemetry::enabled();
        tele.add(crate::Counter::CacheHits, 5);
        let r = ticking();
        r.record_span(Stage::EngineRun, "x", 0, 7);
        r.gauge_set(Gauge::CellsTotal, 3);
        let full = MetricsReport::from_snapshots(&tele.snapshot(), &r.snapshot());
        let empty = MetricsReport::from_snapshots(
            &Telemetry::off().snapshot(),
            &FlightRecorder::off().snapshot(),
        );

        // full ∪ empty == full (counters/hists sum with zeros, gauges max
        // with zeros).
        let mut merged = full.clone();
        merged.merge(&empty);
        assert_eq!(merged.to_json(), full.to_json());
        assert_eq!(merged.to_prometheus(), full.to_prometheus());

        // empty ∪ full == full, modulo nothing: same rendering.
        let mut other = empty.clone();
        other.merge(&full);
        assert_eq!(other.to_json(), full.to_json());

        // A default (no families at all) merge adopts everything.
        let mut blank = MetricsReport::default();
        blank.merge(&full);
        assert_eq!(blank.to_json(), full.to_json());
    }

    #[test]
    fn merge_sums_counters_and_hists_and_maxes_gauges() {
        let mk = |hits: u64, dur: u64, live: u64| {
            let tele = Telemetry::enabled();
            tele.add(crate::Counter::CacheHits, hits);
            let r = ticking();
            r.record_span(Stage::EngineRun, "x", 0, dur);
            r.gauge_set(Gauge::LiveCellThreads, live);
            MetricsReport::from_snapshots(&tele.snapshot(), &r.snapshot())
        };
        let mut a = mk(2, 4, 5);
        let b = mk(3, 4, 1);
        a.merge(&b);
        assert!(a.to_json().contains("\"cache_hits\": 5"));
        assert!(a.to_json().contains("\"live_cell_threads\": 5"));
        let h = a.hists.iter().find(|h| h.name == "engine_run").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 8);
        assert_eq!(h.buckets[bucket_of(4)], 2);
    }

    #[test]
    fn report_hist_observe_matches_hist_cells() {
        let mut rh = ReportHist { name: "x".into(), count: 0, sum: 0, max: 0, buckets: Vec::new() };
        let cells = HistCells::new();
        for v in [0u64, 1, 5, 1 << 12, u64::MAX] {
            rh.observe(v);
            cells.observe(v);
        }
        let summary = cells.summary("x");
        assert_eq!(rh.count, summary.count);
        assert_eq!(rh.max, summary.max);
        assert_eq!(rh.buckets, summary.buckets);
    }
}
