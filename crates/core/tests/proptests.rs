//! Property-based tests on the controller, Flex-DPE and DPU invariants.

use proptest::prelude::*;
use sigma_core::model::GemmProblem;
use sigma_core::{ControllerPlan, DpuAllocator, Engine, FlexDpe, SigmaConfig, SigmaSim};
use sigma_matrix::gen::{sparse_uniform, Density};
use sigma_matrix::GemmShape;

fn density(x: u8) -> Density {
    Density::new(f64::from(x) / 10.0).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every mapped stationary element has at least one streaming partner
    /// (REGOR never maps useless work), and every dropped element has
    /// none.
    #[test]
    fn controller_maps_exactly_the_useful_elements(
        g in 1usize..10, k in 1usize..10, s in 1usize..10,
        d_stat in 1u8..=10, d_str in 0u8..=10, seed in any::<u64>()
    ) {
        let stationary = sparse_uniform(g, k, density(d_stat), seed);
        let streaming = sparse_uniform(k, s, density(d_str), seed ^ 0x9a);
        let plan = ControllerPlan::build(&stationary, streaming.bitmap(), 64);

        let mapped: usize = plan.folds.iter().map(sigma_core::Fold::occupied).sum();
        prop_assert_eq!(mapped as u64, plan.stationary_prime_nnz);
        prop_assert_eq!(
            plan.stationary_prime_nnz + plan.dropped_stationary,
            stationary.nnz() as u64
        );
        for fold in &plan.folds {
            for e in &fold.elements {
                prop_assert!(
                    streaming.bitmap().row_count_ones(e.contraction) > 0,
                    "mapped element with no streaming partner at k={}", e.contraction
                );
            }
        }
    }

    /// Clusters within every fold are contiguous and ordered, and their
    /// groups strictly increase.
    #[test]
    fn controller_clusters_are_contiguous_and_ordered(
        g in 1usize..12, k in 1usize..12, seed in any::<u64>()
    ) {
        let stationary = sparse_uniform(g, k, density(6), seed);
        let streaming = sparse_uniform(k, 4, density(8), seed ^ 0x77);
        let plan = ControllerPlan::build(&stationary, streaming.bitmap(), 8);
        for fold in &plan.folds {
            // vec_ids must be a non-decreasing run of cluster ids then None.
            let mut last: Option<u32> = None;
            for (i, id) in fold.vec_ids.iter().enumerate() {
                match (last, id) {
                    (Some(l), Some(cur)) => {
                        prop_assert!(*cur == l || *cur == l + 1, "cluster jump at {i}");
                    }
                    (None, Some(cur)) => prop_assert_eq!(*cur, 0),
                    (_, None) => {
                        prop_assert!(fold.vec_ids[i..].iter().all(Option::is_none));
                        break;
                    }
                }
                if let Some(cur) = id {
                    last = Some(*cur);
                }
            }
            // Groups strictly increase across clusters within a fold.
            for w in fold.cluster_groups.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    /// A Flex-DPE step computes exactly the per-cluster dot products of
    /// its stationary buffer against the streamed vector.
    #[test]
    fn flex_dpe_step_matches_dot_products(
        seed in any::<u64>(), d in 2u8..=10
    ) {
        let stationary = sparse_uniform(4, 8, density(d), seed);
        let streaming = sparse_uniform(8, 1, density(8), seed ^ 0x3c3c);
        let plan = ControllerPlan::build(&stationary, streaming.bitmap(), 16);
        let stream_dense = streaming.to_dense();

        if let Some(fold) = plan.folds.first() {
            let mut dpe = FlexDpe::new(16).unwrap();
            dpe.load(&fold.elements, &fold.vec_ids).unwrap();
            let step = dpe.step(&|kk| stream_dense.get(kk, 0)).unwrap();

            // Expected per-cluster partial dot products from the fold's
            // own elements (a group may span folds, so the cluster sum is
            // the partial over this fold's slice).
            for s in &step.reduction.sums {
                let expect: f32 = fold
                    .elements
                    .iter()
                    .zip(&fold.vec_ids)
                    .filter(|(_, id)| **id == Some(s.vec_id))
                    .map(|(e, _)| e.value * stream_dense.get(e.contraction, 0))
                    .sum();
                prop_assert!((s.value - expect).abs() < 1e-3,
                    "cluster {} sum {} vs {}", s.vec_id, s.value, expect);
            }
        }
    }

    /// DPU partitions always cover the pool exactly, with every GEMM
    /// getting at least one Flex-DPE.
    #[test]
    fn dpu_partition_invariants(
        sizes in proptest::collection::vec((1usize..64, 1usize..64, 1usize..64), 1..8)
    ) {
        let cfg = SigmaConfig::new(8, 16, 16, sigma_core::Dataflow::WeightStationary).unwrap();
        let alloc = DpuAllocator::new(cfg);
        let problems: Vec<GemmProblem> = sizes
            .iter()
            .map(|&(m, n, k)| GemmProblem::dense(GemmShape::new(m, n, k)))
            .collect();
        let shares = alloc.partition(&problems).unwrap();
        prop_assert_eq!(shares.iter().sum::<usize>(), 8);
        prop_assert!(shares.iter().all(|&s| s >= 1));
    }

    /// Benes route caching is invisible: the same GEMM run with the route
    /// cache enabled and disabled produces byte-identical [`EngineRun`]s
    /// (result matrix, cycle stats, and trace) across random sparse and
    /// irregular shapes, dataflows, and PE configurations.
    #[test]
    fn route_cache_runs_are_byte_identical_to_cold_routing(
        m in 1usize..24, k in 1usize..20, n in 1usize..24,
        d_a in 0u8..=10, d_b in 0u8..=10,
        dpes in 1usize..5, log_size in 1u32..5,
        seed in any::<u64>()
    ) {
        let dataflow = match seed % 3 {
            0 => sigma_core::Dataflow::WeightStationary,
            1 => sigma_core::Dataflow::InputStationary,
            _ => sigma_core::Dataflow::NoLocalReuse,
        };
        let a = sparse_uniform(m, k, density(d_a), seed);
        let b = sparse_uniform(k, n, density(d_b), seed ^ 0x5bd1_e995);
        let cfg = SigmaConfig::new(dpes, 1 << log_size, 1 << log_size, dataflow).unwrap();

        let cached = Engine::run(&SigmaSim::new(cfg).unwrap(), &a, &b).unwrap();
        let mut cold =
            Engine::run(&SigmaSim::new(cfg.with_route_cache(false)).unwrap(), &a, &b).unwrap();

        // The route-cache hit/miss counters observe the caching itself, so
        // they are the one legitimate difference: cold routing never hits.
        prop_assert_eq!(cold.stats.route_cache_hits, 0);
        prop_assert_eq!(
            cold.stats.route_cache_misses,
            cached.stats.route_cache_hits + cached.stats.route_cache_misses
        );
        cold.stats.route_cache_hits = cached.stats.route_cache_hits;
        cold.stats.route_cache_misses = cached.stats.route_cache_misses;
        prop_assert!(cached == cold, "cached and cold runs diverged");
        // Belt and braces: the numeric results are bitwise equal, not
        // merely PartialEq-equal (PartialEq on f32 would accept -0.0 == 0.0).
        for i in 0..cached.result.rows() {
            for j in 0..cached.result.cols() {
                prop_assert_eq!(
                    cached.result.get(i, j).to_bits(),
                    cold.result.get(i, j).to_bits(),
                    "bit divergence at ({}, {})", i, j
                );
            }
        }
    }
}
