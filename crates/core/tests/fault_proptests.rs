//! Property-based tests for the fault-injection subsystem.
//!
//! The two load-bearing claims:
//!
//! * a *disabled* injector (empty [`FaultPlan`]) is byte-identical to an
//!   un-instrumented run across the whole SIGMA configuration fleet —
//!   fault support costs nothing when off;
//! * ABFT-checked runs detect every injected single transient bit flip
//!   that has a numeric effect, and never flag a fault-free run.

use proptest::prelude::*;
use sigma_core::fault::{FaultKind, FaultPlan, FaultSite};
use sigma_core::{Dataflow, RecoveryPolicy, SigmaConfig, SigmaSim};
use sigma_matrix::gen::{sparse_uniform, Density};

fn density(x: u8) -> Density {
    Density::new(f64::from(x) / 10.0).unwrap()
}

fn dataflow(ix: u8) -> Dataflow {
    Dataflow::ALL[ix as usize % Dataflow::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An armed-but-empty fault plan leaves results, cycle stats and
    /// fault counters bit-identical to the plain entry point, for every
    /// dataflow and a fleet of machine sizes.
    #[test]
    fn disabled_injector_is_byte_identical(
        dpes in 1usize..4,
        size_log in 1u32..4,
        m in 1usize..10, n in 1usize..10, k in 1usize..10,
        da in 1u8..=10,
        df_ix in 0u8..3, seed in any::<u64>()
    ) {
        let dpe_size = 1usize << size_log;
        let cfg = SigmaConfig::new(dpes, dpe_size, dpes * dpe_size, dataflow(df_ix)).unwrap();
        let sim = SigmaSim::new(cfg).unwrap();
        let a = sparse_uniform(m, k, density(da), seed);
        let b = sparse_uniform(k, n, density((seed % 11) as u8), seed ^ 0x51);

        let plain = sim.run_gemm(&a, &b).unwrap();
        let (faulted, report) = sim.run_gemm_with_faults(&a, &b, &FaultPlan::none()).unwrap();

        prop_assert!(report.fired.is_empty());
        prop_assert_eq!(report.counters.injected, 0);
        prop_assert_eq!(
            plain.result.as_slice(), faulted.result.as_slice(),
            "disabled injector changed the result bits"
        );
        prop_assert_eq!(plain.stats, faulted.stats);
    }

    /// A checked run with an empty plan never reports a detection
    /// (zero ABFT false positives), and a checked run with a single
    /// multiplier transient detects it whenever it had a numeric effect.
    #[test]
    fn abft_detects_every_numeric_transient(
        dpes in 1usize..3,
        m in 2usize..10, n in 2usize..10, k in 2usize..10,
        slot in 0usize..8, bit in 20u32..31,
        df_ix in 0u8..3, seed in any::<u64>()
    ) {
        let cfg = SigmaConfig::new(dpes, 8, dpes * 8, dataflow(df_ix)).unwrap();
        let sim = SigmaSim::new(cfg).unwrap();
        let a = sparse_uniform(m, k, density(7), seed);
        let b = sparse_uniform(k, n, density(7), seed ^ 0xab);
        let policy = RecoveryPolicy::default();

        let (_, clean) = sim.run_gemm_checked(&a, &b, &FaultPlan::none(), &policy).unwrap();
        prop_assert_eq!(clean.counters.detected, 0, "false positive on fault-free run");
        prop_assert_eq!(clean.counters.escaped, 0);

        let plan = FaultPlan::single(
            FaultSite::MultiplierOutput { dpe: seed as usize % dpes, slot },
            FaultKind::TransientFlip { bit },
        );
        let (run, report) = sim.run_gemm_checked(&a, &b, &plan, &policy).unwrap();
        if report.numeric_effect {
            prop_assert!(
                report.counters.detected > 0,
                "numeric-effect transient escaped ABFT (fired: {:?})", report.fired
            );
            // A consumed transient cannot survive a recompute.
            prop_assert_eq!(report.counters.escaped, 0);
            prop_assert!(run.result.all_finite());
        }
    }
}
