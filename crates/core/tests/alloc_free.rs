//! Verifies the allocation-free claim for the simulation hot loops: after
//! a warmup pass, `FlexDpe::load` (route-cache hit), `FlexDpe::step_into`
//! and `Fan::reduce_into` perform **zero** heap allocations.
//!
//! A counting `#[global_allocator]` makes the claim checkable instead of
//! aspirational. This file intentionally holds a single `#[test]`: the
//! counter is process-wide, and sibling tests running on other threads
//! would pollute the counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sigma_core::{DpeStep, FlexDpe, MappedElement, Telemetry};
use sigma_interconnect::{Fan, FanReduction, FanScratch};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Heap allocations performed while running `f`.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

/// Minimum allocation count over `n` attempts (robust against one-off
/// lazy initialization inside the standard library).
fn min_allocations_over<R>(n: usize, mut f: impl FnMut() -> R) -> u64 {
    (0..n).map(|_| allocations_during(&mut f).0).min().unwrap()
}

fn elements(spec: &[(usize, usize, f32)]) -> Vec<MappedElement> {
    spec.iter()
        .map(|&(group, contraction, value)| MappedElement { group, contraction, value })
        .collect()
}

#[test]
fn warmed_hot_loops_do_not_allocate() {
    const SIZE: usize = 64;
    let mut dpe = FlexDpe::new(SIZE).unwrap();

    // An irregular three-cluster fold.
    let els = elements(&[
        (0, 0, 2.0),
        (0, 3, 1.5),
        (0, 5, -1.0),
        (1, 1, 4.0),
        (1, 2, 0.5),
        (2, 0, 3.0),
        (2, 4, 2.5),
        (2, 6, 1.0),
        (2, 7, -2.0),
    ]);
    let mut ids: Vec<Option<u32>> = vec![None; SIZE];
    for (slot, id) in [0u32, 0, 0, 1, 1, 2, 2, 2, 2].iter().enumerate() {
        ids[slot] = Some(*id);
    }

    // Warmup: cold route, scratch capacity growth, first reduction.
    dpe.load(&els, &ids).unwrap();
    let mut out = DpeStep::default();
    dpe.step_into(&|k| (k * k) as f32, &mut out).unwrap();
    assert_eq!(dpe.route_cache().misses(), 1);

    // Steady state: reloading the same fold pattern hits the route cache
    // and refills the flattened store in place — zero allocations.
    let reload = min_allocations_over(3, || dpe.load(&els, &ids).unwrap());
    assert_eq!(reload, 0, "warmed load allocated {reload} times");
    assert!(dpe.route_cache().hits() >= 3);

    // Streaming: multiply + FAN reduce through reused scratch.
    let mut wave = 0usize;
    let stepping = min_allocations_over(3, || {
        wave += 1;
        let shift = wave as f32;
        dpe.step_into(&|k| k as f32 + shift, &mut out).unwrap();
    });
    assert_eq!(stepping, 0, "warmed step_into allocated {stepping} times");
    assert_eq!(out.useful_macs, 9);

    // The FAN reduction path in isolation, as the NLR dataflow drives it.
    let fan = Fan::new(SIZE).unwrap();
    let mut products = vec![0.0f32; SIZE];
    for (slot, p) in products.iter_mut().enumerate().take(9) {
        *p = slot as f32 + 1.0;
    }
    let mut scratch = FanScratch::default();
    let mut red = FanReduction::default();
    fan.reduce_into(&products, &ids, &[], &mut scratch, &mut red).unwrap();
    let reducing = min_allocations_over(3, || {
        fan.reduce_into(&products, &ids, &[], &mut scratch, &mut red).unwrap();
    });
    assert_eq!(reducing, 0, "warmed reduce_into allocated {reducing} times");
    assert_eq!(red.sums.len(), 3);

    // Telemetry-enabled hot loops are allocation-free too: counters and
    // histograms are preallocated atomics, so recording is an array index
    // plus a relaxed fetch_add.
    let mut tdpe = FlexDpe::new(SIZE).unwrap();
    tdpe.set_telemetry(Telemetry::enabled());
    tdpe.load(&els, &ids).unwrap();
    let mut tout = DpeStep::default();
    tdpe.step_into(&|k| (k * k) as f32, &mut tout).unwrap();
    let treload = min_allocations_over(3, || tdpe.load(&els, &ids).unwrap());
    assert_eq!(treload, 0, "telemetry-enabled load allocated {treload} times");
    let tstepping = min_allocations_over(3, || {
        tdpe.step_into(&|k| k as f32 + 1.0, &mut tout).unwrap();
    });
    assert_eq!(tstepping, 0, "telemetry-enabled step_into allocated {tstepping} times");

    // A disabled telemetry handle is byte-identical to never attaching
    // one: the datapath never branches on telemetry for anything but
    // recording, so the step outputs match bit for bit.
    let mut plain = FlexDpe::new(SIZE).unwrap();
    let mut disabled = FlexDpe::new(SIZE).unwrap();
    disabled.set_telemetry(Telemetry::off());
    plain.load(&els, &ids).unwrap();
    disabled.load(&els, &ids).unwrap();
    let mut out_plain = DpeStep::default();
    let mut out_disabled = DpeStep::default();
    plain.step_into(&|k| k as f32 * 0.5 - 1.0, &mut out_plain).unwrap();
    disabled.step_into(&|k| k as f32 * 0.5 - 1.0, &mut out_disabled).unwrap();
    assert_eq!(out_plain, out_disabled);
    for (a, b) in out_plain.reduction.sums.iter().zip(&out_disabled.reduction.sums) {
        assert_eq!(a.value.to_bits(), b.value.to_bits(), "cluster {} diverged bitwise", a.vec_id);
    }

    // Sanity: the counter itself is live (an intentional allocation is
    // seen), so the zeros above are meaningful.
    let (n, v) = allocations_during(|| vec![1u8; 4096]);
    assert!(n > 0, "allocation counter failed to observe a Vec allocation");
    drop(v);
}
