//! Regression guard for the u32→u64 counter widening: a synthetic run
//! whose cycle counters exceed `u32::MAX` must survive accounting,
//! merging, and display exactly — no truncation, wrap, or saturation.
//!
//! Real training GEMMs at paper scale (M·K·N ≈ 5124·9124·2560 over
//! thousands of layers) push aggregate cycle counts far past 2^32; the
//! old 32-bit completion/drain fields silently wrapped there.

use sigma_core::CycleStats;

/// A synthetic phase whose every counter is past 2^32.
fn huge_phase() -> CycleStats {
    CycleStats {
        loading_cycles: 1 << 40,
        streaming_cycles: (1 << 41) + 12_345,
        add_cycles: (1 << 33) + 7,
        folds: (1 << 34) + 1,
        useful_macs: 1 << 70,
        issued_macs: (1 << 70) + (1 << 69),
        mapped_nonzeros: 1 << 36,
        occupied_slots: 1 << 36,
        pes: 16_384,
        sram_reads: 1 << 42,
        ..CycleStats::default()
    }
}

#[test]
fn totals_past_u32_are_exact() {
    let s = huge_phase();
    let expect = (1u64 << 40) + ((1 << 41) + 12_345) + ((1 << 33) + 7);
    assert_eq!(s.total_cycles(), expect);
    assert!(s.total_cycles() > u64::from(u32::MAX));
    // The old u32 wrap would have produced this instead.
    #[allow(clippy::cast_possible_truncation)]
    let wrapped = u64::from(expect as u32);
    assert_ne!(s.total_cycles(), wrapped);
}

#[test]
fn merging_many_huge_phases_stays_exact() {
    let phase = huge_phase();
    let mut acc = CycleStats::default();
    for _ in 0..1000 {
        acc = acc.merged(&phase);
    }
    assert_eq!(acc.loading_cycles, 1000 * (1u64 << 40));
    assert_eq!(acc.total_cycles(), 1000 * phase.total_cycles());
    assert_eq!(acc.useful_macs, 1000 * (1u128 << 70));
    assert_eq!(acc.pes, phase.pes, "pes is a max, not a sum");
}

#[test]
fn efficiency_ratios_survive_huge_counters() {
    let s = huge_phase();
    assert!((s.stationary_utilization() - 1.0).abs() < 1e-12);
    let ce = s.compute_efficiency();
    let oe = s.overall_efficiency();
    assert!(ce.is_finite() && (0.0..=1.0).contains(&ce));
    assert!(oe.is_finite() && (0.0..=1.0).contains(&oe));
    assert!(oe <= ce + 1e-12, "overall adds latency, so it cannot beat compute eff");
}

#[test]
fn display_renders_the_full_width() {
    let s = huge_phase();
    let text = s.to_string();
    assert!(text.contains(&(1u64 << 40).to_string()), "{text}");
    assert!(text.contains(&s.total_cycles().to_string()), "{text}");
}
