#![allow(clippy::needless_range_loop)]

//! Cross-validation tests for the SIGMA core:
//!
//! 1. the functional engine computes numerically-correct GEMMs for every
//!    dataflow / shape / density combination (property-tested);
//! 2. the analytic model agrees with the functional engine's accounting;
//! 3. the distribution patterns the controller emits are routable on the
//!    real Benes network model.

use proptest::prelude::*;
use sigma_core::model::{estimate, GemmProblem};
use sigma_core::{ControllerPlan, Dataflow, SigmaConfig, SigmaSim};
use sigma_interconnect::BenesNetwork;
use sigma_matrix::gen::{sparse_uniform, Density};
use sigma_matrix::GemmShape;

fn sim(dpes: usize, size: usize, bw: usize, df: Dataflow) -> SigmaSim {
    SigmaSim::new(SigmaConfig::new(dpes, size, bw, df).unwrap()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn functional_matches_reference_all_dataflows(
        m in 1usize..14,
        k in 1usize..14,
        n in 1usize..14,
        da10 in 0u8..=10,
        db10 in 0u8..=10,
        seed in any::<u64>()
    ) {
        let a = sparse_uniform(m, k, Density::new(f64::from(da10) / 10.0).unwrap(), seed);
        let b = sparse_uniform(k, n, Density::new(f64::from(db10) / 10.0).unwrap(), seed ^ 0xabc);
        let reference = a.to_dense().matmul(&b.to_dense());
        let tol = 1e-3 * k as f32;
        for df in Dataflow::ALL {
            let run = sim(2, 8, 8, df).run_gemm(&a, &b).unwrap();
            prop_assert!(
                run.result.approx_eq(&reference, tol),
                "{df}: max diff {}", run.result.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn functional_and_analytic_agree_on_structure(
        m in 2usize..12,
        k in 2usize..12,
        n in 2usize..12,
        seed in any::<u64>()
    ) {
        // Dense problems: the analytic expectations are exact except for
        // boundary rounding.
        let a = sparse_uniform(m, k, Density::DENSE, seed);
        let b = sparse_uniform(k, n, Density::DENSE, seed ^ 0x5e5e);
        let cfg = SigmaConfig::new(2, 8, 8, Dataflow::InputStationary).unwrap();
        let run = SigmaSim::new(cfg).unwrap().run_gemm(&a, &b).unwrap();
        let est = estimate(&cfg, &GemmProblem::dense(GemmShape::new(m, n, k)));
        prop_assert_eq!(run.stats.folds, est.folds);
        prop_assert_eq!(run.stats.mapped_nonzeros, est.mapped_nonzeros);
        prop_assert_eq!(run.stats.useful_macs, est.useful_macs);
        prop_assert_eq!(run.stats.loading_cycles, est.loading_cycles);
        // Streaming may differ slightly at fold boundaries (expected
        // distinct-column count vs. exact); require 15% agreement.
        let f = run.stats.streaming_cycles as f64;
        let e = est.streaming_cycles as f64;
        prop_assert!((f - e).abs() / f.max(1.0) < 0.15, "streaming {f} vs estimate {e}");
    }

    #[test]
    fn analytic_tracks_functional_on_sparse(
        seed in any::<u64>(),
        da10 in 2u8..=10,
        db10 in 2u8..=10,
    ) {
        let (m, k, n) = (24, 24, 24);
        let da = f64::from(da10) / 10.0;
        let db = f64::from(db10) / 10.0;
        let a = sparse_uniform(m, k, Density::new(da).unwrap(), seed);
        let b = sparse_uniform(k, n, Density::new(db).unwrap(), seed ^ 0x77);
        let cfg = SigmaConfig::new(4, 16, 32, Dataflow::InputStationary).unwrap();
        let run = SigmaSim::new(cfg).unwrap().run_gemm(&a, &b).unwrap();
        let est = estimate(&cfg, &GemmProblem::sparse(GemmShape::new(m, n, k), da, db));
        let f = run.stats.total_cycles() as f64;
        let e = est.total_cycles() as f64;
        prop_assert!(
            (f - e).abs() / f.max(1.0) < 0.35,
            "total cycles: functional {f} vs analytic {e} (da={da}, db={db})"
        );
    }
}

/// The controller's stationary loading pattern (compressed values to
/// packed PE slots) is an identity-like monotone request — always Benes
/// routable in one pass.
#[test]
fn stationary_loading_routes_on_benes() {
    let a = sparse_uniform(8, 8, Density::new(0.4).unwrap(), 3);
    let b = sparse_uniform(8, 8, Density::new(0.7).unwrap(), 4);
    let plan = ControllerPlan::build(&a, b.bitmap(), 16);
    let net = BenesNetwork::new(16).unwrap();
    for fold in &plan.folds {
        // Loading: value i (in SRAM arrival order) goes to PE slot i.
        let req: Vec<Option<usize>> =
            (0..16).map(|slot| if slot < fold.occupied() { Some(slot) } else { None }).collect();
        let cfg = net.route_monotone_multicast(&req).unwrap();
        let inputs: Vec<Option<u32>> = (0..16).map(|i| Some(i as u32)).collect();
        let out = cfg.apply(&inputs);
        for slot in 0..fold.occupied() {
            assert_eq!(out[slot], Some(slot as u32));
        }
    }
}

/// Within one FAN cluster, a streaming step's distribution is a monotone
/// multicast (contraction indices increase along the cluster's packed
/// slots), so each cluster's slice of the per-step pattern routes on the
/// Benes in one pass.
#[test]
fn per_cluster_streaming_patterns_are_monotone_and_routable() {
    let a = sparse_uniform(12, 16, Density::new(0.5).unwrap(), 5);
    let b = sparse_uniform(16, 6, Density::new(0.6).unwrap(), 6);
    let plan = ControllerPlan::build(&a, b.bitmap(), 32);
    let net = BenesNetwork::new(32).unwrap();
    for fold in &plan.folds {
        // Streaming arrival order: sorted distinct contraction indices.
        let rank_of =
            |k: usize| fold.distinct_contractions.binary_search(&k).expect("k present in fold");
        // Build one request per cluster; verify monotonicity and route it.
        let mut cluster_start = 0usize;
        while cluster_start < fold.occupied() {
            let cid = fold.vec_ids[cluster_start];
            let mut cluster_end = cluster_start;
            while cluster_end < fold.occupied() && fold.vec_ids[cluster_end] == cid {
                cluster_end += 1;
            }
            let mut req: Vec<Option<usize>> = vec![None; 32];
            for slot in cluster_start..cluster_end {
                req[slot] = Some(rank_of(fold.elements[slot].contraction));
            }
            let cfg = net
                .route_monotone_multicast(&req)
                .expect("per-cluster streaming request must be monotone");
            let inputs: Vec<Option<usize>> = (0..32).map(Some).collect();
            let out = cfg.apply(&inputs);
            for slot in cluster_start..cluster_end {
                assert_eq!(out[slot], req[slot]);
            }
            cluster_start = cluster_end;
        }
    }
}

/// Big-picture smoke test: the paper's flagship sparse-irregular scenario
/// runs functionally on a scaled-down instance with the expected
/// qualitative behaviour.
#[test]
fn sparse_irregular_end_to_end() {
    let sim = sim(4, 16, 64, Dataflow::InputStationary);
    // Tall-skinny sparse A (80% sparse), small dense-ish B.
    let a = sparse_uniform(64, 24, Density::from_sparsity(0.8).unwrap(), 11);
    let b = sparse_uniform(24, 10, Density::from_sparsity(0.3).unwrap(), 12);
    let run = sim.run_gemm(&a, &b).unwrap();
    let reference = a.to_dense().matmul(&b.to_dense());
    assert!(run.result.approx_eq(&reference, 0.05));
    assert_eq!(run.stats.stationary_utilization(), 1.0);
    // Compute efficiency tracks the streaming density (~0.7).
    let eff = run.stats.compute_efficiency();
    assert!((0.5..=0.9).contains(&eff), "compute efficiency {eff}");
}
